# Development entry points for the VaidyaTL12 reproduction.
#
#   make test        tier-1 test suite + docstring-coverage gate
#   make test-fast   test suite without the slow cross-engine parity sweeps
#   make bench       synchronous engine benchmark -> BENCH_engine.json
#   make bench-async asynchronous engine benchmark -> BENCH_async.json
#   make docs-check  docs exist, examples in them import, docstrings covered

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench bench-async docs-check

test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) tools/check_docstrings.py

test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"
	$(PYTHON) tools/check_docstrings.py

bench:
	$(PYTHON) benchmarks/bench_engine.py

bench-async:
	$(PYTHON) benchmarks/bench_async.py

docs-check:
	@test -f README.md || { echo "README.md missing"; exit 1; }
	@test -f docs/architecture.md || { echo "docs/architecture.md missing"; exit 1; }
	@test -f docs/performance.md || { echo "docs/performance.md missing"; exit 1; }
	$(PYTHON) tools/check_docstrings.py
	@echo "docs OK"
