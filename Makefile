# Development entry points for the VaidyaTL12 reproduction.
#
#   make test        tier-1 test suite + docstring-coverage gate
#   make bench       engine benchmark -> BENCH_engine.json
#   make docs-check  docs exist, examples in them import, docstrings covered

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench docs-check

test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) tools/check_docstrings.py

bench:
	$(PYTHON) benchmarks/bench_engine.py

docs-check:
	@test -f README.md || { echo "README.md missing"; exit 1; }
	@test -f docs/architecture.md || { echo "docs/architecture.md missing"; exit 1; }
	@test -f docs/performance.md || { echo "docs/performance.md missing"; exit 1; }
	$(PYTHON) tools/check_docstrings.py
	@echo "docs OK"
