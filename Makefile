# Development entry points for the VaidyaTL12 reproduction.
#
#   make test        tier-1 test suite
#   make test-fast   test suite without the slow cross-engine parity sweeps
#   make lint        determinism/contract linter (reprolint) + typing
#                    ratchet (tools/check_typing_ratchet.py) + typed-API
#                    gate (mypy, skipped with a notice when not installed;
#                    CI installs it) + docstring-coverage gate
#   make bench       synchronous engine benchmark -> BENCH_engine.json
#   make bench-async asynchronous engine benchmark -> BENCH_async.json
#   make bench-checker legacy-vs-bitset checker benchmark -> BENCH_checker.json
#   make bench-checker-smoke tiny-n equivalence-guarded checker benchmark run
#                    (no file written; CI runs this on every push)
#   make bench-adversary batch-native vs adapter adversary benchmark
#                    -> BENCH_adversary.json
#   make bench-adversary-smoke tiny-n equivalence-guarded adversary benchmark
#                    run (no file written; CI runs this on every push)
#   make bench-scale sparse-engine scale benchmark up to n=10^5
#                    -> BENCH_scale.json
#   make bench-scale-smoke tiny-n scale run: scalar/dense/sparse equivalence
#                    guards only (no file written; CI runs this on every push)
#   make bench-verdict layered feasibility-verdict benchmark with parity and
#                    certificate guards -> BENCH_verdict.json
#   make bench-verdict-smoke parity + certificate guards and one tiny timed
#                    battery (no file written; CI runs this on every push)
#   make bench-dynamic dynamic-topology masking-overhead benchmark
#                    -> BENCH_dynamic.json
#   make bench-dynamic-smoke tiny-n dynamic run: scalar/dense/sparse
#                    equivalence guards under every schedule kind (no file
#                    written; CI runs this on every push)
#   make docs-check  docs exist, examples in them import, docstrings covered
#   make sweep-smoke end-to-end CLI sweep: run a tiny sharded grid with two
#                    workers, then re-open it with `repro report`

PYTHON ?= python
export PYTHONPATH := src:tools$(if $(PYTHONPATH),:$(PYTHONPATH))

# The docstring gate covers the library, the sweeps/CLI layer and the
# benchmark scripts; --require guards against a package silently leaving
# the scan.
DOCSTRING_GATE = $(PYTHON) tools/check_docstrings.py \
	--root src/repro --root benchmarks --root tools/reprolint \
	--require reprolint.engine --require reprolint.pragmas \
	--require repro.cli --require repro.sweeps.registry \
	--require repro.sweeps.orchestrator --require repro.sweeps.store \
	--require repro.sweeps.schema \
	--require repro.conditions.bitset --require repro.conditions.verdict \
	--require repro.adversary.vectorized \
	--require repro.simulation.sparse \
	--require repro.simulation.dynamic

.PHONY: test test-fast lint bench bench-async bench-checker bench-checker-smoke bench-adversary bench-adversary-smoke bench-scale bench-scale-smoke bench-verdict bench-verdict-smoke bench-dynamic bench-dynamic-smoke docs-check sweep-smoke

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# The unified lint gate: the contract linter (zero findings, zero
# unexplained suppressions), the typing ratchet (no ignore_errors in
# mypy.ini, strict-section count non-decreasing, strict packages fully
# annotated — runs without mypy), the typed-API gate, and the docstring
# gate (folded in here so `make test` stays fast).  mypy is optional
# locally; CI installs it so the typed-API gate always runs there.
lint:
	$(PYTHON) -m reprolint src/repro
	$(PYTHON) tools/check_typing_ratchet.py
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		echo "mypy typed-API gate (mypy.ini)"; \
		$(PYTHON) -m mypy --config-file mypy.ini; \
	else \
		echo "mypy not installed; typed-API gate skipped (CI installs mypy)"; \
	fi
	$(DOCSTRING_GATE)

bench:
	$(PYTHON) benchmarks/bench_engine.py

bench-async:
	$(PYTHON) benchmarks/bench_async.py

bench-checker:
	$(PYTHON) benchmarks/bench_checker.py

bench-checker-smoke:
	$(PYTHON) benchmarks/bench_checker.py --smoke

bench-adversary:
	$(PYTHON) benchmarks/bench_adversary.py

bench-adversary-smoke:
	$(PYTHON) benchmarks/bench_adversary.py --smoke

bench-scale:
	$(PYTHON) benchmarks/bench_scale.py

bench-scale-smoke:
	$(PYTHON) benchmarks/bench_scale.py --smoke
	@git diff --quiet -- BENCH_scale.json || { echo "bench-scale-smoke must not modify BENCH_scale.json"; exit 1; }

bench-verdict:
	$(PYTHON) benchmarks/bench_verdict.py

bench-verdict-smoke:
	$(PYTHON) benchmarks/bench_verdict.py --smoke
	@git diff --quiet -- BENCH_verdict.json || { echo "bench-verdict-smoke must not modify BENCH_verdict.json"; exit 1; }

bench-dynamic:
	$(PYTHON) benchmarks/bench_dynamic.py

bench-dynamic-smoke:
	$(PYTHON) benchmarks/bench_dynamic.py --smoke
	@git diff --quiet -- BENCH_dynamic.json || { echo "bench-dynamic-smoke must not modify BENCH_dynamic.json"; exit 1; }

docs-check:
	@test -f README.md || { echo "README.md missing"; exit 1; }
	@test -f docs/architecture.md || { echo "docs/architecture.md missing"; exit 1; }
	@test -f docs/performance.md || { echo "docs/performance.md missing"; exit 1; }
	@test -f docs/cli.md || { echo "docs/cli.md missing"; exit 1; }
	@test -f docs/experiments.md || { echo "docs/experiments.md missing"; exit 1; }
	@test -f docs/contracts.md || { echo "docs/contracts.md missing"; exit 1; }
	$(DOCSTRING_GATE)
	@echo "docs OK"

sweep-smoke:
	rm -rf .sweep-smoke
	$(PYTHON) -m repro list
	$(PYTHON) -m repro run convergence_rate \
		--grid "case=complete n=4 f=1,core n=7 f=2" \
		--grid batch=8 --grid rounds=80 \
		--workers 2 --results-dir .sweep-smoke --run-id smoke
	$(PYTHON) -m repro report smoke --results-dir .sweep-smoke
	$(PYTHON) -m repro run dynamic_topology \
		--grid "case=core n=9 f=2" \
		--grid "schedule_kind=static,composed" \
		--grid batch=8 --grid rounds=30 \
		--workers 2 --results-dir .sweep-smoke --run-id smoke-dynamic
	$(PYTHON) -m repro report smoke-dynamic --results-dir .sweep-smoke
	$(PYTHON) -m repro run churn_sweep \
		--grid "p_awake=1.0,0.75" --grid batch=8 --grid rounds=60 \
		--workers 2 --results-dir .sweep-smoke --run-id smoke-churn
	$(PYTHON) -m repro report smoke-churn --results-dir .sweep-smoke
	rm -rf .sweep-smoke
	@echo "sweep smoke OK"
