"""Unit tests for canonical and heuristic witness search."""

from __future__ import annotations

import pytest

from repro.conditions import (
    chord_n7_f2_witness,
    find_violating_partition,
    greedy_witness_search,
    hypercube_dimension_cut_witness,
    random_witness_search,
    satisfies_theorem1,
    verify_witness,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import (
    butterfly_barbell,
    chord_network,
    complete_graph,
    core_network,
    hypercube,
    undirected_ring,
)


class TestCanonicalWitnesses:
    def test_chord_witness_matches_paper(self):
        witness = chord_n7_f2_witness()
        assert witness.faulty == frozenset({5, 6})
        assert witness.left == frozenset({0, 2})
        assert witness.right == frozenset({1, 3, 4})
        assert witness.center == frozenset()
        assert verify_witness(chord_network(7, 2), 2, witness)

    def test_chord_witness_invalid_on_other_graphs(self):
        assert not verify_witness(complete_graph(7), 2, chord_n7_f2_witness())

    def test_hypercube_witness_default_is_figure3_split(self):
        witness = hypercube_dimension_cut_witness(3)
        assert witness.left == frozenset({0, 1, 2, 3})
        assert witness.right == frozenset({4, 5, 6, 7})
        assert verify_witness(hypercube(3), 1, witness)

    @pytest.mark.parametrize("dimension", [2, 3, 4])
    @pytest.mark.parametrize("cut_bit", [0, 1])
    def test_every_dimension_cut_is_a_witness(self, dimension, cut_bit):
        witness = hypercube_dimension_cut_witness(dimension, cut_bit=cut_bit)
        assert verify_witness(hypercube(dimension), 1, witness)

    def test_hypercube_witness_rejects_bad_dimension(self):
        with pytest.raises(InvalidParameterError):
            hypercube_dimension_cut_witness(0)


class TestGreedySearch:
    def test_finds_witness_on_infeasible_graphs(self):
        for graph, f in [
            (hypercube(3), 1),
            (undirected_ring(6), 1),
            (butterfly_barbell(4, 1), 1),
        ]:
            witness = greedy_witness_search(graph, f)
            assert witness is not None
            assert verify_witness(graph, f, witness)

    def test_never_reports_witness_on_feasible_graphs(self):
        # Soundness: any witness returned must be genuine, so on a feasible
        # graph the search must return None.
        for graph, f in [
            (complete_graph(4), 1),
            (complete_graph(7), 2),
            (core_network(7, 2), 2),
            (chord_network(5, 1), 1),
        ]:
            assert satisfies_theorem1(graph, f)
            assert greedy_witness_search(graph, f) is None

    def test_negative_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            greedy_witness_search(complete_graph(4), -1)


class TestRandomSearch:
    def test_finds_witness_on_easy_infeasible_graphs(self):
        for graph, f in [(hypercube(3), 1), (undirected_ring(6), 1)]:
            witness = random_witness_search(graph, f, attempts=500, rng=1)
            assert witness is not None
            assert verify_witness(graph, f, witness)

    def test_sound_on_feasible_graphs(self):
        for graph, f in [(complete_graph(7), 2), (core_network(7, 2), 2)]:
            assert random_witness_search(graph, f, attempts=300, rng=2) is None

    def test_agrees_with_exact_checker_verdict(self):
        graph = chord_network(7, 2)
        exact = find_violating_partition(graph, 2)
        randomized = random_witness_search(graph, 2, attempts=2000, rng=3)
        assert exact is not None
        # The random search may need many attempts but must never fabricate a
        # witness; if it finds one, it must verify.
        if randomized is not None:
            assert verify_witness(graph, 2, randomized)

    def test_single_node_graph_returns_none(self):
        from repro.graphs import Digraph

        assert random_witness_search(Digraph(nodes=[0]), 1, attempts=10, rng=0) is None

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            random_witness_search(complete_graph(4), -1)
        with pytest.raises(InvalidParameterError):
            random_witness_search(complete_graph(4), 1, attempts=0)

    def test_determinism_with_seed(self):
        graph = hypercube(3)
        first = random_witness_search(graph, 1, attempts=100, rng=11)
        second = random_witness_search(graph, 1, attempts=100, rng=11)
        assert first == second


#: A 13-node in-regular digraph (f = 2) whose only violating partitions use
#: the one-node fault set {2}.  Node 1's in-neighbours sorted by descending
#: in-degree start [2, 5, ...], so the pre-fix greedy search — which tried
#: only the empty set and the full top-f prefix {2, 5} — returned None here;
#: the intermediate prefix {2} is required.
GREEDY_REGRESSION_EDGES = [
    (0, 2), (0, 3), (0, 5), (0, 6), (0, 12), (1, 3), (1, 4), (2, 0), (2, 1),
    (2, 4), (2, 6), (2, 7), (2, 11), (3, 5), (3, 8), (3, 9), (3, 12), (4, 2),
    (4, 3), (4, 5), (4, 8), (4, 10), (4, 12), (5, 0), (5, 1), (5, 6), (5, 7),
    (5, 8), (5, 9), (5, 10), (5, 11), (6, 1), (6, 3), (6, 4), (6, 5), (6, 7),
    (6, 12), (7, 0), (7, 1), (7, 4), (7, 9), (7, 10), (7, 11), (8, 2), (8, 6),
    (8, 11), (9, 0), (9, 1), (9, 2), (9, 5), (9, 7), (9, 10), (10, 2),
    (10, 4), (10, 7), (10, 8), (10, 9), (10, 11), (11, 3), (11, 6), (11, 8),
    (11, 9), (11, 12), (12, 0), (12, 10),
]


class TestSearchRegressions:
    """Regression tests that fail on the pre-fix witness searches."""

    def test_greedy_finds_intermediate_prefix_fault_set(self):
        from repro.graphs import Digraph

        graph = Digraph(nodes=range(13), edges=GREEDY_REGRESSION_EDGES)
        exact = find_violating_partition(graph, 2)
        assert exact is not None  # the graph genuinely violates Theorem 1
        witness = greedy_witness_search(graph, 2)
        assert witness is not None
        assert verify_witness(graph, 2, witness)
        # The witness needs the intermediate fault-set prefix (|F| = 1 < f).
        assert len(witness.faulty) == 1

    def test_greedy_max_seeds_is_deterministic_and_sound(self):
        from repro.graphs import Digraph

        graph = Digraph(nodes=range(13), edges=GREEDY_REGRESSION_EDGES)
        capped_a = greedy_witness_search(graph, 2, max_seeds=5)
        capped_b = greedy_witness_search(graph, 2, max_seeds=5)
        assert capped_a == capped_b
        if capped_a is not None:
            assert verify_witness(graph, 2, capped_a)
        with pytest.raises(InvalidParameterError):
            greedy_witness_search(graph, 2, max_seeds=0)

    def test_random_search_does_not_burn_attempts_on_duplicates(self):
        # With rng=54 the first three raw samples contain a duplicate
        # (F, bipartition) pair; the pre-fix search burned an attempt on it
        # and returned None at attempts=3.  Skipping the duplicate frees one
        # attempt and the search finds a genuine witness.
        graph = hypercube(3)
        witness = random_witness_search(graph, 1, attempts=3, rng=54)
        assert witness is not None
        assert verify_witness(graph, 1, witness)

    def test_random_search_duplicate_skip_stays_deterministic(self):
        graph = hypercube(3)
        first = random_witness_search(graph, 1, attempts=3, rng=54)
        second = random_witness_search(graph, 1, attempts=3, rng=54)
        assert first == second

    def test_random_search_verifies_via_bitset_view_when_available(self, monkeypatch):
        # Regression: the pre-fix search re-verified every candidate with the
        # slow pure-Python verify_witness even when a bitset view existed.
        import repro.conditions.witnesses as witnesses_module

        def _boom(*args, **kwargs):
            raise AssertionError(
                "verify_witness must not be called when a bitset view exists"
            )

        monkeypatch.setattr(witnesses_module, "verify_witness", _boom)
        graph = hypercube(3)  # n = 8 <= MAX_BITSET_NODES
        witness = random_witness_search(graph, 1, attempts=200, rng=1)
        assert witness is not None
        monkeypatch.undo()
        assert verify_witness(graph, 1, witness)

    def test_random_search_falls_back_to_python_verify_beyond_bitset_cap(
        self, monkeypatch
    ):
        import repro.conditions.witnesses as witnesses_module

        calls = {"count": 0}
        original = witnesses_module.verify_witness

        def _spy(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(witnesses_module, "verify_witness", _spy)
        graph = undirected_ring(70)  # n = 70 > MAX_BITSET_NODES
        witness = random_witness_search(graph, 1, attempts=80, rng=3)
        assert witness is not None
        assert calls["count"] > 0
        assert verify_witness(graph, 1, witness)
