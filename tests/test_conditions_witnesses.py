"""Unit tests for canonical and heuristic witness search."""

from __future__ import annotations

import pytest

from repro.conditions import (
    chord_n7_f2_witness,
    find_violating_partition,
    greedy_witness_search,
    hypercube_dimension_cut_witness,
    random_witness_search,
    satisfies_theorem1,
    verify_witness,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import (
    butterfly_barbell,
    chord_network,
    complete_graph,
    core_network,
    hypercube,
    undirected_ring,
)


class TestCanonicalWitnesses:
    def test_chord_witness_matches_paper(self):
        witness = chord_n7_f2_witness()
        assert witness.faulty == frozenset({5, 6})
        assert witness.left == frozenset({0, 2})
        assert witness.right == frozenset({1, 3, 4})
        assert witness.center == frozenset()
        assert verify_witness(chord_network(7, 2), 2, witness)

    def test_chord_witness_invalid_on_other_graphs(self):
        assert not verify_witness(complete_graph(7), 2, chord_n7_f2_witness())

    def test_hypercube_witness_default_is_figure3_split(self):
        witness = hypercube_dimension_cut_witness(3)
        assert witness.left == frozenset({0, 1, 2, 3})
        assert witness.right == frozenset({4, 5, 6, 7})
        assert verify_witness(hypercube(3), 1, witness)

    @pytest.mark.parametrize("dimension", [2, 3, 4])
    @pytest.mark.parametrize("cut_bit", [0, 1])
    def test_every_dimension_cut_is_a_witness(self, dimension, cut_bit):
        witness = hypercube_dimension_cut_witness(dimension, cut_bit=cut_bit)
        assert verify_witness(hypercube(dimension), 1, witness)

    def test_hypercube_witness_rejects_bad_dimension(self):
        with pytest.raises(InvalidParameterError):
            hypercube_dimension_cut_witness(0)


class TestGreedySearch:
    def test_finds_witness_on_infeasible_graphs(self):
        for graph, f in [
            (hypercube(3), 1),
            (undirected_ring(6), 1),
            (butterfly_barbell(4, 1), 1),
        ]:
            witness = greedy_witness_search(graph, f)
            assert witness is not None
            assert verify_witness(graph, f, witness)

    def test_never_reports_witness_on_feasible_graphs(self):
        # Soundness: any witness returned must be genuine, so on a feasible
        # graph the search must return None.
        for graph, f in [
            (complete_graph(4), 1),
            (complete_graph(7), 2),
            (core_network(7, 2), 2),
            (chord_network(5, 1), 1),
        ]:
            assert satisfies_theorem1(graph, f)
            assert greedy_witness_search(graph, f) is None

    def test_negative_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            greedy_witness_search(complete_graph(4), -1)


class TestRandomSearch:
    def test_finds_witness_on_easy_infeasible_graphs(self):
        for graph, f in [(hypercube(3), 1), (undirected_ring(6), 1)]:
            witness = random_witness_search(graph, f, attempts=500, rng=1)
            assert witness is not None
            assert verify_witness(graph, f, witness)

    def test_sound_on_feasible_graphs(self):
        for graph, f in [(complete_graph(7), 2), (core_network(7, 2), 2)]:
            assert random_witness_search(graph, f, attempts=300, rng=2) is None

    def test_agrees_with_exact_checker_verdict(self):
        graph = chord_network(7, 2)
        exact = find_violating_partition(graph, 2)
        randomized = random_witness_search(graph, 2, attempts=2000, rng=3)
        assert exact is not None
        # The random search may need many attempts but must never fabricate a
        # witness; if it finds one, it must verify.
        if randomized is not None:
            assert verify_witness(graph, 2, randomized)

    def test_single_node_graph_returns_none(self):
        from repro.graphs import Digraph

        assert random_witness_search(Digraph(nodes=[0]), 1, attempts=10, rng=0) is None

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            random_witness_search(complete_graph(4), -1)
        with pytest.raises(InvalidParameterError):
            random_witness_search(complete_graph(4), 1, attempts=0)

    def test_determinism_with_seed(self):
        graph = hypercube(3)
        first = random_witness_search(graph, 1, attempts=100, rng=11)
        second = random_witness_search(graph, 1, attempts=100, rng=11)
        assert first == second
