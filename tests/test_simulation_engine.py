"""Unit and integration tests for the synchronous engine."""

from __future__ import annotations

import pytest

from repro.adversary import (
    ExtremePushStrategy,
    PassiveStrategy,
    StaticValueStrategy,
)
from repro.adversary.base import AdversaryContext, ByzantineStrategy
from repro.algorithms import LinearAverageRule, TrimmedMeanRule
from repro.exceptions import (
    FaultBudgetExceededError,
    InvalidParameterError,
    SimulationError,
    ValidityViolationError,
)
from repro.graphs import complete_graph, core_network, star_graph
from repro.simulation import (
    SimulationConfig,
    SynchronousEngine,
    linear_ramp_inputs,
    run_consensus,
    run_synchronous,
    uniform_random_inputs,
)


class TestEngineConstruction:
    def test_unknown_faulty_node_rejected(self):
        with pytest.raises(InvalidParameterError):
            SynchronousEngine(complete_graph(4), TrimmedMeanRule(1), faulty={9})

    def test_fault_budget_enforced(self):
        with pytest.raises(FaultBudgetExceededError):
            SynchronousEngine(complete_graph(7), TrimmedMeanRule(1), faulty={0, 1})

    def test_all_faulty_rejected(self):
        with pytest.raises(InvalidParameterError):
            SynchronousEngine(complete_graph(1), TrimmedMeanRule(0), faulty={0})

    def test_precondition_checked_on_fault_free_nodes(self):
        # Leaves of the star have in-degree 1 < 2f, so the rule's structural
        # precondition fails at the fault-free leaves even when one leaf is
        # marked faulty.
        from repro.exceptions import AlgorithmPreconditionError

        with pytest.raises(AlgorithmPreconditionError):
            SynchronousEngine(star_graph(5), TrimmedMeanRule(1), faulty={1})

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            SimulationConfig(max_rounds=-1)
        with pytest.raises(InvalidParameterError):
            SimulationConfig(tolerance=-1.0)

    def test_properties_exposed(self):
        engine = SynchronousEngine(complete_graph(4), TrimmedMeanRule(1), faulty={3})
        assert engine.faulty == frozenset({3})
        assert engine.fault_free == frozenset({0, 1, 2})
        assert engine.rule.f == 1
        assert engine.graph.number_of_nodes == 4
        assert engine.config.max_rounds == 500


class TestSingleStep:
    def test_step_matches_hand_computation(self):
        # Complete graph on 4 nodes, f = 1, no faults. Node 0 receives
        # {0.4, 0.6, 1.0}, trims to {0.6}, averages with own 0.0 -> 0.3.
        graph = complete_graph(4)
        engine = SynchronousEngine(graph, TrimmedMeanRule(1))
        state = {0: 0.0, 1: 0.4, 2: 0.6, 3: 1.0}
        new_state = engine.step(state, round_index=1)
        assert new_state[0] == pytest.approx((0.0 + 0.6) / 2)
        # Node 3 receives {0.0, 0.4, 0.6}, trims 0.0 and 0.6, keeps 0.4.
        assert new_state[3] == pytest.approx((1.0 + 0.4) / 2)

    def test_step_uses_adversary_values_per_edge(self):
        graph = complete_graph(3)

        class TwoFaced(ByzantineStrategy):
            name = "two-faced"

            def outgoing_values(self, node, context):
                return {1: -100.0, 2: +100.0}

        engine = SynchronousEngine(
            graph, LinearAverageRule(1), faulty={0}, adversary=TwoFaced()
        )
        state = {0: 0.0, 1: 10.0, 2: 10.0}
        new_state = engine.step(state, 1)
        # Node 1 averaged {-100 (from 0), 10 (from 2), 10 (own)}.
        assert new_state[1] == pytest.approx(-80.0 / 3)
        # Node 2 averaged {+100, 10, 10}.
        assert new_state[2] == pytest.approx(120.0 / 3)

    def test_missing_adversary_edge_value_raises(self):
        graph = complete_graph(3)

        class Sloppy(ByzantineStrategy):
            name = "sloppy"

            def outgoing_values(self, node, context):
                return {1: 0.0}  # forgets node 2

        engine = SynchronousEngine(
            graph, TrimmedMeanRule(1), faulty={0}, adversary=Sloppy()
        )
        with pytest.raises(SimulationError):
            engine.step({0: 0.0, 1: 0.0, 2: 0.0}, 1)


class TestRun:
    def test_fault_free_convergence_on_complete_graph(self):
        graph = complete_graph(5)
        outcome = run_synchronous(
            graph,
            TrimmedMeanRule(0),
            linear_ramp_inputs(graph.nodes),
            tolerance=1e-9,
        )
        assert outcome.converged
        assert outcome.validity_ok
        assert outcome.final_spread <= 1e-9
        # The consensus value must lie inside the input hull.
        assert all(0.0 <= value <= 1.0 for value in outcome.final_values.values())

    def test_missing_inputs_rejected(self):
        graph = complete_graph(3)
        engine = SynchronousEngine(graph, TrimmedMeanRule(0))
        with pytest.raises(InvalidParameterError):
            engine.run({0: 1.0})

    def test_zero_initial_spread_converges_immediately(self):
        graph = complete_graph(4)
        outcome = run_synchronous(
            graph, TrimmedMeanRule(1), {node: 2.5 for node in graph.nodes}
        )
        assert outcome.converged
        assert outcome.rounds_executed == 0
        assert outcome.initial_spread == 0.0

    def test_history_recorded_and_optional(self):
        graph = complete_graph(4)
        inputs = linear_ramp_inputs(graph.nodes)
        with_history = run_synchronous(graph, TrimmedMeanRule(1), inputs)
        without_history = run_synchronous(
            graph, TrimmedMeanRule(1), inputs, record_history=False
        )
        assert len(with_history.history) == with_history.rounds_executed + 1
        assert without_history.history == tuple()

    def test_validity_and_convergence_under_attack(self):
        graph = core_network(7, 2)
        outcome = run_synchronous(
            graph,
            TrimmedMeanRule(2),
            uniform_random_inputs(graph.nodes, rng=0),
            faulty=frozenset({5, 6}),
            adversary=ExtremePushStrategy(delta=10.0),
            max_rounds=400,
            tolerance=1e-8,
        )
        assert outcome.converged
        assert outcome.validity_ok

    def test_passive_adversary_equals_fault_free_run(self):
        graph = complete_graph(5)
        inputs = linear_ramp_inputs(graph.nodes)
        honest = run_synchronous(graph, TrimmedMeanRule(1), inputs, max_rounds=30)
        passive = run_synchronous(
            graph,
            TrimmedMeanRule(1),
            inputs,
            faulty=frozenset({2}),
            adversary=PassiveStrategy(),
            max_rounds=30,
        )
        # The fault-free nodes' trajectories coincide because the "faulty"
        # node behaves exactly like a correct node.
        for record_honest, record_passive in zip(honest.history, passive.history):
            for node in (0, 1, 3, 4):
                assert record_honest.values[node] == pytest.approx(
                    record_passive.values[node]
                )

    def test_strict_validity_raises_for_linear_average_under_attack(self):
        graph = complete_graph(5)
        with pytest.raises(ValidityViolationError):
            run_synchronous(
                graph,
                LinearAverageRule(1),
                linear_ramp_inputs(graph.nodes),
                faulty=frozenset({0}),
                adversary=StaticValueStrategy(1_000.0),
                strict_validity=True,
                max_rounds=10,
            )

    def test_trimmed_mean_validity_even_on_infeasible_graph(self):
        # On n = 3f the algorithm cannot converge, but Theorem 2's validity
        # argument still applies: the interval never expands.
        graph = complete_graph(6)
        outcome = run_synchronous(
            graph,
            TrimmedMeanRule(2),
            linear_ramp_inputs(graph.nodes),
            faulty=frozenset({0, 1}),
            adversary=ExtremePushStrategy(delta=5.0),
            max_rounds=50,
        )
        assert outcome.validity_ok
        assert not outcome.converged

    def test_stop_on_convergence_false_runs_full_horizon(self):
        graph = complete_graph(4)
        outcome = run_synchronous(
            graph,
            TrimmedMeanRule(1),
            linear_ramp_inputs(graph.nodes),
            max_rounds=25,
            stop_on_convergence=False,
        )
        assert outcome.rounds_executed == 25
        assert outcome.converged  # judged at the end of the horizon


class TestRunConsensusFacade:
    def test_defaults_converge_on_core_network(self):
        outcome = run_consensus(core_network(7, 2), f=2, seed=3)
        assert outcome.converged and outcome.validity_ok

    def test_f0_runs_without_adversary(self):
        outcome = run_consensus(complete_graph(5), f=0, seed=1)
        assert outcome.converged

    def test_mismatched_rule_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_consensus(complete_graph(7), f=2, rule=TrimmedMeanRule(1))

    def test_negative_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_consensus(complete_graph(4), f=-1)

    def test_asynchronous_path(self):
        outcome = run_consensus(
            complete_graph(6), f=1, synchronous=False, max_delay=2, seed=4,
            max_rounds=800, tolerance=1e-5,
        )
        assert outcome.converged
        assert outcome.validity_ok

    def test_explicit_inputs_and_faulty(self):
        graph = complete_graph(7)
        outcome = run_consensus(
            graph,
            f=2,
            inputs=linear_ramp_inputs(graph.nodes),
            faulty=frozenset({0, 1}),
            adversary=StaticValueStrategy(99.0),
            seed=None,
        )
        assert outcome.converged
        assert all(0.0 <= value <= 1.0 for value in outcome.final_values.values())
