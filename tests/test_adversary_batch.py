"""Parity harness for the batch-native Byzantine strategy library.

Every native :class:`~repro.adversary.vectorized.BatchStrategy` must be

1. **bit-exact** with its :class:`~repro.adversary.vectorized.ScalarStrategyAdapter`
   counterpart at ``B = 1`` — identical trajectories (``==`` on floats, never
   ``approx``) on the synchronous :class:`VectorizedEngine`, the tiled CSR
   :class:`SparseEngine`, and the partially asynchronous
   :class:`VectorizedAsyncEngine`;
2. **row-for-row reproducible** at ``B = 64``: row ``b`` of a batch equals an
   independent ``B = 1`` run of row ``b``'s inputs (and, for randomized
   strategies, row ``b``'s spawned child stream).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    BatchBroadcastConsistentWrapper,
    BatchExtremePushStrategy,
    BatchFrozenValueStrategy,
    BatchRandomNoiseStrategy,
    BatchSplitBrainStrategy,
    BatchStaticValueStrategy,
    BroadcastConsistentStrategy,
    ExtremePushStrategy,
    FrozenValueStrategy,
    RandomNoiseStrategy,
    ScalarStrategyAdapter,
    SplitBrainStrategy,
    StaticValueStrategy,
)
from repro.algorithms import TrimmedMeanRule
from repro.conditions import chord_n7_f2_witness
from repro.exceptions import InvalidParameterError
from repro.graphs import chord_network, core_network
from repro.simulation import (
    SimulationConfig,
    SparseEngine,
    VectorizedAsyncEngine,
    spawn_row_generators,
)
from repro.simulation.vectorized import VectorizedEngine, random_input_matrix

SEED = 123


def _spawned(batch: int) -> list[np.random.Generator]:
    return spawn_row_generators(SEED, batch)


def _strategy_pair(kind: str, batch: int, row: int | None = None):
    """Return ``(native BatchStrategy, adapter BatchStrategy)`` for one kind.

    ``row=None`` builds the pair for a full batch of ``batch`` rows (per-row
    spawned streams / factory mode); an integer builds the ``B = 1`` pair for
    that row, seeded with the identical child stream on both sides.
    """
    witness = chord_n7_f2_witness()
    if kind == "static":
        return (
            BatchStaticValueStrategy(250.0),
            ScalarStrategyAdapter(strategy=StaticValueStrategy(250.0)),
        )
    if kind == "frozen":
        return (
            BatchFrozenValueStrategy(),
            ScalarStrategyAdapter(factory=FrozenValueStrategy),
        )
    if kind == "split-brain":
        return (
            BatchSplitBrainStrategy(witness, 0.0, 1.0, margin=0.5),
            ScalarStrategyAdapter(
                strategy=SplitBrainStrategy(witness, 0.0, 1.0, margin=0.5)
            ),
        )
    if kind == "noise":
        if row is None:
            generators = _spawned(batch)
            scalar_streams = iter(_spawned(batch))
            return (
                BatchRandomNoiseStrategy(-5.0, 5.0, rng=generators),
                ScalarStrategyAdapter(
                    factory=lambda: RandomNoiseStrategy(
                        -5.0, 5.0, rng=next(scalar_streams)
                    )
                ),
            )
        return (
            BatchRandomNoiseStrategy(-5.0, 5.0, rng=[_spawned(batch)[row]]),
            ScalarStrategyAdapter(
                strategy=RandomNoiseStrategy(-5.0, 5.0, rng=_spawned(batch)[row])
            ),
        )
    if kind == "broadcast-extreme":
        return (
            BatchBroadcastConsistentWrapper(BatchExtremePushStrategy(2.0)),
            ScalarStrategyAdapter(
                strategy=BroadcastConsistentStrategy(ExtremePushStrategy(2.0))
            ),
        )
    if kind == "broadcast-noise":
        if row is None:
            generators = _spawned(batch)
            scalar_streams = iter(_spawned(batch))
            return (
                BatchBroadcastConsistentWrapper(
                    BatchRandomNoiseStrategy(-3.0, 3.0, rng=generators)
                ),
                ScalarStrategyAdapter(
                    factory=lambda: BroadcastConsistentStrategy(
                        RandomNoiseStrategy(-3.0, 3.0, rng=next(scalar_streams))
                    )
                ),
            )
        return (
            BatchBroadcastConsistentWrapper(
                BatchRandomNoiseStrategy(-3.0, 3.0, rng=[_spawned(batch)[row]])
            ),
            ScalarStrategyAdapter(
                strategy=BroadcastConsistentStrategy(
                    RandomNoiseStrategy(-3.0, 3.0, rng=_spawned(batch)[row])
                )
            ),
        )
    raise AssertionError(kind)


KINDS = [
    "static",
    "frozen",
    "split-brain",
    "noise",
    "broadcast-extreme",
    "broadcast-noise",
]


def _scenario(kind: str):
    """Return ``(graph, rule, faulty)``: the chord counter-example for the
    split-brain attack (its witness pins the fault set), a core network for
    everything else."""
    if kind == "split-brain":
        witness = chord_n7_f2_witness()
        return chord_network(7, 2), TrimmedMeanRule(2), witness.faulty
    return core_network(8, 2), TrimmedMeanRule(2), frozenset({6, 7})


def _make_engine(engine_kind: str, graph, rule, faulty, adversary, rounds: int):
    config = SimulationConfig(
        max_rounds=rounds,
        tolerance=0.0,
        record_history=False,
        stop_on_convergence=False,
    )
    if engine_kind == "sync":
        return VectorizedEngine(
            graph, rule, faulty=faulty, adversary=adversary, config=config
        )
    if engine_kind == "sparse":
        # Tiny tile budget: exercises the tiled kernel path under every
        # strategy kind while the full-batch adversary contract holds.
        return SparseEngine(
            graph,
            rule,
            faulty=faulty,
            adversary=adversary,
            config=config,
            max_plane_bytes=2048,
        )
    return VectorizedAsyncEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=adversary,
        config=config,
        max_delay=2,
        update_probability=1.0,
    )


def _run_batch(engine_kind: str, engine, matrix):
    if engine_kind in ("sync", "sparse"):
        return engine.run_batch(matrix)
    # Engine-level delay draws follow the same spawned-stream contract.
    return engine.run_batch(matrix, rng=spawn_row_generators(7, matrix.shape[0]))


@pytest.mark.parametrize("engine_kind", ["sync", "sparse", "async"])
@pytest.mark.parametrize("kind", KINDS)
def test_native_bit_exact_with_adapter_at_b1(kind, engine_kind):
    """B=1: native trajectory == adapter trajectory, float-for-float."""
    graph, rule, faulty = _scenario(kind)
    native, adapter = _strategy_pair(kind, batch=1, row=0)
    rounds = 20
    engines = [
        _make_engine(engine_kind, graph, rule, faulty, adversary, rounds)
        for adversary in (native, adapter)
    ]
    matrix = random_input_matrix(engines[0].nodes, 1, rng=SEED)
    outcomes = [
        _run_batch(engine_kind, engine, matrix.copy()) for engine in engines
    ]
    assert np.array_equal(outcomes[0].final_states, outcomes[1].final_states)
    assert np.array_equal(outcomes[0].validity_ok, outcomes[1].validity_ok)
    assert np.array_equal(outcomes[0].final_spread, outcomes[1].final_spread)


@pytest.mark.parametrize("engine_kind", ["sync", "sparse", "async"])
@pytest.mark.parametrize("kind", KINDS)
def test_native_rows_reproducible_at_b64(kind, engine_kind):
    """B=64: every row equals the B=1 run seeded with that row's stream."""
    batch = 64
    graph, rule, faulty = _scenario(kind)
    native, _ = _strategy_pair(kind, batch=batch)
    rounds = 8
    engine = _make_engine(engine_kind, graph, rule, faulty, native, rounds)
    matrix = random_input_matrix(engine.nodes, batch, rng=SEED)
    outcome = _run_batch(engine_kind, engine, matrix)

    for row in [0, 1, 31, 63]:
        row_native, _ = _strategy_pair(kind, batch=batch, row=row)
        single = _make_engine(engine_kind, graph, rule, faulty, row_native, rounds)
        if engine_kind in ("sync", "sparse"):
            single_outcome = single.run_batch(matrix[row : row + 1].copy())
        else:
            single_outcome = single.run_batch(
                matrix[row : row + 1].copy(),
                rng=[spawn_row_generators(7, batch)[row]],
            )
        assert np.array_equal(
            single_outcome.final_states[0], outcome.final_states[row]
        ), f"row {row} diverged"
        assert single_outcome.final_spread[0] == outcome.final_spread[row]
        assert bool(single_outcome.validity_ok[0]) == bool(outcome.validity_ok[row])


class TestNativeStrategyUnits:
    def test_static_fills_channels_and_nominals(self):
        graph = core_network(7, 2)
        engine = VectorizedEngine(
            graph,
            TrimmedMeanRule(2),
            faulty={5, 6},
            adversary=BatchStaticValueStrategy(9.0),
            config=SimulationConfig(max_rounds=3, stop_on_convergence=False),
        )
        matrix = random_input_matrix(engine.nodes, 4, rng=0)
        stepped = engine.step_matrix(matrix, 1)
        faulty_cols = [i for i, node in enumerate(engine.nodes) if node in {5, 6}]
        assert (stepped[:, faulty_cols] == 9.0).all()

    def test_frozen_rejects_batch_resize(self):
        graph = core_network(7, 2)
        strategy = BatchFrozenValueStrategy()
        engine = VectorizedEngine(
            graph,
            TrimmedMeanRule(2),
            faulty={5, 6},
            adversary=strategy,
            config=SimulationConfig(max_rounds=2, stop_on_convergence=False),
        )
        engine.run_batch(random_input_matrix(engine.nodes, 4, rng=0))
        with pytest.raises(InvalidParameterError):
            engine.run_batch(random_input_matrix(engine.nodes, 8, rng=0))

    def test_noise_rejects_batch_resize(self):
        graph = core_network(7, 2)
        strategy = BatchRandomNoiseStrategy(-1.0, 1.0, rng=0)
        engine = VectorizedEngine(
            graph,
            TrimmedMeanRule(2),
            faulty={5, 6},
            adversary=strategy,
            config=SimulationConfig(max_rounds=2, stop_on_convergence=False),
        )
        engine.run_batch(random_input_matrix(engine.nodes, 4, rng=0))
        with pytest.raises(InvalidParameterError):
            engine.run_batch(random_input_matrix(engine.nodes, 8, rng=0))

    def test_noise_invalid_bounds(self):
        with pytest.raises(InvalidParameterError):
            BatchRandomNoiseStrategy(2.0, -2.0)

    def test_split_brain_invalid_parameters(self):
        witness = chord_n7_f2_witness()
        with pytest.raises(InvalidParameterError):
            BatchSplitBrainStrategy(witness, 1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            BatchSplitBrainStrategy(witness, 0.0, 1.0, margin=0.0)

    def test_split_brain_recommended_inputs_match_scalar(self):
        witness = chord_n7_f2_witness()
        native = BatchSplitBrainStrategy(witness, 0.0, 1.0)
        scalar = SplitBrainStrategy(witness, 0.0, 1.0)
        assert native.recommended_inputs() == scalar.recommended_inputs()

    def test_broadcast_wrapper_equalizes_sender_channels(self):
        graph = core_network(8, 2)
        faulty = frozenset({6, 7})
        wrapper = BatchBroadcastConsistentWrapper(BatchExtremePushStrategy(1.0))
        engine = VectorizedEngine(
            graph,
            TrimmedMeanRule(2),
            faulty=faulty,
            adversary=wrapper,
            config=SimulationConfig(max_rounds=2, stop_on_convergence=False),
        )
        matrix = random_input_matrix(engine.nodes, 3, rng=1)
        context = engine._context(matrix, 1)
        values = wrapper.edge_values(context)
        by_sender: dict[object, list[int]] = {}
        for position, (sender, _receiver) in enumerate(context.edge_nodes):
            by_sender.setdefault(sender, []).append(position)
        for channels in by_sender.values():
            column = values[:, channels]
            assert (column == column[:, :1]).all()
        assert wrapper.name == "broadcast(batch-extreme-push)"
        assert wrapper.inner.name == "batch-extreme-push"
