"""Unit tests for the deterministic graph-family generators."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs import (
    butterfly_barbell,
    chord_network,
    complete_bipartite_graph,
    complete_graph,
    core_network,
    directed_path,
    directed_ring,
    hypercube,
    hypercube_dimension_cut,
    is_complete,
    ring_lattice,
    star_graph,
    undirected_ring,
    union,
    wheel_graph,
    with_extra_edges,
    without_edges,
)


class TestCompleteGraphs:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_complete_graph_edge_count(self, n):
        graph = complete_graph(n)
        assert graph.number_of_nodes == n
        assert graph.number_of_edges == n * (n - 1)
        assert is_complete(graph)

    def test_complete_graph_invalid(self):
        with pytest.raises(InvalidParameterError):
            complete_graph(0)

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(2, 3)
        assert graph.number_of_nodes == 5
        # 2 * 3 cross pairs, both directions.
        assert graph.number_of_edges == 12
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(0, 2) and graph.has_edge(2, 0)


class TestCoreNetwork:
    def test_structure_matches_definition_4(self):
        f = 2
        n = 9
        graph = core_network(n, f)
        clique = range(2 * f + 1)
        # (i) the 2f+1 clique is bidirectionally complete.
        for i in clique:
            for j in clique:
                if i != j:
                    assert graph.has_edge(i, j) and graph.has_edge(j, i)
        # (ii) every outside node links to all clique nodes, both ways.
        for outside in range(2 * f + 1, n):
            for member in clique:
                assert graph.has_edge(outside, member)
                assert graph.has_edge(member, outside)
        # outside nodes have no edges among themselves.
        for a in range(2 * f + 1, n):
            for b in range(2 * f + 1, n):
                if a != b:
                    assert not graph.has_edge(a, b)

    def test_core_network_is_symmetric(self):
        assert core_network(7, 2).is_symmetric()

    def test_core_network_minimum_size(self):
        # n = 3f + 1 is the smallest allowed.
        graph = core_network(4, 1)
        assert graph.number_of_nodes == 4

    @pytest.mark.parametrize("n,f", [(6, 2), (3, 1), (9, 3)])
    def test_core_network_rejects_n_le_3f(self, n, f):
        with pytest.raises(InvalidParameterError):
            core_network(n, f)

    def test_core_network_f0_is_star_like(self):
        # f = 0: the "clique" is a single hub node connected to everyone.
        graph = core_network(4, 0)
        assert graph.in_degree(0) == 3
        for leaf in (1, 2, 3):
            assert graph.has_edge(leaf, 0) and graph.has_edge(0, leaf)


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_size_and_regular_degree(self, d):
        graph = hypercube(d)
        assert graph.number_of_nodes == 2**d
        for node in graph.nodes:
            assert graph.in_degree(node) == d
            assert graph.out_degree(node) == d

    def test_adjacency_is_single_bit_flip(self):
        graph = hypercube(3)
        for source, target in graph.edges:
            assert bin(source ^ target).count("1") == 1

    def test_dimension_cut_matches_figure_3(self):
        low, high = hypercube_dimension_cut(3, cut_bit=2)
        assert low == frozenset({0, 1, 2, 3})
        assert high == frozenset({4, 5, 6, 7})

    def test_dimension_cut_each_node_one_cross_neighbor(self):
        graph = hypercube(3)
        low, high = hypercube_dimension_cut(3, cut_bit=1)
        for node in low:
            assert graph.in_degree_within(node, high) == 1
        for node in high:
            assert graph.in_degree_within(node, low) == 1

    def test_dimension_cut_invalid_bit(self):
        with pytest.raises(InvalidParameterError):
            hypercube_dimension_cut(3, cut_bit=3)


class TestChordNetwork:
    def test_definition_5_edges(self):
        graph = chord_network(7, 2)
        for node in range(7):
            expected = {(node + k) % 7 for k in range(1, 6)}
            assert graph.out_neighbors(node) == frozenset(expected)

    def test_chord_n4_f1_is_complete(self):
        assert is_complete(chord_network(4, 1))

    def test_chord_in_degree_equals_reach(self):
        graph = chord_network(9, 2)
        for node in graph.nodes:
            assert graph.in_degree(node) == 5

    def test_chord_is_directed_not_symmetric(self):
        graph = chord_network(9, 1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert not graph.is_symmetric()

    def test_chord_reach_capped_at_n_minus_1(self):
        # 2f + 1 >= n collapses to the complete digraph without self-loops.
        graph = chord_network(5, 3)
        assert is_complete(graph)


class TestStandardFamilies:
    def test_directed_ring(self):
        graph = directed_ring(5)
        assert graph.number_of_edges == 5
        assert graph.has_edge(4, 0)

    def test_directed_ring_too_small(self):
        with pytest.raises(InvalidParameterError):
            directed_ring(1)

    def test_undirected_ring(self):
        graph = undirected_ring(4)
        assert graph.number_of_edges == 8
        assert graph.is_symmetric()

    def test_directed_path(self):
        graph = directed_path(4)
        assert graph.number_of_edges == 3
        assert graph.in_degree(0) == 0

    def test_star(self):
        graph = star_graph(5)
        assert graph.out_degree(0) == 4
        assert graph.in_degree(0) == 4
        assert graph.in_degree(3) == 1

    def test_wheel(self):
        graph = wheel_graph(5)
        assert graph.in_degree(0) == 4
        for node in range(1, 5):
            assert graph.in_degree(node) == 3

    def test_ring_lattice(self):
        graph = ring_lattice(8, 2)
        for node in graph.nodes:
            assert graph.in_degree(node) == 4
        assert graph.is_symmetric()

    def test_ring_lattice_rejects_too_dense(self):
        with pytest.raises(InvalidParameterError):
            ring_lattice(6, 3)

    def test_barbell(self):
        graph = butterfly_barbell(4, 2)
        assert graph.number_of_nodes == 8
        # clique edges both ways
        assert graph.has_edge(0, 3) and graph.has_edge(3, 0)
        # bridges 0<->4 and 1<->5
        assert graph.has_edge(0, 4) and graph.has_edge(5, 1)
        assert not graph.has_edge(2, 6)

    def test_barbell_bridge_too_wide(self):
        with pytest.raises(InvalidParameterError):
            butterfly_barbell(3, 4)


class TestCompositionHelpers:
    def test_union(self):
        first = complete_graph(3)
        second = directed_ring(5)
        combined = union(first, second)
        assert combined.number_of_nodes == 5
        assert combined.has_edge(0, 2)  # from complete graph
        assert combined.has_edge(4, 0)  # from ring

    def test_with_and_without_edges(self):
        graph = directed_ring(4)
        augmented = with_extra_edges(graph, [(0, 2)])
        assert augmented.has_edge(0, 2)
        assert not graph.has_edge(0, 2)
        reduced = without_edges(augmented, [(0, 2), (0, 1)])
        assert not reduced.has_edge(0, 2)
        assert not reduced.has_edge(0, 1)
