"""Unit tests for the random graph generators (determinism and structure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs import (
    erdos_renyi_digraph,
    erdos_renyi_symmetric,
    is_complete,
    k_in_regular_digraph,
    perturb_with_edge_removals,
    random_core_like_network,
    random_spanning_strongly_connected,
    is_strongly_connected,
)
from repro.conditions import check_feasibility


class TestErdosRenyi:
    def test_p_zero_has_no_edges(self):
        graph = erdos_renyi_digraph(10, 0.0, rng=1)
        assert graph.number_of_edges == 0
        assert graph.number_of_nodes == 10

    def test_p_one_is_complete(self):
        graph = erdos_renyi_digraph(6, 1.0, rng=1)
        assert is_complete(graph)

    def test_seed_determinism(self):
        first = erdos_renyi_digraph(12, 0.3, rng=42)
        second = erdos_renyi_digraph(12, 0.3, rng=42)
        assert first == second

    def test_different_seeds_differ(self):
        first = erdos_renyi_digraph(12, 0.3, rng=1)
        second = erdos_renyi_digraph(12, 0.3, rng=2)
        assert first != second

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi_digraph(5, 1.5)

    def test_symmetric_variant_is_symmetric(self):
        graph = erdos_renyi_symmetric(10, 0.4, rng=3)
        assert graph.is_symmetric()

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(7)
        graph = erdos_renyi_digraph(8, 0.5, rng=rng)
        assert graph.number_of_nodes == 8


class TestKInRegular:
    @pytest.mark.parametrize("k", [0, 1, 3, 7])
    def test_exact_in_degree(self, k):
        graph = k_in_regular_digraph(8, k, rng=5)
        for node in graph.nodes:
            assert graph.in_degree(node) == k

    def test_k_too_large_rejected(self):
        with pytest.raises(InvalidParameterError):
            k_in_regular_digraph(5, 5)

    def test_no_self_loops(self):
        graph = k_in_regular_digraph(6, 3, rng=0)
        for source, target in graph.edges:
            assert source != target


class TestCoreLikeAndStronglyConnected:
    def test_core_like_network_remains_feasible(self):
        # Extra edges never break the condition (monotone under addition).
        graph = random_core_like_network(8, 2, extra_edge_probability=0.5, rng=9)
        assert check_feasibility(graph, 2).satisfied

    def test_spanning_strongly_connected(self):
        graph = random_spanning_strongly_connected(9, extra_edges=4, rng=11)
        assert is_strongly_connected(graph)
        assert graph.number_of_edges >= 9

    def test_spanning_extra_edges_capped(self):
        graph = random_spanning_strongly_connected(4, extra_edges=1000, rng=2)
        # At most n(n-1) edges can exist.
        assert graph.number_of_edges <= 12


class TestPerturbation:
    def test_removals_reduce_edge_count(self):
        base = erdos_renyi_digraph(10, 0.8, rng=4)
        removed = perturb_with_edge_removals(base, 5, rng=4)
        assert removed.number_of_edges == base.number_of_edges - 5
        assert base.number_of_edges == len(base.edges)  # base untouched

    def test_removals_beyond_edge_count(self):
        base = erdos_renyi_digraph(5, 0.3, rng=4)
        removed = perturb_with_edge_removals(base, 10_000, rng=4)
        assert removed.number_of_edges == 0

    def test_zero_removals_identity(self):
        base = erdos_renyi_digraph(5, 0.5, rng=4)
        assert perturb_with_edge_removals(base, 0, rng=1) == base

    def test_negative_removals_rejected(self):
        base = erdos_renyi_digraph(5, 0.5, rng=4)
        with pytest.raises(InvalidParameterError):
            perturb_with_edge_removals(base, -1)
