"""Cross-engine property/fuzz harness for the dynamic-topology axis.

Each case derives an entire *dynamic* scenario — graph family, fault set,
rule, adversary, batch size, tile budget, round count, **and topology
schedule** (periodic edge outages, seeded random edge up/down, periodic or
random churn, or their AND-composition) — from a single integer seed, then:

1. runs the same batch through the dense
   :class:`~repro.simulation.vectorized.VectorizedEngine` and the CSR
   :class:`~repro.simulation.sparse.SparseEngine` under deep copies of the
   same schedule and requires every :class:`BatchOutcome` array to match
   exactly (``np.array_equal``, never ``allclose``); and
2. for scalar-expressible adversaries, replays one batch row through the
   scalar :class:`~repro.simulation.engine.SynchronousEngine` in lockstep
   with a fresh dense engine
   (:func:`~repro.simulation.vectorized.cross_check_engines` with the
   schedule) and requires the full trajectory to be bit-identical.

The batch-native :class:`~repro.adversary.vectorized.BatchAdaptiveStrategy`
(greedy and 1-lookahead) has no scalar counterpart, so its seeds exercise
the dense/sparse pair only — it is deterministic, which is what makes it
fuzzable at all.

The first :data:`FAST_CASES` seeds run in the default suite; the remaining
seeds up to :data:`TOTAL_CASES` carry the ``slow`` marker (excluded by
``make test-fast``).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.adversary import (
    BatchAdaptiveStrategy,
    BatchExtremePushStrategy,
    BatchFrozenValueStrategy,
    BatchRandomNoiseStrategy,
    BatchStaticValueStrategy,
    ExtremePushStrategy,
    StaticValueStrategy,
)
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.graphs import (
    complete_graph,
    core_network,
    k_in_regular_digraph,
    random_core_like_network,
    ring_lattice,
)
from repro.simulation import (
    ComposedSchedule,
    PeriodicChurnSchedule,
    PeriodicEdgeSchedule,
    RandomChurnSchedule,
    RandomEdgeSchedule,
    ScheduleLayout,
    SimulationConfig,
    SparseEngine,
    StaticSchedule,
    VectorizedEngine,
    cross_check_engines,
)
from repro.simulation.vectorized import random_input_matrix

#: Seeds run in the default (fast) suite.
FAST_CASES = 30
#: Total seeded cases; seeds >= FAST_CASES are marked ``slow``.
TOTAL_CASES = 150

FAMILIES = ("complete", "core", "core-like", "ring", "k-in-regular")

#: Adversary kinds; the scalar-expressible ones additionally run the
#: scalar-vs-dense lockstep check.
STRATEGY_KINDS = (
    "none",
    "scalar-extreme",
    "scalar-static",
    "batch-static",
    "batch-extreme",
    "batch-frozen",
    "batch-noise",
    "adaptive-greedy",
    "adaptive-lookahead",
)
SCALAR_EXPRESSIBLE = ("none", "scalar-extreme", "scalar-static")

SCHEDULE_KINDS = (
    "static",
    "periodic-edges",
    "periodic-churn",
    "random-edges",
    "random-churn",
    "composed",
)


def _draw_graph(rng: np.random.Generator, f: int):
    """Return a graph of a random family whose fault-free in-degrees satisfy
    the trimmed rules' ``2f`` floor by construction."""
    family = FAMILIES[int(rng.integers(len(FAMILIES)))]
    if family == "complete":
        n = int(rng.integers(3 * f + 2, 20))
        return complete_graph(n)
    if family == "core":
        n = int(rng.integers(3 * f + 2, 32))
        return core_network(n, f)
    if family == "core-like":
        n = int(rng.integers(3 * f + 2, 32))
        probability = float(rng.uniform(0.05, 0.4))
        return random_core_like_network(n, f, probability, rng=rng)
    if family == "ring":
        k = int(rng.integers(f, f + 4))
        n = int(rng.integers(2 * k + 2, 40))
        return ring_lattice(n, k)
    degree = 2 * f + int(rng.integers(0, 6))
    n = int(rng.integers(degree + 2, 40))
    return k_in_regular_digraph(n, degree, rng=rng)


def _draw_strategy(rng: np.random.Generator, seed: int):
    """Return ``(scalar blueprint or None, batch blueprint)`` for one kind.

    The scalar blueprint is ``None`` for batch-only kinds; for
    scalar-expressible kinds both blueprints denote the same adversary, so
    the lockstep check can hand the scalar form to
    :func:`cross_check_engines` while the batch engines get the batch form.
    """
    kind = STRATEGY_KINDS[int(rng.integers(len(STRATEGY_KINDS)))]
    if kind == "none":
        return kind, None, None
    if kind == "scalar-extreme":
        strategy = ExtremePushStrategy(delta=float(rng.uniform(0.5, 5.0)))
        return kind, strategy, strategy
    if kind == "scalar-static":
        strategy = StaticValueStrategy(float(rng.uniform(-10.0, 10.0)))
        return kind, strategy, strategy
    if kind == "batch-static":
        return kind, None, BatchStaticValueStrategy(float(rng.uniform(-10.0, 10.0)))
    if kind == "batch-extreme":
        return kind, None, BatchExtremePushStrategy(float(rng.uniform(0.5, 5.0)))
    if kind == "batch-frozen":
        return kind, None, BatchFrozenValueStrategy()
    if kind == "batch-noise":
        return kind, None, BatchRandomNoiseStrategy(-5.0, 5.0, rng=seed)
    mode = "greedy" if kind == "adaptive-greedy" else "lookahead"
    rule_mode = "mean" if rng.random() < 0.7 else "midpoint"
    return (
        kind,
        None,
        BatchAdaptiveStrategy(
            mode=mode, delta=float(rng.uniform(0.5, 3.0)), rule_mode=rule_mode
        ),
    )


def _draw_schedule(rng: np.random.Generator, graph, seed: int):
    """Return a fresh schedule of a random kind for ``graph``."""
    kind = SCHEDULE_KINDS[int(rng.integers(len(SCHEDULE_KINDS)))]
    if kind == "static":
        return StaticSchedule()
    if kind == "periodic-edges":
        layout = ScheduleLayout.for_graph(graph)
        stride = int(rng.integers(2, 6))
        return PeriodicEdgeSchedule([layout.edges[::stride], ()])
    if kind == "periodic-churn":
        nodes = sorted(graph.nodes, key=repr)
        victim = nodes[int(rng.integers(len(nodes)))]
        return PeriodicChurnSchedule([[victim], (), ()])
    if kind == "random-edges":
        return RandomEdgeSchedule(p_up=float(rng.uniform(0.6, 1.0)), seed=seed)
    if kind == "random-churn":
        return RandomChurnSchedule(p_awake=float(rng.uniform(0.6, 1.0)), seed=seed)
    return ComposedSchedule(
        RandomEdgeSchedule(p_up=float(rng.uniform(0.7, 1.0)), seed=seed),
        RandomChurnSchedule(p_awake=float(rng.uniform(0.7, 1.0)), seed=seed),
    )


def _fuzz_one(seed: int) -> None:
    rng = np.random.default_rng(seed)
    f = int(rng.integers(1, 3))
    graph = _draw_graph(rng, f)
    nodes = sorted(graph.nodes, key=repr)
    fault_count = int(rng.integers(0, f + 1))
    faulty = frozenset(
        int(c) for c in rng.choice(len(nodes), size=fault_count, replace=False)
    )
    rule_factory = TrimmedMeanRule if rng.random() < 0.7 else TrimmedMidpointRule
    kind, scalar_adversary, batch_adversary = (
        _draw_strategy(rng, seed) if faulty else ("none", None, None)
    )
    schedule = _draw_schedule(rng, graph, seed)
    batch = int(rng.choice([1, 4, 16]))
    rounds = int(rng.integers(4, 11))
    max_plane_bytes = [None, 1 << 12, 1 << 16][int(rng.integers(3))]

    config = SimulationConfig(
        max_rounds=rounds,
        tolerance=0.0,
        record_history=True,
        stop_on_convergence=False,
    )
    dense = VectorizedEngine(
        graph,
        rule_factory(f),
        faulty=faulty,
        adversary=copy.deepcopy(batch_adversary),
        config=config,
        schedule=copy.deepcopy(schedule),
    )
    sparse = SparseEngine(
        graph,
        rule_factory(f),
        faulty=faulty,
        adversary=copy.deepcopy(batch_adversary),
        config=config,
        schedule=copy.deepcopy(schedule),
        max_plane_bytes=max_plane_bytes,
    )

    matrix = random_input_matrix(dense.nodes, batch, rng=rng)
    dense_out = dense.run_batch(matrix.copy())
    sparse_out = sparse.run_batch(matrix.copy())

    label = (
        f"seed={seed} n={len(nodes)} f={f} |F|={len(faulty)} B={batch} "
        f"rounds={rounds} tile={max_plane_bytes} adversary={kind} "
        f"schedule={schedule.name}"
    )
    assert np.array_equal(dense_out.final_states, sparse_out.final_states), label
    assert np.array_equal(dense_out.converged, sparse_out.converged), label
    assert np.array_equal(
        dense_out.rounds_executed, sparse_out.rounds_executed
    ), label
    assert np.array_equal(
        dense_out.initial_spread, sparse_out.initial_spread
    ), label
    assert np.array_equal(dense_out.final_spread, sparse_out.final_spread), label
    assert np.array_equal(dense_out.validity_ok, sparse_out.validity_ok), label
    assert np.array_equal(
        dense_out.spread_history, sparse_out.spread_history
    ), label

    # Scalar lockstep: one batch row, scalar reference vs a fresh dense
    # engine, full trajectory, same schedule.
    if kind in SCALAR_EXPRESSIBLE:
        row = int(rng.integers(batch))
        report = cross_check_engines(
            graph=graph,
            rule=rule_factory(f),
            inputs=dict(zip(dense.nodes, matrix[row].tolist())),
            faulty=faulty,
            adversary=copy.deepcopy(scalar_adversary),
            config=config,
            rounds=rounds,
            schedule=copy.deepcopy(schedule),
        )
        assert report.identical, (
            f"{label}: scalar/dense diverged at round "
            f"{report.first_divergence_round} "
            f"(max |diff| {report.max_abs_difference})"
        )


@pytest.mark.parametrize("seed", range(FAST_CASES))
def test_dynamic_cross_engine_fuzz_fast(seed):
    """Fast CI subset of the dynamic-topology differential sweep."""
    _fuzz_one(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(FAST_CASES, TOTAL_CASES))
def test_dynamic_cross_engine_fuzz_full(seed):
    """The long tail of the dynamic-topology differential sweep."""
    _fuzz_one(seed)
