"""Cross-engine parity suite: every engine agrees bit-for-bit.

Four equivalence layers, each parametrized over the shared graph-family
matrix in ``conftest.py`` (:data:`conftest.SYNC_FAMILY_CASES`):

1. **Synchronous quartet** — the scalar :class:`SynchronousEngine`, the
   dense :class:`VectorizedEngine`, the CSR :class:`SparseEngine`, and the
   vectorized :class:`VectorizedAsyncEngine` degenerated to ``max_delay=0,
   update_probability=1.0`` produce identical trajectories (``==`` on
   floats, never ``approx``).
2. **Batch differential** — dense and sparse ``run_batch`` agree on every
   output array at ``B = 1`` and ``B = 64``.
3. **Asynchronous pair** — the scalar :class:`PartiallyAsynchronousEngine`
   and :class:`VectorizedAsyncEngine` agree round-for-round under the shared
   RNG-stream contract (same seed → same delay draws and activation coins).
4. **Batch rows** — every row of a vectorized batch reproduces the scalar
   run seeded with that row's spawned child stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import (
    BATCH_ENGINE_KINDS,
    SYNC_FAMILY_CASES,
    SYNC_FAMILY_IDS,
    make_batch_engine,
    make_scalar_adversary,
    run_sync_engine,
)
from repro.adversary import ExtremePushStrategy
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.graphs import chord_network, complete_graph, core_network
from repro.simulation import (
    PartiallyAsynchronousEngine,
    SimulationConfig,
    VectorizedAsyncEngine,
    async_cross_check_engines,
    linear_ramp_inputs,
    run_vectorized_async,
    spawn_row_generators,
    uniform_random_inputs,
)
from repro.simulation.vectorized import random_input_matrix


@pytest.mark.parametrize(
    "label,graph_factory,f,faulty,rule_factory,adversary_kind",
    SYNC_FAMILY_CASES,
    ids=SYNC_FAMILY_IDS,
)
def test_sync_quartet_bit_exact(
    label, graph_factory, f, faulty, rule_factory, adversary_kind
):
    """Scalar == dense == sparse == async-degenerate, float-for-float.

    Every engine gets a fresh adversary instance; with tolerance 0 identical
    trajectories stop at identical rounds, so the histories must have equal
    length as well as equal contents.
    """
    graph = graph_factory()
    inputs = uniform_random_inputs(graph.nodes, rng=11)
    kwargs = dict(
        faulty=frozenset(faulty),
        max_rounds=25,
        tolerance=0.0,
        record_history=True,
    )
    outcomes = {
        engine_kind: run_sync_engine(
            engine_kind,
            graph,
            rule_factory(f),
            inputs,
            adversary=make_scalar_adversary(adversary_kind),
            **kwargs,
        )
        for engine_kind in ("scalar", "dense", "sparse", "async-degenerate")
    }
    scalar = outcomes.pop("scalar")
    for engine_kind, outcome in outcomes.items():
        assert len(scalar.history) == len(outcome.history), engine_kind
        for s_rec, o_rec in zip(scalar.history, outcome.history):
            for node in graph.nodes:
                assert s_rec.values[node] == o_rec.values[node], (
                    f"{engine_kind} diverged at round {o_rec.round_index} "
                    f"on node {node!r}"
                )


@pytest.mark.parametrize("batch", [1, 64], ids=["B1", "B64"])
@pytest.mark.parametrize(
    "label,graph_factory,f,faulty,rule_factory,adversary_kind",
    SYNC_FAMILY_CASES,
    ids=SYNC_FAMILY_IDS,
)
def test_batch_dense_vs_sparse_bit_exact(
    label, graph_factory, f, faulty, rule_factory, adversary_kind, batch
):
    """run_batch parity: dense and sparse agree on every output array."""
    graph = graph_factory()
    config = SimulationConfig(
        max_rounds=12,
        tolerance=0.0,
        record_history=True,
        stop_on_convergence=False,
    )
    outcomes = {}
    for engine_kind in ("dense", "sparse"):
        engine = make_batch_engine(
            engine_kind,
            graph,
            rule_factory(f),
            faulty=frozenset(faulty),
            adversary=make_scalar_adversary(adversary_kind),
            config=config,
        )
        matrix = random_input_matrix(engine.nodes, batch, rng=17)
        outcomes[engine_kind] = engine.run_batch(matrix)
    dense, sparse = outcomes["dense"], outcomes["sparse"]
    assert dense.nodes == sparse.nodes
    assert np.array_equal(dense.final_states, sparse.final_states)
    assert np.array_equal(dense.converged, sparse.converged)
    assert np.array_equal(dense.rounds_executed, sparse.rounds_executed)
    assert np.array_equal(dense.initial_spread, sparse.initial_spread)
    assert np.array_equal(dense.final_spread, sparse.final_spread)
    assert np.array_equal(dense.validity_ok, sparse.validity_ok)
    assert np.array_equal(dense.spread_history, sparse.spread_history)


@pytest.mark.parametrize("engine_kind", BATCH_ENGINE_KINDS)
def test_batch_engines_share_canonical_channel_order(engine_kind):
    """Every batch tier exposes the identical canonical channel order.

    The RNG-stream contract and the batch strategy library both key off
    ``BatchAdversaryContext.edge_nodes``; the tiers must agree on it exactly.
    """
    graph = core_network(10, 2)
    reference = make_batch_engine(
        "dense", graph, TrimmedMeanRule(2), faulty=frozenset({8, 9})
    )
    candidate = make_batch_engine(
        engine_kind, graph, TrimmedMeanRule(2), faulty=frozenset({8, 9})
    )
    assert candidate.nodes == reference.nodes
    assert candidate._edge_nodes == reference._edge_nodes


ASYNC_CASES = [
    # (graph factory, f, faulty, rule factory, adversary kind, delay, p, seed)
    (lambda: complete_graph(4), 1, {0}, TrimmedMeanRule, "extreme-push", 1, 1.0, 0),
    (lambda: complete_graph(5), 1, set(), TrimmedMeanRule, "none", 2, 1.0, 1),
    (lambda: complete_graph(5), 1, {4}, TrimmedMidpointRule, "static", 1, 0.6, 2),
    (lambda: complete_graph(7), 2, {0, 1}, TrimmedMeanRule, "extreme-push", 3, 0.8, 3),
    (lambda: complete_graph(7), 2, {5, 6}, TrimmedMidpointRule, "extreme-push", 2, 1.0, 4),
    (lambda: core_network(7, 2), 2, {5, 6}, TrimmedMeanRule, "static", 2, 0.5, 5),
    (lambda: core_network(8, 1), 1, {7}, TrimmedMeanRule, "extreme-push", 1, 0.9, 6),
    (lambda: core_network(10, 2), 2, {3, 9}, TrimmedMeanRule, "extreme-push", 4, 0.7, 7),
    (lambda: core_network(10, 2), 2, {0, 4}, TrimmedMidpointRule, "none", 3, 0.75, 8),
    (lambda: chord_network(5, 1), 1, {2}, TrimmedMeanRule, "static", 2, 1.0, 9),
    (lambda: chord_network(9, 1), 1, set(), TrimmedMeanRule, "none", 5, 0.4, 10),
    (lambda: complete_graph(6), 1, {3}, TrimmedMeanRule, "extreme-push", 0, 0.5, 11),
]


@pytest.mark.parametrize(
    "graph_factory,f,faulty,rule_factory,adversary_kind,delay,probability,seed",
    ASYNC_CASES,
    ids=[f"async-{i}" for i in range(len(ASYNC_CASES))],
)
def test_async_pair_bit_exact(
    graph_factory, f, faulty, rule_factory, adversary_kind, delay, probability, seed
):
    """Scalar async == vectorized async under the shared RNG-stream contract."""
    graph = graph_factory()
    report = async_cross_check_engines(
        graph,
        rule_factory(f),
        uniform_random_inputs(graph.nodes, rng=seed),
        faulty=frozenset(faulty),
        adversary=make_scalar_adversary(adversary_kind),
        config=SimulationConfig(max_rounds=40, tolerance=1e-9),
        max_delay=delay,
        update_probability=probability,
        seed=seed,
    )
    assert report.identical, (
        f"diverged at round {report.first_divergence_round} "
        f"(max abs diff {report.max_abs_difference:.3e})"
    )
    assert report.rounds_checked > 0


@pytest.mark.slow
@pytest.mark.parametrize("batch", [1, 4, 16])
@pytest.mark.parametrize("delay,probability", [(0, 1.0), (2, 1.0), (3, 0.7)])
def test_batch_rows_match_scalar_runs(batch, delay, probability):
    """Row ``b`` of a batch reproduces the scalar run on row ``b``'s stream."""
    graph = core_network(8, 1)
    rule = TrimmedMeanRule(1)
    faulty = frozenset({6})
    config = SimulationConfig(max_rounds=120, tolerance=1e-7)
    engine = VectorizedAsyncEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=ExtremePushStrategy(1.5),
        config=config,
        max_delay=delay,
        update_probability=probability,
    )
    matrix = random_input_matrix(engine.nodes, batch, rng=5)
    outcome = engine.run_batch(matrix, rng=77)

    for row in range(batch):
        scalar = PartiallyAsynchronousEngine(
            graph,
            rule,
            faulty=faulty,
            adversary=ExtremePushStrategy(1.5),
            config=config,
            max_delay=delay,
            update_probability=probability,
            rng=spawn_row_generators(77, batch)[row],
        ).run({node: matrix[row, i] for i, node in enumerate(engine.nodes)})
        assert scalar.rounds_executed == outcome.rounds_executed[row]
        assert scalar.converged == bool(outcome.converged[row])
        assert scalar.validity_ok == bool(outcome.validity_ok[row])
        assert scalar.final_spread == outcome.final_spread[row]
        for column, node in enumerate(engine.nodes):
            if node in faulty:
                continue
            assert scalar.final_values[node] == outcome.final_states[row, column]


@pytest.mark.slow
def test_single_run_seed_matches_scalar_seed_directly():
    """run(rng=seed) mirrors the scalar engine's rng=seed convention exactly."""
    graph = complete_graph(7)
    inputs = linear_ramp_inputs(graph.nodes)
    for seed in range(5):
        scalar = PartiallyAsynchronousEngine(
            graph,
            TrimmedMeanRule(2),
            faulty={0, 1},
            adversary=ExtremePushStrategy(1.0),
            config=SimulationConfig(max_rounds=60, tolerance=1e-8),
            max_delay=2,
            update_probability=0.8,
            rng=seed,
        ).run(inputs)
        vector = run_vectorized_async(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty={0, 1},
            adversary=ExtremePushStrategy(1.0),
            max_delay=2,
            update_probability=0.8,
            max_rounds=60,
            tolerance=1e-8,
            rng=seed,
        )
        assert scalar.final_values == vector.final_values
        assert scalar.rounds_executed == vector.rounds_executed
