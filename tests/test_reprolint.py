"""Tests for the reprolint determinism & contract static-analysis suite.

Every rule ID gets a paired known-bad / known-good fixture proving it fires
and stays quiet; the pragma engine is exercised round-trip (suppression,
reason accounting, unused-pragma detection); and a self-check pins the
contract the CI lint gate enforces: ``src/repro`` lints clean with zero
unexplained suppressions.
"""

from __future__ import annotations

import configparser
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from reprolint import all_rules, lint_paths, lint_source  # noqa: E402
from reprolint.__main__ import main as reprolint_main  # noqa: E402
from reprolint.pragmas import (  # noqa: E402
    UNEXPLAINED_SUPPRESSION,
    UNUSED_SUPPRESSION,
)

KERNEL_PATH = "src/repro/simulation/fixture_mod.py"
CANONICAL_PATH = "src/repro/conditions/fixture_mod.py"
EXPERIMENTS_PATH = "src/repro/experiments/fixture_mod.py"
GENERIC_PATH = "src/repro/analysis/fixture_mod.py"
PROVENANCE_PATH = "src/repro/sweeps/provenance.py"


def rules_fired(source: str, path: str, *rule_ids: str) -> list[str]:
    """Lint a dedented fixture with only ``rule_ids`` and return fired IDs."""
    report = lint_source(
        textwrap.dedent(source), path=path, select=list(rule_ids)
    )
    return [finding.rule for finding in report.findings]


# ---------------------------------------------------------------------------
# Per-rule fixtures: (rule id, path, known-bad snippet, known-good snippet).
# ---------------------------------------------------------------------------
RULE_FIXTURES = [
    (
        "RNG001",
        GENERIC_PATH,
        """
        import numpy as np
        rng = np.random.default_rng()
        """,
        """
        import numpy as np
        def make(seed: int) -> np.random.Generator:
            return np.random.default_rng(seed)
        """,
    ),
    (
        "RNG002",
        GENERIC_PATH,
        """
        import numpy as np
        np.random.seed(0)
        value = np.random.uniform(0.0, 1.0)
        """,
        """
        import numpy as np
        def draw(rng: np.random.Generator) -> float:
            return float(rng.uniform(0.0, 1.0))
        """,
    ),
    (
        "RNG003",
        GENERIC_PATH,
        """
        import random
        from random import shuffle
        """,
        """
        import numpy as np
        from numpy.random import default_rng
        """,
    ),
    (
        "RNG004",
        GENERIC_PATH,
        """
        import numpy as np
        rng = np.random.default_rng(12345)
        seq = np.random.SeedSequence(7)
        """,
        """
        import numpy as np
        def streams(seed: int, rows: int) -> list:
            return np.random.SeedSequence(seed).spawn(rows)
        """,
    ),
    (
        "CLK001",
        GENERIC_PATH,
        """
        import time
        import os
        stamp = time.time()
        token = os.urandom(8)
        """,
        """
        import time
        start = time.perf_counter()
        elapsed = time.perf_counter() - start
        """,
    ),
    (
        "ORD001",
        GENERIC_PATH,
        """
        def drain(pending: set, extra: set) -> list:
            out = [node for node in pending | extra]
            for node in set(pending):
                out.append(node)
            for node in list(pending.union(extra)):
                out.append(node)
            return out
        """,
        """
        def drain(pending: set, extra: set) -> list:
            out = [node for node in sorted(pending | extra, key=repr)]
            for node in sorted(set(pending), key=repr):
                out.append(node)
            return out
        """,
    ),
    (
        "ORD002",
        CANONICAL_PATH,
        """
        def collect(state: dict) -> list:
            out = [value for key, value in state.items()]
            for key in state.keys():
                out.append(key)
            return out
        """,
        """
        def collect(state: dict) -> list:
            out = [value for key, value in sorted(state.items(), key=lambda kv: repr(kv[0]))]
            for key in sorted(state, key=repr):
                out.append(key)
            return out
        """,
    ),
    (
        "EXA001",
        KERNEL_PATH,
        """
        import numpy as np
        def segment_sums(plane, starts):
            return np.add.reduceat(plane, starts, axis=1)
        """,
        """
        import numpy as np
        def segment_sums(plane):
            return np.cumsum(plane, axis=1)
        """,
    ),
    (
        "EXA002",
        KERNEL_PATH,
        """
        import math
        def total(values):
            return math.fsum(values)
        """,
        """
        def total(values):
            acc = 0.0
            for value in values:
                acc += value
            return acc
        """,
    ),
    (
        "EXA003",
        KERNEL_PATH,
        """
        import numpy as np
        plane = np.zeros(8, dtype=np.float32)
        other = np.zeros(8, dtype="float16")
        """,
        """
        import numpy as np
        def make_plane(size: int, dtype: np.dtype) -> np.ndarray:
            return np.zeros(size, dtype=dtype)
        """,
    ),
    (
        "REG001",
        EXPERIMENTS_PATH,
        """
        def run_study(seed: int) -> list:
            return []
        """,
        """
        from repro.sweeps.registry import register_experiment

        @register_experiment(
            "study",
            paper_section="Thm 2",
            claim="c",
            engine="vectorized",
            grid={},
        )
        def run_study(seed: int) -> list:
            return []
        """,
    ),
    (
        "REG002",
        EXPERIMENTS_PATH,
        """
        from repro.sweeps.registry import register_experiment

        @register_experiment("study", claim="c", grid={})
        def study_cell(seed: int) -> list:
            return []
        """,
        """
        from repro.sweeps.registry import register_experiment

        @register_experiment(
            "study",
            paper_section="Thm 2",
            claim="c",
            engine="vectorized",
            grid={},
        )
        def study_cell(seed: int) -> list:
            return []
        """,
    ),
    (
        "REG003",
        EXPERIMENTS_PATH,
        """
        from repro.sweeps.registry import register_experiment

        @register_experiment(
            "study",
            paper_section="Thm 2",
            claim="c",
            engine="vectorized",
            grid={},
        )
        def study_cell(seed: int) -> list:
            return []
        """,
        """
        from typing import TypedDict

        from repro.sweeps.registry import register_experiment
        from repro.sweeps.schema import schema_from_typeddict

        class StudyRow(TypedDict):
            case: str
            rounds: int

        STUDY_SCHEMA = schema_from_typeddict(
            StudyRow,
            roles={"case": "label", "rounds": "metric"},
        )

        @register_experiment(
            "study",
            paper_section="Thm 2",
            claim="c",
            engine="vectorized",
            grid={},
            schema=STUDY_SCHEMA,
        )
        def study_cell(seed: int) -> list[StudyRow]:
            return []
        """,
    ),
    (
        "EXC001",
        GENERIC_PATH,
        """
        def load() -> int:
            try:
                return 1
            except:
                return 0
        """,
        """
        def load() -> int:
            try:
                return 1
            except ValueError:
                return 0
        """,
    ),
    (
        "EXC002",
        GENERIC_PATH,
        """
        def load() -> None:
            try:
                work()
            except Exception:
                pass
        """,
        """
        import logging
        def load() -> None:
            try:
                work()
            except Exception:
                logging.exception("work failed")
                raise
        """,
    ),
    (
        "TYP001",
        GENERIC_PATH,
        """
        def convert(value, precision=3):
            return round(value, precision)
        """,
        """
        def convert(value: float, precision: int = 3) -> float:
            return round(value, precision)
        """,
    ),
]


class TestRuleFixtures:
    """Every rule fires on its bad fixture and stays quiet on the good one."""

    @pytest.mark.parametrize(
        "rule_id, path, bad, good",
        RULE_FIXTURES,
        ids=[fixture[0] for fixture in RULE_FIXTURES],
    )
    def test_bad_fixture_fires(
        self, rule_id: str, path: str, bad: str, good: str
    ) -> None:
        fired = rules_fired(bad, path, rule_id)
        assert rule_id in fired, f"{rule_id} did not fire on its bad fixture"

    @pytest.mark.parametrize(
        "rule_id, path, bad, good",
        RULE_FIXTURES,
        ids=[fixture[0] for fixture in RULE_FIXTURES],
    )
    def test_good_fixture_clean(
        self, rule_id: str, path: str, bad: str, good: str
    ) -> None:
        fired = rules_fired(good, path, rule_id)
        assert fired == [], f"{rule_id} false-positive: {fired}"

    def test_every_registered_rule_has_a_fixture(self) -> None:
        covered = {fixture[0] for fixture in RULE_FIXTURES}
        assert covered == set(all_rules())


class TestRuleScoping:
    """Scoped rules respect their module classes."""

    def test_dict_view_iteration_allowed_off_canonical_paths(self) -> None:
        source = """
        def collect(state: dict) -> list:
            return [value for key, value in state.items()]
        """
        assert rules_fired(source, GENERIC_PATH, "ORD002") == []

    def test_kernel_rules_silent_outside_kernels(self) -> None:
        source = """
        import numpy as np
        import math
        x = np.zeros(4, dtype=np.float32)
        y = math.fsum([1.0, 2.0])
        z = np.add.reduceat(np.arange(6.0), [0, 3])
        """
        assert (
            rules_fired(source, GENERIC_PATH, "EXA001", "EXA002", "EXA003")
            == []
        )

    def test_provenance_module_may_read_the_clock(self) -> None:
        source = """
        import datetime
        def utc_now_iso() -> str:
            return datetime.datetime.now(datetime.timezone.utc).isoformat()
        """
        assert rules_fired(source, PROVENANCE_PATH, "CLK001") == []

    def test_experiments_module_without_entry_points_needs_no_registry(
        self,
    ) -> None:
        source = """
        def format_table(rows: list) -> str:
            return str(rows)
        """
        assert rules_fired(source, EXPERIMENTS_PATH, "REG001") == []

    def test_private_and_nested_functions_exempt_from_typing_rule(
        self,
    ) -> None:
        source = """
        def _helper(value):
            return value

        def public(value: int) -> int:
            def inner(x):
                return x
            return inner(value)
        """
        assert rules_fired(source, GENERIC_PATH, "TYP001") == []


class TestRegistrySchema:
    """REG003 statically cross-checks roles against the TypedDict fields."""

    PREAMBLE = """
        from typing import TypedDict

        from repro.sweeps.registry import register_experiment
        from repro.sweeps.schema import schema_from_typeddict
    """

    def _fired(self, body: str) -> list[str]:
        return rules_fired(
            self.PREAMBLE + body, EXPERIMENTS_PATH, "REG003"
        )

    def test_roles_key_mismatch_fires(self) -> None:
        assert self._fired(
            """
        class StudyRow(TypedDict):
            case: str
            rounds: int

        STUDY_SCHEMA = schema_from_typeddict(
            StudyRow,
            roles={"case": "label", "speed": "metric"},
        )

        @register_experiment(
            "study", paper_section="s", claim="c", engine="e",
            grid={}, schema=STUDY_SCHEMA,
        )
        def study_cell(seed: int) -> list[StudyRow]:
            return []
        """
        ) == ["REG003"]

    def test_functional_typeddict_form_resolved(self) -> None:
        body = """
        StudyRow = TypedDict(
            "StudyRow", {"robust_2f+1": bool, "rounds": int}
        )

        STUDY_SCHEMA = schema_from_typeddict(
            StudyRow,
            roles={"robust_2f+1": "verdict", "rounds": "metric"},
        )

        @register_experiment(
            "study", paper_section="s", claim="c", engine="e",
            grid={}, schema=STUDY_SCHEMA,
        )
        def study_cell(seed: int) -> list:
            return []
        """
        assert self._fired(body) == []
        assert self._fired(
            body.replace('"rounds": "metric"', '"round": "metric"')
        ) == ["REG003"]

    def test_same_module_base_class_fields_counted(self) -> None:
        assert self._fired(
            """
        class _Base(TypedDict):
            condition_holds: bool

        class StudyRow(_Base, total=False):
            rounds: int

        STUDY_SCHEMA = schema_from_typeddict(
            StudyRow,
            roles={"condition_holds": "verdict", "rounds": "metric"},
        )

        @register_experiment(
            "study", paper_section="s", claim="c", engine="e",
            grid={}, schema=STUDY_SCHEMA,
        )
        def study_cell(seed: int) -> list[StudyRow]:
            return []
        """
        ) == []

    def test_unresolvable_schema_value_is_presence_only(self) -> None:
        assert self._fired(
            """
        from somewhere import make_schema

        @register_experiment(
            "study", paper_section="s", claim="c", engine="e",
            grid={}, schema=make_schema(),
        )
        def study_cell(seed: int) -> list:
            return []
        """
        ) == []

    def test_schema_none_counts_as_missing(self) -> None:
        assert self._fired(
            """
        @register_experiment(
            "study", paper_section="s", claim="c", engine="e",
            grid={}, schema=None,
        )
        def study_cell(seed: int) -> list:
            return []
        """
        ) == ["REG003"]

    def test_self_check_src_repro_clean(self) -> None:
        report = lint_paths(
            [str(REPO_ROOT / "src" / "repro")], select=["REG003"]
        )
        # Selecting one rule makes other rules' pragmas look unused; only
        # the REG003 verdicts matter here.
        fired = [f for f in report.findings if f.rule == "REG003"]
        assert fired == []


class TestPragmas:
    """Suppression round-trip: explained, unexplained, unused, comment-only."""

    BAD_LINE = "for node in set(range(4)):\n    print(node)\n"

    def test_explained_pragma_suppresses_and_is_accounted(self) -> None:
        source = (
            "for node in set(range(4)):  "
            "# reprolint: disable=ORD001 -- fixture exemption\n"
            "    print(node)\n"
        )
        report = lint_source(source, path=GENERIC_PATH, select=["ORD001"])
        assert report.findings == []
        assert [finding.rule for finding in report.suppressed] == ["ORD001"]
        assert report.unexplained_suppressions == 0

    def test_unexplained_pragma_is_a_finding(self) -> None:
        source = (
            "for node in set(range(4)):  # reprolint: disable=ORD001\n"
            "    print(node)\n"
        )
        report = lint_source(source, path=GENERIC_PATH, select=["ORD001"])
        assert [finding.rule for finding in report.findings] == [
            UNEXPLAINED_SUPPRESSION
        ]
        assert report.unexplained_suppressions == 1

    def test_unused_pragma_is_a_finding(self) -> None:
        source = "x = 1  # reprolint: disable=ORD001 -- nothing here\n"
        report = lint_source(source, path=GENERIC_PATH, select=["ORD001"])
        assert [finding.rule for finding in report.findings] == [
            UNUSED_SUPPRESSION
        ]

    def test_comment_only_pragma_covers_next_line(self) -> None:
        source = (
            "# reprolint: disable=ORD001 -- fixture exemption\n"
            + self.BAD_LINE
        )
        report = lint_source(source, path=GENERIC_PATH, select=["ORD001"])
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_pragma_only_suppresses_listed_rules(self) -> None:
        source = (
            "# reprolint: disable=EXA001 -- wrong rule on purpose\n"
            + self.BAD_LINE
        )
        report = lint_source(
            source, path=GENERIC_PATH, select=["ORD001", "EXA001"]
        )
        fired = {finding.rule for finding in report.findings}
        # The ORD001 finding survives and the EXA001 pragma is unused.
        assert fired == {"ORD001", UNUSED_SUPPRESSION}

    def test_disable_all_works_but_still_needs_a_reason(self) -> None:
        source = (
            "for node in set(range(4)):  # reprolint: disable=ALL -- fixture\n"
            "    print(node)\n"
        )
        report = lint_source(source, path=GENERIC_PATH, select=["ORD001"])
        assert report.findings == []


class TestDriver:
    """CLI behaviour: exit codes, JSON output, rule listing, budget."""

    def write(self, tmp_path: Path, source: str) -> Path:
        target = tmp_path / "src" / "repro" / "analysis" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(source))
        return target

    def test_exit_zero_on_clean_tree(self, tmp_path: Path, capsys) -> None:
        path = self.write(tmp_path, "CONSTANT: int = 3\n")
        assert reprolint_main([str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path: Path, capsys) -> None:
        path = self.write(tmp_path, "import random\n")
        assert reprolint_main([str(path)]) == 1
        assert "RNG003" in capsys.readouterr().out

    def test_json_format_round_trips(self, tmp_path: Path, capsys) -> None:
        path = self.write(tmp_path, "import random\n")
        assert reprolint_main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["files_scanned"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["RNG003"]

    def test_list_rules_names_every_rule(self, capsys) -> None:
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out

    def test_unknown_rule_is_a_usage_error(self, tmp_path: Path) -> None:
        path = self.write(tmp_path, "x = 1\n")
        assert reprolint_main([str(path), "--select", "NOPE99"]) == 2

    def test_budget_waives_unexplained_suppressions(
        self, tmp_path: Path
    ) -> None:
        path = self.write(
            tmp_path,
            "import random  # reprolint: disable=RNG003\n",
        )
        assert reprolint_main([str(path)]) == 1
        assert reprolint_main([str(path), "--budget-unexplained", "1"]) == 0

    def test_module_invocation_via_subprocess(self, tmp_path: Path) -> None:
        path = self.write(tmp_path, "import random\n")
        env_path = f"{REPO_ROOT / 'src'}:{TOOLS_DIR}"
        completed = subprocess.run(
            [sys.executable, "-m", "reprolint", str(path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 1
        assert "RNG003" in completed.stdout


class TestSelfCheck:
    """The gate the CI lint step enforces, pinned as a test."""

    def test_src_repro_lints_clean(self) -> None:
        report = lint_paths([str(REPO_ROOT / "src" / "repro")])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.findings == [], f"reprolint findings:\n{formatted}"
        assert report.unexplained_suppressions == 0
        # Suppressions that do exist are all explained pragmas.
        assert all(
            finding.rule not in {UNEXPLAINED_SUPPRESSION, UNUSED_SUPPRESSION}
            for finding in report.suppressed
        )

    def test_typed_api_gate_config_is_committed_and_parses(self) -> None:
        config = configparser.ConfigParser()
        assert config.read(REPO_ROOT / "mypy.ini")
        assert config.has_section("mypy")
        assert config.get("mypy", "mypy_path") == "src"

    def test_py_typed_marker_ships(self) -> None:
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
        assert 'package_data={"repro": ["py.typed"]}' in (
            REPO_ROOT / "setup.py"
        ).read_text()
