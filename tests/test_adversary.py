"""Unit tests for adversary strategies and fault-set selection."""

from __future__ import annotations

import pytest

from repro.adversary import (
    AdversaryContext,
    BroadcastConsistentStrategy,
    ExtremePushStrategy,
    FrozenValueStrategy,
    PassiveStrategy,
    RandomNoiseStrategy,
    SplitBrainStrategy,
    StaticValueStrategy,
    fault_set_from_witness,
    highest_in_degree_fault_set,
    highest_out_degree_fault_set,
    random_fault_set,
)
from repro.conditions import chord_n7_f2_witness
from repro.exceptions import FaultBudgetExceededError, InvalidParameterError
from repro.graphs import chord_network, complete_graph, star_graph
from repro.types import PartitionWitness


def make_context(graph, values, faulty, f=1, round_index=1):
    return AdversaryContext(
        graph=graph,
        round_index=round_index,
        values=values,
        faulty=frozenset(faulty),
        f=f,
    )


class TestAdversaryContext:
    def test_fault_free_views(self):
        graph = complete_graph(4)
        context = make_context(graph, {0: 0.0, 1: 1.0, 2: 2.0, 3: 5.0}, faulty={3})
        assert context.fault_free_nodes == frozenset({0, 1, 2})
        assert context.fault_free_values == {0: 0.0, 1: 1.0, 2: 2.0}
        assert context.fault_free_max == 2.0
        assert context.fault_free_min == 0.0


class TestStrategies:
    def test_passive_sends_own_value_everywhere(self):
        graph = complete_graph(3)
        context = make_context(graph, {0: 7.0, 1: 1.0, 2: 2.0}, faulty={0})
        values = PassiveStrategy().outgoing_values(0, context)
        assert values == {1: 7.0, 2: 7.0}

    def test_static_value(self):
        graph = complete_graph(3)
        context = make_context(graph, {0: 7.0, 1: 1.0, 2: 2.0}, faulty={0})
        strategy = StaticValueStrategy(-42.0)
        assert strategy.outgoing_values(0, context) == {1: -42.0, 2: -42.0}
        assert strategy.nominal_value(0, context) == -42.0

    def test_frozen_value_persists_initial_state(self):
        graph = complete_graph(3)
        strategy = FrozenValueStrategy()
        first = make_context(graph, {0: 7.0, 1: 1.0, 2: 2.0}, faulty={0})
        later = make_context(graph, {0: 99.0, 1: 1.0, 2: 2.0}, faulty={0}, round_index=5)
        assert strategy.outgoing_values(0, first)[1] == 7.0
        assert strategy.outgoing_values(0, later)[1] == 7.0
        assert strategy.nominal_value(0, later) == 7.0

    def test_frozen_value_is_call_order_independent(self):
        """``nominal_value`` before ``outgoing_values`` freezes too.

        The pre-fix implementation only froze in ``outgoing_values``, so a
        leading ``nominal_value`` call reported a state that could disagree
        with the values later sent on the edges.
        """
        graph = complete_graph(3)
        strategy = FrozenValueStrategy()
        first = make_context(graph, {0: 7.0, 1: 1.0, 2: 2.0}, faulty={0})
        later = make_context(graph, {0: 99.0, 1: 1.0, 2: 2.0}, faulty={0}, round_index=5)
        assert strategy.nominal_value(0, first) == 7.0
        assert strategy.outgoing_values(0, later)[1] == 7.0
        assert strategy.nominal_value(0, later) == 7.0

    def test_random_noise_within_bounds_and_deterministic(self):
        graph = complete_graph(4)
        context = make_context(graph, {node: 0.0 for node in graph.nodes}, faulty={0})
        first = RandomNoiseStrategy(-2.0, 3.0, rng=5).outgoing_values(0, context)
        second = RandomNoiseStrategy(-2.0, 3.0, rng=5).outgoing_values(0, context)
        assert first == second
        assert all(-2.0 <= value <= 3.0 for value in first.values())

    def test_random_noise_invalid_bounds(self):
        with pytest.raises(InvalidParameterError):
            RandomNoiseStrategy(3.0, -3.0)

    def test_extreme_push_targets_both_ends(self):
        graph = complete_graph(4)
        context = make_context(
            graph, {0: 0.0, 1: 0.0, 2: 1.0, 3: 0.5}, faulty={3}
        )
        values = ExtremePushStrategy(delta=1.0).outgoing_values(3, context)
        # Nodes at/above the midpoint (0.5) get pushed up, others down.
        assert values[2] == pytest.approx(2.0)
        assert values[0] == pytest.approx(-1.0)

    def test_extreme_push_invalid_delta(self):
        with pytest.raises(InvalidParameterError):
            ExtremePushStrategy(delta=-0.1)

    def test_split_brain_sends_below_and_above(self):
        graph = chord_network(7, 2)
        witness = chord_n7_f2_witness()
        strategy = SplitBrainStrategy(witness, 0.0, 1.0, margin=0.5)
        context = make_context(
            graph, {node: 0.5 for node in graph.nodes}, faulty=witness.faulty, f=2
        )
        values = strategy.outgoing_values(5, context)
        for target, value in values.items():
            if target in witness.left:
                assert value == pytest.approx(-0.5)
            elif target in witness.right:
                assert value == pytest.approx(1.5)
            else:
                assert value == pytest.approx(0.5)

    def test_split_brain_recommended_inputs(self):
        witness = chord_n7_f2_witness()
        inputs = SplitBrainStrategy(witness, 0.0, 1.0).recommended_inputs()
        assert all(inputs[node] == 0.0 for node in witness.left)
        assert all(inputs[node] == 1.0 for node in witness.right)
        assert all(inputs[node] == 0.5 for node in witness.faulty)

    def test_split_brain_invalid_parameters(self):
        witness = chord_n7_f2_witness()
        with pytest.raises(InvalidParameterError):
            SplitBrainStrategy(witness, 1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            SplitBrainStrategy(witness, 0.0, 1.0, margin=0.0)

    def test_broadcast_wrapper_collapses_to_single_value(self):
        graph = complete_graph(4)
        context = make_context(
            graph, {0: 0.0, 1: 0.0, 2: 1.0, 3: 0.5}, faulty={3}
        )
        wrapped = BroadcastConsistentStrategy(ExtremePushStrategy(delta=1.0))
        values = wrapped.outgoing_values(3, context)
        assert len(set(values.values())) == 1
        assert "broadcast(" in wrapped.name

    def test_broadcast_wrapper_canonicalises_on_fault_free_edge(self):
        """The collapsed value is the one destined for the repr-smallest
        fault-free out-neighbour, even when a faulty neighbour sorts first."""
        graph = complete_graph(4)
        context = make_context(
            graph, {0: 0.0, 1: 0.0, 2: 1.0, 3: 0.5}, faulty={0, 3}, f=2
        )
        # ExtremePush sends low to node 1 (below midpoint) and high to node 2;
        # node 0 is faulty, so the broadcast value must be node 1's.
        wrapped = BroadcastConsistentStrategy(ExtremePushStrategy(delta=1.0))
        inner = ExtremePushStrategy(delta=1.0).outgoing_values(3, context)
        values = wrapped.outgoing_values(3, context)
        assert set(values.values()) == {inner[1]}

    def test_broadcast_wrapper_rejects_incomplete_inner_result(self):
        """A descriptive error replaces the pre-fix bare ``KeyError``."""

        class Omits(ExtremePushStrategy):
            def outgoing_values(self, node, context):
                values = super().outgoing_values(node, context)
                del values[min(values, key=repr)]
                return values

        graph = complete_graph(4)
        context = make_context(graph, {0: 0.0, 1: 0.0, 2: 1.0, 3: 0.5}, faulty={3})
        wrapped = BroadcastConsistentStrategy(Omits(delta=1.0))
        with pytest.raises(InvalidParameterError, match="omitted out-neighbours"):
            wrapped.outgoing_values(3, context)


class TestFaultSelection:
    def test_random_fault_set_size_and_budget(self):
        graph = complete_graph(6)
        selected = random_fault_set(graph, 2, rng=3)
        assert len(selected) == 2
        assert selected <= graph.nodes

    def test_random_fault_set_zero(self):
        assert random_fault_set(complete_graph(4), 0) == frozenset()

    def test_random_fault_set_deterministic(self):
        graph = complete_graph(8)
        assert random_fault_set(graph, 3, rng=9) == random_fault_set(graph, 3, rng=9)

    def test_size_exceeding_budget_rejected(self):
        with pytest.raises(FaultBudgetExceededError):
            random_fault_set(complete_graph(4), 1, size=2)

    def test_size_exceeding_nodes_rejected(self):
        with pytest.raises(InvalidParameterError):
            random_fault_set(complete_graph(2), 5, size=3)

    def test_highest_in_degree(self):
        # In a star, the hub has the largest in-degree.
        assert highest_in_degree_fault_set(star_graph(6), 1) == frozenset({0})

    def test_highest_out_degree(self):
        assert highest_out_degree_fault_set(star_graph(6), 1) == frozenset({0})

    def test_fault_set_from_witness(self):
        witness = chord_n7_f2_witness()
        assert fault_set_from_witness(witness, 2) == frozenset({5, 6})
        with pytest.raises(FaultBudgetExceededError):
            fault_set_from_witness(witness, 1)

    def test_fault_set_from_witness_negative_f(self):
        witness = PartitionWitness(
            faulty=frozenset(),
            left=frozenset({0}),
            center=frozenset(),
            right=frozenset({1}),
        )
        with pytest.raises(InvalidParameterError):
            fault_set_from_witness(witness, -1)
