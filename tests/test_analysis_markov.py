"""Unit tests for the matrix / spectral view of the dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import LinearAverageRule, TrimmedMeanRule
from repro.analysis import (
    effective_update_matrix,
    is_row_stochastic,
    linear_average_matrix,
    node_ordering,
    predicted_rounds_linear,
    second_largest_eigenvalue_modulus,
    spectral_gap,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import complete_graph, directed_ring, undirected_ring
from repro.simulation import linear_ramp_inputs, run_synchronous
from repro.types import ReceivedValue


class TestLinearAverageMatrix:
    def test_row_stochastic_on_every_family(self):
        for graph in [complete_graph(5), directed_ring(6), undirected_ring(5)]:
            matrix = linear_average_matrix(graph)
            assert is_row_stochastic(matrix)

    def test_weights_match_rule(self):
        graph = complete_graph(4)
        matrix = linear_average_matrix(graph)
        np.testing.assert_allclose(matrix, np.full((4, 4), 0.25))

    def test_matrix_predicts_one_round_of_simulation(self):
        graph = undirected_ring(5)
        matrix = linear_average_matrix(graph)
        ordering = node_ordering(graph)
        inputs = linear_ramp_inputs(graph.nodes)
        vector = np.array([inputs[node] for node in ordering])
        outcome = run_synchronous(
            graph, LinearAverageRule(0), inputs, max_rounds=1,
            stop_on_convergence=False,
        )
        predicted = matrix @ vector
        for index, node in enumerate(ordering):
            assert outcome.history[1].values[node] == pytest.approx(predicted[index])

    def test_node_ordering_deterministic(self):
        graph = complete_graph(4)
        assert node_ordering(graph) == [0, 1, 2, 3]


class TestSpectral:
    def test_complete_graph_has_large_gap(self):
        matrix = linear_average_matrix(complete_graph(6))
        assert second_largest_eigenvalue_modulus(matrix) == pytest.approx(0.0, abs=1e-9)
        assert spectral_gap(matrix) == pytest.approx(1.0, abs=1e-9)

    def test_ring_has_small_gap(self):
        gap_small = spectral_gap(linear_average_matrix(undirected_ring(20)))
        gap_large = spectral_gap(linear_average_matrix(undirected_ring(6)))
        assert 0 < gap_small < gap_large < 1

    def test_single_node_matrix(self):
        assert second_largest_eigenvalue_modulus(np.array([[1.0]])) == 0.0

    def test_non_square_rejected(self):
        with pytest.raises(InvalidParameterError):
            second_largest_eigenvalue_modulus(np.zeros((2, 3)))
        with pytest.raises(InvalidParameterError):
            is_row_stochastic(np.zeros((2, 3)))

    def test_is_row_stochastic_negative_entries(self):
        matrix = np.array([[1.5, -0.5], [0.5, 0.5]])
        assert not is_row_stochastic(matrix)

    def test_predicted_rounds_linear(self):
        graph = undirected_ring(8)
        rounds = predicted_rounds_linear(graph, initial_spread=1.0, tolerance=1e-3)
        assert rounds > 0
        assert predicted_rounds_linear(graph, 1.0, 2.0) == 0
        with pytest.raises(InvalidParameterError):
            predicted_rounds_linear(graph, 0.0, 1e-3)


class TestEffectiveUpdateMatrix:
    def test_structure_of_one_round(self):
        graph = complete_graph(4)
        rule = TrimmedMeanRule(1)
        profile = {
            node: [
                ReceivedValue(sender=other, value=float(other))
                for other in sorted(graph.in_neighbors(node))
            ]
            for node in graph.nodes
        }
        matrix = effective_update_matrix(graph, rule, profile)
        assert is_row_stochastic(matrix)
        # Every diagonal entry is the node's weight a_i = 1 / (3 + 1 - 2) = 0.5,
        # which is also alpha for this graph.
        np.testing.assert_allclose(np.diag(matrix), 0.5)

    def test_nodes_missing_from_profile_keep_their_value(self):
        graph = complete_graph(3)
        rule = TrimmedMeanRule(0)
        matrix = effective_update_matrix(graph, rule, {})
        np.testing.assert_allclose(matrix, np.eye(3))

    def test_unknown_sender_rejected(self):
        graph = complete_graph(3)
        rule = TrimmedMeanRule(0)
        profile = {0: [ReceivedValue(sender=99, value=1.0)]}
        with pytest.raises(InvalidParameterError):
            effective_update_matrix(graph, rule, profile)
