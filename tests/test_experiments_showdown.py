"""Tests for the adversary_showdown sweep and the batch-rewired drivers."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.ablation import algorithm_ablation, default_ablation_graphs
from repro.experiments.necessity import demonstrate_necessity
from repro.experiments.robustness import robustness_comparison
from repro.experiments.showdown import (
    SHOWDOWN_STRATEGIES,
    adversary_showdown,
    adversary_showdown_cell,
    default_showdown_cases,
    make_showdown_strategy,
)
from repro.graphs.generators import chord_network
from repro.sweeps.registry import get_experiment


class TestShowdown:
    def test_split_brain_stalls_violating_graph(self):
        rows = adversary_showdown(
            cases=[("chord n=7 f=2", chord_network(7, 2), 2)],
            strategies=("split-brain",),
            batch=4,
            rounds=60,
        )
        (row,) = rows
        assert row["applicable"] is True
        assert row["condition_holds"] is False
        assert row["stalled_fraction"] == 1.0
        assert row["fraction_converged"] == 0.0
        assert row["all_validity_ok"] is True

    def test_feasible_graph_survives_generic_strategies(self):
        cases = [case for case in default_showdown_cases() if case[0] == "core n=7 f=2"]
        rows = adversary_showdown(
            cases=cases,
            strategies=("static", "frozen", "noise", "extreme-push", "broadcast-extreme"),
            batch=4,
            rounds=150,
        )
        assert len(rows) == 5
        for row in rows:
            assert row["fraction_converged"] == 1.0, row["strategy"]
            assert row["all_validity_ok"] is True, row["strategy"]

    def test_split_brain_not_applicable_on_feasible_graph(self):
        cases = [case for case in default_showdown_cases() if case[0] == "core n=7 f=2"]
        (row,) = adversary_showdown(
            cases=cases, strategies=("split-brain",), batch=2, rounds=10
        )
        assert row["applicable"] is False
        assert row["fraction_converged"] is None

    def test_registered_cell_runs(self):
        spec = get_experiment("adversary_showdown")
        assert spec.engine == "vectorized"
        assert set(spec.grid["strategy"]) == set(SHOWDOWN_STRATEGIES)
        rows = adversary_showdown_cell(
            case="chord n=7 f=2", strategy="split-brain", batch=2, rounds=30
        )
        assert rows and rows[0]["stalled_fraction"] == 1.0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown showdown strategy"):
            make_showdown_strategy("nope")
        with pytest.raises(InvalidParameterError, match="witness"):
            make_showdown_strategy("split-brain")


class TestRewiredDrivers:
    def test_necessity_runs_on_vectorized_engine(self):
        demo = demonstrate_necessity(chord_network(7, 2), 2, rounds=30)
        assert demo.stalled
        assert not demo.outcome.converged
        assert demo.outcome.validity_ok
        assert demo.left_stuck and demo.right_stuck

    def test_ablation_reports_engine_per_rule(self):
        rows = algorithm_ablation(
            graphs=default_ablation_graphs()[:1], rounds=40
        )
        engines = {row["rule"]: row["engine"] for row in rows}
        assert engines["trimmed-mean (Algorithm 1)"] == "vectorized"
        assert engines["trimmed-midpoint"] == "vectorized"
        assert engines["linear-average"] == "scalar"
        assert engines["W-MSR"] == "scalar"
        # The qualitative paper shape survives the rewiring.
        for row in rows:
            if row["rule"] in ("trimmed-mean (Algorithm 1)", "W-MSR"):
                assert row["validity_ok"], row

    def test_robustness_dynamic_columns_match_verdicts(self):
        rows = robustness_comparison(batch=4, rounds=80)
        for row in rows:
            if row["theorem1_holds"]:
                assert row["sim_adversary"] == "batch-extreme-push"
                assert row["sim_fraction_converged"] == 1.0
                assert row["sim_all_validity_ok"] is True
            else:
                assert row["sim_adversary"] == "batch-split-brain"
                assert row["sim_stalled_fraction"] == 1.0
