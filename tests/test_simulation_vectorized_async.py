"""Unit tests for the vectorized partially asynchronous engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import ExtremePushStrategy, FrozenValueStrategy
from repro.adversary.vectorized import BatchExtremePushStrategy, ScalarStrategyAdapter
from repro.algorithms import TrimmedMeanRule
from repro.algorithms.linear import LinearAverageRule
from repro.exceptions import FaultBudgetExceededError, InvalidParameterError
from repro.graphs import complete_graph, core_network
from repro.simulation import (
    SimulationConfig,
    VectorizedAsyncEngine,
    run_vectorized_async,
    spawn_row_generators,
)
from repro.simulation.vectorized import random_input_matrix


class TestConstructionGuards:
    """Both asynchronous engines reject out-of-range model parameters."""

    def test_negative_max_delay_rejected(self):
        with pytest.raises(InvalidParameterError, match="max_delay"):
            VectorizedAsyncEngine(complete_graph(4), TrimmedMeanRule(1), max_delay=-1)

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.5])
    def test_out_of_range_update_probability_rejected(self, probability):
        with pytest.raises(InvalidParameterError, match="update_probability"):
            VectorizedAsyncEngine(
                complete_graph(4),
                TrimmedMeanRule(1),
                update_probability=probability,
            )

    def test_fault_budget_enforced(self):
        with pytest.raises(FaultBudgetExceededError):
            VectorizedAsyncEngine(
                complete_graph(7), TrimmedMeanRule(1), faulty={0, 1}
            )

    def test_all_faulty_rejected_as_invalid_parameter(self):
        with pytest.raises(InvalidParameterError):
            VectorizedAsyncEngine(
                complete_graph(2), TrimmedMeanRule(5), faulty={0, 1}
            )

    def test_unsupported_rule_rejected(self):
        with pytest.raises(InvalidParameterError, match="kernel"):
            VectorizedAsyncEngine(complete_graph(4), LinearAverageRule(f=1))

    def test_properties(self):
        engine = VectorizedAsyncEngine(
            complete_graph(5),
            TrimmedMeanRule(1),
            faulty={4},
            max_delay=3,
            update_probability=0.25,
        )
        assert engine.max_delay == 3
        assert engine.update_probability == 0.25
        assert engine.faulty == frozenset({4})

    def test_step_matrix_is_refused(self):
        engine = VectorizedAsyncEngine(complete_graph(4), TrimmedMeanRule(1))
        with pytest.raises(InvalidParameterError, match="step_async"):
            engine.step_matrix(np.zeros((1, 4)), 1)


class TestSpawnRowGenerators:
    def test_int_seed_is_reproducible(self):
        first = spawn_row_generators(9, 4)
        second = spawn_row_generators(9, 4)
        for a, b in zip(first, second):
            assert a.random(5).tolist() == b.random(5).tolist()

    def test_explicit_generator_sequence_passthrough(self):
        generators = [np.random.default_rng(i) for i in range(3)]
        assert spawn_row_generators(generators, 3) is not generators
        assert spawn_row_generators(tuple(generators), 3) == generators

    def test_wrong_length_sequence_rejected(self):
        with pytest.raises(InvalidParameterError):
            spawn_row_generators([np.random.default_rng(0)], 2)

    def test_invalid_spec_rejected(self):
        with pytest.raises(InvalidParameterError):
            spawn_row_generators("not-a-seed", 2)

    def test_invalid_batch_rejected(self):
        with pytest.raises(InvalidParameterError):
            spawn_row_generators(0, 0)


class TestRunBatch:
    def test_shapes_and_determinism(self):
        graph = core_network(8, 1)
        engine = VectorizedAsyncEngine(
            graph,
            TrimmedMeanRule(1),
            faulty={7},
            adversary=BatchExtremePushStrategy(1.0),
            config=SimulationConfig(max_rounds=200, tolerance=1e-6),
            max_delay=2,
            update_probability=0.8,
        )
        matrix = random_input_matrix(engine.nodes, 6, rng=1)
        first = engine.run_batch(matrix, rng=3)
        second = engine.run_batch(matrix, rng=3)
        assert first.batch_size == 6
        assert first.final_states.shape == (6, 8)
        assert np.array_equal(first.final_states, second.final_states)
        assert np.array_equal(first.rounds_executed, second.rounds_executed)
        assert first.converged.all()
        assert first.all_valid

    def test_delay_zero_full_activation_consumes_no_rng(self):
        # The degenerate configuration draws nothing, so any rng gives the
        # same (synchronous) trajectories.
        graph = complete_graph(5)
        engine = VectorizedAsyncEngine(
            graph,
            TrimmedMeanRule(1),
            config=SimulationConfig(max_rounds=40, tolerance=1e-9),
            max_delay=0,
            update_probability=1.0,
        )
        matrix = random_input_matrix(engine.nodes, 4, rng=2)
        assert np.array_equal(
            engine.run_batch(matrix, rng=0).final_states,
            engine.run_batch(matrix, rng=999).final_states,
        )

    def test_unsafe_shared_adapter_rejected_for_batches(self):
        engine = VectorizedAsyncEngine(
            complete_graph(5),
            TrimmedMeanRule(1),
            faulty={0},
            adversary=ScalarStrategyAdapter(strategy=FrozenValueStrategy()),
            config=SimulationConfig(max_rounds=5),
            max_delay=1,
        )
        matrix = random_input_matrix(engine.nodes, 3, rng=0)
        with pytest.raises(InvalidParameterError, match="factory"):
            engine.run_batch(matrix, rng=0)

    def test_factory_adapter_supported(self):
        engine = VectorizedAsyncEngine(
            complete_graph(5),
            TrimmedMeanRule(1),
            faulty={0},
            adversary=ScalarStrategyAdapter(factory=FrozenValueStrategy),
            config=SimulationConfig(max_rounds=300, tolerance=1e-6),
            max_delay=1,
        )
        outcome = engine.run_batch(random_input_matrix(engine.nodes, 3, rng=4), rng=8)
        assert outcome.converged.all()


class TestRunSingle:
    def test_run_rejects_multi_row_inputs(self):
        engine = VectorizedAsyncEngine(complete_graph(4), TrimmedMeanRule(1))
        with pytest.raises(InvalidParameterError, match="run_batch"):
            engine.run(np.zeros((2, 4)), rng=0)

    def test_missing_inputs_rejected(self):
        engine = VectorizedAsyncEngine(complete_graph(3), TrimmedMeanRule(0))
        with pytest.raises(InvalidParameterError):
            engine.run({0: 1.0}, rng=0)

    def test_converges_under_attack_and_delay(self):
        graph = complete_graph(7)
        outcome = run_vectorized_async(
            graph,
            TrimmedMeanRule(2),
            {node: float(node) for node in graph.nodes},
            faulty={0, 1},
            adversary=ExtremePushStrategy(delta=5.0),
            max_delay=2,
            update_probability=0.9,
            max_rounds=1500,
            tolerance=1e-5,
            rng=7,
        )
        assert outcome.converged
        assert outcome.validity_ok
        assert outcome.rounds_executed > 0

    def test_history_records_every_round(self):
        graph = complete_graph(5)
        outcome = run_vectorized_async(
            graph,
            TrimmedMeanRule(1),
            {node: float(node) for node in graph.nodes},
            max_delay=1,
            max_rounds=30,
            tolerance=1e-6,
            rng=2,
        )
        assert len(outcome.history) == outcome.rounds_executed + 1
        assert outcome.history[0].round_index == 0


class TestStrictValidity:
    """``strict_validity`` turns an initial-hull escape into an exception."""

    def test_scalar_async_raises_on_real_violation(self):
        # The non-fault-tolerant linear average lets a Byzantine neighbour
        # drag fault-free values outside the initial hull immediately.
        from repro.exceptions import ValidityViolationError
        from repro.simulation import PartiallyAsynchronousEngine

        graph = complete_graph(5)
        engine = PartiallyAsynchronousEngine(
            graph,
            LinearAverageRule(f=1),
            faulty={0},
            adversary=ExtremePushStrategy(delta=50.0),
            config=SimulationConfig(max_rounds=20, strict_validity=True),
            max_delay=1,
            rng=0,
        )
        with pytest.raises(ValidityViolationError, match="hull validity"):
            engine.run({node: float(node) for node in graph.nodes})

    def test_vectorized_async_run_raises_when_state_escapes(self, monkeypatch):
        from repro.exceptions import ValidityViolationError

        engine = VectorizedAsyncEngine(
            complete_graph(4),
            TrimmedMeanRule(1),
            config=SimulationConfig(max_rounds=5, strict_validity=True),
            max_delay=1,
        )

        def escaping_step(state, buffers, round_index, delays, active_nodes):
            return np.asarray(state, dtype=float) + 1e6

        monkeypatch.setattr(engine, "step_async", escaping_step)
        with pytest.raises(ValidityViolationError, match="hull validity"):
            engine.run({node: float(node) for node in range(4)}, rng=0)

    def test_vectorized_async_batch_raises_and_names_the_row(self, monkeypatch):
        from repro.exceptions import ValidityViolationError

        engine = VectorizedAsyncEngine(
            complete_graph(4),
            TrimmedMeanRule(1),
            config=SimulationConfig(max_rounds=5, strict_validity=True),
            max_delay=1,
        )

        def escaping_step(state, buffers, round_index, delays, active_nodes):
            shifted = np.array(state, dtype=float)
            shifted[1] += 1e6  # only row 1 escapes
            return shifted

        monkeypatch.setattr(engine, "step_async", escaping_step)
        matrix = random_input_matrix(engine.nodes, 3, rng=0)
        with pytest.raises(ValidityViolationError, match="row 1"):
            engine.run_batch(matrix, rng=0)

    def test_non_strict_run_reports_instead_of_raising(self, monkeypatch):
        engine = VectorizedAsyncEngine(
            complete_graph(4),
            TrimmedMeanRule(1),
            config=SimulationConfig(max_rounds=3, strict_validity=False, tolerance=0.0),
            max_delay=1,
        )

        def escaping_step(state, buffers, round_index, delays, active_nodes):
            return np.asarray(state, dtype=float) + 1e6

        monkeypatch.setattr(engine, "step_async", escaping_step)
        outcome = engine.run({node: float(node) for node in range(4)}, rng=0)
        assert not outcome.validity_ok
