"""Shared pytest fixtures: small graphs and rule instances reused across tests."""

from __future__ import annotations

import pytest

from repro.algorithms import TrimmedMeanRule
from repro.graphs import (
    Digraph,
    chord_network,
    complete_graph,
    core_network,
    hypercube,
)


@pytest.fixture
def triangle() -> Digraph:
    """The symmetric triangle (complete graph on 3 nodes)."""
    return complete_graph(3)


@pytest.fixture
def complete4() -> Digraph:
    """Complete graph on 4 nodes (smallest feasible for f = 1)."""
    return complete_graph(4)


@pytest.fixture
def complete7() -> Digraph:
    """Complete graph on 7 nodes (smallest feasible for f = 2)."""
    return complete_graph(7)


@pytest.fixture
def core_7_2() -> Digraph:
    """Core network with n = 7, f = 2 (Section 6.1, smallest for f = 2)."""
    return core_network(7, 2)


@pytest.fixture
def chord_5_1() -> Digraph:
    """Chord network with n = 5, f = 1 (feasible; Section 6.3)."""
    return chord_network(5, 1)


@pytest.fixture
def chord_7_2() -> Digraph:
    """Chord network with n = 7, f = 2 (infeasible; Section 6.3)."""
    return chord_network(7, 2)


@pytest.fixture
def cube3() -> Digraph:
    """The 3-dimensional binary hypercube (Figure 3)."""
    return hypercube(3)


@pytest.fixture
def trimmed_f1() -> TrimmedMeanRule:
    """Algorithm 1 configured for f = 1."""
    return TrimmedMeanRule(1)


@pytest.fixture
def trimmed_f2() -> TrimmedMeanRule:
    """Algorithm 1 configured for f = 2."""
    return TrimmedMeanRule(2)
