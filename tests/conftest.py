"""Shared pytest fixtures and helpers.

Besides the small graph/rule fixtures, this module centralises what used to
be copy-pasted across ``test_engine_parity.py`` / ``test_adversary_batch.py``
/ ``test_metamorphic.py``:

* :data:`SYNC_FAMILY_CASES` — the labelled (graph family, fault set, rule,
  adversary) scenario matrix the differential suites sweep;
* :func:`make_scalar_adversary` — the shared scalar adversary factory;
* the **engine axis**: :data:`SYNC_ENGINE_KINDS` /
  :func:`run_sync_engine` run one synchronous execution through any of the
  four engine tiers (scalar reference, dense vectorized, sparse CSR, or the
  vectorized async engine degenerated to ``max_delay=0, p=1.0``), and
  :func:`make_batch_engine` builds a batch engine for the dense/sparse/async
  tiers with one shared configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import ExtremePushStrategy, StaticValueStrategy
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.graphs import (
    Digraph,
    chord_network,
    complete_graph,
    core_network,
    hypercube,
)
from repro.simulation import (
    SimulationConfig,
    SparseEngine,
    VectorizedAsyncEngine,
    VectorizedEngine,
    run_sparse,
    run_synchronous,
    run_vectorized,
    run_vectorized_async,
)

# ---------------------------------------------------------------------------
# Graph fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def triangle() -> Digraph:
    """The symmetric triangle (complete graph on 3 nodes)."""
    return complete_graph(3)


@pytest.fixture
def complete4() -> Digraph:
    """Complete graph on 4 nodes (smallest feasible for f = 1)."""
    return complete_graph(4)


@pytest.fixture
def complete7() -> Digraph:
    """Complete graph on 7 nodes (smallest feasible for f = 2)."""
    return complete_graph(7)


@pytest.fixture
def core_7_2() -> Digraph:
    """Core network with n = 7, f = 2 (Section 6.1, smallest for f = 2)."""
    return core_network(7, 2)


@pytest.fixture
def chord_5_1() -> Digraph:
    """Chord network with n = 5, f = 1 (feasible; Section 6.3)."""
    return chord_network(5, 1)


@pytest.fixture
def chord_7_2() -> Digraph:
    """Chord network with n = 7, f = 2 (infeasible; Section 6.3)."""
    return chord_network(7, 2)


@pytest.fixture
def cube3() -> Digraph:
    """The 3-dimensional binary hypercube (Figure 3)."""
    return hypercube(3)


@pytest.fixture
def trimmed_f1() -> TrimmedMeanRule:
    """Algorithm 1 configured for f = 1."""
    return TrimmedMeanRule(1)


@pytest.fixture
def trimmed_f2() -> TrimmedMeanRule:
    """Algorithm 1 configured for f = 2."""
    return TrimmedMeanRule(2)


# ---------------------------------------------------------------------------
# Shared scenario matrix (deduplicated graph families)
# ---------------------------------------------------------------------------

#: Labelled synchronous scenarios: (label, graph factory, f, faulty,
#: rule factory, adversary kind).  The differential suites parametrize over
#: this one matrix instead of each maintaining its own copy.
SYNC_FAMILY_CASES = [
    ("complete4-mean", lambda: complete_graph(4), 1, {0}, TrimmedMeanRule, "extreme-push"),
    ("complete4-mid", lambda: complete_graph(4), 1, {0}, TrimmedMidpointRule, "extreme-push"),
    ("complete5-clean", lambda: complete_graph(5), 1, set(), TrimmedMeanRule, "none"),
    ("complete7-static", lambda: complete_graph(7), 2, {0, 6}, TrimmedMeanRule, "static"),
    ("complete7-mid", lambda: complete_graph(7), 2, {1, 2}, TrimmedMidpointRule, "extreme-push"),
    ("core7", lambda: core_network(7, 2), 2, {5, 6}, TrimmedMeanRule, "extreme-push"),
    ("core8", lambda: core_network(8, 1), 1, {7}, TrimmedMeanRule, "static"),
    ("core10-mid", lambda: core_network(10, 2), 2, {8, 9}, TrimmedMidpointRule, "static"),
    ("chord5", lambda: chord_network(5, 1), 1, {2}, TrimmedMeanRule, "extreme-push"),
    ("chord9-clean", lambda: chord_network(9, 1), 1, set(), TrimmedMidpointRule, "none"),
    # Large-degree case: trim windows wider than NumPy's pairwise-summation
    # block (128), pinning the engines' sequential summation order.
    ("core150-wide", lambda: core_network(150, 2), 2, {148, 149}, TrimmedMeanRule, "extreme-push"),
]

#: Case labels, for readable parametrized test ids.
SYNC_FAMILY_IDS = [case[0] for case in SYNC_FAMILY_CASES]


def make_scalar_adversary(kind: str):
    """Return a fresh scalar adversary for ``kind`` (``none`` → ``None``)."""
    if kind == "none":
        return None
    if kind == "extreme-push":
        return ExtremePushStrategy(delta=2.0)
    if kind == "static":
        return StaticValueStrategy(7.5)
    raise AssertionError(kind)


# ---------------------------------------------------------------------------
# Engine axis
# ---------------------------------------------------------------------------

#: The synchronous engine tiers every differential suite sweeps: the scalar
#: reference, the dense vectorized engine, the sparse CSR engine, and the
#: vectorized async engine degenerated to the synchronous point.
SYNC_ENGINE_KINDS = ("scalar", "dense", "sparse", "async-degenerate")

#: The batch-capable engine tiers (everything but the scalar reference).
BATCH_ENGINE_KINDS = ("dense", "sparse", "async-degenerate")


def run_sync_engine(
    engine_kind: str,
    graph,
    rule,
    inputs,
    *,
    faulty=frozenset(),
    adversary=None,
    **kwargs,
):
    """Run one synchronous execution through the requested engine tier.

    ``kwargs`` are forwarded to the functional runner (``max_rounds``,
    ``tolerance``, ``record_history``, …); the async-degenerate tier pins
    ``max_delay=0, update_probability=1.0`` so its trajectory must equal the
    synchronous ones.
    """
    if engine_kind == "scalar":
        return run_synchronous(
            graph, rule, inputs, faulty=faulty, adversary=adversary, **kwargs
        )
    if engine_kind == "dense":
        return run_vectorized(
            graph, rule, inputs, faulty=faulty, adversary=adversary, **kwargs
        )
    if engine_kind == "sparse":
        return run_sparse(
            graph, rule, inputs, faulty=faulty, adversary=adversary, **kwargs
        )
    if engine_kind == "async-degenerate":
        return run_vectorized_async(
            graph,
            rule,
            inputs,
            faulty=faulty,
            adversary=adversary,
            max_delay=0,
            update_probability=1.0,
            **kwargs,
        )
    raise AssertionError(engine_kind)


def make_batch_engine(
    engine_kind: str,
    graph,
    rule,
    *,
    faulty=frozenset(),
    adversary=None,
    config: SimulationConfig | None = None,
    dtype=np.float64,
    max_plane_bytes: int | None = None,
    schedule=None,
):
    """Build a batch engine of the requested tier with one shared config.

    The sparse tier honours ``dtype`` / ``max_plane_bytes``; the dense and
    async-degenerate tiers ignore them (they are float64-only).  Note that
    under a schedule that actually masks something the async-degenerate tier
    intentionally leaves the synchronous equality set (never-delivered
    semantics instead of self-substitution).
    """
    if engine_kind == "dense":
        return VectorizedEngine(
            graph,
            rule,
            faulty=faulty,
            adversary=adversary,
            config=config,
            schedule=schedule,
        )
    if engine_kind == "sparse":
        return SparseEngine(
            graph,
            rule,
            faulty=faulty,
            adversary=adversary,
            config=config,
            schedule=schedule,
            dtype=dtype,
            max_plane_bytes=max_plane_bytes,
        )
    if engine_kind == "async-degenerate":
        return VectorizedAsyncEngine(
            graph,
            rule,
            faulty=faulty,
            adversary=adversary,
            config=config,
            max_delay=0,
            update_probability=1.0,
            schedule=schedule,
        )
    raise AssertionError(engine_kind)
