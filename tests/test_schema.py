"""Tests for the typed row-schema layer (``repro.sweeps.schema``).

Covers the runtime descriptor itself (validation errors with cell
coordinates, JSON persistence, fingerprints), the TypedDict derivation
rules, the schema-driven NPZ extraction that fixed the first-row
type-sniffing heuristic, and — parametrized over **every** registered
experiment — JSON round-trip fidelity of schema-shaped rows, a tiny-grid
runner smoke proving schema↔row agreement, pinned-seed bit-identity of two
full sweeps, and the loud failure modes (schema drift on resume, corrupted
shard/aggregate documents).
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import TypedDict

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, SchemaViolationError
from repro.sweeps.orchestrator import run_sweep
from repro.sweeps.registry import all_experiments, get_experiment
from repro.sweeps.schema import (
    Column,
    RowSchema,
    numeric_arrays,
    schema_from_typeddict,
)
from repro.sweeps.store import RunStore, numeric_columns

#: One representative value per column kind for synthetic rows.
SAMPLE_VALUES = {"int": 3, "float": 0.5, "bool": True, "str": "x"}

#: One *cheap* grid cell per registered experiment (grid keys only), small
#: enough that running every runner once stays a smoke test.
TINY_CELLS: dict[str, dict[str, object]] = {
    "ablation": {"graph": "complete n=7 f=2", "rounds": 30, "tolerance": 1e-6},
    "adversary_showdown": {
        "case": "complete n=7 f=2",
        "strategy": "static",
        "batch": 4,
        "rounds": 30,
    },
    "asynchronous": {
        "case": "complete n=6 f=1",
        "max_delay": 1,
        "update_probability": 0.75,
        "batch": 4,
        "rounds": 60,
        "tolerance": 1e-5,
    },
    "checker": {"case": "complete n=4 f=1", "random_attempts": 20},
    "checker_scaling": {"case": "chord n=16 f=1"},
    "churn_sweep": {"p_awake": 0.9, "batch": 4, "rounds": 30},
    "convergence_rate": {
        "case": "complete n=4 f=1",
        "batch": 4,
        "rounds": 60,
        "tolerance": 1e-7,
    },
    "corollaries": {"corollary": 2, "f": 1},
    "dynamic_topology": {
        "case": "complete n=7 f=2",
        "schedule_kind": "static",
        "batch": 4,
        "rounds": 30,
    },
    "families": {"study": "core"},
    "feasibility_at_scale": {
        "case": "hetring n=100 f=2 extra=0.5",
        "witness_attempts": 5,
    },
    "large_n": {"n": 200, "dtype": "float64", "batch": 2, "rounds": 10},
    "necessity": {"case": "chord n=7 f=2", "rounds": 30},
    "robustness": {"case": "complete n=4 f=1", "batch": 4},
    "validity": {"graph": "complete n=7 f=2", "rounds": 30},
}

#: Pinned-seed sweeps whose aggregate rows must stay bit-identical across
#: refactors (the hashes were captured from the pre-schema code path).
GOLDEN_SWEEPS = [
    (
        "convergence_rate",
        ("case=complete n=4 f=1,core n=7 f=2", "batch=4", "rounds=60"),
        "00307d051f6437d7cc66d0f120463f11b3d13ac3430c6b9421c3501ff747c266",
        2,
    ),
    (
        "necessity",
        ("case=ring n=6 f=1",),
        "d757e8683009b3da1b4a883a274978673cbd49fb717f87102c58854471d05033",
        1,
    ),
]


def rows_digest(rows: object) -> str:
    """The canonical digest the golden hashes were captured with."""
    return hashlib.sha256(
        json.dumps(rows, default=repr).encode()
    ).hexdigest()


class DemoRow(TypedDict):
    """Fixture row type exercising all four kinds plus an optional column."""

    case: str
    n: int
    spread: float
    converged: bool
    rounds: int | None


DEMO_ROLES = {
    "case": "label",
    "n": "parameter",
    "spread": "metric",
    "converged": "verdict",
    "rounds": "metric",
}

DEMO_SCHEMA = schema_from_typeddict(DemoRow, roles=DEMO_ROLES)

DEMO_ROW: DemoRow = {
    "case": "c",
    "n": 4,
    "spread": 0.25,
    "converged": True,
    "rounds": 7,
}


class TestColumn:
    def test_rejects_unknown_kind_and_role(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            Column(name="a", kind="complex", role="metric")
        with pytest.raises(InvalidParameterError, match="role"):
            Column(name="a", kind="int", role="output")


class TestRowSchema:
    def test_duplicate_and_empty_columns_rejected(self):
        column = Column(name="a", kind="int", role="metric")
        with pytest.raises(InvalidParameterError, match="duplicate"):
            RowSchema(name="s", columns=(column, column))
        with pytest.raises(InvalidParameterError, match="no columns"):
            RowSchema(name="s", columns=())

    def test_column_lookup_names_known_columns_on_miss(self):
        with pytest.raises(InvalidParameterError, match="case, n, spread"):
            DEMO_SCHEMA.column("missing")

    def test_validate_row_accepts_the_typed_row(self):
        DEMO_SCHEMA.validate_row(DEMO_ROW)
        DEMO_SCHEMA.validate_row({**DEMO_ROW, "rounds": None})

    def test_unknown_column_names_the_schema(self):
        with pytest.raises(SchemaViolationError, match="unknown column 'typo'"):
            DEMO_SCHEMA.validate_row({**DEMO_ROW, "typo": 1})

    def test_missing_required_column(self):
        row = dict(DEMO_ROW)
        del row["converged"]
        with pytest.raises(
            SchemaViolationError, match="missing required column 'converged'"
        ):
            DEMO_SCHEMA.validate_row(row)

    def test_none_only_allowed_for_optional_columns(self):
        with pytest.raises(SchemaViolationError, match="does not allow None"):
            DEMO_SCHEMA.validate_row({**DEMO_ROW, "spread": None})

    def test_bool_is_not_an_int_or_float(self):
        with pytest.raises(SchemaViolationError, match="expects kind 'int'"):
            DEMO_SCHEMA.validate_row({**DEMO_ROW, "n": True})
        with pytest.raises(SchemaViolationError, match="expects kind 'float'"):
            DEMO_SCHEMA.validate_row({**DEMO_ROW, "spread": False})

    def test_int_accepted_where_float_expected(self):
        DEMO_SCHEMA.validate_row({**DEMO_ROW, "spread": 1})

    def test_numpy_scalars_rejected_with_conversion_hint(self):
        with pytest.raises(SchemaViolationError, match="int\\(\\)/bool\\(\\)"):
            DEMO_SCHEMA.validate_row({**DEMO_ROW, "n": np.int64(4)})
        with pytest.raises(SchemaViolationError, match="converted with"):
            DEMO_SCHEMA.validate_row({**DEMO_ROW, "converged": np.bool_(True)})
        # np.floating is a float subclass and JSON-exact: accepted.
        DEMO_SCHEMA.validate_row({**DEMO_ROW, "spread": np.float64(0.5)})

    def test_context_and_row_index_reach_the_message(self):
        bad = {**DEMO_ROW, "spread": "oops"}
        with pytest.raises(
            SchemaViolationError, match="shard 3, cell 7, row 1"
        ):
            DEMO_SCHEMA.validate_rows(
                [DEMO_ROW, bad], context="shard 3, cell 7"
            )

    def test_rows_must_be_a_list_of_mappings(self):
        with pytest.raises(SchemaViolationError, match="must be a list"):
            DEMO_SCHEMA.validate_rows("nope")
        with pytest.raises(SchemaViolationError, match="row 0"):
            DEMO_SCHEMA.validate_rows([42])

    def test_json_round_trip_and_fingerprint_stability(self):
        document = json.loads(json.dumps(DEMO_SCHEMA.to_json()))
        rebuilt = RowSchema.from_json(document)
        assert rebuilt == DEMO_SCHEMA
        assert rebuilt.fingerprint() == DEMO_SCHEMA.fingerprint()

    def test_fingerprint_tracks_column_changes(self):
        changed = RowSchema(
            name=DEMO_SCHEMA.name,
            columns=DEMO_SCHEMA.columns[:-1]
            + (Column(name="rounds", kind="int", role="metric"),),
        )
        assert changed.fingerprint() != DEMO_SCHEMA.fingerprint()

    def test_from_json_rejects_malformed_documents(self):
        with pytest.raises(SchemaViolationError, match="'name' string"):
            RowSchema.from_json({"columns": []})
        with pytest.raises(SchemaViolationError, match="must be a mapping"):
            RowSchema.from_json({"name": "s", "columns": ["nope"]})
        with pytest.raises(SchemaViolationError, match="missing key"):
            RowSchema.from_json(
                {"name": "s", "columns": [{"name": "a", "kind": "int"}]}
            )


class TestSchemaFromTypedDict:
    def test_roles_must_cover_exactly_the_typeddict_keys(self):
        roles = dict(DEMO_ROLES)
        roles["extra"] = "metric"
        del roles["spread"]
        with pytest.raises(
            InvalidParameterError,
            match="missing from roles: spread; not in the TypedDict: extra",
        ):
            schema_from_typeddict(DemoRow, roles=roles)

    def test_optional_value_and_absent_key_are_distinct(self):
        class PartialRow(TypedDict, total=False):
            verdict: bool

        schema = schema_from_typeddict(PartialRow, roles={"verdict": "verdict"})
        assert schema.column("verdict").required is False
        assert schema.column("verdict").optional is False
        rounds = DEMO_SCHEMA.column("rounds")
        assert rounds.optional is True and rounds.required is True

    def test_column_order_follows_roles_declaration(self):
        reordered = {key: DEMO_ROLES[key] for key in reversed(DEMO_ROLES)}
        schema = schema_from_typeddict(DemoRow, roles=reordered)
        assert schema.names == tuple(reversed(DEMO_SCHEMA.names))

    def test_unsupported_value_type_rejected(self):
        class BadRow(TypedDict):
            values: list

        with pytest.raises(InvalidParameterError, match="unsupported value"):
            schema_from_typeddict(BadRow, roles={"values": "metric"})


class TestNumericColumnsWithSchema:
    """The satellite fix: no more first-row type sniffing."""

    def test_none_in_first_row_no_longer_drops_the_column(self):
        rows = [
            {**DEMO_ROW, "rounds": None},
            {**DEMO_ROW, "rounds": 9},
        ]
        columns = numeric_columns(rows, schema=DEMO_SCHEMA)
        assert columns["rounds"].dtype == np.float64
        assert math.isnan(columns["rounds"][0]) and columns["rounds"][1] == 9.0
        # The schema-less legacy heuristic drops it (pinned so the fix in
        # the schema path is visibly a behaviour change, not an accident).
        assert "rounds" not in numeric_columns(rows)

    def test_fully_present_columns_keep_their_exact_dtype(self):
        rows = [DEMO_ROW, {**DEMO_ROW, "n": 5}]
        columns = numeric_columns(rows, schema=DEMO_SCHEMA)
        assert columns["n"].dtype == np.int64
        assert columns["converged"].dtype == np.bool_
        assert "case" not in columns

    def test_extra_non_schema_keys_still_sniffed(self):
        rows = [dict(DEMO_ROW, cell_index=0), dict(DEMO_ROW, cell_index=1)]
        columns = numeric_columns(rows, schema=DEMO_SCHEMA)
        assert columns["cell_index"].tolist() == [0, 1]

    def test_all_none_column_is_omitted(self):
        rows = [{**DEMO_ROW, "rounds": None}, {**DEMO_ROW, "rounds": None}]
        assert "rounds" not in numeric_arrays(rows, DEMO_SCHEMA)


def synthetic_row(schema: RowSchema, sparse: bool) -> dict[str, object]:
    """A row matching ``schema``; ``sparse`` exercises None/absent/NaN."""
    row: dict[str, object] = {}
    for column in schema.columns:
        if sparse and not column.required:
            continue
        if sparse and column.optional:
            row[column.name] = None
        elif sparse and column.kind == "float":
            row[column.name] = float("nan")
        else:
            row[column.name] = SAMPLE_VALUES[column.kind]
    return row


class TestRegisteredSchemas:
    """Every registered experiment's schema, exercised uniformly."""

    @pytest.fixture(params=sorted(all_experiments()))
    def spec(self, request):
        return get_experiment(request.param)

    def test_schema_json_round_trip(self, spec):
        rebuilt = RowSchema.from_json(
            json.loads(json.dumps(spec.schema.to_json()))
        )
        assert rebuilt == spec.schema
        assert rebuilt.fingerprint() == spec.schema.fingerprint()

    @pytest.mark.parametrize("sparse", [False, True], ids=["dense", "sparse"])
    def test_rows_survive_the_shard_json_encoding(self, spec, sparse):
        row = synthetic_row(spec.schema, sparse)
        spec.schema.validate_row(row)
        # The exact encoder configuration the store uses for shard files.
        decoded = json.loads(json.dumps({"rows": [row]}, default=repr))
        spec.schema.validate_rows(decoded["rows"])
        revived = decoded["rows"][0]
        assert list(revived) == list(row)
        for key, value in row.items():
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(revived[key])
            else:
                assert revived[key] == value
                assert type(revived[key]) is type(value)

    def test_schema_covered_by_tiny_cells(self, spec):
        assert spec.name in TINY_CELLS
        assert set(TINY_CELLS[spec.name]) <= set(spec.grid)


class TestTinyGridSmoke:
    """Every runner's real rows agree with its declared schema."""

    @pytest.mark.parametrize("name", sorted(TINY_CELLS))
    def test_runner_rows_match_schema(self, name):
        spec = get_experiment(name)
        cell = dict(TINY_CELLS[name])
        if spec.accepts_seed:
            cell["seed"] = 0
        rows = spec.runner(**cell)
        assert rows, name
        spec.schema.validate_rows(list(rows))
        # The first row carries only declared columns, in particular the
        # required ones — the schema is neither wider nor narrower than
        # what the runner actually emits.
        required = {
            column.name
            for column in spec.schema.columns
            if column.required
        }
        assert required <= set(rows[0]) <= set(spec.schema.names)


class TestGoldenBitIdentity:
    """Pinned-seed sweeps reproduce their pre-refactor aggregates exactly."""

    @pytest.mark.parametrize(
        "name, overrides, digest, row_count",
        GOLDEN_SWEEPS,
        ids=[entry[0] for entry in GOLDEN_SWEEPS],
    )
    def test_aggregate_rows_bit_identical(
        self, tmp_path, name, overrides, digest, row_count
    ):
        result = run_sweep(
            name,
            overrides,
            seed=0,
            workers=1,
            results_root=tmp_path,
            run_id="golden",
        )
        assert len(result.rows) == row_count
        assert rows_digest(result.rows) == digest
        aggregate = RunStore(tmp_path / "golden").read_aggregate()
        assert rows_digest(aggregate["rows"]) == digest


class TestSchemaDriftAndCorruption:
    """Stored runs from a different schema or edited by hand fail loudly."""

    OVERRIDES = ("case=ring n=6 f=1",)

    def _run(self, tmp_path, run_id="drift"):
        run_sweep(
            "necessity",
            self.OVERRIDES,
            results_root=tmp_path,
            run_id=run_id,
        )
        return RunStore(tmp_path / run_id)

    def test_resume_after_schema_drift_names_run_and_fingerprints(
        self, tmp_path
    ):
        store = self._run(tmp_path)
        manifest = json.loads(store.manifest_path.read_text())
        columns = manifest["row_schema"]["columns"]
        changed = next(c for c in columns if c["name"] == "final_spread")
        changed["kind"] = "int"
        store.write_manifest(manifest)
        stored_prefix = RowSchema.from_json(
            manifest["row_schema"]
        ).fingerprint()[:12]
        current_prefix = get_experiment("necessity").schema.fingerprint()[:12]
        with pytest.raises(SchemaViolationError) as excinfo:
            run_sweep(
                "necessity",
                self.OVERRIDES,
                results_root=tmp_path,
                run_id="drift",
            )
        message = str(excinfo.value)
        assert "'drift'" in message and "drifted" in message
        assert stored_prefix in message and current_prefix in message

    def test_manifest_missing_required_key_fails_on_read(self, tmp_path):
        store = self._run(tmp_path, "broken")
        manifest = json.loads(store.manifest_path.read_text())
        del manifest["row_schema"]
        store.write_manifest(manifest)
        with pytest.raises(SchemaViolationError, match="row_schema"):
            store.read_manifest()

    def test_corrupted_shard_row_fails_with_coordinates(self, tmp_path):
        store = self._run(tmp_path, "shardfix")
        payload = json.loads(store.shard_path(0).read_text())
        payload["cells"][0]["rows"][0]["rounds"] = "sixty"
        store.write_shard(0, payload)
        schema = get_experiment("necessity").schema
        with pytest.raises(
            SchemaViolationError, match="cell 0, row 0.*'rounds'"
        ):
            store.read_shard(0, schema=schema)

    def test_aggregate_row_count_mismatch_rejected(self, tmp_path):
        store = self._run(tmp_path, "agg")
        payload = json.loads(store.aggregate_path.read_text())
        payload["row_count"] += 1
        store.run_dir.mkdir(exist_ok=True)
        store.aggregate_path.write_text(json.dumps(payload))
        with pytest.raises(SchemaViolationError, match="row_count"):
            store.read_aggregate()

    def test_aggregate_schema_pin_mismatch_rejected(self, tmp_path):
        store = self._run(tmp_path, "pin")
        with pytest.raises(SchemaViolationError, match="does not match"):
            store.read_aggregate(schema=DEMO_SCHEMA)
