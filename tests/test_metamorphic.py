"""Seeded metamorphic/property tests for the simulation engines.

Three families of properties, no new dependencies:

* **Relabeling** — renaming nodes through an order-preserving bijection
  permutes every trace consistently (the RNG-stream contract draws in
  ``repr``-sorted order, so order-preserving maps keep the streams aligned).
* **Affine equivalence** — the trimmed rules are translation- and
  positive-scale-equivariant, so affinely shifting all inputs affinely
  shifts every fault-free state of every round.
* **Hull invariants** — every engine tier (synchronous and asynchronous)
  keeps every fault-free value inside the initial fault-free hull at every
  recorded round, even under the extreme-pushing adversary.
* **Float32 tolerance contract** — the sparse engine's ``dtype=float32``
  tier is not bit-identical to float64, but hull containment and the
  monotone nesting of the fault-free hull hold *exactly* (no epsilon) at
  float32, and float32 trajectories stay close to their float64 twins.
  The contract is documented in ``docs/performance.md``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import (
    SYNC_ENGINE_KINDS,
    make_scalar_adversary,
    run_sync_engine,
)
from repro.adversary import ExtremePushStrategy, StaticValueStrategy
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.graphs import Digraph, complete_graph, core_network
from repro.simulation import (
    SimulationConfig,
    SparseEngine,
    run_partially_asynchronous,
    run_synchronous,
    run_vectorized_async,
    uniform_random_inputs,
)
from repro.simulation.vectorized import random_input_matrix


def _relabelled(graph: Digraph, mapping) -> Digraph:
    return Digraph(
        nodes=[mapping[node] for node in graph.nodes],
        edges=[(mapping[s], mapping[t]) for s, t in graph.edges],
    )


class TestRelabeling:
    """Order-preserving node renames permute traces consistently."""

    @pytest.mark.parametrize("engine_kind", SYNC_ENGINE_KINDS)
    def test_sync_trace_permutes(self, engine_kind):
        graph = core_network(8, 1)
        # repr-order preserving: 0..7 -> "n0".."n7".
        mapping = {i: f"n{i}" for i in range(8)}
        inputs = uniform_random_inputs(graph.nodes, rng=2)
        kwargs = dict(
            faulty=frozenset({7}),
            max_rounds=20,
            tolerance=0.0,
            record_history=True,
        )
        base = run_sync_engine(
            engine_kind,
            graph,
            TrimmedMeanRule(1),
            inputs,
            adversary=make_scalar_adversary("extreme-push"),
            **kwargs,
        )
        renamed = run_sync_engine(
            engine_kind,
            _relabelled(graph, mapping),
            TrimmedMeanRule(1),
            {mapping[node]: value for node, value in inputs.items()},
            adversary=make_scalar_adversary("extreme-push"),
            **{**kwargs, "faulty": frozenset({mapping[7]})},
        )
        assert len(base.history) == len(renamed.history)
        for base_record, renamed_record in zip(base.history, renamed.history):
            for node in graph.nodes:
                assert base_record.values[node] == renamed_record.values[mapping[node]]

    @pytest.mark.parametrize("delay,probability", [(0, 1.0), (2, 0.7)])
    def test_async_trace_permutes(self, delay, probability):
        graph = complete_graph(7)
        # repr-order preserving: 0..6 -> "n0".."n6".
        mapping = {i: f"n{i}" for i in range(7)}
        inputs = uniform_random_inputs(graph.nodes, rng=2)
        relabelled_inputs = {mapping[node]: value for node, value in inputs.items()}
        base = run_partially_asynchronous(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty={0, 1},
            adversary=ExtremePushStrategy(1.0),
            max_delay=delay,
            update_probability=probability,
            max_rounds=40,
            tolerance=1e-9,
            rng=5,
        )
        renamed = run_partially_asynchronous(
            _relabelled(graph, mapping),
            TrimmedMeanRule(2),
            relabelled_inputs,
            faulty={mapping[0], mapping[1]},
            adversary=ExtremePushStrategy(1.0),
            max_delay=delay,
            update_probability=probability,
            max_rounds=40,
            tolerance=1e-9,
            rng=5,
        )
        assert len(base.history) == len(renamed.history)
        for base_record, renamed_record in zip(base.history, renamed.history):
            for node in graph.nodes:
                assert base_record.values[node] == renamed_record.values[mapping[node]]

    def test_vectorized_async_trace_permutes(self):
        graph = core_network(8, 1)
        mapping = {i: f"v{i}" for i in range(8)}
        inputs = uniform_random_inputs(graph.nodes, rng=3)
        base = run_vectorized_async(
            graph,
            TrimmedMeanRule(1),
            inputs,
            faulty={7},
            adversary=StaticValueStrategy(40.0),
            max_delay=2,
            max_rounds=30,
            tolerance=1e-9,
            rng=9,
        )
        renamed = run_vectorized_async(
            _relabelled(graph, mapping),
            TrimmedMeanRule(1),
            {mapping[node]: value for node, value in inputs.items()},
            faulty={mapping[7]},
            adversary=StaticValueStrategy(40.0),
            max_delay=2,
            max_rounds=30,
            tolerance=1e-9,
            rng=9,
        )
        for base_record, renamed_record in zip(base.history, renamed.history):
            for node in graph.nodes:
                assert base_record.values[node] == renamed_record.values[mapping[node]]


class TestAffineEquivalence:
    """Affine input shifts affinely shift every fault-free state."""

    @pytest.mark.parametrize("engine_kind", ["scalar", "dense", "sparse"])
    @pytest.mark.parametrize("scale,shift", [(2.0, 5.0), (0.5, -3.0), (10.0, 0.0)])
    def test_synchronous(self, scale, shift, engine_kind):
        graph = complete_graph(6)
        inputs = uniform_random_inputs(graph.nodes, rng=4)
        transformed = {node: scale * value + shift for node, value in inputs.items()}
        base = run_sync_engine(
            engine_kind, graph, TrimmedMeanRule(1), inputs,
            max_rounds=15, tolerance=0.0, stop_on_convergence=False,
        )
        moved = run_sync_engine(
            engine_kind, graph, TrimmedMeanRule(1), transformed,
            max_rounds=15, tolerance=0.0, stop_on_convergence=False,
        )
        for base_record, moved_record in zip(base.history, moved.history):
            for node in graph.nodes:
                assert moved_record.values[node] == pytest.approx(
                    scale * base_record.values[node] + shift, abs=1e-9 * max(1, scale)
                )

    @pytest.mark.parametrize("rule_factory", [TrimmedMeanRule, TrimmedMidpointRule])
    def test_asynchronous_fault_free(self, rule_factory):
        graph = complete_graph(6)
        scale, shift = 3.0, -2.0
        inputs = uniform_random_inputs(graph.nodes, rng=6)
        transformed = {node: scale * value + shift for node, value in inputs.items()}
        # Same seed -> same delay draws and activation coins: the executions
        # are structurally identical, only the values move affinely.
        base = run_vectorized_async(
            graph, rule_factory(1), inputs, max_delay=2, update_probability=0.8,
            max_rounds=25, tolerance=0.0, rng=12,
        )
        moved = run_vectorized_async(
            graph, rule_factory(1), transformed, max_delay=2, update_probability=0.8,
            max_rounds=25, tolerance=0.0, rng=12,
        )
        for base_record, moved_record in zip(base.history, moved.history):
            for node in graph.nodes:
                assert moved_record.values[node] == pytest.approx(
                    scale * base_record.values[node] + shift, abs=1e-8
                )


class TestHullInvariants:
    """Initial-hull validity holds at every recorded round of both engines."""

    @pytest.mark.parametrize("runner", [run_partially_asynchronous, run_vectorized_async])
    @pytest.mark.parametrize("delay,probability", [(1, 1.0), (3, 0.6)])
    def test_fault_free_values_stay_in_initial_hull(self, runner, delay, probability):
        graph = complete_graph(7)
        faulty = frozenset({0, 1})
        inputs = uniform_random_inputs(graph.nodes, rng=8)
        hull_low = min(v for n, v in inputs.items() if n not in faulty)
        hull_high = max(v for n, v in inputs.items() if n not in faulty)
        outcome = runner(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(delta=10.0),
            max_delay=delay,
            update_probability=probability,
            max_rounds=150,
            tolerance=1e-6,
            rng=31,
        )
        assert outcome.validity_ok
        assert outcome.history, "history must be recorded for this property"
        for record in outcome.history:
            for node, value in record.values.items():
                if node in faulty:
                    continue
                assert hull_low - 1e-9 <= value <= hull_high + 1e-9

    @pytest.mark.parametrize("engine_kind", SYNC_ENGINE_KINDS)
    def test_sync_engines_stay_in_initial_hull(self, engine_kind):
        graph = core_network(10, 2)
        faulty = frozenset({8, 9})
        inputs = uniform_random_inputs(graph.nodes, rng=14)
        hull_low = min(v for n, v in inputs.items() if n not in faulty)
        hull_high = max(v for n, v in inputs.items() if n not in faulty)
        outcome = run_sync_engine(
            engine_kind,
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(delta=10.0),
            max_rounds=100,
            tolerance=1e-6,
        )
        assert outcome.validity_ok
        assert outcome.history
        for record in outcome.history:
            for node, value in record.values.items():
                if node in faulty:
                    continue
                assert hull_low - 1e-9 <= value <= hull_high + 1e-9


class TestFloat32Contract:
    """The sparse engine's float32 tier keeps the paper's invariants exactly.

    float32 runs are *not* bit-identical to float64 runs — that is the
    documented trade (see ``docs/performance.md``) — but the contract is
    that the two validity-bearing properties hold with **zero** epsilon:

    * **hull containment**: every fault-free value of every round lies
      inside the initial fault-free hull (as packed, i.e. after the inputs
      themselves round to float32);
    * **monotone hull nesting**: the fault-free ``[min, max]`` interval of
      round ``t + 1`` is contained in round ``t``'s.

    Both follow from the kernel's clamp of the trimmed-mean into the local
    trim hull (a mathematical no-op) and from the midpoint identity
    ``a <= (a + b) / 2 <= b`` holding in round-to-nearest.
    """

    def _engine(self, rule_factory, dtype):
        graph = core_network(12, 2)
        return SparseEngine(
            graph,
            rule_factory(2),
            faulty=frozenset({10, 11}),
            adversary=ExtremePushStrategy(delta=25.0),
            config=SimulationConfig(
                max_rounds=60, tolerance=0.0, stop_on_convergence=False
            ),
            dtype=dtype,
        )

    @pytest.mark.parametrize(
        "rule_factory", [TrimmedMeanRule, TrimmedMidpointRule]
    )
    def test_hull_containment_exact_at_float32(self, rule_factory):
        engine = self._engine(rule_factory, np.float32)
        state = engine.pack_inputs(random_input_matrix(engine.nodes, 8, rng=3))
        assert state.dtype == np.float32
        ff = engine._ff_cols
        hull_low = state[:, ff].min(axis=1)
        hull_high = state[:, ff].max(axis=1)
        for round_index in range(1, 41):
            state = engine.step_matrix(state, round_index)
            assert (state[:, ff] >= hull_low[:, None]).all(), round_index
            assert (state[:, ff] <= hull_high[:, None]).all(), round_index

    @pytest.mark.parametrize(
        "rule_factory", [TrimmedMeanRule, TrimmedMidpointRule]
    )
    def test_hull_nesting_monotone_exact_at_float32(self, rule_factory):
        engine = self._engine(rule_factory, np.float32)
        state = engine.pack_inputs(random_input_matrix(engine.nodes, 8, rng=9))
        ff = engine._ff_cols
        low = state[:, ff].min(axis=1)
        high = state[:, ff].max(axis=1)
        for round_index in range(1, 41):
            state = engine.step_matrix(state, round_index)
            new_low = state[:, ff].min(axis=1)
            new_high = state[:, ff].max(axis=1)
            assert (new_low >= low).all(), round_index
            assert (new_high <= high).all(), round_index
            low, high = new_low, new_high

    @pytest.mark.parametrize(
        "rule_factory", [TrimmedMeanRule, TrimmedMidpointRule]
    )
    def test_float32_tracks_float64_trajectory(self, rule_factory):
        """float32 states shadow the float64 run within a few ulps-worth.

        Inputs live in ``[0, 1]``; with the contraction of the trimmed
        rules, accumulated float32 rounding stays far below the 1e-3
        closeness bound used here (the bound is deliberately loose — the
        *exact* guarantees are the hull properties above).
        """
        engines = {
            dtype: self._engine(rule_factory, dtype)
            for dtype in (np.float64, np.float32)
        }
        matrix = random_input_matrix(engines[np.float64].nodes, 4, rng=21)
        states = {
            dtype: engine.pack_inputs(matrix)
            for dtype, engine in engines.items()
        }
        for round_index in range(1, 21):
            for dtype, engine in engines.items():
                states[dtype] = engine.step_matrix(states[dtype], round_index)
        ff = engines[np.float64]._ff_cols
        assert np.allclose(
            states[np.float64][:, ff],
            states[np.float32][:, ff].astype(np.float64),
            atol=1e-3,
            rtol=0.0,
        )
