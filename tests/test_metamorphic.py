"""Seeded metamorphic/property tests for the simulation engines.

Three families of properties, no new dependencies:

* **Relabeling** — renaming nodes through an order-preserving bijection
  permutes every trace consistently (the RNG-stream contract draws in
  ``repr``-sorted order, so order-preserving maps keep the streams aligned).
* **Affine equivalence** — the trimmed rules are translation- and
  positive-scale-equivariant, so affinely shifting all inputs affinely
  shifts every fault-free state of every round.
* **Hull invariants** — both asynchronous engines keep every fault-free
  value inside the initial fault-free hull at every recorded round, even
  under the extreme-pushing adversary.
"""

from __future__ import annotations

import pytest

from repro.adversary import ExtremePushStrategy, StaticValueStrategy
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.graphs import Digraph, complete_graph, core_network
from repro.simulation import (
    run_partially_asynchronous,
    run_synchronous,
    run_vectorized_async,
    uniform_random_inputs,
)


def _relabelled(graph: Digraph, mapping) -> Digraph:
    return Digraph(
        nodes=[mapping[node] for node in graph.nodes],
        edges=[(mapping[s], mapping[t]) for s, t in graph.edges],
    )


class TestRelabeling:
    """Order-preserving node renames permute traces consistently."""

    @pytest.mark.parametrize("delay,probability", [(0, 1.0), (2, 0.7)])
    def test_async_trace_permutes(self, delay, probability):
        graph = complete_graph(7)
        # repr-order preserving: 0..6 -> "n0".."n6".
        mapping = {i: f"n{i}" for i in range(7)}
        inputs = uniform_random_inputs(graph.nodes, rng=2)
        relabelled_inputs = {mapping[node]: value for node, value in inputs.items()}
        base = run_partially_asynchronous(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty={0, 1},
            adversary=ExtremePushStrategy(1.0),
            max_delay=delay,
            update_probability=probability,
            max_rounds=40,
            tolerance=1e-9,
            rng=5,
        )
        renamed = run_partially_asynchronous(
            _relabelled(graph, mapping),
            TrimmedMeanRule(2),
            relabelled_inputs,
            faulty={mapping[0], mapping[1]},
            adversary=ExtremePushStrategy(1.0),
            max_delay=delay,
            update_probability=probability,
            max_rounds=40,
            tolerance=1e-9,
            rng=5,
        )
        assert len(base.history) == len(renamed.history)
        for base_record, renamed_record in zip(base.history, renamed.history):
            for node in graph.nodes:
                assert base_record.values[node] == renamed_record.values[mapping[node]]

    def test_vectorized_async_trace_permutes(self):
        graph = core_network(8, 1)
        mapping = {i: f"v{i}" for i in range(8)}
        inputs = uniform_random_inputs(graph.nodes, rng=3)
        base = run_vectorized_async(
            graph,
            TrimmedMeanRule(1),
            inputs,
            faulty={7},
            adversary=StaticValueStrategy(40.0),
            max_delay=2,
            max_rounds=30,
            tolerance=1e-9,
            rng=9,
        )
        renamed = run_vectorized_async(
            _relabelled(graph, mapping),
            TrimmedMeanRule(1),
            {mapping[node]: value for node, value in inputs.items()},
            faulty={mapping[7]},
            adversary=StaticValueStrategy(40.0),
            max_delay=2,
            max_rounds=30,
            tolerance=1e-9,
            rng=9,
        )
        for base_record, renamed_record in zip(base.history, renamed.history):
            for node in graph.nodes:
                assert base_record.values[node] == renamed_record.values[mapping[node]]


class TestAffineEquivalence:
    """Affine input shifts affinely shift every fault-free state."""

    @pytest.mark.parametrize("scale,shift", [(2.0, 5.0), (0.5, -3.0), (10.0, 0.0)])
    def test_synchronous(self, scale, shift):
        graph = complete_graph(6)
        inputs = uniform_random_inputs(graph.nodes, rng=4)
        transformed = {node: scale * value + shift for node, value in inputs.items()}
        base = run_synchronous(
            graph, TrimmedMeanRule(1), inputs, max_rounds=15, tolerance=0.0,
            stop_on_convergence=False,
        )
        moved = run_synchronous(
            graph, TrimmedMeanRule(1), transformed, max_rounds=15, tolerance=0.0,
            stop_on_convergence=False,
        )
        for base_record, moved_record in zip(base.history, moved.history):
            for node in graph.nodes:
                assert moved_record.values[node] == pytest.approx(
                    scale * base_record.values[node] + shift, abs=1e-9 * max(1, scale)
                )

    @pytest.mark.parametrize("rule_factory", [TrimmedMeanRule, TrimmedMidpointRule])
    def test_asynchronous_fault_free(self, rule_factory):
        graph = complete_graph(6)
        scale, shift = 3.0, -2.0
        inputs = uniform_random_inputs(graph.nodes, rng=6)
        transformed = {node: scale * value + shift for node, value in inputs.items()}
        # Same seed -> same delay draws and activation coins: the executions
        # are structurally identical, only the values move affinely.
        base = run_vectorized_async(
            graph, rule_factory(1), inputs, max_delay=2, update_probability=0.8,
            max_rounds=25, tolerance=0.0, rng=12,
        )
        moved = run_vectorized_async(
            graph, rule_factory(1), transformed, max_delay=2, update_probability=0.8,
            max_rounds=25, tolerance=0.0, rng=12,
        )
        for base_record, moved_record in zip(base.history, moved.history):
            for node in graph.nodes:
                assert moved_record.values[node] == pytest.approx(
                    scale * base_record.values[node] + shift, abs=1e-8
                )


class TestHullInvariants:
    """Initial-hull validity holds at every recorded round of both engines."""

    @pytest.mark.parametrize("runner", [run_partially_asynchronous, run_vectorized_async])
    @pytest.mark.parametrize("delay,probability", [(1, 1.0), (3, 0.6)])
    def test_fault_free_values_stay_in_initial_hull(self, runner, delay, probability):
        graph = complete_graph(7)
        faulty = frozenset({0, 1})
        inputs = uniform_random_inputs(graph.nodes, rng=8)
        hull_low = min(v for n, v in inputs.items() if n not in faulty)
        hull_high = max(v for n, v in inputs.items() if n not in faulty)
        outcome = runner(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(delta=10.0),
            max_delay=delay,
            update_probability=probability,
            max_rounds=150,
            tolerance=1e-6,
            rng=31,
        )
        assert outcome.validity_ok
        assert outcome.history, "history must be recorded for this property"
        for record in outcome.history:
            for node, value in record.values.items():
                if node in faulty:
                    continue
                assert hull_low - 1e-9 <= value <= hull_high + 1e-9
