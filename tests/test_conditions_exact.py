"""Unit tests for the exact constraint-solving backends."""

from __future__ import annotations

from importlib import util as importlib_util

import pytest

from repro.conditions import find_violating_partition, verify_witness
from repro.conditions.exact import (
    DEFAULT_MAX_EXACT_BACKEND_NODES,
    EXACT_BACKENDS,
    ExactSearchResult,
    available_backends,
    exact_violation_search,
)
from repro.exceptions import GraphTooLargeError, InvalidParameterError
from repro.graphs import (
    Digraph,
    chord_network,
    complete_graph,
    core_network,
    erdos_renyi_digraph,
    hypercube,
    undirected_ring,
)

CANONICAL_CASES = [
    (hypercube(3), 1),
    (undirected_ring(6), 1),
    (chord_network(7, 2), 2),
    (complete_graph(7), 2),
    (core_network(7, 2), 2),
    (complete_graph(4), 1),
]


class TestBackendSelection:
    def test_dpll_always_available(self):
        names = available_backends()
        assert "dpll" in names
        assert names[-1] == "dpll"  # solver backends are preferred when present
        assert set(names) <= set(EXACT_BACKENDS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            exact_violation_search(complete_graph(4), 1, backend="z3")

    @pytest.mark.parametrize("name", ["pysat", "pulp"])
    def test_missing_solver_backend_rejected(self, name):
        if importlib_util.find_spec(name) is not None:
            pytest.skip(f"{name} is installed; the rejection path is unreachable")
        with pytest.raises(InvalidParameterError):
            exact_violation_search(complete_graph(4), 1, backend=name)

    def test_auto_resolves_to_available_backend(self):
        result = exact_violation_search(hypercube(3), 1, backend="auto")
        assert result.backend in available_backends()


class TestDpllBackend:
    @pytest.mark.parametrize("graph, f", CANONICAL_CASES)
    def test_parity_with_exhaustive_checker(self, graph, f):
        exact = find_violating_partition(graph, f)
        result = exact_violation_search(graph, f, backend="dpll")
        assert result.status == ("violation" if exact is not None else "satisfied")
        if result.witness is not None:
            assert verify_witness(graph, f, result.witness)

    def test_parity_on_random_graphs(self):
        import random

        for seed in range(80):
            rng = random.Random(seed)
            n = rng.randint(2, 10)
            f = rng.randint(0, 2)
            p = rng.uniform(0.1, 0.7)
            graph = erdos_renyi_digraph(n, p, rng=seed)
            exact = find_violating_partition(graph, f)
            result = exact_violation_search(graph, f, backend="dpll")
            assert result.status != "unknown"
            assert result.status == (
                "violation" if exact is not None else "satisfied"
            ), f"disagreement at seed={seed}, n={n}, f={f}"
            if result.witness is not None:
                assert verify_witness(graph, f, result.witness)

    def test_canonical_fault_set_size_is_used(self):
        # The fault-set extension lemma lets the DPLL backend search only
        # |F| = min(f, n - 2); the returned witness must use that size even
        # when smaller fault sets also violate.
        result = exact_violation_search(hypercube(3), 1, backend="dpll")
        assert result.status == "violation"
        assert len(result.witness.faulty) == 1

    def test_budget_exhaustion_reports_unknown(self):
        result = exact_violation_search(
            complete_graph(10), 3, backend="dpll", decision_budget=25
        )
        assert result.status == "unknown"
        assert result.witness is None
        assert result.decisions > 25 - 1

    def test_threshold_override(self):
        # With a huge threshold every singleton is insulated, so even the
        # complete graph violates; with threshold 0 nothing is insulated.
        violated = exact_violation_search(
            complete_graph(5), 1, threshold=10, backend="dpll"
        )
        assert violated.status == "violation"
        assert verify_witness(complete_graph(5), 1, violated.witness, threshold=10)
        satisfied = exact_violation_search(
            hypercube(3), 1, threshold=0, backend="dpll"
        )
        assert satisfied.status == "satisfied"

    def test_degenerate_graphs_are_satisfied(self):
        assert exact_violation_search(Digraph(), 0).status == "satisfied"
        assert exact_violation_search(Digraph(nodes=[0]), 2).status == "satisfied"

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            exact_violation_search(complete_graph(4), -1)
        with pytest.raises(InvalidParameterError):
            exact_violation_search(complete_graph(4), 1, decision_budget=0)
        with pytest.raises(GraphTooLargeError):
            exact_violation_search(
                complete_graph(DEFAULT_MAX_EXACT_BACKEND_NODES + 1), 1
            )

    def test_result_records_search_statistics(self):
        result = exact_violation_search(core_network(7, 2), 2, backend="dpll")
        assert isinstance(result, ExactSearchResult)
        assert result.status == "satisfied"
        assert result.fault_sets_examined > 0
        assert result.decisions >= 0
        assert result.reason


class TestOptionalSolverBackends:
    """Parity tests for the SAT/MILP encodings; skipped without the solvers."""

    @pytest.mark.parametrize("name", ["pysat", "pulp"])
    @pytest.mark.parametrize("graph, f", CANONICAL_CASES)
    def test_parity_with_exhaustive_checker(self, name, graph, f):
        pytest.importorskip(name)
        exact = find_violating_partition(graph, f)
        result = exact_violation_search(graph, f, backend=name)
        assert result.backend == name
        assert result.status == ("violation" if exact is not None else "satisfied")
        if result.witness is not None:
            assert verify_witness(graph, f, result.witness)

    @pytest.mark.parametrize("name", ["pysat", "pulp"])
    def test_parity_on_random_graphs(self, name):
        import random

        pytest.importorskip(name)
        for seed in range(25):
            rng = random.Random(seed)
            n = rng.randint(2, 9)
            f = rng.randint(0, 2)
            graph = erdos_renyi_digraph(n, rng.uniform(0.15, 0.6), rng=seed)
            exact = find_violating_partition(graph, f)
            result = exact_violation_search(graph, f, backend=name)
            assert result.status == (
                "violation" if exact is not None else "satisfied"
            ), f"{name} disagreement at seed={seed}, n={n}, f={f}"
            if result.witness is not None:
                assert verify_witness(graph, f, result.witness)
