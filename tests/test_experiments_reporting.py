"""Tests for the table-formatting helpers in ``repro.experiments.reporting``."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.reporting import format_table, print_table, summarize_booleans


class TestFormatTable:
    def test_alignment_and_header_rule(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 22},
        ]
        lines = format_table(rows).splitlines()
        assert lines[0].split() == ["name", "value"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("a")
        assert lines[3].startswith("longer")
        # Columns line up: "value" starts at the same offset in every line.
        offset = lines[0].index("value")
        assert lines[2][offset] == "1"
        assert lines[3][offset] == "2"

    def test_bool_and_float_rendering(self):
        rows = [{"flag": True, "rate": 0.123456789}]
        rendered = format_table(rows, precision=3)
        assert "yes" in rendered
        assert "0.123" in rendered
        assert "0.1234" not in rendered
        assert "no" in format_table([{"flag": False}])

    def test_column_selection_and_missing_values(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        rendered = format_table(rows, columns=["b", "a"])
        header, _, first, second = rendered.splitlines()
        assert header.split() == ["b", "a"]
        assert first.split() == ["2", "1"]
        # Missing value renders as an empty cell, so only "3" remains.
        assert second.split() == ["3"]

    def test_empty_rows_and_empty_columns(self):
        assert format_table([]) == "(no rows)"
        with pytest.raises(InvalidParameterError):
            format_table([{"a": 1}], columns=[])


class TestPrintTable:
    def test_prints_title_and_table(self, capsys):
        print_table([{"a": 1}], title="My Table")
        out = capsys.readouterr().out
        assert out.startswith("My Table\n========\n")
        assert "a" in out
        assert out.endswith("\n")

    def test_without_title(self, capsys):
        print_table([{"a": 1}])
        out = capsys.readouterr().out
        assert out.startswith("a\n")


class TestSummarizeBooleans:
    def test_counts_true_false_missing(self):
        rows = [
            {"ok": True},
            {"ok": False},
            {"other": True},
            {"ok": None},
        ]
        assert summarize_booleans(rows, "ok") == {
            "true": 1,
            "false": 1,
            "missing": 2,
        }

    def test_non_bool_value_raises_with_coordinates(self):
        rows = [{"ok": True}, {"ok": 1}]
        with pytest.raises(InvalidParameterError) as excinfo:
            summarize_booleans(rows, "ok")
        message = str(excinfo.value)
        assert "'ok'" in message
        assert "row 1" in message
        assert "int" in message

    def test_empty_iterable(self):
        assert summarize_booleans([], "ok") == {"true": 0, "false": 0, "missing": 0}
