"""Conditions-package tests on hand-built digraphs with answers known by
construction.

``repro.conditions`` was the least-tested package; these tests pin it down
with witness digraphs whose feasibility verdicts, violating partitions,
``⇒``-relation values and propagation sequences are all derivable by hand —
no reliance on the checkers agreeing with themselves.
"""

from __future__ import annotations

import pytest

from repro.conditions.asynchronous import (
    async_threshold,
    check_async_feasibility,
    find_async_violating_partition,
    passes_async_count_screen,
    passes_async_in_degree_screen,
    satisfies_async_condition,
)
from repro.conditions.necessary import (
    check_feasibility,
    find_violating_partition,
    maximal_insulated_subset,
    satisfies_theorem1,
    verify_witness,
    violates_condition,
)
from repro.conditions.relations import (
    influenced_set,
    propagates,
    propagation_length_bound,
    reaches,
    reaches_f,
)
from repro.exceptions import InvalidParameterError, InvalidPartitionError
from repro.graphs import Digraph, complete_graph
from repro.types import PartitionWitness


def barbell(clique_size: int, cross_edges: int, bridges_per_node: int = 1) -> Digraph:
    """Two bidirectional ``clique_size``-cliques ``L = {0..k-1}`` and
    ``R = {k..2k-1}``, plus bidirectional bridges: node ``i`` of ``L`` pairs
    with ``k + ((i + j) mod k)`` of ``R`` for ``j = 0 … bridges_per_node-1``
    (only the first ``cross_edges`` values of ``i`` are bridged).

    With ``cross_edges = clique_size`` every node has exactly
    ``bridges_per_node`` in-neighbours from the far side, so the partition
    ``(F=∅, L, C=∅, R)`` is insulated exactly at thresholds
    ``> bridges_per_node`` — a violating partition derivable by hand.
    """
    graph = Digraph(nodes=range(2 * clique_size))
    for side_start in (0, clique_size):
        for a in range(side_start, side_start + clique_size):
            for b in range(a + 1, side_start + clique_size):
                graph.add_bidirectional_edge(a, b)
    for i in range(cross_edges):
        for j in range(bridges_per_node):
            graph.add_bidirectional_edge(i, clique_size + ((i + j) % clique_size))
    return graph


class TestTheorem1OnHandbuiltGraphs:
    def test_barbell_violates_with_known_partition(self):
        # Each node has exactly one in-neighbour across the bridge, which is
        # < f + 1 = 2: both cliques are insulated, a violation by construction.
        graph = barbell(4, 4)
        left = frozenset(range(4))
        right = frozenset(range(4, 8))
        assert violates_condition(graph, 1, (), left, (), right)
        witness = PartitionWitness(
            faulty=frozenset(), left=left, center=frozenset(), right=right
        )
        assert verify_witness(graph, 1, witness)
        assert not satisfies_theorem1(graph, 1)

    def test_search_finds_a_genuine_witness_on_the_barbell(self):
        graph = barbell(4, 4)
        witness = find_violating_partition(graph, 1)
        assert witness is not None
        assert verify_witness(graph, 1, witness)

    def test_barbell_with_f0_satisfies(self):
        # At threshold f + 1 = 1 a single bridge edge already de-insulates
        # both sides, so the f = 0 condition holds.
        graph = barbell(4, 4)
        assert satisfies_theorem1(graph, 0)
        assert check_feasibility(graph, 0).satisfied

    def test_complete_graph_feasible_via_structural_shortcut(self):
        result = check_feasibility(complete_graph(4), 1)
        assert result.satisfied
        assert result.method == "structural:complete"
        assert find_violating_partition(complete_graph(4), 1) is None

    def test_check_feasibility_reports_exhaustive_witness(self):
        result = check_feasibility(barbell(4, 4), 1)
        assert not result.satisfied
        assert result.method == "exhaustive"
        assert result.witness is not None
        assert verify_witness(barbell(4, 4), 1, result.witness)

    def test_invalid_partitions_rejected(self):
        graph = barbell(3, 3)
        with pytest.raises(InvalidPartitionError):
            # L and R overlap.
            violates_condition(graph, 1, (), {0, 1}, (), {1, 2, 3, 4, 5})
        with pytest.raises(InvalidPartitionError):
            # Not a cover of V.
            violates_condition(graph, 1, (), {0}, (), {5})
        with pytest.raises(InvalidPartitionError):
            # |F| exceeds f.
            violates_condition(graph, 0, {0}, {1, 2}, (), {3, 4, 5})

    def test_maximal_insulated_subset_closure(self):
        # Star into node 0, candidate pool {0, 1}: node 0 has two
        # in-neighbours outside the pool ({2, 3}), so the closure deletes it
        # at threshold 2; leaf 1 has no in-edges and survives alone.
        graph = Digraph(nodes=range(4), edges=[(1, 0), (2, 0), (3, 0)])
        universe = frozenset(range(4))
        closed = maximal_insulated_subset(
            graph, frozenset({0, 1}), universe, threshold=2
        )
        assert closed == frozenset({1})


class TestAsyncConditionOnHandbuiltGraphs:
    def test_threshold_is_2f_plus_1(self):
        assert async_threshold(0) == 1
        assert async_threshold(2) == 5
        with pytest.raises(InvalidParameterError):
            async_threshold(-1)

    def test_two_bridges_split_sync_from_async(self):
        # Two bridges per node give every node exactly two far-side
        # in-neighbours: insulated at the async threshold 2f + 1 = 3 but NOT
        # at the sync threshold f + 1 = 2.  The verdicts on this explicit
        # partition are therefore known by construction.
        graph = barbell(6, 6, bridges_per_node=2)
        left = frozenset(range(6))
        right = frozenset(range(6, 12))
        assert not violates_condition(graph, 1, (), left, (), right, threshold=2)
        assert violates_condition(graph, 1, (), left, (), right, threshold=3)

    def test_async_search_finds_witness_on_bridged_barbell(self):
        graph = barbell(6, 6, bridges_per_node=2)
        witness = find_async_violating_partition(graph, 1)
        assert witness is not None
        assert verify_witness(graph, 1, witness, threshold=async_threshold(1))
        assert not satisfies_async_condition(graph, 1)

    def test_complete6_passes_async_for_f1(self):
        # K6 with f = 1: n = 6 > 5f and every |L| insulated at threshold 3
        # would need |W − L| <= 2, impossible for disjoint non-empty L, R.
        graph = complete_graph(6)
        assert passes_async_count_screen(6, 1)
        assert passes_async_in_degree_screen(graph, 1)
        assert satisfies_async_condition(graph, 1)
        assert check_async_feasibility(graph, 1).satisfied

    def test_complete5_fails_async_count_screen(self):
        result = check_async_feasibility(complete_graph(5), 1)
        assert not result.satisfied
        assert result.method == "screen:n>5f"

    def test_async_in_degree_screen(self):
        # Barbell(4, 1): un-bridged nodes have in-degree 3 < 3f + 1 = 4.
        assert not passes_async_in_degree_screen(barbell(4, 1), 1)
        assert passes_async_in_degree_screen(complete_graph(6), 1)


class TestRelationsOnHandbuiltGraphs:
    def test_influenced_set_thresholds(self):
        # b receives from both a1 and a2; c receives only from a1.
        graph = Digraph(nodes=["a1", "a2", "b", "c"],
                        edges=[("a1", "b"), ("a2", "b"), ("a1", "c")])
        sources = {"a1", "a2"}
        targets = {"b", "c"}
        assert influenced_set(graph, sources, targets, threshold=1) == {"b", "c"}
        assert influenced_set(graph, sources, targets, threshold=2) == {"b"}
        assert influenced_set(graph, sources, targets, threshold=3) == frozenset()
        assert reaches(graph, sources, targets, threshold=2)
        assert not reaches(graph, sources, targets, threshold=3)
        assert reaches_f(graph, sources, targets, f=1)

    def test_reaches_rejects_overlapping_sets(self):
        graph = complete_graph(4)
        with pytest.raises(InvalidPartitionError):
            reaches(graph, {0, 1}, {1, 2}, threshold=1)

    def test_propagation_along_a_chain(self):
        # 0 -> 1 -> 2 -> 3 at threshold 1: one node moves per step, so the
        # sequences are fully determined.
        graph = Digraph(nodes=range(4), edges=[(0, 1), (1, 2), (2, 3)])
        result = propagates(graph, {0}, {1, 2, 3}, threshold=1)
        assert result.propagates
        assert result.steps == 3
        assert result.a_sets == (
            frozenset({0}),
            frozenset({0, 1}),
            frozenset({0, 1, 2}),
            frozenset({0, 1, 2, 3}),
        )
        assert result.b_sets[-1] == frozenset()

    def test_propagation_stalls_against_the_edges(self):
        # All edges point away from B: in(A => B) is empty immediately.
        graph = Digraph(nodes=range(3), edges=[(1, 0), (2, 1)])
        result = propagates(graph, {0}, {1, 2}, threshold=1)
        assert not result.propagates
        assert result.steps == 0
        assert result.b_sets == (frozenset({1, 2}),)

    def test_propagation_length_bound(self):
        assert propagation_length_bound(10, 2) == 7
        assert propagation_length_bound(2, 1) == 1
        with pytest.raises(InvalidParameterError):
            propagation_length_bound(0, 1)
