"""Unit tests for execution traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation import ExecutionTrace, spreads_from_records


def build_trace() -> ExecutionTrace:
    trace = ExecutionTrace(faulty=frozenset({2}))
    trace.record_round(0, {0: 0.0, 1: 1.0, 2: 50.0})
    trace.record_round(1, {0: 0.25, 1: 0.75, 2: 50.0})
    trace.record_round(2, {0: 0.4, 1: 0.6, 2: 50.0})
    return trace


class TestExecutionTrace:
    def test_record_ignores_faulty_for_extremes(self):
        trace = build_trace()
        assert trace[0].fault_free_max == 1.0
        assert trace[0].fault_free_min == 0.0

    def test_out_of_order_round_rejected(self):
        trace = build_trace()
        with pytest.raises(InvalidParameterError):
            trace.record_round(5, {0: 0.0, 1: 0.0, 2: 0.0})

    def test_len_iter_getitem(self):
        trace = build_trace()
        assert len(trace) == 3
        assert trace.rounds == 2
        assert [record.round_index for record in trace] == [0, 1, 2]

    def test_spread_series(self):
        trace = build_trace()
        np.testing.assert_allclose(trace.spreads(), [1.0, 0.5, 0.2])
        np.testing.assert_allclose(trace.maxima(), [1.0, 0.75, 0.6])
        np.testing.assert_allclose(trace.minima(), [0.0, 0.25, 0.4])

    def test_node_series(self):
        trace = build_trace()
        np.testing.assert_allclose(trace.node_series(0), [0.0, 0.25, 0.4])

    def test_node_series_unknown_node(self):
        trace = build_trace()
        with pytest.raises(InvalidParameterError):
            trace.node_series(99)

    def test_fault_free_values(self):
        trace = build_trace()
        assert trace.fault_free_values(1) == {0: 0.25, 1: 0.75}

    def test_as_records_snapshot(self):
        trace = build_trace()
        snapshot = trace.as_records()
        assert len(snapshot) == 3
        assert isinstance(snapshot, tuple)

    def test_summary_rows_subsampling(self):
        trace = build_trace()
        rows = trace.summary_rows(every=2)
        assert [row["round"] for row in rows] == [0.0, 2.0]
        assert rows[-1]["spread"] == pytest.approx(0.2)

    def test_summary_rows_invalid_every(self):
        with pytest.raises(InvalidParameterError):
            build_trace().summary_rows(every=0)

    def test_spreads_from_records(self):
        trace = build_trace()
        np.testing.assert_allclose(
            spreads_from_records(trace.as_records()), [1.0, 0.5, 0.2]
        )

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.rounds == 0
        assert trace.spreads().size == 0
