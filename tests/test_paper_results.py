"""Integration tests asserting the paper's specific claims end to end.

Each test corresponds to a claim in the paper (theorem, corollary or
Section-6/7 case study) and exercises the library the way a reader checking
the paper would.
"""

from __future__ import annotations

import pytest

from repro import (
    TrimmedMeanRule,
    check_async_feasibility,
    check_feasibility,
    chord_network,
    complete_graph,
    core_network,
    find_violating_partition,
    hypercube,
    run_consensus,
    satisfies_theorem1,
    verify_witness,
)
from repro.adversary import SplitBrainStrategy
from repro.conditions import (
    chord_n7_f2_witness,
    hypercube_dimension_cut_witness,
    passes_count_screen,
    passes_in_degree_screen,
)
from repro.experiments import demonstrate_necessity
from repro.graphs import vertex_connectivity, without_edges
from repro.simulation import run_synchronous, split_inputs_from_witness


class TestTheorem1AndSufficiency:
    """Theorem 1 (necessity) + Theorems 2-3 (sufficiency of Algorithm 1)."""

    @pytest.mark.parametrize(
        "graph_factory,f",
        [
            (lambda: complete_graph(4), 1),
            (lambda: complete_graph(7), 2),
            (lambda: core_network(7, 2), 2),
            (lambda: core_network(9, 2), 2),
            (lambda: chord_network(5, 1), 1),
        ],
    )
    def test_condition_implies_convergence_and_validity(self, graph_factory, f):
        graph = graph_factory()
        assert check_feasibility(graph, f).satisfied
        outcome = run_consensus(graph, f=f, seed=13, max_rounds=600, tolerance=1e-7)
        assert outcome.converged
        assert outcome.validity_ok

    @pytest.mark.parametrize(
        "graph_factory,f",
        [
            (lambda: hypercube(3), 1),
            (lambda: chord_network(7, 2), 2),
            (lambda: complete_graph(6), 2),
        ],
    )
    def test_violation_implies_split_brain_stalls_algorithm1(self, graph_factory, f):
        graph = graph_factory()
        witness = find_violating_partition(graph, f)
        assert witness is not None
        demo = demonstrate_necessity(graph, f, witness=witness, rounds=40)
        assert demo.stalled
        assert demo.left_stuck and demo.right_stuck
        # Theorem 2's validity argument is unconditional: even though the
        # graph is infeasible, the interval never expands.
        assert demo.outcome.validity_ok
        assert not demo.outcome.converged


class TestCorollary2:
    """n must exceed 3f."""

    @pytest.mark.parametrize("f", [1, 2])
    def test_complete_graph_threshold(self, f):
        assert not satisfies_theorem1(complete_graph(3 * f), f)
        assert satisfies_theorem1(complete_graph(3 * f + 1), f)

    def test_screen_matches_condition_on_complete_graphs(self):
        for f in (1, 2):
            for n in range(2, 3 * f + 3):
                graph = complete_graph(n)
                assert passes_count_screen(n, f) == satisfies_theorem1(graph, f)


class TestCorollary3:
    """Every node needs at least 2f + 1 incoming links (f > 0)."""

    def test_removing_incoming_edges_breaks_condition(self):
        f = 1
        graph = core_network(5, f)
        victim = 4
        incoming = sorted(graph.in_neighbors(victim))
        # Dropping down to in-degree 2f = 2 must break the condition.
        damaged = without_edges(graph, [(incoming[0], victim)])
        assert damaged.in_degree(victim) == 2 * f
        assert not passes_in_degree_screen(damaged, f)
        assert not satisfies_theorem1(damaged, f)

    def test_feasible_graphs_always_pass_the_screen(self):
        for graph, f in [
            (complete_graph(4), 1),
            (core_network(7, 2), 2),
            (chord_network(5, 1), 1),
        ]:
            assert satisfies_theorem1(graph, f)
            assert passes_in_degree_screen(graph, f)


class TestSection61CoreNetwork:
    def test_core_networks_satisfy_condition(self):
        for n, f in [(4, 1), (7, 2), (10, 3), (8, 2)]:
            assert check_feasibility(core_network(n, f), f).satisfied

    def test_core_network_much_sparser_than_complete_graph(self):
        from repro.graphs import undirected_edge_count

        f = 3
        n = 3 * f + 1
        core_edges = undirected_edge_count(core_network(n, f))
        complete_edges = undirected_edge_count(complete_graph(n))
        assert core_edges < complete_edges


class TestSection62Hypercube:
    def test_connectivity_d_but_condition_fails(self):
        graph = hypercube(3)
        assert vertex_connectivity(graph) == 3  # = 2f + 1 for f = 1
        assert not satisfies_theorem1(graph, 1)

    def test_figure3_partition_is_the_witness(self):
        witness = hypercube_dimension_cut_witness(3)
        assert witness.left == frozenset({0, 1, 2, 3})
        assert witness.right == frozenset({4, 5, 6, 7})
        assert verify_witness(hypercube(3), 1, witness)

    @pytest.mark.parametrize("dimension", [2, 3, 4])
    def test_all_dimensions_fail_for_any_f_geq_1(self, dimension):
        witness = hypercube_dimension_cut_witness(dimension)
        assert verify_witness(hypercube(dimension), 1, witness)


class TestSection63Chord:
    def test_n4_f1_complete_and_feasible(self):
        from repro.graphs import is_complete

        graph = chord_network(4, 1)
        assert is_complete(graph)
        assert satisfies_theorem1(graph, 1)

    def test_n7_f2_fails_with_paper_witness(self):
        graph = chord_network(7, 2)
        witness = chord_n7_f2_witness()
        # The paper's reasoning, checked literally:
        #  L ⇏ R because |L| = 2 < f + 1 = 3,
        #  R ⇏ L because |N-_0 ∩ R| = |{3,4}| and |N-_2 ∩ R| = |{1,4}| are < 3.
        assert graph.in_neighbors_within(0, witness.right) == {3, 4}
        assert graph.in_neighbors_within(2, witness.right) == {1, 4}
        assert verify_witness(graph, 2, witness)
        assert not satisfies_theorem1(graph, 2)

    def test_n5_f1_satisfies_and_converges(self):
        graph = chord_network(5, 1)
        assert satisfies_theorem1(graph, 1)
        outcome = run_consensus(graph, f=1, seed=2, max_rounds=500, tolerance=1e-7)
        assert outcome.converged and outcome.validity_ok


class TestSection7Asynchronous:
    def test_complete_graph_async_needs_n_gt_5f(self):
        assert check_async_feasibility(complete_graph(6), 1).satisfied
        assert not check_async_feasibility(complete_graph(5), 1).satisfied

    def test_async_condition_implies_sync_condition(self):
        # The asynchronous condition (threshold 2f+1) is strictly stronger.
        from repro.conditions import satisfies_async_condition

        for graph, f in [
            (complete_graph(6), 1),
            (complete_graph(11), 2),
            (complete_graph(5), 1),
            (hypercube(3), 1),
            (core_network(7, 2), 2),
        ]:
            if satisfies_async_condition(graph, f):
                assert satisfies_theorem1(graph, f)


class TestNecessityProofMechanics:
    def test_split_brain_keeps_sides_pinned_every_round(self):
        graph = chord_network(7, 2)
        witness = chord_n7_f2_witness()
        adversary = SplitBrainStrategy(witness, 0.0, 1.0)
        inputs = split_inputs_from_witness(witness, 0.0, 1.0)
        outcome = run_synchronous(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty=witness.faulty,
            adversary=adversary,
            max_rounds=25,
            tolerance=1e-9,
        )
        # The proof's induction: at every iteration L stays at m and R at M.
        for record in outcome.history:
            for node in witness.left:
                assert record.values[node] == pytest.approx(0.0)
            for node in witness.right:
                assert record.values[node] == pytest.approx(1.0)
