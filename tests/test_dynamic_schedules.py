"""Metamorphic and property tests for the dynamic-topology layer.

Four groups of pins:

* **Static-schedule identities** — an engine handed ``StaticSchedule()``
  (or an all-up random schedule) must be bit-identical to one handed no
  schedule at all, across every synchronous tier and both async engines.
* **Masking identities** — under the trimmed-*midpoint* rule (whose
  all-equal update is exact in floating point, unlike the mean's cumsum) a
  node asleep for the whole run is bit-equivalent to masking down every
  edge incident to it; the canonical edge order of
  :class:`~repro.simulation.dynamic.ScheduleLayout` is pinned to
  :func:`~repro.simulation.async_engine.canonical_edge_order`.
* **Participation-aware validity** — the tracker must flag cumulative
  drift a naive per-round-slack check would wave through (the PR 5 drift
  bug, now on the churn axis), must require *exact* state freezing of
  asleep nodes, and must keep sleeping extremes inside the hull so a
  wake-up never counts as a violation.
* **Layout-cache staleness** — a mask-sensitive channel-layout strategy
  must rebuild its layout whenever the round's ``active_edge_mask``
  changes (before the mask keying this returned a stale layout), while the
  shipped mask-insensitive strategies build exactly once per run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import BatchAdversaryContext, ExtremePushStrategy
from repro.adversary.vectorized import _ChannelLayoutStrategy
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.graphs import chord_network, complete_graph, core_network
from repro.simulation import (
    ComposedSchedule,
    ParticipationValidityTracker,
    PartiallyAsynchronousEngine,
    PeriodicChurnSchedule,
    PeriodicEdgeSchedule,
    RandomChurnSchedule,
    RandomEdgeSchedule,
    ScheduleLayout,
    SimulationConfig,
    StaticSchedule,
    VectorizedAsyncEngine,
    VectorizedEngine,
    async_cross_check_engines,
    canonical_edge_order,
)
from repro.simulation.metrics import VALIDITY_TOLERANCE

from conftest import SYNC_ENGINE_KINDS, run_sync_engine


def _inputs_for(graph, seed=5):
    rng = np.random.default_rng(seed)
    return {node: float(rng.uniform(-3.0, 7.0)) for node in graph.nodes}


def _histories_equal(first, second) -> bool:
    """Bit-exact comparison of two ConsensusOutcome histories."""
    if len(first) != len(second):
        return False
    for a, b in zip(first, second):
        if a.round_index != b.round_index or a.values != b.values:
            return False
    return True


# ---------------------------------------------------------------------------
# Static-schedule identities
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_kind", SYNC_ENGINE_KINDS)
def test_static_schedule_is_bit_identical_to_no_schedule(engine_kind):
    graph = core_network(8, 1)
    inputs = _inputs_for(graph)
    kwargs = dict(
        faulty=frozenset({7}),
        adversary=ExtremePushStrategy(delta=1.5),
        max_rounds=8,
        tolerance=0.0,
        record_history=True,
    )
    bare = run_sync_engine(engine_kind, graph, TrimmedMeanRule(1), inputs, **kwargs)
    pinned = run_sync_engine(
        engine_kind,
        graph,
        TrimmedMeanRule(1),
        inputs,
        schedule=StaticSchedule(),
        **kwargs,
    )
    assert bare.final_values == pinned.final_values
    assert _histories_equal(bare.history, pinned.history)


@pytest.mark.parametrize(
    "schedule",
    [
        RandomEdgeSchedule(p_up=1.0, seed=3),
        RandomChurnSchedule(p_awake=1.0, seed=3),
        ComposedSchedule(
            RandomEdgeSchedule(p_up=1.0, seed=3),
            RandomChurnSchedule(p_awake=1.0, seed=3),
        ),
    ],
    ids=["edges-all-up", "churn-all-awake", "composed-all-up"],
)
def test_all_up_random_schedule_equals_static(schedule):
    graph = complete_graph(6)
    inputs = _inputs_for(graph)
    kwargs = dict(
        faulty=frozenset({0}),
        adversary=ExtremePushStrategy(delta=2.0),
        max_rounds=6,
        tolerance=0.0,
        record_history=True,
    )
    bare = run_sync_engine("dense", graph, TrimmedMeanRule(1), inputs, **kwargs)
    masked = run_sync_engine(
        "dense", graph, TrimmedMeanRule(1), inputs, schedule=schedule, **kwargs
    )
    assert _histories_equal(bare.history, masked.history)


def test_async_static_schedule_is_bit_identical_to_no_schedule():
    graph = core_network(9, 2)
    inputs = _inputs_for(graph)
    config = SimulationConfig(
        max_rounds=10, tolerance=0.0, record_history=True, stop_on_convergence=False
    )

    def scalar(schedule):
        return PartiallyAsynchronousEngine(
            graph,
            TrimmedMeanRule(2),
            faulty=frozenset({0}),
            adversary=ExtremePushStrategy(delta=1.0),
            config=config,
            max_delay=2,
            update_probability=0.7,
            rng=np.random.default_rng(17),
            schedule=schedule,
        ).run(inputs)

    def vectorized(schedule):
        return VectorizedAsyncEngine(
            graph,
            TrimmedMeanRule(2),
            faulty=frozenset({0}),
            adversary=ExtremePushStrategy(delta=1.0),
            config=config,
            max_delay=2,
            update_probability=0.7,
            schedule=schedule,
        ).run(inputs, rng=np.random.default_rng(17))

    for run in (scalar, vectorized):
        bare = run(None)
        pinned = run(StaticSchedule())
        assert bare.final_values == pinned.final_values
        assert _histories_equal(bare.history, pinned.history)


def test_async_engines_stay_bit_identical_under_masks():
    graph = core_network(9, 2)
    schedule = ComposedSchedule(
        RandomEdgeSchedule(p_up=0.75, seed=5),
        RandomChurnSchedule(p_awake=0.8, seed=5),
    )
    report = async_cross_check_engines(
        graph=graph,
        rule=TrimmedMeanRule(2),
        inputs=_inputs_for(graph),
        faulty=frozenset({0, 1}),
        adversary=ExtremePushStrategy(delta=1.5),
        config=SimulationConfig(
            max_rounds=12, tolerance=0.0, stop_on_convergence=False
        ),
        max_delay=2,
        update_probability=0.6,
        seed=23,
        schedule=schedule,
    )
    assert report.identical, (
        f"async scalar/vectorized diverged at round "
        f"{report.first_divergence_round}"
    )


# ---------------------------------------------------------------------------
# Masking identities
# ---------------------------------------------------------------------------


def test_schedule_layout_edges_match_canonical_edge_order():
    for graph in (complete_graph(5), core_network(9, 2), chord_network(8, 1)):
        assert ScheduleLayout.for_graph(graph).edges == canonical_edge_order(graph)


@pytest.mark.parametrize("engine_kind", SYNC_ENGINE_KINDS[:3])
def test_asleep_forever_equals_all_incident_edges_down(engine_kind):
    """Sleeping z for the whole run == masking every edge incident to z.

    Receivers self-substitute z's slot in both runs (asleep sender ≡ down
    edge), and z's own update over an all-self-substituted vector is exact
    under the trimmed-*midpoint* rule, so the histories must be
    bit-identical.  (The mean rule's cumsum is not exact on an all-equal
    vector, which is why this identity is midpoint-only.)
    """
    graph = core_network(8, 1)
    z = 3
    incident = tuple(
        edge for edge in canonical_edge_order(graph) if z in edge
    )
    inputs = _inputs_for(graph)
    kwargs = dict(
        faulty=frozenset({7}),
        adversary=ExtremePushStrategy(delta=1.0),
        max_rounds=8,
        tolerance=0.0,
        record_history=True,
    )
    asleep = run_sync_engine(
        engine_kind,
        graph,
        TrimmedMidpointRule(1),
        inputs,
        schedule=PeriodicChurnSchedule([[z]]),
        **kwargs,
    )
    edges_down = run_sync_engine(
        engine_kind,
        graph,
        TrimmedMidpointRule(1),
        inputs,
        schedule=PeriodicEdgeSchedule([incident]),
        **kwargs,
    )
    assert _histories_equal(asleep.history, edges_down.history)
    assert asleep.final_values[z] == inputs[z]


def test_periodic_schedules_cycle_with_the_documented_phase():
    graph = complete_graph(4)
    layout = ScheduleLayout.for_graph(graph)
    schedule = PeriodicEdgeSchedule([layout.edges[:2], ()])
    down_round = schedule.activity(1, layout)
    up_round = schedule.activity(2, layout)
    assert not down_round.edge_up[:2].any()
    assert down_round.edge_up[2:].all()
    assert up_round.is_static
    assert schedule.activity(3, layout).edge_up is not None  # period wraps


def test_random_schedules_are_pure_functions_of_the_round():
    graph = core_network(10, 2)
    layout = ScheduleLayout.for_graph(graph)
    schedule = RandomEdgeSchedule(p_up=0.5, seed=9)
    churn = RandomChurnSchedule(p_awake=0.5, seed=9, always_awake=(0,))
    for round_index in (1, 5, 2, 5, 1):
        again_edges = schedule.activity(round_index, layout)
        again_churn = churn.activity(round_index, layout)
        assert np.array_equal(
            again_edges.edge_up, schedule.activity(round_index, layout).edge_up
        )
        assert np.array_equal(
            again_churn.awake, churn.activity(round_index, layout).awake
        )
        assert again_churn.awake[layout.node_index[0]]


# ---------------------------------------------------------------------------
# Participation-aware validity tracking
# ---------------------------------------------------------------------------


def test_tracker_flags_slow_cumulative_drift_of_a_sleeping_node():
    """Regression: per-round drift below the hull slack must still flag.

    A naive implementation comparing an asleep node's value with per-round
    slack (``abs(diff) <= tolerance``) waves each step through while the
    node drifts by ``rounds x tolerance/2`` in total; the sleep check is
    exact equality, so the very first drifting round must flag.
    """
    tracker = ParticipationValidityTracker()
    values = [0.0, 1.0]
    tracker.observe(values)
    drift = VALIDITY_TOLERANCE / 2.0
    for _round in range(10):
        values = [values[0] + drift, 1.0]  # node 0 "asleep" yet drifting
        tracker.observe(values, awake=[False, True])
    assert not tracker.sleep_ok
    assert not tracker.ok
    assert tracker.first_sleep_violation_round == 1
    assert tracker.hull_ok  # the drift stayed inside the hull: sleep-only bug


def test_tracker_requires_exact_freezing_even_for_tiny_drift():
    tracker = ParticipationValidityTracker()
    tracker.observe([2.0, 5.0])
    tracker.observe([2.0 + 1e-15, 5.0], awake=[False, True])
    assert not tracker.sleep_ok
    assert tracker.first_violation_round == 1


def test_tracker_keeps_sleeping_extreme_inside_the_hull():
    """An awake node may move toward a sleeping extreme's frozen value.

    A tracker that tightened the hull over *awake* nodes only would see the
    interval shrink to [1, 6] while node 0 sleeps at 10, then flag the jump
    to 9.5 — but 10 is still a fault-free value, so the fault-free hull
    never actually tightened past it and the move is legal.
    """
    tracker = ParticipationValidityTracker()
    tracker.observe([10.0, 1.0, 6.0])
    tracker.observe([10.0, 2.0, 6.0], awake=[False, True, True])
    tracker.observe([10.0, 9.5, 6.0], awake=[False, True, False])
    tracker.observe([8.0, 9.5, 6.0], awake=[True, False, False])
    assert tracker.ok
    assert tracker.hull_ok
    assert tracker.sleep_ok


def test_tracker_still_flags_a_real_hull_escape():
    tracker = ParticipationValidityTracker()
    tracker.observe([0.0, 1.0])
    tracker.observe([0.5, 1.2], awake=[True, True])  # 1.2 > max(0, 1)
    assert not tracker.hull_ok
    assert not tracker.ok
    assert tracker.first_violation_round == 1


def test_tracker_sleep_check_waits_for_an_awake_mask():
    tracker = ParticipationValidityTracker()
    tracker.observe([3.0, 4.0])
    tracker.observe([3.5, 4.0])  # no mask: plain hull round
    assert tracker.ok


def test_engine_run_folds_participation_audit_into_validity():
    graph = core_network(8, 1)
    outcome = run_sync_engine(
        "scalar",
        graph,
        TrimmedMeanRule(1),
        _inputs_for(graph),
        faulty=frozenset({7}),
        adversary=ExtremePushStrategy(delta=1.0),
        schedule=RandomChurnSchedule(p_awake=0.7, seed=2),
        max_rounds=15,
        tolerance=0.0,
        record_history=False,
    )
    assert outcome.validity_ok


# ---------------------------------------------------------------------------
# Layout-cache staleness under per-round masks
# ---------------------------------------------------------------------------


class _MaskEchoStrategy(_ChannelLayoutStrategy):
    """Toy mask-sensitive strategy: its layout *is* the round's mask."""

    name = "mask-echo"
    mask_sensitive = True

    def __init__(self) -> None:
        super().__init__()
        self.builds = 0

    def _build_layout(self, context: BatchAdversaryContext) -> np.ndarray:
        self.builds += 1
        mask = context.active_edge_mask
        if mask is None:
            return np.ones(len(context.edge_nodes), dtype=float)
        return np.asarray(mask, dtype=float)

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        row = np.asarray(self._layout_for(context), dtype=float)
        return np.broadcast_to(row, (context.batch_size, row.shape[0])).copy()

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        return np.zeros((context.batch_size, context.faulty_columns.shape[0]))


class _CountingInsensitiveStrategy(_MaskEchoStrategy):
    """Same strategy with the default mask-insensitive cache key."""

    name = "mask-blind"
    mask_sensitive = False


def _drive_rounds(strategy, schedule, rounds=4):
    graph = complete_graph(5)
    engine = VectorizedEngine(
        graph,
        TrimmedMeanRule(1),
        faulty=frozenset({0}),
        adversary=strategy,
        config=SimulationConfig(max_rounds=rounds, record_history=False),
        schedule=schedule,
    )
    matrix = np.tile(
        np.linspace(0.0, 1.0, len(engine.nodes)), (2, 1)
    )
    state = matrix
    for round_index in range(1, rounds + 1):
        state = engine.step_matrix(state, round_index)
    return engine


def test_mask_sensitive_layout_rebuilds_when_the_mask_changes():
    """Failing-first pin for the cache-staleness audit.

    ``RandomEdgeSchedule(p_up=0.5)`` produces a different mask nearly every
    round; before the cache was keyed on the mask bytes, a mask-sensitive
    strategy would keep serving round 1's layout (``builds == 1`` and stale
    values).  The layout must now track every distinct mask.
    """
    strategy = _MaskEchoStrategy()
    schedule = RandomEdgeSchedule(p_up=0.5, seed=13)
    _drive_rounds(strategy, schedule, rounds=4)
    assert strategy.builds >= 2, "stale layout served across differing masks"


def test_mask_insensitive_layout_builds_once_despite_changing_masks():
    strategy = _CountingInsensitiveStrategy()
    schedule = RandomEdgeSchedule(p_up=0.5, seed=13)
    _drive_rounds(strategy, schedule, rounds=4)
    assert strategy.builds == 1


def test_mask_sensitive_layout_is_stable_under_a_static_schedule():
    strategy = _MaskEchoStrategy()
    _drive_rounds(strategy, StaticSchedule(), rounds=4)
    assert strategy.builds == 1
