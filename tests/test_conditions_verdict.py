"""Unit and property tests for the layered feasibility verdict stack."""

from __future__ import annotations

import random

import pytest

from repro.conditions import (
    FEASIBLE,
    INFEASIBLE,
    MAX_BITSET_NODES,
    UNKNOWN,
    VERDICT_LAYERS,
    BitsetDigraphView,
    FeasibilityCertificate,
    FeasibilityVerdict,
    InfeasibilityCertificate,
    check_feasibility,
    feasibility_verdict,
    find_source_component_witness,
    find_violating_partition,
    maximal_insulated_subset,
    maximal_insulated_subset_mask,
    verify_certificate,
    verify_witness,
    verify_witness_fast,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import (
    Digraph,
    chord_network,
    complete_graph,
    core_network,
    directed_ring,
    erdos_renyi_digraph,
    hypercube,
    undirected_ring,
)
from repro.types import PartitionWitness


class TestVerdictParity:
    """On graphs within the exact cap the verdict must match the checker."""

    @pytest.mark.parametrize(
        "graph, f",
        [
            (hypercube(3), 1),
            (undirected_ring(6), 1),
            (chord_network(7, 2), 2),
            (complete_graph(7), 2),
            (core_network(7, 2), 2),
            (complete_graph(4), 1),
            (Digraph(nodes=[0, 1]), 0),
        ],
    )
    def test_canonical_cases(self, graph, f):
        verdict = feasibility_verdict(graph, f)
        result = check_feasibility(graph, f)
        assert verdict.status == (FEASIBLE if result.satisfied else INFEASIBLE)
        assert verify_certificate(graph, f, verdict)

    def test_random_graphs(self):
        for seed in range(60):
            rng = random.Random(seed)
            n = rng.randint(2, 12)
            f = rng.randint(0, 2)
            graph = erdos_renyi_digraph(n, rng.uniform(0.1, 0.8), rng=seed)
            verdict = feasibility_verdict(graph, f)
            expected = find_violating_partition(graph, f) is None
            assert verdict.status == (FEASIBLE if expected else INFEASIBLE), (
                f"verdict disagrees with exact checker at seed={seed}, n={n}, f={f}"
            )
            assert verify_certificate(graph, f, verdict)
            if isinstance(verdict.certificate, InfeasibilityCertificate):
                if verdict.certificate.witness is not None:
                    assert verify_witness(graph, f, verdict.certificate.witness)

    def test_invalid_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            feasibility_verdict(complete_graph(4), -1)


class TestVerdictSoundness:
    """Property: a decided verdict always carries a re-checkable certificate."""

    def test_no_decision_without_certificate(self):
        cases = [
            (hypercube(3), 1),
            (complete_graph(7), 2),
            (chord_network(28, 3), 3),
            (erdos_renyi_digraph(40, 0.3, rng=5), 2),
            (erdos_renyi_digraph(40, 0.05, rng=5), 2),
        ]
        for graph, f in cases:
            verdict = feasibility_verdict(graph, f, decision_budget=2000)
            if verdict.status == UNKNOWN:
                assert verdict.certificate is None
                assert verdict.decided_by is None
            else:
                assert verdict.certificate is not None
                assert verdict.decided_by in VERDICT_LAYERS
            assert verify_certificate(graph, f, verdict)

    def test_tampered_certificates_are_rejected(self):
        graph = hypercube(3)
        verdict = feasibility_verdict(graph, 1)
        assert verdict.status == INFEASIBLE
        # Swap in a bogus witness: verification must fail.
        nodes = sorted(graph.nodes)
        fake_witness = PartitionWitness(
            faulty=frozenset(),
            left=frozenset(nodes[:1]),
            center=frozenset(nodes[1:-1]),
            right=frozenset(nodes[-1:]),
        )
        tampered = FeasibilityVerdict(
            status=INFEASIBLE,
            f=1,
            certificate=InfeasibilityCertificate(kind="witness", witness=fake_witness),
            timings=verdict.timings,
            decided_by=verdict.decided_by,
            reason="tampered",
        )
        assert not verify_certificate(graph, 1, tampered)

    def test_mismatched_certificate_type_rejected(self):
        graph = complete_graph(7)
        verdict = feasibility_verdict(graph, 2)
        assert verdict.status == FEASIBLE
        crossed = FeasibilityVerdict(
            status=INFEASIBLE,
            f=2,
            certificate=verdict.certificate,  # feasibility cert under INFEASIBLE
            timings=verdict.timings,
            decided_by=verdict.decided_by,
            reason="crossed",
        )
        assert not verify_certificate(graph, 2, crossed)

    def test_fake_core_certificate_rejected(self):
        graph = undirected_ring(9)
        fake = FeasibilityVerdict(
            status=FEASIBLE,
            f=1,
            certificate=FeasibilityCertificate(
                kind="core-structure", core=frozenset({0, 1, 2})
            ),
            timings=(),
            decided_by="screens",
            reason="fake core",
        )
        assert not verify_certificate(graph, 1, fake)

    def test_unknown_with_certificate_rejected(self):
        graph = complete_graph(4)
        verdict = feasibility_verdict(graph, 1)
        bogus = FeasibilityVerdict(
            status=UNKNOWN,
            f=1,
            certificate=verdict.certificate,
            timings=(),
            decided_by=None,
            reason="bogus",
        )
        assert not verify_certificate(graph, 1, bogus)


class TestVerdictLayers:
    def test_screens_decide_before_exhaustive(self):
        verdict = feasibility_verdict(complete_graph(7), 2)
        assert verdict.decided_by == "screens"
        assert [timing.layer for timing in verdict.timings] == ["screens"]

    def test_timings_cover_executed_layers_in_order(self):
        verdict = feasibility_verdict(chord_network(7, 2), 2)
        layers = [timing.layer for timing in verdict.timings]
        assert layers == ["screens", "exhaustive"]
        assert all(timing.seconds >= 0 for timing in verdict.timings)
        assert verdict.timings[-1].outcome == "decided"
        assert verdict.timings[0].outcome == "no-decision"

    def test_witness_layer_decides_beyond_exhaustive_cap(self):
        # 70-node ring: in-degree screen rejects at f=1... so raise the ring
        # connectivity instead by using f=0 where the screens pass.
        graph = directed_ring(70)
        verdict = feasibility_verdict(graph, 0)
        # A directed ring is strongly connected and satisfies the f=0
        # condition; no witness exists, so the verdict stays UNKNOWN (the
        # exact layer is capped below 70).
        assert verdict.status == UNKNOWN
        executed = [timing.layer for timing in verdict.timings]
        assert "witness-search" in executed

    def test_exact_layer_decides_between_caps(self):
        # n = 28 sits between the exhaustive cap (24) and the exact cap (32).
        graph = core_network(28, 2)
        without_shortcut = feasibility_verdict(graph, 2)
        assert without_shortcut.status == FEASIBLE  # core screen fires first
        infeasible = chord_network(26, 4)
        verdict = feasibility_verdict(infeasible, 4, rng=9)
        assert verdict.status in (INFEASIBLE, UNKNOWN)
        assert verify_certificate(infeasible, 4, verdict)

    def test_describe_mentions_status_and_layer(self):
        verdict = feasibility_verdict(hypercube(3), 1)
        text = verdict.describe()
        assert "INFEASIBLE" in text
        assert "exhaustive" in text


class TestSourceComponentScreen:
    def test_two_isolated_nodes(self):
        witness = find_source_component_witness(Digraph(nodes=[0, 1]))
        assert witness is not None
        assert witness.faulty == frozenset()
        assert verify_witness(Digraph(nodes=[0, 1]), 0, witness)

    def test_strongly_connected_graph_has_none(self):
        assert find_source_component_witness(directed_ring(8)) is None

    def test_single_source_chain_has_none(self):
        # 0 -> 1 -> 2: three SCCs but only one source component.
        assert find_source_component_witness(Digraph(edges=[(0, 1), (1, 2)])) is None

    def test_two_source_cycles_feeding_a_sink(self):
        edges = [(0, 1), (1, 0), (2, 3), (3, 2), (0, 4), (2, 4)]
        graph = Digraph(edges=edges)
        witness = find_source_component_witness(graph)
        assert witness is not None
        assert verify_witness(graph, 0, witness)
        # The witness scales to any fault budget: F = ∅ and threshold grows.
        assert verify_witness(graph, 3, witness)


class TestClosureParityAcrossBitsetCap:
    """The mask closure and the Python closure agree straddling n = 64."""

    @pytest.mark.parametrize("n", [60, 63, 64])
    def test_mask_closure_matches_python_closure(self, n):
        graph = erdos_renyi_digraph(n, 0.08, rng=n)
        view = BitsetDigraphView(graph)
        rng = random.Random(n)
        nodes = sorted(graph.nodes, key=repr)
        for trial in range(20):
            pool = frozenset(rng.sample(nodes, rng.randint(1, n - 1)))
            universe_extra = frozenset(rng.sample(nodes, rng.randint(1, n)))
            universe = pool | universe_extra
            threshold = rng.randint(1, 4)
            python_closure = maximal_insulated_subset(
                graph, pool, universe, threshold
            )
            mask_closure = maximal_insulated_subset_mask(
                view, view.mask_of(pool), view.mask_of(universe), threshold
            )
            assert view.set_of(mask_closure) == python_closure, (
                f"closure mismatch at n={n}, trial={trial}"
            )

    @pytest.mark.parametrize("n", [63, 64, 65, 70])
    def test_verify_witness_fast_agrees_with_python_verify(self, n):
        # n = 63/64 exercise the bitset path, 65/70 the pure-Python fallback;
        # both sides of MAX_BITSET_NODES must agree on every candidate.
        assert MAX_BITSET_NODES == 64
        graph = erdos_renyi_digraph(n, 0.05, rng=n + 1)
        rng = random.Random(n)
        nodes = sorted(graph.nodes, key=repr)
        for trial in range(15):
            f = rng.randint(0, 2)
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            fault_count = rng.randint(0, f)
            left_count = rng.randint(1, 4)
            right_count = rng.randint(1, 4)
            faulty = frozenset(shuffled[:fault_count])
            left = frozenset(shuffled[fault_count : fault_count + left_count])
            right = frozenset(
                shuffled[
                    fault_count + left_count : fault_count + left_count + right_count
                ]
            )
            center = frozenset(nodes) - faulty - left - right
            witness = PartitionWitness(
                faulty=faulty, left=left, center=center, right=right
            )
            assert verify_witness_fast(graph, f, witness) == verify_witness(
                graph, f, witness
            ), f"fast/python verify mismatch at n={n}, trial={trial}"

    def test_all_search_witnesses_pass_verify(self):
        # Property: every witness any search returns verifies — across both
        # sides of the bitset cap.
        from repro.conditions import greedy_witness_search, random_witness_search

        for n in (40, 70):
            graph = undirected_ring(n)
            for f, searcher in (
                (1, lambda g: greedy_witness_search(g, 1)),
                (1, lambda g: random_witness_search(g, 1, attempts=60, rng=2)),
            ):
                witness = searcher(graph)
                if witness is not None:
                    assert verify_witness(graph, f, witness)
                    assert verify_witness_fast(graph, f, witness)
