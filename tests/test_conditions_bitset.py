"""Property-based parity suite: bitset vs legacy Python condition checkers.

The bitset kernels (:mod:`repro.conditions.bitset`) re-implement the exact
Theorem-1 search, the deletion closure and the robustness checkers as packed
``uint64`` arithmetic.  These tests pin them to the legacy pure-Python
implementations — feasibility verdict, witness identity and validity
(via :func:`verify_witness`), robustness verdicts and degree — on random
graph families across seeds and on the hand-built witness digraphs, plus
regression tests for the condition-checker bugfixes that rode along
(incremental closure counters, canonical disjoint-pair enumeration,
consistent ``GraphTooLargeError`` handling).
"""

from __future__ import annotations

import pytest

from repro.conditions.asynchronous import (
    check_async_feasibility,
    find_async_violating_partition,
)
from repro.conditions.bitset import (
    MAX_BITSET_NODES,
    BitsetDigraphView,
    maximal_insulated_subset_mask,
)
from repro.conditions.necessary import (
    DEFAULT_MAX_EXACT_NODES,
    check_feasibility,
    find_violating_partition,
    maximal_insulated_subset,
    satisfies_theorem1,
    verify_witness,
)
from repro.conditions.robustness import (
    DEFAULT_MAX_ROBUSTNESS_NODES,
    _iter_disjoint_pairs,
    disjoint_pair_count,
    is_r_robust,
    is_r_s_robust,
    robustness_degree,
)
from repro.conditions.witnesses import chord_n7_f2_witness
from repro.exceptions import GraphTooLargeError, InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.graphs.generators import (
    chord_network,
    complete_graph,
    core_network,
    hypercube,
    undirected_ring,
)
from repro.graphs.random_graphs import (
    erdos_renyi_digraph,
    k_in_regular_digraph,
    random_core_like_network,
)
import numpy as np


def barbell(clique_size: int, bridges_per_node: int = 1) -> Digraph:
    """Two bidirectional cliques with ``bridges_per_node`` crossing links per
    node — the hand-built violating family of test_conditions_handbuilt."""
    graph = Digraph(nodes=range(2 * clique_size))
    for side_start in (0, clique_size):
        for a in range(side_start, side_start + clique_size):
            for b in range(a + 1, side_start + clique_size):
                graph.add_bidirectional_edge(a, b)
    for i in range(clique_size):
        for j in range(bridges_per_node):
            graph.add_bidirectional_edge(
                i, clique_size + ((i + j) % clique_size)
            )
    return graph


def random_battery(seed: int, count: int = 4) -> list[Digraph]:
    """A deterministic mixed sample of the three random families."""
    rng = np.random.default_rng(seed)
    graphs: list[Digraph] = []
    for _ in range(count):
        graphs.append(erdos_renyi_digraph(9, 0.45, rng=rng))
        graphs.append(k_in_regular_digraph(9, 4, rng=rng))
        graphs.append(random_core_like_network(10, 2, rng=rng))
    return graphs


HANDBUILT_CASES = [
    ("chord n=7 f=2", chord_network(7, 2), 2),
    ("hypercube d=3 f=1", hypercube(3), 1),
    ("barbell 4+4", barbell(4), 1),
    ("barbell 6+6 two bridges", barbell(6, 2), 1),
    ("complete n=7 f=2", complete_graph(7), 2),
    ("core n=10 f=3", core_network(10, 3), 3),
    ("ring n=8 f=1", undirected_ring(8), 1),
]


class TestBitsetView:
    def test_masks_round_trip_and_match_adjacency(self):
        graph = chord_network(9, 2)
        view = BitsetDigraphView(graph)
        assert view.n == 9
        assert view.set_of(view.mask_of({0, 3, 7})) == frozenset({0, 3, 7})
        assert view.set_of(view.full_mask) == graph.nodes
        for position, node in enumerate(view.nodes):
            decoded = view.set_of(view.in_mask_ints[position])
            assert decoded == graph.in_neighbors(node)
            assert view.in_degrees[position] == graph.in_degree(node)

    def test_unknown_node_rejected(self):
        view = BitsetDigraphView(complete_graph(4))
        with pytest.raises(InvalidParameterError):
            view.mask_of({99})

    def test_view_rejects_more_than_64_nodes(self):
        graph = Digraph(nodes=range(MAX_BITSET_NODES + 1))
        with pytest.raises(InvalidParameterError):
            BitsetDigraphView(graph)


def reference_closure(graph, candidate_pool, universe, threshold):
    """The pre-fix quadratic deletion closure, kept as the parity oracle."""
    current = set(candidate_pool)
    changed = True
    while changed and current:
        changed = False
        outside = universe - current
        for node in list(current):
            if graph.in_degree_within(node, outside) >= threshold:
                current.discard(node)
                outside = universe - current
                changed = True
    return frozenset(current)


class TestClosureParity:
    """Regression for the incremental-counter rewrite of the closure, and
    parity of the bitset mask closure, against the original algorithm."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fixed_points_identical_on_random_digraphs(self, seed):
        rng = np.random.default_rng(100 + seed)
        for graph in random_battery(seed, count=2):
            view = BitsetDigraphView(graph)
            nodes = sorted(graph.nodes, key=repr)
            for _ in range(6):
                universe = frozenset(
                    node for node in nodes if rng.random() < 0.8
                )
                pool = frozenset(
                    node for node in universe if rng.random() < 0.6
                )
                for threshold in (1, 2, 3):
                    expected = reference_closure(graph, pool, universe, threshold)
                    assert (
                        maximal_insulated_subset(graph, pool, universe, threshold)
                        == expected
                    )
                    mask = maximal_insulated_subset_mask(
                        view,
                        view.mask_of(pool),
                        view.mask_of(universe),
                        threshold,
                    )
                    assert view.set_of(mask) == expected

    def test_pool_nodes_outside_universe_keep_legacy_semantics(self):
        # A pool node not in the universe can survive the closure (it never
        # contributes to anyone's outside count) — both implementations must
        # agree on this corner.
        graph = Digraph(nodes=range(4), edges=[(1, 0), (2, 0), (3, 0)])
        universe = frozenset({0, 1, 2})
        pool = frozenset({0, 3})
        expected = reference_closure(graph, pool, universe, 2)
        assert maximal_insulated_subset(graph, pool, universe, 2) == expected
        assert expected == frozenset({3})


class TestFeasibilityParity:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_random_families_verdict_and_witness_parity(self, seed):
        for graph in random_battery(seed):
            for f in (1, 2):
                bitset = find_violating_partition(graph, f, method="bitset")
                python = find_violating_partition(graph, f, method="python")
                assert bitset == python
                if bitset is not None:
                    assert verify_witness(graph, f, bitset)

    @pytest.mark.parametrize("label,graph,f", HANDBUILT_CASES)
    def test_handbuilt_parity(self, label, graph, f):
        bitset = find_violating_partition(graph, f, method="bitset")
        python = find_violating_partition(graph, f, method="python")
        assert bitset == python, label
        result_bitset = check_feasibility(
            graph, f, use_structural_shortcuts=False, method="bitset"
        )
        result_python = check_feasibility(
            graph, f, use_structural_shortcuts=False, method="python"
        )
        assert result_bitset.satisfied == result_python.satisfied, label
        if result_bitset.witness is not None:
            assert verify_witness(graph, f, result_bitset.witness), label

    def test_paper_chord_witness_still_confirmed(self):
        graph = chord_network(7, 2)
        witness = find_violating_partition(graph, 2)
        assert witness is not None
        assert verify_witness(graph, 2, witness)
        assert verify_witness(graph, 2, chord_n7_f2_witness())

    @pytest.mark.parametrize("seed", [21, 22])
    def test_async_condition_parity(self, seed):
        for graph in random_battery(seed, count=2):
            for f in (1, 2):
                bitset = find_async_violating_partition(graph, f, method="bitset")
                python = find_async_violating_partition(graph, f, method="python")
                assert bitset == python
                assert (
                    check_async_feasibility(graph, f, method="bitset").satisfied
                    == check_async_feasibility(graph, f, method="python").satisfied
                )

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidParameterError, match="checker method"):
            find_violating_partition(complete_graph(4), 1, method="numba")
        with pytest.raises(InvalidParameterError, match="checker method"):
            is_r_robust(complete_graph(4), 1, method="numba")


class TestRobustnessParity:
    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_random_digraphs_full_parity(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(3):
            graph = erdos_renyi_digraph(7, 0.45, rng=rng)
            for r in (1, 2, 3):
                assert is_r_robust(graph, r, method="bitset") == is_r_robust(
                    graph, r, method="python"
                )
                for s in (1, 2, 4):
                    assert is_r_s_robust(
                        graph, r, s, method="bitset"
                    ) == is_r_s_robust(graph, r, s, method="python")
            assert robustness_degree(graph, method="bitset") == robustness_degree(
                graph, method="python"
            )

    def test_known_degrees(self):
        # Complete graphs attain the ceiling ceil(n/2); the barbell with one
        # bridge per node is exactly 1-robust.
        assert robustness_degree(complete_graph(7)) == 4
        assert robustness_degree(barbell(4)) == 1
        assert is_r_robust(barbell(4), 1)
        assert not is_r_robust(barbell(4), 2)


class TestDisjointPairEnumeration:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_pair_count_matches_closed_form(self, n):
        nodes = tuple(range(n))
        pairs = list(_iter_disjoint_pairs(nodes))
        assert len(pairs) == disjoint_pair_count(n)

    def test_pairs_are_canonical_disjoint_and_unique(self):
        nodes = tuple(range(5))
        seen = set()
        for s1, s2 in _iter_disjoint_pairs(nodes):
            assert s1 and s2
            assert not s1 & s2
            # Canonical: the smallest participating node sits in S1.
            assert min(s1 | s2) in s1
            key = (s1, s2)
            assert key not in seen
            seen.add(key)

    def test_enumerates_every_unordered_pair(self):
        nodes = tuple(range(4))
        canonical = {
            frozenset((s1, s2)) for s1, s2 in _iter_disjoint_pairs(nodes)
        }
        brute: set[frozenset[frozenset[int]]] = set()
        for code in range(3 ** len(nodes)):
            assignment, s1, s2 = code, set(), set()
            for index in range(len(nodes)):
                digit = assignment % 3
                assignment //= 3
                if digit == 1:
                    s1.add(nodes[index])
                elif digit == 2:
                    s2.add(nodes[index])
            if s1 and s2:
                brute.add(frozenset((frozenset(s1), frozenset(s2))))
        assert canonical == brute


class TestGraphTooLargeConsistency:
    """All four exhaustive entry points validate the cap up front and report
    both ``n`` and the cap (plus the checker name) in the error."""

    def test_every_checker_reports_n_and_cap(self):
        big = undirected_ring(30)
        calls = [
            ("find_violating_partition", lambda: find_violating_partition(big, 1)),
            ("is_r_robust", lambda: is_r_robust(big, 2)),
            ("is_r_s_robust", lambda: is_r_s_robust(big, 2, 2)),
            ("robustness_degree", lambda: robustness_degree(big)),
        ]
        for name, call in calls:
            with pytest.raises(GraphTooLargeError) as excinfo:
                call()
            error = excinfo.value
            assert error.n == 30, name
            assert error.cap in (
                DEFAULT_MAX_EXACT_NODES,
                DEFAULT_MAX_ROBUSTNESS_NODES,
            ), name
            assert error.checker == name
            assert f"n = {error.n}" in str(error)
            assert f"max_nodes = {error.cap}" in str(error)

    def test_cap_checked_before_parameter_dependent_work(self):
        # The guard fires for both methods identically, before enumeration.
        big = undirected_ring(30)
        for method in ("bitset", "python"):
            with pytest.raises(GraphTooLargeError):
                find_violating_partition(big, 1, method=method)
            with pytest.raises(GraphTooLargeError):
                robustness_degree(big, method=method)


class TestRaisedCeilings:
    def test_default_caps_raised(self):
        assert DEFAULT_MAX_EXACT_NODES >= 24
        assert DEFAULT_MAX_ROBUSTNESS_NODES >= 18

    def test_exact_check_at_n24_under_default_cap(self):
        # n = 24 was far beyond the legacy cap of 16; the ring violates the
        # condition for f = 1 (two arcs are mutually insulated), and the
        # bitset path proves it under the *default* cap.
        graph = undirected_ring(24)
        witness = find_violating_partition(graph, 1)
        assert witness is not None
        assert verify_witness(graph, 1, witness)
        assert not satisfies_theorem1(graph, 1)

    def test_feasible_full_enumeration_beyond_old_ceiling(self):
        # A feasible graph forces the complete 2^(n-|F|) sweep; n = 18 with
        # the default cap exercises the no-witness path past the old limit.
        assert satisfies_theorem1(core_network(18, 1), 1)

    def test_robustness_beyond_old_ceiling(self):
        # n = 16 exceeded the legacy robustness cap of 14.
        assert robustness_degree(hypercube(4)) == 1
        assert is_r_s_robust(hypercube(4), 2, 2) is False
