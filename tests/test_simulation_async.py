"""Tests for the partially asynchronous engine (Section 7 model)."""

from __future__ import annotations

import pytest

from repro.adversary import ExtremePushStrategy, StaticValueStrategy
from repro.algorithms import TrimmedMeanRule
from repro.exceptions import (
    FaultBudgetExceededError,
    InvalidParameterError,
)
from repro.graphs import complete_graph, core_network
from repro.simulation import (
    PartiallyAsynchronousEngine,
    SimulationConfig,
    linear_ramp_inputs,
    run_partially_asynchronous,
    run_synchronous,
    uniform_random_inputs,
)


class TestConstruction:
    def test_invalid_delay(self):
        with pytest.raises(InvalidParameterError):
            PartiallyAsynchronousEngine(
                complete_graph(4), TrimmedMeanRule(1), max_delay=-1
            )

    def test_invalid_update_probability(self):
        with pytest.raises(InvalidParameterError):
            PartiallyAsynchronousEngine(
                complete_graph(4), TrimmedMeanRule(1), update_probability=0.0
            )
        with pytest.raises(InvalidParameterError):
            PartiallyAsynchronousEngine(
                complete_graph(4), TrimmedMeanRule(1), update_probability=1.5
            )

    def test_fault_budget_enforced(self):
        with pytest.raises(FaultBudgetExceededError):
            PartiallyAsynchronousEngine(
                complete_graph(7), TrimmedMeanRule(1), faulty={0, 1}
            )

    def test_unknown_faulty_rejected(self):
        with pytest.raises(InvalidParameterError):
            PartiallyAsynchronousEngine(
                complete_graph(4), TrimmedMeanRule(1), faulty={42}
            )

    def test_properties(self):
        engine = PartiallyAsynchronousEngine(
            complete_graph(4), TrimmedMeanRule(1), faulty={3}, max_delay=2
        )
        assert engine.max_delay == 2
        assert engine.faulty == frozenset({3})


class TestZeroDelayMatchesSynchronous:
    def test_trajectories_identical_with_zero_delay(self):
        graph = complete_graph(5)
        inputs = linear_ramp_inputs(graph.nodes)
        rule = TrimmedMeanRule(1)
        sync = run_synchronous(graph, rule, inputs, max_rounds=20, tolerance=0.0,
                               stop_on_convergence=False)
        asynchronous = run_partially_asynchronous(
            graph, rule, inputs, max_delay=0, max_rounds=20, tolerance=0.0, rng=0
        )
        for sync_record, async_record in zip(sync.history, asynchronous.history):
            for node in graph.nodes:
                assert sync_record.values[node] == pytest.approx(
                    async_record.values[node]
                )


class TestConvergenceUnderDelay:
    @pytest.mark.parametrize("delay", [1, 2, 4])
    def test_fault_free_convergence(self, delay):
        graph = complete_graph(6)
        outcome = run_partially_asynchronous(
            graph,
            TrimmedMeanRule(1),
            uniform_random_inputs(graph.nodes, rng=1),
            max_delay=delay,
            max_rounds=1000,
            tolerance=1e-6,
            rng=delay,
        )
        assert outcome.converged
        assert outcome.validity_ok

    def test_convergence_under_attack_and_delay(self):
        graph = complete_graph(7)
        outcome = run_partially_asynchronous(
            graph,
            TrimmedMeanRule(2),
            uniform_random_inputs(graph.nodes, rng=2),
            faulty=frozenset({0, 1}),
            adversary=ExtremePushStrategy(delta=5.0),
            max_delay=2,
            max_rounds=1500,
            tolerance=1e-5,
            rng=7,
        )
        assert outcome.converged
        assert outcome.validity_ok

    def test_hull_validity_under_static_attack(self):
        graph = core_network(7, 2)
        inputs = uniform_random_inputs(graph.nodes, rng=3)
        outcome = run_partially_asynchronous(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty=frozenset({5, 6}),
            adversary=StaticValueStrategy(500.0),
            max_delay=3,
            max_rounds=800,
            tolerance=1e-5,
            rng=5,
        )
        assert outcome.validity_ok
        hull_low = min(v for node, v in inputs.items() if node not in {5, 6})
        hull_high = max(v for node, v in inputs.items() if node not in {5, 6})
        assert all(
            hull_low - 1e-9 <= value <= hull_high + 1e-9
            for value in outcome.final_values.values()
        )

    def test_sporadic_activation_still_converges(self):
        graph = complete_graph(6)
        outcome = run_partially_asynchronous(
            graph,
            TrimmedMeanRule(1),
            uniform_random_inputs(graph.nodes, rng=4),
            max_delay=1,
            update_probability=0.5,
            max_rounds=2000,
            tolerance=1e-5,
            rng=9,
        )
        assert outcome.converged

    def test_missing_inputs_rejected(self):
        engine = PartiallyAsynchronousEngine(complete_graph(3), TrimmedMeanRule(0))
        with pytest.raises(InvalidParameterError):
            engine.run({0: 1.0})

    def test_determinism_with_seed(self):
        graph = complete_graph(6)
        inputs = uniform_random_inputs(graph.nodes, rng=6)
        first = run_partially_asynchronous(
            graph, TrimmedMeanRule(1), inputs, max_delay=2, max_rounds=50, rng=42,
            tolerance=0.0,
        )
        second = run_partially_asynchronous(
            graph, TrimmedMeanRule(1), inputs, max_delay=2, max_rounds=50, rng=42,
            tolerance=0.0,
        )
        assert first.final_values == second.final_values

    def test_config_object_accepted(self):
        config = SimulationConfig(max_rounds=10, tolerance=1e-3)
        engine = PartiallyAsynchronousEngine(
            complete_graph(5), TrimmedMeanRule(1), config=config, max_delay=1, rng=1
        )
        outcome = engine.run(linear_ramp_inputs(range(5)))
        assert outcome.rounds_executed <= 10
