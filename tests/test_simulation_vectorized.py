"""Tests for the vectorized engine, batch runner and batch adversary layer.

The central property: :class:`~repro.simulation.vectorized.VectorizedEngine`
is *bit-for-bit* equivalent to
:class:`~repro.simulation.engine.SynchronousEngine` — same per-round states,
same traces, same outcomes — across random small digraphs, with and without
Byzantine nodes, for every bridged adversary strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import (
    ExtremePushStrategy,
    FrozenValueStrategy,
    RandomNoiseStrategy,
    StaticValueStrategy,
)
from repro.adversary.vectorized import (
    BatchExtremePushStrategy,
    BatchPassiveStrategy,
    ScalarStrategyAdapter,
    as_batch_strategy,
)
from repro.algorithms.linear import LinearAverageRule
from repro.algorithms.trimmed_mean import TrimmedMeanRule, TrimmedMidpointRule
from repro.exceptions import (
    FaultBudgetExceededError,
    InvalidParameterError,
    SimulationError,
)
from repro.graphs.generators import complete_graph, core_network
from repro.graphs.random_graphs import k_in_regular_digraph, random_core_like_network
from repro.simulation.engine import SimulationConfig, SynchronousEngine, run_synchronous
from repro.simulation.inputs import uniform_random_inputs
from repro.simulation.vectorized import (
    BatchRunner,
    VectorizedEngine,
    cross_check_engines,
    random_input_matrix,
    run_vectorized,
)


class TestConstruction:
    def test_unsupported_rule_rejected(self):
        with pytest.raises(InvalidParameterError, match="no kernel"):
            VectorizedEngine(complete_graph(4), LinearAverageRule(0))

    def test_unknown_faulty_rejected(self):
        with pytest.raises(InvalidParameterError):
            VectorizedEngine(complete_graph(4), TrimmedMeanRule(1), faulty={9})

    def test_all_faulty_rejected(self):
        with pytest.raises(InvalidParameterError):
            VectorizedEngine(complete_graph(1), TrimmedMeanRule(0), faulty={0})

    def test_fault_budget_enforced(self):
        with pytest.raises(FaultBudgetExceededError):
            VectorizedEngine(complete_graph(7), TrimmedMeanRule(1), faulty={0, 1})

    def test_bad_adversary_type_rejected(self):
        with pytest.raises(InvalidParameterError):
            as_batch_strategy("not a strategy")

    def test_adapter_requires_exactly_one_source(self):
        with pytest.raises(InvalidParameterError):
            ScalarStrategyAdapter()
        with pytest.raises(InvalidParameterError):
            ScalarStrategyAdapter(
                strategy=StaticValueStrategy(1.0),
                factory=lambda: StaticValueStrategy(1.0),
            )

    def test_pack_inputs_validates_shape(self):
        engine = VectorizedEngine(complete_graph(4), TrimmedMeanRule(1))
        with pytest.raises(InvalidParameterError):
            engine.pack_inputs(np.zeros((2, 3)))
        with pytest.raises(InvalidParameterError):
            engine.pack_inputs({0: 1.0})  # missing nodes

    def test_run_rejects_multi_row_matrix(self):
        engine = VectorizedEngine(complete_graph(4), TrimmedMeanRule(1))
        with pytest.raises(InvalidParameterError, match="run_batch"):
            engine.run(np.zeros((3, 4)))  # type: ignore[arg-type]


class TestScalarEquivalence:
    """Round-for-round bit-exactness against the scalar engine."""

    @pytest.mark.parametrize("seed", range(6))
    def test_fault_free_random_digraphs(self, seed):
        graph = k_in_regular_digraph(8, 3, rng=seed)
        inputs = uniform_random_inputs(graph.nodes, rng=seed)
        report = cross_check_engines(
            graph, TrimmedMeanRule(0), inputs, rounds=25
        )
        assert report.identical, report

    @pytest.mark.parametrize("seed", range(6))
    def test_byzantine_random_digraphs(self, seed):
        f = 1 + seed % 2
        graph = random_core_like_network(3 * f + 4, f, rng=seed)
        faulty = random_fault_set(graph, f, rng=seed)
        inputs = uniform_random_inputs(graph.nodes, rng=seed + 100)
        report = cross_check_engines(
            graph,
            TrimmedMeanRule(f),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(delta=1.5),
            rounds=25,
        )
        assert report.identical, report

    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: ExtremePushStrategy(2.0),
            lambda: StaticValueStrategy(99.0),
            lambda: FrozenValueStrategy(),
            lambda: RandomNoiseStrategy(-10.0, 10.0, rng=13),
        ],
        ids=["extreme-push", "static", "frozen", "random-noise"],
    )
    def test_strategy_zoo_equivalence(self, adversary_factory):
        graph = core_network(10, 3)
        faulty = random_fault_set(graph, 3, rng=4)
        inputs = uniform_random_inputs(graph.nodes, rng=4)
        report = cross_check_engines(
            graph,
            TrimmedMeanRule(3),
            inputs,
            faulty=faulty,
            adversary=adversary_factory(),
            rounds=25,
        )
        assert report.identical, report

    def test_midpoint_rule_equivalence(self):
        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=5)
        inputs = uniform_random_inputs(graph.nodes, rng=5)
        report = cross_check_engines(
            graph,
            TrimmedMidpointRule(2),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(1.0),
            rounds=25,
        )
        assert report.identical, report

    def test_single_node_graph(self):
        report = cross_check_engines(
            complete_graph(1), TrimmedMeanRule(0), {0: 0.25}, rounds=3
        )
        assert report.identical

    def test_full_run_produces_identical_outcome_and_trace(self):
        graph = core_network(10, 3)
        faulty = random_fault_set(graph, 3, rng=6)
        inputs = uniform_random_inputs(graph.nodes, rng=6)
        scalar = run_synchronous(
            graph,
            TrimmedMeanRule(3),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(1.0),
        )
        vectorized = run_vectorized(
            graph,
            TrimmedMeanRule(3),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(1.0),
        )
        assert vectorized.converged == scalar.converged
        assert vectorized.rounds_executed == scalar.rounds_executed
        assert vectorized.final_spread == scalar.final_spread
        assert vectorized.initial_spread == scalar.initial_spread
        assert vectorized.validity_ok == scalar.validity_ok
        assert vectorized.final_values == scalar.final_values
        assert len(vectorized.history) == len(scalar.history)
        for mine, reference in zip(vectorized.history, scalar.history):
            assert mine.values == reference.values

    def test_batch_extreme_push_matches_scalar_extreme_push(self):
        graph = core_network(10, 3)
        faulty = random_fault_set(graph, 3, rng=7)
        inputs = uniform_random_inputs(graph.nodes, rng=7)
        scalar = run_synchronous(
            graph,
            TrimmedMeanRule(3),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(1.5),
        )
        batched = VectorizedEngine(
            graph,
            TrimmedMeanRule(3),
            faulty=faulty,
            adversary=BatchExtremePushStrategy(1.5),
        ).run(inputs)
        assert batched.final_values == scalar.final_values
        assert batched.rounds_executed == scalar.rounds_executed

    def test_run_vectorized_cross_check_flag(self):
        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=8)
        inputs = uniform_random_inputs(graph.nodes, rng=8)
        outcome = run_vectorized(
            graph,
            TrimmedMeanRule(2),
            inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(1.0),
            cross_check=True,
        )
        assert outcome.validity_ok


class TestBatchRunner:
    def test_determinism_under_fixed_seed(self):
        graph = core_network(10, 3)
        faulty = random_fault_set(graph, 3, rng=9)

        def fresh() -> BatchRunner:
            return BatchRunner(
                graph,
                TrimmedMeanRule(3),
                faulty=faulty,
                adversary=BatchExtremePushStrategy(1.0),
            )

        first = fresh().run_uniform(24, rng=21)
        second = fresh().run_uniform(24, rng=21)
        assert np.array_equal(first.final_states, second.final_states)
        assert np.array_equal(first.rounds_executed, second.rounds_executed)
        assert np.array_equal(first.converged, second.converged)

    def test_batch_rows_match_independent_runs(self):
        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=10)

        def engine() -> VectorizedEngine:
            return VectorizedEngine(
                graph,
                TrimmedMeanRule(2),
                faulty=faulty,
                adversary=BatchExtremePushStrategy(1.0),
            )

        matrix = random_input_matrix(engine().nodes, 6, rng=11)
        batched = engine().run_batch(matrix)
        for row in range(6):
            single = engine().run_batch(matrix[row : row + 1])
            assert np.array_equal(single.final_states[0], batched.final_states[row])
            assert single.rounds_executed[0] == batched.rounds_executed[row]
            assert single.converged[0] == batched.converged[row]

    def test_outcome_summaries(self):
        graph = core_network(7, 2)
        runner = BatchRunner(graph, TrimmedMeanRule(2))
        outcome = runner.run_uniform(8, rng=3)
        assert outcome.batch_size == 8
        assert outcome.fraction_converged == 1.0
        assert outcome.all_valid
        assert outcome.mean_rounds_to_convergence() > 0
        assert outcome.spread_history is not None
        # Spreads never increase under a passive adversary.
        diffs = np.diff(outcome.spread_history, axis=0)
        assert (diffs <= 1e-9).all()

    def test_no_history_when_disabled(self):
        graph = complete_graph(5)
        runner = BatchRunner(
            graph,
            TrimmedMeanRule(1),
            config=SimulationConfig(record_history=False),
        )
        outcome = runner.run_uniform(4, rng=2)
        assert outcome.spread_history is None

    def test_converged_rows_freeze(self):
        # A batch mixing an already-agreed row with a spread-out row: the
        # agreed row must report zero rounds and keep its state.
        graph = complete_graph(5)
        engine = VectorizedEngine(graph, TrimmedMeanRule(1))
        agreed = np.full((1, 5), 0.5)
        spread_out = random_input_matrix(engine.nodes, 1, rng=14)
        outcome = engine.run_batch(np.vstack([agreed, spread_out]))
        assert outcome.rounds_executed[0] == 0
        assert np.array_equal(outcome.final_states[0], agreed[0])
        assert outcome.rounds_executed[1] > 0

    def test_shared_stateful_strategy_rejected_for_batches(self):
        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=12)
        runner = BatchRunner(
            graph,
            TrimmedMeanRule(2),
            faulty=faulty,
            adversary=FrozenValueStrategy(),  # batch_safe = False
        )
        with pytest.raises(InvalidParameterError, match="per-execution state"):
            runner.run_uniform(3, rng=13)
        # B = 1 (the equivalence mode) stays allowed.
        assert BatchRunner(
            graph,
            TrimmedMeanRule(2),
            faulty=faulty,
            adversary=FrozenValueStrategy(),
        ).run_uniform(1, rng=13).all_valid

    def test_adapter_factory_gives_each_row_fresh_state(self):
        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=12)
        runner = BatchRunner(
            graph,
            TrimmedMeanRule(2),
            faulty=faulty,
            adversary=ScalarStrategyAdapter(factory=FrozenValueStrategy),
        )
        outcome = runner.run_uniform(5, rng=13)
        assert outcome.all_valid

    def test_passive_batch_matches_no_adversary(self):
        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=15)
        matrix = random_input_matrix(sorted(graph.nodes, key=repr), 4, rng=16)
        with_passive = VectorizedEngine(
            graph,
            TrimmedMeanRule(2),
            faulty=faulty,
            adversary=BatchPassiveStrategy(),
        ).run_batch(matrix)
        default = VectorizedEngine(
            graph, TrimmedMeanRule(2), faulty=faulty
        ).run_batch(matrix)
        assert np.array_equal(with_passive.final_states, default.final_states)


class TestAdversaryContract:
    def test_wrong_edge_value_shape_raises(self):
        class BadStrategy(BatchPassiveStrategy):
            def edge_values(self, context):
                return np.zeros((1, 1))

        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=1)
        engine = VectorizedEngine(
            graph, TrimmedMeanRule(2), faulty=faulty, adversary=BadStrategy()
        )
        matrix = random_input_matrix(engine.nodes, 2, rng=1)
        with pytest.raises(SimulationError, match="edge"):
            engine.step_matrix(matrix, 1)

    def test_wrong_nominal_shape_raises(self):
        class BadStrategy(BatchPassiveStrategy):
            def nominal_values(self, context):
                return np.zeros((1, 99))

        graph = core_network(7, 2)
        faulty = random_fault_set(graph, 2, rng=1)
        engine = VectorizedEngine(
            graph, TrimmedMeanRule(2), faulty=faulty, adversary=BadStrategy()
        )
        matrix = random_input_matrix(engine.nodes, 2, rng=1)
        with pytest.raises(SimulationError, match="nominal"):
            engine.step_matrix(matrix, 1)

    def test_cross_check_rejects_batch_strategy(self):
        graph = core_network(7, 2)
        with pytest.raises(InvalidParameterError):
            cross_check_engines(
                graph,
                TrimmedMeanRule(2),
                uniform_random_inputs(graph.nodes, rng=1),
                faulty=random_fault_set(graph, 2, rng=1),
                adversary=BatchExtremePushStrategy(1.0),  # type: ignore[arg-type]
            )


class TestInputMatrix:
    def test_shape_and_determinism(self):
        matrix = random_input_matrix(range(6), 10, rng=5)
        again = random_input_matrix(range(6), 10, rng=5)
        assert matrix.shape == (10, 6)
        assert np.array_equal(matrix, again)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            random_input_matrix(range(3), 0)
        with pytest.raises(InvalidParameterError):
            random_input_matrix(range(3), 2, low=1.0, high=0.0)
