"""Unit tests for metrics, validity tracking and input generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions import chord_n7_f2_witness
from repro.exceptions import InvalidParameterError
from repro.simulation import (
    ValidityTracker,
    bimodal_inputs,
    empirical_contraction_ratios,
    fault_free_extremes,
    has_converged,
    linear_ramp_inputs,
    split_inputs_from_witness,
    spread,
    uniform_random_inputs,
    within_hull,
)


class TestExtremesAndSpread:
    def test_fault_free_extremes_ignore_faulty(self):
        values = {0: 1.0, 1: 5.0, 2: -100.0}
        assert fault_free_extremes(values, frozenset({2})) == (1.0, 5.0)

    def test_all_faulty_rejected(self):
        with pytest.raises(InvalidParameterError):
            fault_free_extremes({0: 1.0}, frozenset({0}))

    def test_spread(self):
        assert spread({0: 1.0, 1: 4.0}, frozenset()) == pytest.approx(3.0)

    def test_has_converged(self):
        values = {0: 1.0, 1: 1.0 + 1e-8}
        assert has_converged(values, frozenset(), tolerance=1e-6)
        assert not has_converged(values, frozenset(), tolerance=1e-10)

    def test_has_converged_negative_tolerance(self):
        with pytest.raises(InvalidParameterError):
            has_converged({0: 1.0}, frozenset(), tolerance=-1.0)

    def test_within_hull(self):
        assert within_hull([0.1, 0.9], 0.0, 1.0)
        assert not within_hull([1.5], 0.0, 1.0)
        assert within_hull([1.0 + 1e-12], 0.0, 1.0)


class TestValidityTracker:
    def test_monotone_shrinkage_is_valid(self):
        tracker = ValidityTracker()
        tracker.observe(0.0, 1.0)
        tracker.observe(0.1, 0.9)
        tracker.observe(0.2, 0.8)
        assert tracker.ok
        assert tracker.first_violation_round is None

    def test_expansion_detected(self):
        tracker = ValidityTracker()
        tracker.observe(0.0, 1.0)
        tracker.observe(0.0, 1.5)
        assert not tracker.ok
        assert tracker.first_violation_round == 1

    def test_downward_expansion_detected(self):
        tracker = ValidityTracker()
        tracker.observe(0.0, 1.0)
        tracker.observe(-0.5, 1.0)
        assert not tracker.ok

    def test_tiny_numerical_noise_tolerated(self):
        tracker = ValidityTracker()
        tracker.observe(0.0, 1.0)
        tracker.observe(0.0, 1.0 + 1e-12)
        assert tracker.ok

    def test_inverted_interval_rejected(self):
        tracker = ValidityTracker()
        with pytest.raises(InvalidParameterError):
            tracker.observe(1.0, 0.0)

    def test_slow_drift_regression(self):
        """Sub-slack expansion every round must not accumulate unnoticed.

        The pre-fix implementation compared each round only to the previous
        round with fresh slack, so a per-round expansion of ``slack/2``
        drifted the hull arbitrarily far without ever flagging a violation.
        """
        tracker = ValidityTracker()
        step = tracker.slack / 2.0
        tracker.observe(0.0, 1.0)
        for round_index in range(1, 10):
            tracker.observe(0.0, 1.0 + round_index * step)
        assert not tracker.ok
        # Rounds 1 and 2 are within one total slack of the round-0 hull;
        # round 3 (1.0 + 1.5 * slack) is the first genuine escape.
        assert tracker.first_violation_round == 3

    def test_total_slack_bounded_once(self):
        tracker = ValidityTracker()
        tracker.observe(0.0, 1.0)
        tracker.observe(0.0, 1.0 + tracker.slack / 2.0)
        tracker.observe(0.0, 1.0 + tracker.slack / 2.0)
        assert tracker.ok

    def test_downward_drift_detected(self):
        tracker = ValidityTracker()
        step = tracker.slack / 2.0
        tracker.observe(0.0, 1.0)
        for round_index in range(1, 10):
            tracker.observe(-round_index * step, 1.0)
        assert not tracker.ok
        assert tracker.first_violation_round == 3

    def test_recovery_does_not_reset_the_hull(self):
        """A round that re-tightens never forgives an earlier tightest bound."""
        tracker = ValidityTracker()
        tracker.observe(0.0, 1.0)
        tracker.observe(0.2, 0.5)  # tightest hull is now [0.2, 0.5]
        tracker.observe(0.1, 0.6)  # outside the tightest hull -> violation
        assert not tracker.ok
        assert tracker.first_violation_round == 2

    def test_initial_interval_recorded(self):
        tracker = ValidityTracker()
        assert tracker.initial_interval is None
        tracker.observe(-1.5, 2.5)
        assert tracker.initial_interval == (-1.5, 2.5)
        tracker.observe(0.0, 1.0)
        assert tracker.initial_interval == (-1.5, 2.5)

    @pytest.mark.parametrize("seed", range(5))
    def test_property_monotone_hull_always_passes(self, seed):
        """Any execution whose hull only tightens satisfies validity."""
        rng = np.random.default_rng(seed)
        low, high = 0.0, 1.0
        tracker = ValidityTracker()
        tracker.observe(low, high)
        for _ in range(40):
            low = low + rng.uniform(0.0, 0.4) * (high - low)
            high = high - rng.uniform(0.0, 0.4) * (high - low)
            tracker.observe(low, high)
        assert tracker.ok
        assert tracker.first_violation_round is None
        assert tracker.initial_interval == (0.0, 1.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_property_single_expansion_flags_correct_round(self, seed):
        """One expansion beyond slack fails with the exact violating round."""
        rng = np.random.default_rng(100 + seed)
        violation_round = int(rng.integers(1, 30))
        low, high = 0.0, 1.0
        tracker = ValidityTracker()
        tracker.observe(low, high)
        for round_index in range(1, 31):
            if round_index == violation_round:
                high = high + 10.0 * tracker.slack
            else:
                shrink = rng.uniform(0.0, 0.1) * (high - low)
                low, high = low + shrink, high - shrink
            tracker.observe(low, high)
        assert not tracker.ok
        assert tracker.first_violation_round == violation_round


class TestContractionRatios:
    def test_ratios(self):
        ratios = empirical_contraction_ratios([4.0, 2.0, 1.0])
        assert ratios == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_zero_previous_skipped(self):
        assert empirical_contraction_ratios([0.0, 0.0]) == []

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            empirical_contraction_ratios([1.0, -1.0])


class TestInputGenerators:
    def test_uniform_random_inputs_bounds_and_determinism(self):
        nodes = range(10)
        first = uniform_random_inputs(nodes, 2.0, 3.0, rng=4)
        second = uniform_random_inputs(nodes, 2.0, 3.0, rng=4)
        assert first == second
        assert all(2.0 <= value <= 3.0 for value in first.values())
        assert set(first) == set(range(10))

    def test_uniform_invalid_bounds(self):
        with pytest.raises(InvalidParameterError):
            uniform_random_inputs(range(3), 1.0, 0.0)

    def test_linear_ramp(self):
        inputs = linear_ramp_inputs(range(5), 0.0, 1.0)
        assert inputs[0] == 0.0
        assert inputs[4] == 1.0
        assert inputs[2] == pytest.approx(0.5)

    def test_linear_ramp_single_node(self):
        assert linear_ramp_inputs([7], 0.0, 2.0) == {7: 1.0}

    def test_linear_ramp_empty(self):
        assert linear_ramp_inputs([]) == {}

    def test_bimodal_inputs_two_clusters(self):
        inputs = bimodal_inputs(range(10), 0.0, 1.0, high_fraction=0.3, rng=1)
        values = set(inputs.values())
        assert values == {0.0, 1.0}
        assert sum(1 for value in inputs.values() if value == 1.0) == 3

    def test_bimodal_always_has_both_clusters(self):
        inputs = bimodal_inputs(range(5), 0.0, 1.0, high_fraction=0.0, rng=2)
        assert 1.0 in inputs.values() and 0.0 in inputs.values()

    def test_bimodal_invalid_fraction(self):
        with pytest.raises(InvalidParameterError):
            bimodal_inputs(range(4), 0.0, 1.0, high_fraction=1.5)

    def test_split_inputs_from_witness(self):
        witness = chord_n7_f2_witness()
        inputs = split_inputs_from_witness(witness, 0.0, 2.0)
        assert all(inputs[node] == 0.0 for node in witness.left)
        assert all(inputs[node] == 2.0 for node in witness.right)
        assert all(inputs[node] == 1.0 for node in witness.faulty)

    def test_split_inputs_invalid_range(self):
        with pytest.raises(InvalidParameterError):
            split_inputs_from_witness(chord_n7_f2_witness(), 1.0, 1.0)

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(0)
        inputs = uniform_random_inputs(range(4), rng=rng)
        assert len(inputs) == 4
