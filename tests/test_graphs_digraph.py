"""Unit tests for the core Digraph type."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.graphs import Digraph


class TestConstruction:
    def test_empty_graph(self):
        graph = Digraph()
        assert graph.number_of_nodes == 0
        assert graph.number_of_edges == 0
        assert graph.nodes == frozenset()
        assert graph.edges == frozenset()

    def test_nodes_and_edges_from_constructor(self):
        graph = Digraph(nodes=[0, 1, 2], edges=[(0, 1), (1, 2)])
        assert graph.nodes == frozenset({0, 1, 2})
        assert graph.edges == frozenset({(0, 1), (1, 2)})

    def test_edges_create_missing_endpoints(self):
        graph = Digraph(edges=[(5, 9)])
        assert graph.nodes == frozenset({5, 9})

    def test_duplicate_edges_are_collapsed(self):
        graph = Digraph(edges=[(0, 1), (0, 1), (0, 1)])
        assert graph.number_of_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            Digraph(edges=[(3, 3)])

    def test_adding_existing_node_is_noop(self):
        graph = Digraph(nodes=[0], edges=[(0, 1)])
        graph.add_node(0)
        assert graph.out_degree(0) == 1

    def test_string_and_int_nodes_coexist(self):
        graph = Digraph(edges=[("a", 1), (1, "b")])
        assert graph.has_edge("a", 1)
        assert graph.in_neighbors("b") == frozenset({1})


class TestNeighborQueries:
    def test_in_and_out_neighbors(self):
        graph = Digraph(edges=[(0, 1), (2, 1), (1, 3)])
        assert graph.in_neighbors(1) == frozenset({0, 2})
        assert graph.out_neighbors(1) == frozenset({3})
        assert graph.in_degree(1) == 2
        assert graph.out_degree(1) == 1

    def test_direction_matters(self):
        graph = Digraph(edges=[(0, 1)])
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_unknown_node_raises(self):
        graph = Digraph(nodes=[0])
        with pytest.raises(NodeNotFoundError):
            graph.in_neighbors(99)
        with pytest.raises(NodeNotFoundError):
            graph.out_degree(99)

    def test_in_neighbors_within(self):
        graph = Digraph(edges=[(0, 5), (1, 5), (2, 5), (3, 5)])
        assert graph.in_neighbors_within(5, frozenset({0, 2, 9})) == {0, 2}
        assert graph.in_degree_within(5, frozenset({0, 2, 9})) == 2
        assert graph.in_degree_within(5, frozenset()) == 0

    def test_in_degree_within_large_group_path(self):
        # Exercise the branch iterating the predecessor set (preds smaller).
        graph = Digraph(edges=[(0, 1)])
        graph.add_nodes(range(2, 50))
        group = frozenset(range(0, 50, 1)) - {1}
        assert graph.in_degree_within(1, group) == 1


class TestMutation:
    def test_remove_edge(self):
        graph = Digraph(edges=[(0, 1), (1, 0)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_remove_missing_edge_raises(self):
        graph = Digraph(nodes=[0, 1])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_remove_node_cleans_incident_edges(self):
        graph = Digraph(edges=[(0, 1), (1, 2), (2, 0)])
        graph.remove_node(1)
        assert graph.nodes == frozenset({0, 2})
        assert graph.edges == frozenset({(2, 0)})

    def test_bidirectional_edge_helper(self):
        graph = Digraph()
        graph.add_bidirectional_edge(0, 1)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_copy_is_independent(self):
        graph = Digraph(edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 0)
        assert not graph.has_edge(1, 0)
        assert clone.has_edge(1, 0)


class TestDerivedGraphs:
    def test_subgraph(self):
        graph = Digraph(edges=[(0, 1), (1, 2), (2, 0), (0, 3)])
        sub = graph.subgraph([0, 1, 2])
        assert sub.nodes == frozenset({0, 1, 2})
        assert sub.edges == frozenset({(0, 1), (1, 2), (2, 0)})

    def test_subgraph_unknown_node_raises(self):
        graph = Digraph(nodes=[0])
        with pytest.raises(NodeNotFoundError):
            graph.subgraph([0, 7])

    def test_reverse(self):
        graph = Digraph(edges=[(0, 1), (1, 2)])
        rev = graph.reverse()
        assert rev.edges == frozenset({(1, 0), (2, 1)})
        assert rev.nodes == graph.nodes

    def test_is_symmetric(self):
        asym = Digraph(edges=[(0, 1), (1, 2), (2, 0)])
        sym = Digraph(edges=[(0, 1), (1, 0)])
        assert not asym.is_symmetric()
        assert sym.is_symmetric()

    def test_to_undirected_edges(self):
        graph = Digraph(edges=[(0, 1), (1, 0), (1, 2)])
        assert graph.to_undirected_edges() == frozenset(
            {frozenset({0, 1}), frozenset({1, 2})}
        )


class TestDunders:
    def test_len_iter_contains(self):
        graph = Digraph(nodes=[0, 1, 2])
        assert len(graph) == 3
        assert set(iter(graph)) == {0, 1, 2}
        assert 1 in graph
        assert 9 not in graph

    def test_equality(self):
        first = Digraph(edges=[(0, 1)])
        second = Digraph(edges=[(0, 1)])
        third = Digraph(edges=[(1, 0)])
        assert first == second
        assert first != third
        assert first != "not a graph"

    def test_repr(self):
        graph = Digraph(edges=[(0, 1)])
        assert "n=2" in repr(graph) and "m=1" in repr(graph)
