"""Tests for the experiment registry, grid machinery and sweep orchestrator."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sweeps.grid import (
    apply_overrides,
    expand_grid,
    grid_fingerprint,
    parse_override,
)
from repro.sweeps.orchestrator import execute_shard, plan_sweep, run_sweep
from repro.sweeps.registry import all_experiments, get_experiment
from repro.sweeps.store import RunStore, numeric_columns

#: The registered experiments every release must provide: the nine paper
#: experiments plus the ``checker_scaling`` sweep over the bitset checker,
#: the ``adversary_showdown`` sweep over the batch-native strategies, the
#: ``large_n`` sparse-engine scale sweep, and the ``dynamic_topology`` /
#: ``churn_sweep`` dynamic-axis sweeps.
EXPECTED_EXPERIMENTS = {
    "ablation",
    "adversary_showdown",
    "asynchronous",
    "checker",
    "checker_scaling",
    "churn_sweep",
    "convergence_rate",
    "corollaries",
    "dynamic_topology",
    "families",
    "feasibility_at_scale",
    "large_n",
    "necessity",
    "robustness",
    "validity",
}

#: A two-cell convergence_rate grid small enough for orchestrator tests.
TINY_GRID = (
    "case=complete n=4 f=1,core n=7 f=2",
    "batch=4",
    "rounds=60",
)


class TestRegistry:
    def test_all_expected_experiments_registered(self):
        assert set(all_experiments()) == EXPECTED_EXPERIMENTS

    def test_specs_declare_paper_sections_and_grids(self):
        for name, spec in all_experiments().items():
            assert spec.paper_section, name
            assert spec.claim, name
            assert spec.engine, name
            assert spec.default_cell_count >= 1, name
            for key, values in spec.grid.items():
                assert values, (name, key)

    def test_get_experiment_unknown_name(self):
        with pytest.raises(InvalidParameterError, match="registered experiments"):
            get_experiment("nope")

    def test_runner_is_directly_callable(self):
        spec = get_experiment("corollaries")
        rows = spec.runner(corollary=3, f=1)
        assert rows and rows[0]["condition_holds"] is True

    def test_runner_rejects_unknown_case_label(self):
        for name, key in [
            ("convergence_rate", "case"),
            ("asynchronous", "case"),
            ("necessity", "case"),
            ("robustness", "case"),
            ("checker", "case"),
            ("validity", "graph"),
            ("ablation", "graph"),
            ("families", "study"),
        ]:
            spec = get_experiment(name)
            cell = {k: values[0] for k, values in spec.grid.items()}
            cell[key] = "no such label"
            with pytest.raises(InvalidParameterError):
                spec.runner(**cell)


class TestGrid:
    def test_expand_grid_order_last_key_fastest(self):
        cells = expand_grid({"a": (1, 2), "b": ("x", "y")})
        assert cells == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_expand_empty_grid_is_one_empty_cell(self):
        assert expand_grid({}) == [{}]

    def test_parse_override_json_types(self):
        key, values = parse_override("batch=4,0.5,true,null,complete n=4 f=1")
        assert key == "batch"
        assert values == (4, 0.5, True, None, "complete n=4 f=1")

    def test_parse_override_rejects_malformed(self):
        with pytest.raises(InvalidParameterError):
            parse_override("no-equals-sign")
        with pytest.raises(InvalidParameterError):
            parse_override("key=a,,b")

    def test_apply_overrides_unknown_key(self):
        with pytest.raises(InvalidParameterError, match="unknown grid parameter"):
            apply_overrides({"a": (1,)}, ["b=2"])

    def test_apply_overrides_extra_allowed(self):
        merged = apply_overrides({"a": (1,)}, ["seed=7"], extra_allowed=("seed",))
        assert merged == {"a": (1,), "seed": (7,)}

    def test_overrides_coerce_to_declared_int_type(self):
        # json.loads("1e2") is a float; int-typed parameters coerce it back.
        merged = apply_overrides({"rounds": (50,)}, ["rounds=1e2"])
        assert merged["rounds"] == (100,)
        assert type(merged["rounds"][0]) is int
        # Injected-seed parameters (no declared values) are int-typed too.
        merged = apply_overrides({}, ["seed=2e3"], extra_allowed=("seed",))
        assert merged["seed"] == (2000,)
        # Non-integral floats for int parameters are rejected, float-typed
        # parameters pass through untouched.
        with pytest.raises(InvalidParameterError, match="integer values"):
            apply_overrides({"rounds": (50,)}, ["rounds=1.5"])
        merged = apply_overrides({"tolerance": (1e-7,)}, ["tolerance=1e-5"])
        assert merged["tolerance"] == (1e-5,)

    def test_fingerprint_changes_with_inputs(self):
        base = grid_fingerprint("e", {"a": (1,)}, 0, 1)
        assert base == grid_fingerprint("e", {"a": (1,)}, 0, 1)
        assert base != grid_fingerprint("e", {"a": (2,)}, 0, 1)
        assert base != grid_fingerprint("e", {"a": (1,)}, 1, 1)
        assert base != grid_fingerprint("f", {"a": (1,)}, 0, 1)


class TestPlanning:
    def test_plan_is_deterministic(self):
        first = plan_sweep("convergence_rate", TINY_GRID, seed=3)
        second = plan_sweep("convergence_rate", TINY_GRID, seed=3)
        assert first == second
        assert len(first.cells) == 2
        assert first.cell_seeds == second.cell_seeds

    def test_cell_seeds_follow_seed_sequence_spawn(self):
        plan = plan_sweep("convergence_rate", TINY_GRID, seed=5)
        children = np.random.SeedSequence(5).spawn(len(plan.cells))
        expected = tuple(int(child.generate_state(1)[0]) for child in children)
        assert plan.cell_seeds == expected

    def test_default_one_shard_per_cell_and_explicit_shards(self):
        plan = plan_sweep("convergence_rate", TINY_GRID)
        assert [list(shard) for shard in plan.shards] == [[0], [1]]
        coarse = plan_sweep("convergence_rate", TINY_GRID, shards=1)
        assert [list(shard) for shard in coarse.shards] == [[0, 1]]
        # More shards than cells degrades gracefully to one per cell.
        capped = plan_sweep("convergence_rate", TINY_GRID, shards=10)
        assert len(capped.shards) == 2

    def test_injected_seed_reaches_the_runner(self):
        plan = plan_sweep("convergence_rate", ("case=complete n=4 f=1", "batch=4", "rounds=60"))
        payload = execute_shard(plan, 0)
        assert payload["cells"][0]["params"]["seed"] == plan.cell_seeds[0]

    def test_grid_pinned_seed_wins_over_injection(self):
        plan = plan_sweep(
            "convergence_rate",
            ("case=complete n=4 f=1", "batch=4", "rounds=60", "seed=11"),
        )
        payload = execute_shard(plan, 0)
        assert payload["cells"][0]["params"]["seed"] == 11


class TestRunSweep:
    def test_workers_parity_bit_identical(self, tmp_path):
        serial = run_sweep(
            "convergence_rate",
            TINY_GRID,
            workers=1,
            results_root=tmp_path,
            run_id="w1",
        )
        parallel = run_sweep(
            "convergence_rate",
            TINY_GRID,
            workers=2,
            results_root=tmp_path,
            run_id="w2",
        )
        assert serial.rows == parallel.rows
        # The persisted aggregates agree byte-for-byte on the rows too.
        rows_serial = json.loads((tmp_path / "w1" / "aggregate.json").read_text())
        rows_parallel = json.loads((tmp_path / "w2" / "aggregate.json").read_text())
        assert rows_serial["rows"] == rows_parallel["rows"]

    def test_manifest_and_store_round_trip(self, tmp_path):
        result = run_sweep(
            "necessity",
            ("case=ring n=6 f=1",),
            results_root=tmp_path,
            run_id="nec",
        )
        store = RunStore(tmp_path / "nec")
        manifest = store.read_manifest()
        assert manifest["status"] == "complete"
        assert manifest["experiment"] == "necessity"
        assert manifest["paper_section"].startswith("Section 3")
        assert manifest["completed_shards"] == [0]
        assert manifest["provenance"]["python"]
        aggregate = store.read_aggregate()
        assert aggregate["rows"] == result.rows
        assert result.rows[0]["stalled"] is True
        assert result.rows[0]["validity_ok"] is True
        # NPZ companion holds the numeric columns in row order.
        with np.load(store.aggregate_npz_path) as npz:
            assert npz["cell_index"].tolist() == [0]

    def test_resume_skips_completed_shards(self, tmp_path):
        messages: list[str] = []
        run_sweep(
            "convergence_rate",
            TINY_GRID,
            results_root=tmp_path,
            run_id="resume",
            echo=messages.append,
        )
        store = RunStore(tmp_path / "resume")
        store.shard_path(1).unlink()
        store.aggregate_path.unlink()
        messages.clear()
        resumed = run_sweep(
            "convergence_rate",
            TINY_GRID,
            results_root=tmp_path,
            run_id="resume",
            echo=messages.append,
        )
        assert any("1 already complete, 1 to run" in message for message in messages)
        assert len(resumed.rows) == 2
        # The manifest reflects per-shard progress even mid-run, so an
        # interrupted sweep reports truthfully.
        manifest = store.read_manifest()
        assert manifest["completed_shards"] == [0, 1]
        # And a fully-complete rerun executes nothing.
        messages.clear()
        run_sweep(
            "convergence_rate",
            TINY_GRID,
            results_root=tmp_path,
            run_id="resume",
            echo=messages.append,
        )
        assert any("2 already complete, 0 to run" in message for message in messages)

    def test_run_dir_fingerprint_conflict_is_rejected(self, tmp_path):
        run_sweep(
            "convergence_rate",
            TINY_GRID,
            results_root=tmp_path,
            run_id="clash",
        )
        with pytest.raises(InvalidParameterError, match="different sweep"):
            run_sweep(
                "convergence_rate",
                TINY_GRID,
                seed=99,
                results_root=tmp_path,
                run_id="clash",
            )

    def test_invalid_workers(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="workers"):
            run_sweep("necessity", workers=0, results_root=tmp_path)


class TestNumericColumns:
    def test_extracts_only_uniformly_numeric_keys(self):
        rows = [
            {"a": 1, "b": 0.5, "c": True, "d": "text", "e": 1},
            {"a": 2, "b": 1.5, "c": False, "d": "more", "e": None},
        ]
        columns = numeric_columns(rows)
        assert set(columns) == {"a", "b", "c"}
        assert columns["a"].tolist() == [1, 2]
        assert columns["c"].dtype == np.bool_

    def test_empty_rows(self):
        assert numeric_columns([]) == {}
