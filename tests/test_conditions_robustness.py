"""Unit tests for r-robustness and (r, s)-robustness."""

from __future__ import annotations

import pytest

from repro.conditions import (
    is_r_robust,
    is_r_s_robust,
    r_reachable_subset,
    robustness_degree,
    satisfies_theorem1,
)
from repro.exceptions import GraphTooLargeError, InvalidParameterError
from repro.graphs import (
    Digraph,
    complete_graph,
    core_network,
    directed_ring,
    hypercube,
    undirected_ring,
)


class TestRReachableSubset:
    def test_definition(self):
        graph = Digraph(edges=[(0, 2), (1, 2), (0, 3)])
        graph.add_nodes([0, 1, 2, 3])
        subset = frozenset({2, 3})
        assert r_reachable_subset(graph, subset, 2) == frozenset({2})
        assert r_reachable_subset(graph, subset, 1) == frozenset({2, 3})

    def test_invalid_r(self):
        with pytest.raises(InvalidParameterError):
            r_reachable_subset(complete_graph(3), frozenset({0}), 0)


class TestRRobustness:
    def test_complete_graph_is_ceil_n_over_2_robust(self):
        # K_n is ⌈n/2⌉-robust and no more.
        graph = complete_graph(6)
        assert is_r_robust(graph, 3)
        assert not is_r_robust(graph, 4)

    def test_ring_is_exactly_1_robust(self):
        graph = undirected_ring(6)
        assert is_r_robust(graph, 1)
        assert not is_r_robust(graph, 2)

    def test_hypercube_d3_is_not_2_robust(self):
        # The dimension cut shows the 3-cube is 1-robust but not 2-robust.
        graph = hypercube(3)
        assert is_r_robust(graph, 1)
        assert not is_r_robust(graph, 2)

    def test_directed_ring_1_robust(self):
        assert is_r_robust(directed_ring(5), 1)

    def test_disconnected_not_1_robust(self):
        graph = Digraph(edges=[(0, 1), (1, 0), (2, 3), (3, 2)])
        assert not is_r_robust(graph, 1)

    def test_tiny_graph_trivially_robust(self):
        assert is_r_robust(Digraph(nodes=[0]), 3)

    def test_cap_enforced(self):
        with pytest.raises(GraphTooLargeError):
            is_r_robust(complete_graph(25), 2)
        with pytest.raises(GraphTooLargeError):
            is_r_robust(complete_graph(12), 2, max_nodes=10)

    def test_robustness_degree(self):
        assert robustness_degree(complete_graph(6)) == 3
        assert robustness_degree(undirected_ring(6)) == 1
        disconnected = Digraph(edges=[(0, 1), (1, 0), (2, 3), (3, 2)])
        assert robustness_degree(disconnected) == 0


class TestRSRobustness:
    def test_r_robust_iff_r_1_robust(self):
        # (r, 1)-robustness is equivalent to r-robustness.
        for graph in [complete_graph(5), undirected_ring(5), hypercube(3)]:
            for r in (1, 2):
                assert is_r_s_robust(graph, r, 1) == is_r_robust(graph, r)

    def test_complete_graph_f_plus_1_robustness(self):
        # K_7 is (3, 3)-robust (needed for f = 2), but K_6 is not (4, 4)-robust
        # and K_4 is not (3, 3)-robust (splitting into two equal halves leaves
        # no node with enough in-neighbours outside its own half).
        assert is_r_s_robust(complete_graph(7), 3, 3)
        assert not is_r_s_robust(complete_graph(6), 4, 4)
        assert not is_r_s_robust(complete_graph(4), 3, 3)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            is_r_s_robust(complete_graph(4), 0, 1)
        with pytest.raises(InvalidParameterError):
            is_r_s_robust(complete_graph(4), 1, 0)

    def test_agreement_with_theorem1_on_paper_families(self):
        # On the paper's undirected/complete families the (f+1, f+1)-robustness
        # verdict matches the Theorem-1 verdict (they coincide for these cases).
        cases = [
            (complete_graph(4), 1),
            (complete_graph(7), 2),
            (core_network(7, 2), 2),
            (hypercube(3), 1),
            (undirected_ring(6), 1),
        ]
        for graph, f in cases:
            assert is_r_s_robust(graph, f + 1, f + 1) == satisfies_theorem1(graph, f)
