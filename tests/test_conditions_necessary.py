"""Unit tests for the Theorem-1 checkers, corollary screens and structural
shortcuts."""

from __future__ import annotations

import pytest

from repro.conditions import (
    check_feasibility,
    find_core_clique,
    find_violating_partition,
    is_core_network,
    maximal_insulated_subset,
    passes_count_screen,
    passes_in_degree_screen,
    satisfies_theorem1,
    verify_witness,
    violates_condition,
)
from repro.exceptions import (
    GraphTooLargeError,
    InvalidParameterError,
    InvalidPartitionError,
)
from repro.graphs import (
    Digraph,
    butterfly_barbell,
    chord_network,
    complete_graph,
    core_network,
    directed_ring,
    hypercube,
    star_graph,
    undirected_ring,
    without_edges,
)
from repro.types import PartitionWitness


class TestSinglePartitionCheck:
    def test_hypercube_dimension_cut_violates(self, cube3):
        assert violates_condition(
            cube3, 1, faulty=[], left={0, 1, 2, 3}, center=[], right={4, 5, 6, 7}
        )

    def test_complete_graph_partition_does_not_violate(self, complete7):
        assert not violates_condition(
            complete7, 2, faulty={5, 6}, left={0, 2}, center=[], right={1, 3, 4}
        )

    def test_paper_chord_witness_violates(self, chord_7_2):
        assert violates_condition(
            chord_7_2, 2, faulty={5, 6}, left={0, 2}, center=[], right={1, 3, 4}
        )

    def test_partition_must_cover_vertex_set(self, complete4):
        with pytest.raises(InvalidPartitionError):
            violates_condition(complete4, 1, faulty=[], left={0}, center=[], right={1})

    def test_partition_parts_must_be_disjoint(self, complete4):
        with pytest.raises(InvalidPartitionError):
            violates_condition(
                complete4, 1, faulty=[0], left={0, 1}, center=[2], right={3}
            )

    def test_fault_budget_enforced(self, complete7):
        with pytest.raises(InvalidPartitionError):
            violates_condition(
                complete7, 1, faulty={0, 1}, left={2, 3}, center={4}, right={5, 6}
            )

    def test_empty_left_or_right_rejected(self, complete4):
        with pytest.raises(InvalidPartitionError):
            violates_condition(
                complete4, 1, faulty=[0], left=[], center={1, 2}, right={3}
            )

    def test_negative_f_rejected(self, complete4):
        with pytest.raises(InvalidParameterError):
            violates_condition(complete4, -1, faulty=[], left={0}, center={1, 2}, right={3})

    def test_verify_witness_accepts_and_rejects(self, chord_7_2, complete7):
        witness = PartitionWitness(
            faulty=frozenset({5, 6}),
            left=frozenset({0, 2}),
            center=frozenset(),
            right=frozenset({1, 3, 4}),
        )
        assert verify_witness(chord_7_2, 2, witness)
        assert not verify_witness(complete7, 2, witness)

    def test_verify_witness_wrong_vertex_set_is_false(self, complete4):
        witness = PartitionWitness(
            faulty=frozenset(),
            left=frozenset({0}),
            center=frozenset(),
            right=frozenset({1}),
        )
        assert not verify_witness(complete4, 1, witness)


class TestScreens:
    @pytest.mark.parametrize(
        "n,f,expected",
        [(4, 1, True), (3, 1, False), (7, 2, True), (6, 2, False), (1, 0, True)],
    )
    def test_count_screen(self, n, f, expected):
        assert passes_count_screen(n, f) is expected

    def test_count_screen_invalid(self):
        with pytest.raises(InvalidParameterError):
            passes_count_screen(0, 1)
        with pytest.raises(InvalidParameterError):
            passes_count_screen(5, -1)

    def test_in_degree_screen(self, complete7, cube3):
        assert passes_in_degree_screen(complete7, 2)
        assert passes_in_degree_screen(cube3, 1)
        assert not passes_in_degree_screen(cube3, 2)
        assert passes_in_degree_screen(cube3, 0)

    def test_in_degree_screen_star(self):
        assert not passes_in_degree_screen(star_graph(5), 1)


class TestInsulatedSubset:
    def test_maximal_insulated_subset_of_hypercube_half(self, cube3):
        universe = cube3.nodes
        pool = frozenset({4, 5, 6, 7})
        result = maximal_insulated_subset(cube3, pool, universe, threshold=2)
        assert result == pool  # each node has only 1 in-neighbour outside

    def test_maximal_insulated_subset_empty_in_complete_graph(self, complete7):
        universe = complete7.nodes
        pool = frozenset({0, 1, 2})
        assert (
            maximal_insulated_subset(complete7, pool, universe, threshold=3)
            == frozenset()
        )

    def test_partial_shrinkage(self):
        # Node 2 has two in-neighbours outside the pool, nodes 3 and 4 have none.
        graph = Digraph(edges=[(0, 2), (1, 2), (3, 4), (4, 3)])
        universe = graph.nodes
        pool = frozenset({2, 3, 4})
        assert maximal_insulated_subset(graph, pool, universe, threshold=2) == frozenset(
            {3, 4}
        )


class TestExhaustiveChecker:
    def test_complete_graphs_threshold(self):
        # Corollary 2 boundary: complete graphs satisfy iff n > 3f.
        assert satisfies_theorem1(complete_graph(4), 1)
        assert not satisfies_theorem1(complete_graph(3), 1)
        assert satisfies_theorem1(complete_graph(7), 2)
        assert not satisfies_theorem1(complete_graph(6), 2)

    def test_paper_chord_cases(self):
        assert satisfies_theorem1(chord_network(4, 1), 1)
        assert satisfies_theorem1(chord_network(5, 1), 1)
        assert not satisfies_theorem1(chord_network(7, 2), 2)

    def test_hypercube_fails_for_f1(self, cube3):
        witness = find_violating_partition(cube3, 1)
        assert witness is not None
        assert verify_witness(cube3, 1, witness)

    def test_hypercube_satisfies_for_f0(self, cube3):
        assert satisfies_theorem1(cube3, 0)

    def test_core_networks_satisfy(self):
        assert satisfies_theorem1(core_network(4, 1), 1)
        assert satisfies_theorem1(core_network(7, 2), 2)
        assert satisfies_theorem1(core_network(8, 2), 2)

    def test_witness_is_always_genuine(self):
        # Whatever witness the checker returns must verify.
        for graph, f in [
            (chord_network(7, 2), 2),
            (hypercube(3), 1),
            (undirected_ring(6), 1),
            (butterfly_barbell(4, 1), 1),
        ]:
            witness = find_violating_partition(graph, f)
            assert witness is not None
            assert verify_witness(graph, f, witness)

    def test_f0_directed_ring_satisfies(self):
        # With f = 0 the condition reduces to "no two disjoint closed sets";
        # a strongly connected graph satisfies it.
        assert satisfies_theorem1(directed_ring(5), 0)

    def test_f0_two_disconnected_components_fail(self):
        graph = Digraph(edges=[(0, 1), (1, 0), (2, 3), (3, 2)])
        witness = find_violating_partition(graph, 0)
        assert witness is not None

    def test_single_node_graph_is_vacuously_feasible(self):
        assert satisfies_theorem1(Digraph(nodes=[0]), 1)

    def test_node_cap_enforced(self):
        with pytest.raises(GraphTooLargeError):
            find_violating_partition(complete_graph(20), 1, max_nodes=10)

    def test_node_cap_can_be_raised(self):
        # 12 nodes exceeds a deliberately low cap but is fast to enumerate.
        with pytest.raises(GraphTooLargeError):
            find_violating_partition(complete_graph(12), 1, max_nodes=10)
        assert satisfies_theorem1(complete_graph(12), 1, max_nodes=12)

    def test_negative_f_rejected(self, complete4):
        with pytest.raises(InvalidParameterError):
            find_violating_partition(complete4, -1)

    def test_monotone_under_edge_addition(self):
        # Removing edges from a feasible graph can break the condition, and
        # adding them back must restore it: start from complete_graph(4) minus
        # one node's incoming edges.
        broken = without_edges(complete_graph(4), [(1, 0), (2, 0)])
        assert not satisfies_theorem1(broken, 1)
        assert satisfies_theorem1(complete_graph(4), 1)


class TestStructuralShortcuts:
    def test_find_core_clique_on_core_network(self):
        graph = core_network(9, 2)
        clique = find_core_clique(graph, 2)
        assert clique == frozenset(range(5))

    def test_find_core_clique_absent(self, cube3):
        assert find_core_clique(cube3, 1) is None

    def test_is_core_network(self):
        assert is_core_network(core_network(7, 2), 2)
        assert not is_core_network(hypercube(3), 1)
        # Too few nodes overall: n must exceed 3f.
        assert not is_core_network(complete_graph(6), 2)

    def test_core_detection_on_supergraph(self):
        graph = core_network(7, 2)
        graph.add_bidirectional_edge(5, 6)  # extra edge between outsiders
        assert is_core_network(graph, 2)


class TestCheckFeasibility:
    def test_screen_rejections_carry_method(self):
        result = check_feasibility(complete_graph(3), 1)
        assert not result.satisfied
        assert result.method == "screen:n>3f"

        result = check_feasibility(star_graph(5), 1)
        assert not result.satisfied
        assert result.method == "screen:in-degree"

    def test_structural_shortcuts_used(self):
        assert check_feasibility(complete_graph(7), 2).method == "structural:complete"
        assert (
            check_feasibility(core_network(10, 3), 3).method
            == "structural:core-network"
        )

    def test_exhaustive_fallback_with_witness(self, chord_7_2):
        result = check_feasibility(chord_7_2, 2)
        assert not result.satisfied
        assert result.method == "exhaustive"
        assert result.witness is not None
        assert verify_witness(chord_7_2, 2, result.witness)

    def test_exhaustive_positive(self, chord_5_1):
        result = check_feasibility(chord_5_1, 1, use_structural_shortcuts=False)
        assert result.satisfied
        assert result.method == "exhaustive"
        assert bool(result) is True

    def test_shortcuts_can_be_disabled(self):
        result = check_feasibility(complete_graph(7), 2, use_structural_shortcuts=False)
        assert result.satisfied
        assert result.method == "exhaustive"
