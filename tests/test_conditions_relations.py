"""Unit tests for the ⇒ relation, in(A ⇒ B) and propagation (Definitions 1–3)."""

from __future__ import annotations

import pytest

from repro.conditions import (
    influenced_set,
    influenced_set_f,
    propagates,
    propagates_f,
    propagation_dichotomy,
    propagation_length_bound,
    reaches,
    reaches_f,
)
from repro.exceptions import InvalidParameterError, InvalidPartitionError
from repro.graphs import Digraph, complete_graph, core_network, hypercube


class TestReaches:
    def test_simple_threshold(self):
        # Node 3 has two in-neighbours inside {0, 1}; A ⇒ B at threshold 2
        # but not at threshold 3.
        graph = Digraph(edges=[(0, 3), (1, 3), (2, 3)])
        assert reaches(graph, {0, 1}, {3}, threshold=2)
        assert not reaches(graph, {0, 1}, {3}, threshold=3)

    def test_f_wrapper_uses_f_plus_1(self):
        graph = Digraph(edges=[(0, 3), (1, 3)])
        assert reaches_f(graph, {0, 1}, {3}, f=1)
        assert not reaches_f(graph, {0, 1}, {3}, f=2)

    def test_empty_sets_never_reach(self):
        graph = complete_graph(4)
        assert not reaches(graph, set(), {0}, threshold=1)
        assert not reaches(graph, {0}, set(), threshold=1)

    def test_source_smaller_than_threshold_short_circuits(self):
        graph = complete_graph(5)
        assert not reaches(graph, {0}, {1, 2}, threshold=2)

    def test_overlapping_sets_rejected(self):
        graph = complete_graph(4)
        with pytest.raises(InvalidPartitionError):
            reaches(graph, {0, 1}, {1, 2}, threshold=1)

    def test_unknown_nodes_rejected(self):
        graph = complete_graph(3)
        with pytest.raises(InvalidPartitionError):
            reaches(graph, {0, 99}, {1}, threshold=1)

    def test_invalid_threshold(self):
        graph = complete_graph(3)
        with pytest.raises(InvalidParameterError):
            reaches(graph, {0}, {1}, threshold=0)

    def test_direction_matters(self):
        graph = Digraph(edges=[(0, 2), (1, 2)])
        assert reaches(graph, {0, 1}, {2}, threshold=2)
        assert not reaches(graph, {2}, {0, 1}, threshold=1)

    def test_complete_graph_reaches_both_ways(self):
        graph = complete_graph(7)
        left = {0, 1, 2}
        right = {3, 4, 5, 6}
        assert reaches_f(graph, left, right, f=2)
        assert reaches_f(graph, right, left, f=2)


class TestInfluencedSet:
    def test_matches_definition(self):
        graph = Digraph(edges=[(0, 3), (1, 3), (0, 4), (2, 4), (1, 5)])
        result = influenced_set(graph, {0, 1, 2}, {3, 4, 5}, threshold=2)
        assert result == frozenset({3, 4})

    def test_empty_when_not_reaching(self):
        graph = Digraph(edges=[(0, 3)])
        graph.add_nodes([1, 2])
        assert influenced_set(graph, {0, 1}, {2, 3}, threshold=2) == frozenset()

    def test_f_wrapper(self):
        graph = complete_graph(5)
        assert influenced_set_f(graph, {0, 1, 2}, {3, 4}, f=2) == frozenset({3, 4})


class TestPropagation:
    def test_core_clique_propagates_to_everyone(self):
        # In a core network the 2f+1 clique K propagates to the rest in one step.
        f = 2
        graph = core_network(9, f)
        clique = frozenset(range(2 * f + 1))
        rest = graph.nodes - clique
        result = propagates_f(graph, clique, rest, f)
        assert result.propagates
        assert result.steps == 1
        assert result.b_sets[-1] == frozenset()

    def test_hypercube_halves_do_not_propagate_for_f1(self):
        graph = hypercube(3)
        low = frozenset({0, 1, 2, 3})
        high = frozenset({4, 5, 6, 7})
        assert not propagates_f(graph, low, high, f=1).propagates
        assert not propagates_f(graph, high, low, f=1).propagates

    def test_hypercube_halves_propagate_for_f0(self):
        graph = hypercube(3)
        low = frozenset({0, 1, 2, 3})
        high = frozenset({4, 5, 6, 7})
        result = propagates_f(graph, low, high, f=0)
        assert result.propagates
        assert result.steps == 1

    def test_multi_step_propagation_on_directed_chain_of_pairs(self):
        # A needs two steps: first absorb {2}, then {3}.
        graph = Digraph(
            edges=[(0, 2), (1, 2), (2, 3), (0, 3)]
        )
        result = propagates(graph, {0, 1}, {2, 3}, threshold=2)
        assert result.propagates
        assert result.steps == 2
        assert result.a_sets[1] == frozenset({0, 1, 2})

    def test_failed_propagation_returns_stalled_prefix(self):
        graph = Digraph(edges=[(0, 2), (1, 2), (3, 4)])
        graph.add_nodes([0, 1, 2, 3, 4])
        result = propagates(graph, {0, 1}, {2, 3, 4}, threshold=2)
        assert not result.propagates
        # Node 2 was absorbed before the expansion stalled at {3, 4}.
        assert result.a_sets[-1] == frozenset({0, 1, 2})
        assert result.b_sets[-1] == frozenset({3, 4})

    def test_empty_sets_rejected(self):
        graph = complete_graph(3)
        with pytest.raises(InvalidPartitionError):
            propagates(graph, set(), {0}, threshold=1)

    def test_length_bound_respected_on_random_feasible_graph(self):
        # l <= n - f - 1 (Definition 3 discussion).
        f = 2
        graph = complete_graph(8)
        for size in range(3, 6):
            source = frozenset(range(size))
            target = graph.nodes - source
            result = propagates_f(graph, source, target, f)
            assert result.propagates
            assert result.steps <= propagation_length_bound(8, f)

    def test_dichotomy_on_feasible_partition(self):
        # Lemma 2: on a graph satisfying Theorem 1, at least one direction
        # propagates for every partition A, B, F.
        graph = core_network(7, 2)
        set_a = frozenset({0, 3, 5})
        set_b = graph.nodes - set_a - frozenset({6})
        forward, backward = propagation_dichotomy(graph, set_a, set_b, threshold=3)
        assert forward.propagates or backward.propagates

    def test_propagation_length_bound_validation(self):
        with pytest.raises(InvalidParameterError):
            propagation_length_bound(0, 1)
        with pytest.raises(InvalidParameterError):
            propagation_length_bound(5, -1)
        assert propagation_length_bound(8, 2) == 5
