"""Tests for the checker-agreement experiment (``repro.experiments.checker``)."""

from __future__ import annotations

from repro.conditions.necessary import check_feasibility
from repro.experiments.checker import (
    checker_agreement_study,
    checker_scaling_cases,
    checker_test_battery,
    exhaustive_checker_workload,
)


class TestBattery:
    def test_labels_are_unique_and_graphs_valid(self):
        battery = checker_test_battery()
        labels = [label for label, _, _ in battery]
        assert len(labels) == len(set(labels))
        for label, graph, f in battery:
            assert graph.number_of_nodes >= 3, label
            assert f >= 1, label

    def test_battery_is_deterministic_per_seed(self):
        first = checker_test_battery(seed=17)
        second = checker_test_battery(seed=17)
        for (label_a, graph_a, _), (label_b, graph_b, _) in zip(first, second):
            assert label_a == label_b
            assert graph_a.nodes == graph_b.nodes
            assert set(graph_a.edges) == set(graph_b.edges)

    def test_battery_covers_both_verdicts(self):
        battery = checker_test_battery()
        verdicts = {check_feasibility(g, f).satisfied for _, g, f in battery}
        assert verdicts == {True, False}


class TestAgreementStudy:
    def test_every_method_consistent_with_exact_checker(self):
        # A feasible and an infeasible instance, plus a heuristic-friendly one.
        battery = [
            entry
            for entry in checker_test_battery()
            if entry[0]
            in {"complete n=4 f=1", "chord n=7 f=2", "ring n=6 f=1"}
        ]
        rows = checker_agreement_study(battery=battery, random_attempts=50)
        assert len(rows) == 3
        assert all(row["consistent"] for row in rows)
        by_case = {row["case"]: row for row in rows}
        assert by_case["complete n=4 f=1"]["exact_condition_holds"] is True
        assert by_case["chord n=7 f=2"]["exact_condition_holds"] is False
        # The in-degree screen catches the ring immediately.
        assert by_case["ring n=6 f=1"]["screens_pass"] is False

    def test_heuristic_witness_only_on_infeasible_graphs(self):
        battery = [
            entry
            for entry in checker_test_battery()
            if entry[0] in {"complete n=6 f=1", "hypercube d=3 f=1"}
        ]
        rows = checker_agreement_study(battery=battery, random_attempts=50)
        by_case = {row["case"]: row for row in rows}
        feasible = by_case["complete n=6 f=1"]
        assert feasible["greedy_found_witness"] is False
        assert feasible["random_found_witness"] is False
        assert by_case["hypercube d=3 f=1"]["exact_condition_holds"] is False


class TestScalingWorkload:
    def test_scaling_cases_are_well_formed(self):
        cases = checker_scaling_cases()
        assert len(cases) >= 4
        labels = [label for label, _, _ in cases]
        assert len(labels) == len(set(labels))

    def test_workload_matches_direct_feasibility_check(self):
        for case in checker_scaling_cases()[:2]:
            _, graph, f = case
            expected = check_feasibility(
                graph, f, use_structural_shortcuts=False
            ).satisfied
            assert exhaustive_checker_workload(case) is expected


class TestFeasibilityAtScale:
    def test_battery_labels_are_unique_and_span_sizes(self):
        from repro.experiments import DEFAULT_SCALE_SIZES, feasibility_scale_battery

        battery = feasibility_scale_battery()
        labels = [label for label, _, _ in battery]
        assert len(labels) == len(set(labels))
        for n in DEFAULT_SCALE_SIZES:
            assert any(f"n={n}" in label for label in labels)

    def test_cell_decides_core_like_with_valid_certificate(self):
        from repro.experiments import feasibility_scale_cell

        rows = feasibility_scale_cell("core-like n=100 f=3")
        assert len(rows) == 1
        row = rows[0]
        assert row["status"] == "FEASIBLE"
        assert row["decided_by"] == "screens"
        assert row["certificate"] == "core-structure"
        assert row["certificate_ok"] is True

    def test_study_decides_majority_of_small_cases(self):
        from repro.experiments import feasibility_scale_battery, feasibility_scale_study

        battery = [
            case for case in feasibility_scale_battery() if "n=100" in case[0]
        ]
        rows = feasibility_scale_study(battery=battery)
        assert all(row["certificate_ok"] for row in rows)
        decided = [row for row in rows if row["decided"]]
        assert len(decided) * 2 >= len(rows)
