"""End-to-end tests for the ``repro`` CLI (``python -m repro``)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Grid small enough for a smoke run, matching the `make sweep-smoke` target.
SMOKE_ARGS = [
    "--grid",
    "case=complete n=4 f=1",
    "--grid",
    "batch=4",
    "--grid",
    "rounds=60",
]


class TestList:
    def test_lists_all_nine_experiments_with_sections(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in [
            "ablation",
            "asynchronous",
            "checker",
            "convergence_rate",
            "corollaries",
            "families",
            "necessity",
            "robustness",
            "validity",
        ]:
            assert name in out
        assert "Section 7" in out
        assert "Theorem 3" in out

    def test_verbose_prints_claims_and_grid_defaults(self, capsys):
        assert main(["list", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "--grid case=" in out
        assert "split-brain" in out


class TestRunAndReport:
    def test_smoke_run_manifest_and_results_round_trip(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "convergence_rate",
                *SMOKE_ARGS,
                "--workers",
                "2",
                "--results-dir",
                str(tmp_path),
                "--run-id",
                "smoke",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "run 'smoke' complete" in out
        assert "complete n=4 f=1" in out

        run_dir = tmp_path / "smoke"
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "complete"
        assert manifest["experiment"] == "convergence_rate"
        assert manifest["seed"] == 3
        aggregate = json.loads((run_dir / "aggregate.json").read_text())
        assert aggregate["row_count"] == len(aggregate["rows"]) == 1
        assert aggregate["rows"][0]["case"] == "complete n=4 f=1"

        # report re-opens the stored run by id and by path.
        assert main(["report", "smoke", "--results-dir", str(tmp_path)]) == 0
        by_id = capsys.readouterr().out
        assert "convergence_rate" in by_id
        assert "complete n=4 f=1" in by_id
        assert main(["report", str(run_dir)]) == 0
        by_path = capsys.readouterr().out
        assert "complete n=4 f=1" in by_path

    def test_quiet_run_prints_nothing(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "necessity",
                "--grid",
                "case=ring n=6 f=1",
                "--results-dir",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_grid_key_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "necessity",
                "--grid",
                "bogus=1",
                "--results-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "unknown grid parameter" in capsys.readouterr().err

    def test_report_missing_run_exits_2(self, tmp_path, capsys):
        code = main(["report", "ghost", "--results-dir", str(tmp_path)])
        assert code == 2
        assert "no run directory" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_repro_list(self):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "convergence_rate" in completed.stdout


class TestVerdict:
    def test_verdict_hypercube_is_infeasible_with_witness(self, capsys):
        assert main(["verdict", "hypercube", "--n", "3", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "verdict:     INFEASIBLE" in out
        assert "certificate: witness" in out
        assert "re-verified: yes" in out
        assert "exhaustive" in out

    def test_verdict_core_like_is_feasible_via_screens(self, capsys):
        assert main(["verdict", "core-like", "--n", "100", "--f", "3"]) == 0
        out = capsys.readouterr().out
        assert "verdict:     FEASIBLE" in out
        assert "certificate: core-structure" in out
        assert "re-verified: yes" in out
        assert "screens" in out

    def test_verdict_sparse_erdos_renyi_fails_degree_screen(self, capsys):
        code = main(
            ["verdict", "erdos-renyi", "--n", "150", "--f", "2", "--p", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict:     INFEASIBLE" in out
        assert "certificate: in-degree-screen" in out

    def test_unknown_family_rejected_by_argparse(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["verdict", "petersen", "--n", "10", "--f", "1"])
