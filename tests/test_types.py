"""Unit tests for the shared value objects in repro.types."""

from __future__ import annotations

import pytest

from repro.types import (
    ConsensusOutcome,
    FeasibilityResult,
    PartitionWitness,
    PropagationResult,
    ReceivedValue,
    RoundRecord,
    as_node_tuple,
)


class TestRoundRecord:
    def test_spread(self):
        record = RoundRecord(
            round_index=3,
            values={0: 1.0, 1: 4.0},
            fault_free_max=4.0,
            fault_free_min=1.0,
        )
        assert record.spread == pytest.approx(3.0)


class TestConsensusOutcome:
    def _outcome(self, initial: float, final: float) -> ConsensusOutcome:
        return ConsensusOutcome(
            converged=True,
            rounds_executed=10,
            final_spread=final,
            initial_spread=initial,
            validity_ok=True,
            final_values={0: 0.5},
        )

    def test_contraction_ratio(self):
        assert self._outcome(2.0, 0.5).contraction_ratio == pytest.approx(0.25)

    def test_contraction_ratio_zero_initial(self):
        assert self._outcome(0.0, 0.0).contraction_ratio == 0.0

    def test_history_defaults_empty(self):
        assert self._outcome(1.0, 0.1).history == tuple()


class TestPartitionWitness:
    def test_valid_witness(self):
        witness = PartitionWitness(
            faulty=frozenset({5}),
            left=frozenset({0}),
            center=frozenset({1}),
            right=frozenset({2}),
        )
        assert witness.all_nodes == frozenset({0, 1, 2, 5})
        description = witness.describe()
        assert "F={5}" in description and "L={0}" in description

    def test_overlapping_parts_rejected(self):
        with pytest.raises(ValueError):
            PartitionWitness(
                faulty=frozenset({0}),
                left=frozenset({0, 1}),
                center=frozenset(),
                right=frozenset({2}),
            )

    def test_empty_left_rejected(self):
        with pytest.raises(ValueError):
            PartitionWitness(
                faulty=frozenset(),
                left=frozenset(),
                center=frozenset({1}),
                right=frozenset({2}),
            )

    def test_empty_right_rejected(self):
        with pytest.raises(ValueError):
            PartitionWitness(
                faulty=frozenset(),
                left=frozenset({1}),
                center=frozenset({2}),
                right=frozenset(),
            )


class TestFeasibilityResult:
    def test_bool_conversion(self):
        assert bool(FeasibilityResult(satisfied=True, f=1))
        assert not bool(FeasibilityResult(satisfied=False, f=1))

    def test_defaults(self):
        result = FeasibilityResult(satisfied=True, f=2)
        assert result.witness is None
        assert result.method == "exhaustive"


class TestPropagationResult:
    def test_length_alias(self):
        result = PropagationResult(
            propagates=True,
            steps=3,
            a_sets=(frozenset({0}),),
            b_sets=(frozenset({1}),),
        )
        assert result.length == 3


class TestHelpers:
    def test_received_value_is_frozen(self):
        value = ReceivedValue(sender=3, value=1.5)
        with pytest.raises(AttributeError):
            value.value = 2.0  # type: ignore[misc]

    def test_as_node_tuple_sorted_by_repr(self):
        assert as_node_tuple(frozenset({3, 1, 2})) == (1, 2, 3)
        assert as_node_tuple(["b", "a"]) == ("a", "b")
