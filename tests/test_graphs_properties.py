"""Unit tests for structural graph properties."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import (
    Digraph,
    complete_graph,
    core_network,
    degree_summary,
    diameter,
    directed_path,
    directed_ring,
    hypercube,
    is_complete,
    is_strongly_connected,
    minimum_in_degree,
    minimum_out_degree,
    reachable_from,
    shortest_path_length,
    star_graph,
    strongly_connected_components,
    to_networkx,
    undirected_edge_count,
    undirected_ring,
    vertex_connectivity,
)


class TestDegrees:
    def test_minimum_degrees_on_star(self):
        graph = star_graph(5)
        assert minimum_in_degree(graph) == 1
        assert minimum_out_degree(graph) == 1

    def test_minimum_degrees_empty(self):
        assert minimum_in_degree(Digraph()) == 0
        assert minimum_out_degree(Digraph()) == 0

    def test_degree_summary(self):
        graph = directed_path(3)  # 0 -> 1 -> 2
        summary = degree_summary(graph)
        assert summary["min_in"] == 0
        assert summary["max_in"] == 1
        assert summary["mean_out"] == pytest.approx(2 / 3)

    def test_degree_summary_empty(self):
        assert degree_summary(Digraph())["mean_in"] == 0.0

    def test_undirected_edge_count(self):
        assert undirected_edge_count(complete_graph(5)) == 10
        assert undirected_edge_count(directed_ring(4)) == 4


class TestReachability:
    def test_reachable_from_path(self):
        graph = directed_path(4)
        assert reachable_from(graph, 0) == frozenset({0, 1, 2, 3})
        assert reachable_from(graph, 3) == frozenset({3})

    def test_reachable_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            reachable_from(directed_path(3), 99)

    def test_strong_connectivity(self):
        assert is_strongly_connected(directed_ring(5))
        assert not is_strongly_connected(directed_path(5))
        assert is_strongly_connected(Digraph(nodes=[0]))

    def test_strongly_connected_components(self):
        graph = Digraph(edges=[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        components = strongly_connected_components(graph)
        assert frozenset({0, 1}) in components
        assert frozenset({2, 3}) in components
        assert len(components) == 2

    def test_scc_matches_networkx_on_random_graph(self):
        from repro.graphs import erdos_renyi_digraph

        graph = erdos_renyi_digraph(12, 0.15, rng=13)
        ours = set(strongly_connected_components(graph))
        theirs = {
            frozenset(component)
            for component in nx.strongly_connected_components(to_networkx(graph))
        }
        assert ours == theirs

    def test_shortest_path_length(self):
        graph = directed_ring(6)
        assert shortest_path_length(graph, 0, 3) == 3
        assert shortest_path_length(graph, 3, 0) == 3
        assert shortest_path_length(graph, 2, 2) == 0

    def test_shortest_path_unreachable(self):
        graph = directed_path(3)
        assert shortest_path_length(graph, 2, 0) is None

    def test_diameter(self):
        assert diameter(directed_ring(5)) == 4
        assert diameter(complete_graph(4)) == 1
        assert diameter(directed_path(3)) is None

    def test_diameter_empty_graph_is_undefined(self):
        # Regression: the pre-fix loop never ran on the empty graph, skipping
        # the strong-connectivity check and returning 0 instead of None.
        assert diameter(Digraph()) is None

    def test_diameter_singleton_is_zero(self):
        assert diameter(Digraph(nodes=[0])) == 0

    def test_diameter_two_isolated_nodes_is_undefined(self):
        assert diameter(Digraph(nodes=[0, 1])) is None

    def test_strong_connectivity_degenerate_graphs(self):
        assert is_strongly_connected(Digraph())
        assert is_strongly_connected(Digraph(nodes=["solo"]))
        assert not is_strongly_connected(Digraph(nodes=[0, 1]))


class TestConnectivity:
    def test_complete_graph_connectivity(self):
        assert vertex_connectivity(complete_graph(5)) == 4

    def test_hypercube_connectivity_equals_dimension(self):
        # Section 6.2: the d-cube has connectivity d.
        assert vertex_connectivity(hypercube(3)) == 3
        assert vertex_connectivity(hypercube(2)) == 2

    def test_ring_connectivity(self):
        assert vertex_connectivity(undirected_ring(6)) == 2

    def test_star_connectivity(self):
        assert vertex_connectivity(star_graph(5)) == 1

    def test_disconnected_graph(self):
        graph = Digraph(nodes=[0, 1, 2, 3], edges=[(0, 1), (1, 0)])
        assert vertex_connectivity(graph) == 0

    def test_degenerate_graphs_have_zero_connectivity(self):
        assert vertex_connectivity(Digraph()) == 0
        assert vertex_connectivity(Digraph(nodes=[0])) == 0
        assert vertex_connectivity(Digraph(nodes=[0, 1])) == 0

    def test_matches_networkx_on_core_network(self):
        graph = core_network(7, 2)
        expected = nx.node_connectivity(to_networkx(graph))
        assert vertex_connectivity(graph) == expected

    def test_is_complete(self):
        assert is_complete(complete_graph(3))
        assert not is_complete(directed_ring(3))
