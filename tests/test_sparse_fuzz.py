"""Randomized differential fuzz suite: sparse == dense, bit for bit.

Each case derives an entire scenario — graph family, size, fault budget,
fault set, rule, adversary, batch size, tile budget, round count — from a
single integer seed, runs the same batch through the dense
:class:`~repro.simulation.vectorized.VectorizedEngine` and the CSR
:class:`~repro.simulation.sparse.SparseEngine` (float64), and requires every
output array to match exactly (``np.array_equal``, never ``allclose``).

The families deliberately mix degree-homogeneous graphs (complete,
``k``-in-regular, ring lattices) with heterogeneous ones (core networks and
core-like networks, whose clique nodes have ~``n`` in-neighbours while the
periphery stays sparse) so the bucket-major plane layout is exercised across
one-bucket and many-bucket shapes, with and without tiling.

The first :data:`FAST_CASES` seeds run in the default suite; the remaining
seeds up to :data:`TOTAL_CASES` carry the ``slow`` marker (excluded by
``make test-fast``).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.adversary import (
    BatchBroadcastConsistentWrapper,
    BatchExtremePushStrategy,
    BatchFrozenValueStrategy,
    BatchRandomNoiseStrategy,
    BatchStaticValueStrategy,
    ExtremePushStrategy,
    StaticValueStrategy,
)
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.graphs import (
    complete_graph,
    core_network,
    k_in_regular_digraph,
    random_core_like_network,
    ring_lattice,
)
from repro.simulation import SimulationConfig, SparseEngine, VectorizedEngine
from repro.simulation.vectorized import random_input_matrix

#: Seeds run in the default (fast) suite.
FAST_CASES = 40
#: Total seeded cases; seeds >= FAST_CASES are marked ``slow``.
TOTAL_CASES = 200

FAMILIES = ("complete", "core", "core-like", "ring", "k-in-regular")
STRATEGY_KINDS = (
    "none",
    "scalar-extreme",
    "scalar-static",
    "batch-static",
    "batch-extreme",
    "batch-frozen",
    "batch-noise",
    "batch-broadcast",
)


def _draw_graph(rng: np.random.Generator, f: int):
    """Return a graph of a random family whose fault-free in-degrees satisfy
    the trimmed rules' ``2f`` floor by construction."""
    family = FAMILIES[int(rng.integers(len(FAMILIES)))]
    if family == "complete":
        n = int(rng.integers(3 * f + 2, 25))
        return complete_graph(n)
    if family == "core":
        n = int(rng.integers(3 * f + 2, 40))
        return core_network(n, f)
    if family == "core-like":
        n = int(rng.integers(3 * f + 2, 40))
        probability = float(rng.uniform(0.05, 0.4))
        return random_core_like_network(n, f, probability, rng=rng)
    if family == "ring":
        k = int(rng.integers(f, f + 4))
        n = int(rng.integers(2 * k + 2, 60))
        return ring_lattice(n, k)
    degree = 2 * f + int(rng.integers(0, 6))
    n = int(rng.integers(degree + 2, 60))
    return k_in_regular_digraph(n, degree, rng=rng)


def _draw_strategy(rng: np.random.Generator, seed: int):
    """Return a fresh adversary blueprint (deep-copied once per engine)."""
    kind = STRATEGY_KINDS[int(rng.integers(len(STRATEGY_KINDS)))]
    if kind == "none":
        return None
    if kind == "scalar-extreme":
        return ExtremePushStrategy(delta=float(rng.uniform(0.5, 5.0)))
    if kind == "scalar-static":
        return StaticValueStrategy(float(rng.uniform(-10.0, 10.0)))
    if kind == "batch-static":
        return BatchStaticValueStrategy(float(rng.uniform(-10.0, 10.0)))
    if kind == "batch-extreme":
        return BatchExtremePushStrategy(float(rng.uniform(0.5, 5.0)))
    if kind == "batch-frozen":
        return BatchFrozenValueStrategy()
    if kind == "batch-noise":
        # Seeded with an int: each engine deep-copies the blueprint before
        # the generator's first draw, so both consume identical streams.
        return BatchRandomNoiseStrategy(-5.0, 5.0, rng=seed)
    return BatchBroadcastConsistentWrapper(
        BatchExtremePushStrategy(float(rng.uniform(0.5, 3.0)))
    )


def _fuzz_one(seed: int) -> None:
    rng = np.random.default_rng(seed)
    f = int(rng.integers(1, 3))
    graph = _draw_graph(rng, f)
    nodes = sorted(graph.nodes, key=repr)
    fault_count = int(rng.integers(0, f + 1))
    faulty = frozenset(
        int(c) for c in rng.choice(len(nodes), size=fault_count, replace=False)
    )
    rule_factory = TrimmedMeanRule if rng.random() < 0.7 else TrimmedMidpointRule
    adversary = _draw_strategy(rng, seed) if faulty else None
    batch = int(rng.choice([1, 4, 16]))
    rounds = int(rng.integers(4, 11))
    max_plane_bytes = [None, 1 << 12, 1 << 16][int(rng.integers(3))]

    config = SimulationConfig(
        max_rounds=rounds,
        tolerance=0.0,
        record_history=True,
        stop_on_convergence=False,
    )
    dense = VectorizedEngine(
        graph,
        rule_factory(f),
        faulty=faulty,
        adversary=copy.deepcopy(adversary),
        config=config,
    )
    sparse = SparseEngine(
        graph,
        rule_factory(f),
        faulty=faulty,
        adversary=copy.deepcopy(adversary),
        config=config,
        max_plane_bytes=max_plane_bytes,
    )
    assert sparse._edge_nodes == dense._edge_nodes, "canonical channel order"

    matrix = random_input_matrix(dense.nodes, batch, rng=rng)
    dense_out = dense.run_batch(matrix.copy())
    sparse_out = sparse.run_batch(matrix.copy())

    label = (
        f"seed={seed} n={len(nodes)} f={f} |F|={len(faulty)} B={batch} "
        f"rounds={rounds} tile={max_plane_bytes} "
        f"adversary={getattr(adversary, 'name', None)}"
    )
    assert np.array_equal(dense_out.final_states, sparse_out.final_states), label
    assert np.array_equal(dense_out.converged, sparse_out.converged), label
    assert np.array_equal(
        dense_out.rounds_executed, sparse_out.rounds_executed
    ), label
    assert np.array_equal(
        dense_out.initial_spread, sparse_out.initial_spread
    ), label
    assert np.array_equal(dense_out.final_spread, sparse_out.final_spread), label
    assert np.array_equal(dense_out.validity_ok, sparse_out.validity_ok), label
    assert np.array_equal(
        dense_out.spread_history, sparse_out.spread_history
    ), label


@pytest.mark.parametrize("seed", range(FAST_CASES))
def test_sparse_matches_dense_fuzz_fast(seed):
    """Fast CI subset of the randomized differential sweep."""
    _fuzz_one(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(FAST_CASES, TOTAL_CASES))
def test_sparse_matches_dense_fuzz_full(seed):
    """The long tail of the randomized differential sweep."""
    _fuzz_one(seed)
