"""Unit tests for the convergence-rate analysis (α, Lemma 5, Theorem 3)."""

from __future__ import annotations

import pytest

from repro.adversary import ExtremePushStrategy
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.analysis import (
    alpha_for_rule,
    lemma5_contraction_factor,
    rounds_to_reach,
    rounds_until_tolerance,
    verify_theorem3_windows,
    worst_case_window_length,
)
from repro.analysis.convergence import empirical_decay_rate
from repro.exceptions import InvalidParameterError, NotApplicableError
from repro.graphs import chord_network, complete_graph, core_network, hypercube
from repro.simulation import bimodal_inputs, linear_ramp_inputs, run_synchronous


class TestAlpha:
    def test_alpha_complete_graph(self):
        # a_i = 1 / (n - 2f) on a complete graph.
        assert alpha_for_rule(complete_graph(7), TrimmedMeanRule(2)) == pytest.approx(
            1.0 / 3.0
        )

    def test_alpha_core_network_dominated_by_clique_nodes(self):
        # Clique nodes see every other node, outsiders only see the clique, so
        # the minimum weight comes from the clique nodes (largest in-degree).
        graph = core_network(8, 2)
        assert alpha_for_rule(graph, TrimmedMeanRule(2)) == pytest.approx(
            1.0 / (7 + 1 - 4)
        )

    def test_alpha_restricted_to_fault_free(self):
        graph = core_network(8, 2)
        outsiders_only = frozenset(range(5, 8))
        assert alpha_for_rule(
            graph, TrimmedMeanRule(2), fault_free=outsiders_only
        ) == pytest.approx(1.0 / (5 + 1 - 4))

    def test_alpha_undefined_for_midpoint_rule(self):
        with pytest.raises(NotApplicableError):
            alpha_for_rule(complete_graph(5), TrimmedMidpointRule(1))


class TestAnalyticalBounds:
    def test_lemma5_factor(self):
        assert lemma5_contraction_factor(0.5, 1) == pytest.approx(0.75)
        assert lemma5_contraction_factor(0.5, 2) == pytest.approx(0.875)
        assert lemma5_contraction_factor(1.0, 1) == pytest.approx(0.5)

    def test_lemma5_factor_validation(self):
        with pytest.raises(InvalidParameterError):
            lemma5_contraction_factor(0.0, 1)
        with pytest.raises(InvalidParameterError):
            lemma5_contraction_factor(0.5, 0)

    def test_worst_case_window_length(self):
        assert worst_case_window_length(8, 2) == 5
        with pytest.raises(InvalidParameterError):
            worst_case_window_length(3, 2)

    def test_rounds_to_reach_monotone_in_target(self):
        loose = rounds_to_reach(1.0, 1e-2, alpha=0.25, window_length=2)
        tight = rounds_to_reach(1.0, 1e-6, alpha=0.25, window_length=2)
        assert tight > loose > 0

    def test_rounds_to_reach_zero_when_already_there(self):
        assert rounds_to_reach(0.5, 1.0, alpha=0.5, window_length=3) == 0

    def test_rounds_to_reach_validation(self):
        with pytest.raises(InvalidParameterError):
            rounds_to_reach(1.0, 0.0, 0.5, 1)
        with pytest.raises(InvalidParameterError):
            rounds_to_reach(-1.0, 0.5, 0.5, 1)

    def test_bound_is_sound_against_measurement(self):
        # The analytical round bound must never be smaller than the measured
        # number of rounds the algorithm actually needs.
        graph = complete_graph(7)
        rule = TrimmedMeanRule(2)
        inputs = bimodal_inputs(graph.nodes, 0.0, 1.0, rng=0)
        outcome = run_synchronous(
            graph, rule, inputs, max_rounds=400, tolerance=1e-4,
        )
        alpha = alpha_for_rule(graph, rule)
        bound = rounds_to_reach(
            outcome.initial_spread, 1e-4, alpha, worst_case_window_length(7, 2)
        )
        assert outcome.converged
        assert bound >= outcome.rounds_executed


class TestEmpiricalEstimates:
    def test_decay_rate_of_geometric_series(self):
        spreads = [1.0 * (0.5**t) for t in range(10)]
        assert empirical_decay_rate(spreads) == pytest.approx(0.5, rel=1e-6)

    def test_decay_rate_requires_two_rounds(self):
        with pytest.raises(InvalidParameterError):
            empirical_decay_rate([1.0])

    def test_decay_rate_instant_agreement(self):
        assert empirical_decay_rate([0.0, 0.0, 0.0]) == 0.0

    def test_rounds_until_tolerance(self):
        assert rounds_until_tolerance([1.0, 0.5, 0.05, 0.01], 0.05) == 2
        assert rounds_until_tolerance([1.0, 0.5], 0.01) is None
        with pytest.raises(InvalidParameterError):
            rounds_until_tolerance([1.0], -1.0)


class TestTheorem3Windows:
    @pytest.mark.parametrize(
        "graph,f",
        [
            (complete_graph(7), 2),
            (core_network(7, 2), 2),
            (chord_network(5, 1), 1),
        ],
    )
    def test_measured_contraction_respects_lemma5(self, graph, f):
        rule = TrimmedMeanRule(f)
        faulty = frozenset(sorted(graph.nodes, key=repr)[-f:]) if f else frozenset()
        outcome = run_synchronous(
            graph,
            rule,
            bimodal_inputs(graph.nodes, 0.0, 1.0, rng=1),
            faulty=faulty,
            adversary=ExtremePushStrategy(delta=2.0),
            max_rounds=80,
            tolerance=1e-12,
            stop_on_convergence=False,
        )
        alpha = alpha_for_rule(graph, rule, fault_free=graph.nodes - faulty)
        checks = verify_theorem3_windows(
            outcome.history, graph, f, alpha, faulty=faulty
        )
        assert checks, "at least one window should have been analysed"
        assert all(check.satisfied for check in checks)
        assert all(check.window_length >= 1 for check in checks)

    def test_infeasible_graph_raises_not_applicable(self):
        graph = hypercube(3)
        rule = TrimmedMeanRule(1)
        inputs = {node: (0.0 if node < 4 else 1.0) for node in graph.nodes}
        outcome = run_synchronous(
            graph, rule, inputs, max_rounds=5, stop_on_convergence=False,
            tolerance=1e-12,
        )
        with pytest.raises(NotApplicableError):
            verify_theorem3_windows(outcome.history, graph, 1, alpha=0.5)

    def test_empty_history_rejected(self):
        with pytest.raises(InvalidParameterError):
            verify_theorem3_windows([], complete_graph(4), 1, alpha=0.5)
