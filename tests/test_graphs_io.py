"""Unit tests for graph serialisation and networkx interop."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs import (
    Digraph,
    chord_network,
    complete_graph,
    from_adjacency_dict,
    from_edge_list,
    from_json,
    from_networkx,
    load_edge_list,
    save_edge_list,
    to_adjacency_dict,
    to_edge_list,
    to_json,
    to_networkx,
)


class TestNetworkxInterop:
    def test_round_trip_digraph(self):
        graph = chord_network(7, 2)
        assert from_networkx(to_networkx(graph)) == graph

    def test_undirected_networkx_becomes_symmetric(self):
        nx_graph = nx.cycle_graph(4)
        graph = from_networkx(nx_graph)
        assert graph.is_symmetric()
        assert graph.number_of_edges == 8

    def test_self_loop_rejected(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge(1, 1)
        with pytest.raises(InvalidParameterError):
            from_networkx(nx_graph)

    def test_to_networkx_preserves_counts(self):
        graph = complete_graph(5)
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 20


class TestPlainRepresentations:
    def test_edge_list_round_trip(self):
        graph = chord_network(6, 1)
        assert from_edge_list(to_edge_list(graph)) == graph

    def test_edge_list_is_sorted_and_deterministic(self):
        graph = Digraph(edges=[(2, 1), (0, 1), (1, 2)])
        assert to_edge_list(graph) == sorted(graph.edges, key=repr)

    def test_isolated_nodes_preserved_via_nodes_argument(self):
        graph = from_edge_list([(0, 1)], nodes=[5])
        assert 5 in graph.nodes

    def test_adjacency_dict_round_trip(self):
        graph = complete_graph(4)
        assert from_adjacency_dict(to_adjacency_dict(graph)) == graph

    def test_adjacency_dict_includes_sinks(self):
        graph = Digraph(edges=[(0, 1)])
        adjacency = to_adjacency_dict(graph)
        assert adjacency[1] == []


class TestJson:
    def test_json_round_trip(self):
        graph = chord_network(5, 1)
        assert from_json(to_json(graph)) == graph

    def test_json_preserves_isolated_nodes(self):
        graph = Digraph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert from_json(to_json(graph)).nodes == graph.nodes

    def test_malformed_json_payload(self):
        with pytest.raises(InvalidParameterError):
            from_json('{"nodes": [1, 2]}')

    def test_malformed_edge_entry(self):
        with pytest.raises(InvalidParameterError):
            from_json('{"nodes": [1, 2], "edges": [[1, 2, 3]]}')


class TestEdgeListFiles:
    def test_save_and_load(self, tmp_path):
        graph = chord_network(6, 1)
        path = tmp_path / "graph.edges"
        save_edge_list(graph, path)
        assert load_edge_list(path) == graph

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "graph.edges"
        path.write_text("# comment\n\n0 1\n1 2\n")
        graph = load_edge_list(path)
        assert graph.edges == frozenset({(0, 1), (1, 2)})

    def test_load_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(InvalidParameterError):
            load_edge_list(path)

    def test_save_empty_graph(self, tmp_path):
        path = tmp_path / "empty.edges"
        save_edge_list(Digraph(), path)
        assert load_edge_list(path) == Digraph()
