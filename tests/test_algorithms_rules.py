"""Unit tests for the update rules (Algorithm 1, W-MSR and baselines)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    LinearAverageRule,
    MedianRule,
    TrimmedMeanRule,
    TrimmedMidpointRule,
    WMSRRule,
    sort_received,
)
from repro.exceptions import AlgorithmPreconditionError, InvalidParameterError
from repro.graphs import complete_graph, star_graph
from repro.types import ReceivedValue


def received(*values: float) -> list[ReceivedValue]:
    """Build a received vector with senders 0, 1, 2, …"""
    return [ReceivedValue(sender=index, value=value) for index, value in enumerate(values)]


class TestSortReceived:
    def test_sorts_by_value_then_sender(self):
        items = [
            ReceivedValue(sender="b", value=2.0),
            ReceivedValue(sender="a", value=2.0),
            ReceivedValue(sender="c", value=1.0),
        ]
        ordered = sort_received(items)
        assert [item.sender for item in ordered] == ["c", "a", "b"]


class TestTrimmedMean:
    def test_matches_equation_2_by_hand(self):
        # |N-| = 5, f = 1: drop lowest (0) and highest (100); average the
        # remaining {2, 4, 6} with own value 8 -> (2+4+6+8)/4 = 5.
        rule = TrimmedMeanRule(1)
        result = rule.compute("i", 8.0, received(0.0, 2.0, 4.0, 6.0, 100.0))
        assert result == pytest.approx(5.0)

    def test_f0_is_plain_average_with_self(self):
        rule = TrimmedMeanRule(0)
        assert rule.compute("i", 3.0, received(1.0, 5.0)) == pytest.approx(3.0)

    def test_exactly_2f_received_keeps_only_own_value(self):
        rule = TrimmedMeanRule(1)
        assert rule.compute("i", 7.0, received(0.0, 100.0)) == pytest.approx(7.0)

    def test_fewer_than_2f_received_raises(self):
        rule = TrimmedMeanRule(2)
        with pytest.raises(AlgorithmPreconditionError):
            rule.compute("i", 0.0, received(1.0, 2.0, 3.0))

    def test_surviving_values_identity(self):
        rule = TrimmedMeanRule(1)
        survivors = rule.surviving_values("i", received(9.0, 1.0, 5.0))
        assert [item.value for item in survivors] == [5.0]

    def test_ties_broken_deterministically(self):
        rule = TrimmedMeanRule(1)
        values = [
            ReceivedValue(sender="x", value=1.0),
            ReceivedValue(sender="y", value=1.0),
            ReceivedValue(sender="z", value=1.0),
        ]
        assert rule.compute("i", 1.0, values) == pytest.approx(1.0)

    def test_weight_floor_matches_formula(self):
        rule = TrimmedMeanRule(2)
        assert rule.weight_floor(7) == pytest.approx(1.0 / (7 + 1 - 4))

    def test_weight_floor_undefined_below_2f(self):
        rule = TrimmedMeanRule(2)
        with pytest.raises(AlgorithmPreconditionError):
            rule.weight_floor(3)

    def test_minimum_in_degree(self):
        assert TrimmedMeanRule(3).minimum_in_degree() == 6

    def test_alpha_on_complete_graph(self):
        # a_i = 1 / (n - 1 + 1 - 2f) = 1 / (n - 2f).
        graph = complete_graph(7)
        rule = TrimmedMeanRule(2)
        assert rule.alpha(graph) == pytest.approx(1.0 / 3.0)

    def test_validate_graph(self):
        rule = TrimmedMeanRule(1)
        rule.validate_graph(complete_graph(4))
        with pytest.raises(AlgorithmPreconditionError):
            rule.validate_graph(star_graph(5))

    def test_validate_graph_subset_of_nodes(self):
        rule = TrimmedMeanRule(1)
        # Only the hub of the star has sufficient in-degree.
        rule.validate_graph(star_graph(5), nodes=[0])

    def test_negative_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            TrimmedMeanRule(-1)

    def test_output_within_received_hull(self):
        rule = TrimmedMeanRule(1)
        result = rule.compute("i", 0.5, received(-10.0, 0.0, 1.0, 10.0))
        assert 0.0 <= result <= 1.0


class TestTrimmedMidpoint:
    def test_midpoint_of_survivors(self):
        rule = TrimmedMidpointRule(1)
        # Survivors of [0, 2, 8, 100] are {2, 8}; own value 4 -> midpoint of
        # {2, 4, 8} is (2 + 8) / 2 = 5.
        assert rule.compute("i", 4.0, received(0.0, 2.0, 8.0, 100.0)) == pytest.approx(5.0)

    def test_too_few_values_raises(self):
        rule = TrimmedMidpointRule(2)
        with pytest.raises(AlgorithmPreconditionError):
            rule.compute("i", 0.0, received(1.0))

    def test_no_weight_floor(self):
        assert TrimmedMidpointRule(1).weight_floor(5) is None


class TestWMSR:
    def test_drops_only_values_beyond_own(self):
        rule = WMSRRule(1)
        # Own value 5; received [1, 4, 9]. Drop one value < 5 (the 1) and one
        # value > 5 (the 9): survivors {4}; average with own -> 4.5.
        assert rule.compute("i", 5.0, received(1.0, 4.0, 9.0)) == pytest.approx(4.5)

    def test_keeps_all_when_no_value_crosses_own(self):
        rule = WMSRRule(1)
        # All received equal own value: nothing is dropped.
        assert rule.compute("i", 2.0, received(2.0, 2.0)) == pytest.approx(2.0)

    def test_drops_at_most_f_per_side(self):
        rule = WMSRRule(1)
        # Received [0, 0, 10, 10] with own 5: drop one 0 and one 10;
        # survivors {0, 10}; average with own -> 5.
        assert rule.compute("i", 5.0, received(0.0, 0.0, 10.0, 10.0)) == pytest.approx(5.0)

    def test_fewer_than_f_on_a_side(self):
        rule = WMSRRule(2)
        # Only one value above own: drop just that one, plus the two smallest
        # below own.
        result = rule.compute("i", 5.0, received(1.0, 2.0, 3.0, 9.0))
        assert result == pytest.approx((3.0 + 5.0) / 2)

    def test_f0_keeps_everything(self):
        rule = WMSRRule(0)
        assert rule.compute("i", 0.0, received(1.0, 2.0)) == pytest.approx(1.0)


class TestBaselines:
    def test_linear_average(self):
        rule = LinearAverageRule(0)
        assert rule.compute("i", 0.0, received(3.0, 6.0)) == pytest.approx(3.0)

    def test_linear_average_weight_floor(self):
        assert LinearAverageRule(0).weight_floor(4) == pytest.approx(0.2)

    def test_linear_average_is_not_fault_tolerant(self):
        # A single huge value drags the state far outside the honest hull.
        rule = LinearAverageRule(1)
        assert rule.compute("i", 0.0, received(0.0, 1_000.0)) > 100.0

    def test_median_odd_count(self):
        rule = MedianRule(0)
        assert rule.compute("i", 5.0, received(1.0, 9.0, 3.0, 7.0)) == pytest.approx(5.0)

    def test_median_even_count(self):
        rule = MedianRule(0)
        assert rule.compute("i", 4.0, received(1.0, 2.0, 8.0)) == pytest.approx(3.0)

    def test_median_resists_single_outlier(self):
        rule = MedianRule(1)
        result = rule.compute("i", 1.0, received(0.9, 1.1, 1_000_000.0))
        assert result <= 1.1

    def test_repr_contains_f(self):
        assert "f=2" in repr(TrimmedMeanRule(2))
