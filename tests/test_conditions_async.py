"""Unit tests for the asynchronous condition (Section 7)."""

from __future__ import annotations

import pytest

from repro.conditions import (
    async_threshold,
    check_async_feasibility,
    find_async_violating_partition,
    passes_async_count_screen,
    passes_async_in_degree_screen,
    satisfies_async_condition,
    satisfies_theorem1,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import complete_graph, core_network, hypercube


class TestAsyncThreshold:
    @pytest.mark.parametrize("f,expected", [(0, 1), (1, 3), (2, 5), (3, 7)])
    def test_threshold_is_2f_plus_1(self, f, expected):
        assert async_threshold(f) == expected

    def test_negative_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            async_threshold(-1)


class TestAsyncScreens:
    @pytest.mark.parametrize(
        "n,f,expected",
        [(6, 1, True), (5, 1, False), (11, 2, True), (10, 2, False), (3, 0, True)],
    )
    def test_count_screen_n_gt_5f(self, n, f, expected):
        assert passes_async_count_screen(n, f) is expected

    def test_count_screen_invalid(self):
        with pytest.raises(InvalidParameterError):
            passes_async_count_screen(0, 1)

    def test_in_degree_screen_3f_plus_1(self):
        # Complete graph on 6 nodes has in-degree 5 >= 3*1 + 1 = 4.
        assert passes_async_in_degree_screen(complete_graph(6), 1)
        # Hypercube d=3 has in-degree 3 < 4.
        assert not passes_async_in_degree_screen(hypercube(3), 1)
        assert passes_async_in_degree_screen(hypercube(3), 0)


class TestAsyncCondition:
    def test_complete_graph_boundary_n_gt_5f(self):
        # The complete graph satisfies the async condition iff n > 5f.
        assert satisfies_async_condition(complete_graph(6), 1)
        assert not satisfies_async_condition(complete_graph(5), 1)
        assert satisfies_async_condition(complete_graph(11), 2)
        assert not satisfies_async_condition(complete_graph(11), 3)

    def test_async_strictly_stronger_than_sync(self):
        # n = 6, f = 1: sync holds and async holds; n = 5, f = 1: sync holds
        # but async fails; a graph failing sync must also fail async.
        assert satisfies_theorem1(complete_graph(5), 1)
        assert not satisfies_async_condition(complete_graph(5), 1)
        assert not satisfies_theorem1(hypercube(3), 1)
        assert not satisfies_async_condition(hypercube(3), 1)

    def test_core_network_needs_larger_clique_for_async(self):
        # The synchronous core network for f=1 (clique of 3) does not provide
        # the 3f+1 = 4 in-degree everywhere, so the async condition fails even
        # though the sync condition holds.
        graph = core_network(6, 1)
        assert satisfies_theorem1(graph, 1)
        assert not satisfies_async_condition(graph, 1)

    def test_f0_async_equals_sync(self):
        graph = hypercube(3)
        assert satisfies_async_condition(graph, 0) == satisfies_theorem1(graph, 0)

    def test_async_witness_is_genuine(self):
        witness = find_async_violating_partition(complete_graph(5), 1)
        assert witness is not None
        # The witness violates the condition at threshold 2f + 1 = 3.
        from repro.conditions import verify_witness

        assert verify_witness(complete_graph(5), 1, witness, threshold=3)


class TestAsyncFeasibilityPipeline:
    def test_screen_methods_reported(self):
        result = check_async_feasibility(complete_graph(5), 1)
        assert not result.satisfied
        assert result.method == "screen:n>5f"

        result = check_async_feasibility(hypercube(3), 1)
        assert not result.satisfied
        assert result.method in {"screen:n>5f", "screen:in-degree"}

    def test_structural_complete_shortcut(self):
        result = check_async_feasibility(complete_graph(6), 1)
        assert result.satisfied
        assert result.method == "structural:complete"

    def test_exhaustive_path(self):
        graph = core_network(8, 1)
        # Add enough extra edges among outsiders to pass the in-degree screen.
        for first in range(3, 8):
            for second in range(3, 8):
                if first != second:
                    graph.add_edge(first, second)
        result = check_async_feasibility(graph, 1)
        assert result.method in {"exhaustive", "structural:complete"}
