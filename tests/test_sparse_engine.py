"""Unit tests for the CSR sparse engine tier.

Covers what the differential suites don't: the CSR layout itself, parameter
validation, the ``plane_tile_rows`` budget arithmetic, the memory-tiling
regression (tiled == untiled bit-for-bit, and the tiled kernel actually
allocates less), the ``run_consensus(engine="sparse")`` routing, and the
float32 dtype plumbing.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.adversary import (
    BatchExtremePushStrategy,
    BatchRandomNoiseStrategy,
    ExtremePushStrategy,
)
from repro.algorithms import TrimmedMeanRule, TrimmedMidpointRule
from repro.exceptions import InvalidParameterError
from repro.graphs import complete_graph, core_network, k_in_regular_digraph
from repro.simulation import (
    SimulationConfig,
    SparseEngine,
    VectorizedEngine,
    run_consensus,
    run_sparse,
    sparse_cross_check_engines,
    uniform_random_inputs,
)
from repro.simulation.vectorized import random_input_matrix


class TestCSRLayout:
    def test_csr_matches_graph_in_neighbours(self):
        graph = core_network(12, 2)
        engine = SparseEngine(graph, TrimmedMeanRule(2), faulty={10, 11})
        indptr, indices = engine.csr_indptr, engine.csr_indices
        ff_nodes = [n for n in engine.nodes if n not in engine.faulty]
        assert indptr.shape == (len(ff_nodes) + 1,)
        assert engine.nnz == indptr[-1] == indices.size
        column_of = {node: i for i, node in enumerate(engine.nodes)}
        for ff_index, receiver in enumerate(ff_nodes):
            segment = indices[indptr[ff_index] : indptr[ff_index + 1]]
            senders = sorted(graph.in_neighbors(receiver), key=repr)
            assert list(segment) == [column_of[s] for s in senders]

    def test_channel_order_identical_to_dense(self):
        graph = core_network(10, 2)
        kwargs = dict(faulty=frozenset({8, 9}))
        sparse = SparseEngine(graph, TrimmedMeanRule(2), **kwargs)
        dense = VectorizedEngine(graph, TrimmedMeanRule(2), **kwargs)
        assert sparse.nodes == dense.nodes
        assert sparse._edge_nodes == dense._edge_nodes
        assert np.array_equal(sparse._edge_src_cols, dense._edge_src_cols)
        assert np.array_equal(sparse._edge_dst_cols, dense._edge_dst_cols)

    def test_plane_covers_every_message_slot_once(self):
        graph = k_in_regular_digraph(30, 5, rng=0)
        engine = SparseEngine(graph, TrimmedMeanRule(2), faulty={0, 1})
        assert engine._plane_indices.size == engine.nnz
        # Bucket slabs partition [0, nnz) without gaps or overlap.
        spans = sorted(
            (b.plane_start, b.plane_stop) for b in engine._buckets
        )
        cursor = 0
        for start, stop in spans:
            assert start == cursor
            cursor = stop
        assert cursor == engine.nnz


class TestValidation:
    def test_rejects_unsupported_dtype(self):
        graph = complete_graph(5)
        with pytest.raises(InvalidParameterError):
            SparseEngine(graph, TrimmedMeanRule(1), dtype=np.int32)
        with pytest.raises(InvalidParameterError):
            SparseEngine(graph, TrimmedMeanRule(1), dtype=np.float16)

    def test_rejects_nonpositive_budget(self):
        graph = complete_graph(5)
        with pytest.raises(InvalidParameterError):
            SparseEngine(graph, TrimmedMeanRule(1), max_plane_bytes=0)
        with pytest.raises(InvalidParameterError):
            SparseEngine(graph, TrimmedMeanRule(1), max_plane_bytes=-8)

    def test_plane_tile_rows_rejects_bad_batch(self):
        engine = SparseEngine(complete_graph(5), TrimmedMeanRule(1))
        with pytest.raises(InvalidParameterError):
            engine.plane_tile_rows(0)


class TestTileArithmetic:
    def test_no_budget_means_one_tile(self):
        engine = SparseEngine(complete_graph(6), TrimmedMeanRule(1))
        assert engine.max_plane_bytes is None
        assert engine.plane_tile_rows(17) == 17

    def test_budget_floors_at_one_row(self):
        engine = SparseEngine(
            complete_graph(6), TrimmedMeanRule(1), max_plane_bytes=1
        )
        assert engine.plane_tile_rows(8) == 1

    def test_budget_rounds_down_to_whole_rows(self):
        engine = SparseEngine(complete_graph(6), TrimmedMeanRule(1))
        per_row = engine.plane_bytes_per_row
        budgeted = SparseEngine(
            complete_graph(6),
            TrimmedMeanRule(1),
            max_plane_bytes=3 * per_row + per_row // 2,
        )
        assert budgeted.plane_tile_rows(8) == 3
        assert budgeted.plane_tile_rows(2) == 2

    def test_float32_halves_the_per_row_footprint(self):
        f64 = SparseEngine(core_network(10, 2), TrimmedMeanRule(2))
        f32 = SparseEngine(
            core_network(10, 2), TrimmedMeanRule(2), dtype=np.float32
        )
        assert f32.plane_bytes_per_row * 2 == f64.plane_bytes_per_row


class TestTilingRegression:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: None,
        lambda: ExtremePushStrategy(2.0),
        lambda: BatchExtremePushStrategy(2.0),
        lambda: BatchRandomNoiseStrategy(-3.0, 3.0, rng=5),
    ])
    def test_tiled_equals_untiled_bit_for_bit(self, adversary_factory):
        """A tiny tile budget never changes a single bit of the outputs.

        Includes the RNG-backed noise strategy: the adversary runs once per
        round on the full batch, so its draw sequence is identical whether
        the kernel then processes 1 row or all of them per tile.
        """
        graph = core_network(14, 2)
        faulty = frozenset({12, 13})
        config = SimulationConfig(
            max_rounds=10, tolerance=0.0, stop_on_convergence=False
        )
        outcomes = {}
        for budget in (None, 1):  # 1 byte -> one row per tile
            engine = SparseEngine(
                graph,
                TrimmedMeanRule(2),
                faulty=faulty,
                adversary=adversary_factory(),
                config=config,
                max_plane_bytes=budget,
            )
            matrix = random_input_matrix(engine.nodes, 16, rng=7)
            outcomes[budget] = engine.run_batch(matrix)
        assert np.array_equal(
            outcomes[None].final_states, outcomes[1].final_states
        )
        assert np.array_equal(
            outcomes[None].final_spread, outcomes[1].final_spread
        )
        assert np.array_equal(
            outcomes[None].validity_ok, outcomes[1].validity_ok
        )

    def test_tiling_caps_peak_kernel_allocations(self):
        """The tiled kernel's peak traced allocation is a fraction of the
        untiled one on a plane that is large relative to the budget."""
        graph = k_in_regular_digraph(1500, 8, rng=3)
        rule = TrimmedMeanRule(2)
        batch = 48

        def peak_bytes(budget):
            engine = SparseEngine(graph, rule, max_plane_bytes=budget)
            state = engine.pack_inputs(
                random_input_matrix(engine.nodes, batch, rng=1)
            )
            tracemalloc.start()
            stepped = engine.step_matrix(state, 1)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak, stepped

        untiled_peak, untiled_state = peak_bytes(None)
        budget = SparseEngine(graph, rule).plane_bytes_per_row * 4
        tiled_peak, tiled_state = peak_bytes(budget)
        assert np.array_equal(untiled_state, tiled_state)
        assert tiled_peak < untiled_peak * 0.5, (
            f"tiled peak {tiled_peak} not below half of untiled "
            f"{untiled_peak}"
        )


class TestRouting:
    def test_run_consensus_sparse_matches_vectorized(self):
        graph = core_network(9, 1)
        outcomes = {
            engine: run_consensus(graph, f=1, seed=4, engine=engine)
            for engine in ("vectorized", "sparse")
        }
        assert (
            outcomes["sparse"].final_values
            == outcomes["vectorized"].final_values
        )
        assert (
            outcomes["sparse"].rounds_executed
            == outcomes["vectorized"].rounds_executed
        )

    def test_run_consensus_sparse_rejects_async(self):
        graph = core_network(9, 1)
        with pytest.raises(InvalidParameterError, match="synchronous model"):
            run_consensus(graph, f=1, engine="sparse", synchronous=False)

    def test_run_sparse_cross_check_passes(self):
        graph = core_network(9, 1)
        outcome = run_sparse(
            graph,
            TrimmedMeanRule(1),
            uniform_random_inputs(graph.nodes, rng=2),
            faulty={8},
            adversary=ExtremePushStrategy(1.0),
            max_rounds=30,
            cross_check=True,
        )
        assert outcome.validity_ok

    def test_sparse_cross_check_engines_identical(self):
        graph = core_network(11, 2)
        report = sparse_cross_check_engines(
            graph,
            TrimmedMidpointRule(2),
            uniform_random_inputs(graph.nodes, rng=6),
            faulty={9, 10},
            adversary=BatchExtremePushStrategy(1.5),
            config=SimulationConfig(max_rounds=15),
        )
        assert report.identical
        assert report.max_abs_difference == 0.0


class TestFloat32Plumbing:
    def test_pack_and_step_stay_float32(self):
        engine = SparseEngine(
            core_network(9, 1),
            TrimmedMeanRule(1),
            faulty={8},
            adversary=ExtremePushStrategy(1.0),
            dtype=np.float32,
        )
        state = engine.pack_inputs(uniform_random_inputs(engine.graph.nodes, rng=1))
        assert state.dtype == np.float32
        stepped = engine.step_matrix(state, 1)
        assert stepped.dtype == np.float32

    def test_run_sparse_float32_converges(self):
        graph = core_network(9, 1)
        outcome = run_sparse(
            graph,
            TrimmedMeanRule(1),
            uniform_random_inputs(graph.nodes, rng=3),
            faulty={8},
            adversary=ExtremePushStrategy(1.0),
            max_rounds=200,
            tolerance=1e-4,
            dtype=np.float32,
        )
        assert outcome.converged
        assert outcome.validity_ok
