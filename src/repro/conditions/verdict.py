"""Layered feasibility solver returning verdicts with checkable certificates.

:func:`check_feasibility` answers the Theorem-1 feasibility question only for
graphs small enough to enumerate exhaustively.  This module scales the
question to arbitrary sizes by stacking layers of increasing cost, each of
which can *decide* with a certificate that an independent checker can
re-verify:

1. **Screens** — the Corollary-2 count screen (``n > 3f``), the Corollary-3
   in-degree screen (``≥ 2f + 1``), the complete-graph and core-structure
   sufficient shortcuts, and a source-component screen: two strongly
   connected components with no incoming external edges are each insulated
   for any threshold ``≥ 1``, so they form a genuine violating partition
   with ``F = ∅``.  All screens are near-linear in the graph size.
2. **Exhaustive** — for graphs within the exact-checker cap, the bitset
   enumeration of :func:`repro.conditions.necessary.find_violating_partition`
   decides definitively either way.
3. **Witness search** — the greedy and randomized searches of
   :mod:`repro.conditions.witnesses`.  A found witness is promoted to an
   :class:`InfeasibilityCertificate` only after re-verification through the
   deletion-closure fixed point (:func:`verify_witness_fast`), so the layer
   can prove infeasibility at any scale but never feasibility.
4. **Exact** — the constraint-solving backends of
   :mod:`repro.conditions.exact`, which push exact decisions past the
   enumeration cap and report ``unknown`` when their budget runs out.

The resulting :class:`FeasibilityVerdict` records the status
(``FEASIBLE`` / ``INFEASIBLE`` / ``UNKNOWN``), the deciding layer, a
certificate, and per-layer wall-clock timings.  :func:`verify_certificate`
re-checks any verdict from scratch — soundness is a property the test suite
enforces, not an assumption.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.conditions.exact import (
    DEFAULT_DECISION_BUDGET,
    DEFAULT_MAX_EXACT_BACKEND_NODES,
    exact_violation_search,
)
from repro.conditions.necessary import (
    DEFAULT_MAX_EXACT_NODES,
    find_core_clique,
    find_violating_partition,
    passes_count_screen,
    passes_in_degree_screen,
)
from repro.conditions.witnesses import (
    greedy_witness_search,
    random_witness_search,
    verify_witness_fast,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.graphs.properties import (
    is_complete,
    minimum_in_degree,
    strongly_connected_components,
)
from repro.types import PartitionWitness

#: Verdict statuses, in the order they are preferred by the layer stack.
FEASIBLE = "FEASIBLE"
INFEASIBLE = "INFEASIBLE"
UNKNOWN = "UNKNOWN"

#: Default attempt budget for the randomized witness layer.
DEFAULT_WITNESS_ATTEMPTS = 200

#: Seed cap for the greedy witness layer on large graphs.  Greedy search
#: costs one closure sweep per (seed, fault-prefix) pair, so running every
#: node as a seed is quadratic-plus at n = 1000; the evenly-strided cap
#: keeps the layer near-linear while still covering the graph.
DEFAULT_GREEDY_SEED_CAP = 64

#: Layer names, in execution order, as they appear in per-layer timings.
VERDICT_LAYERS = ("screens", "exhaustive", "witness-search", "exact")


@dataclass(frozen=True)
class LayerTiming:
    """Wall-clock record for one layer of the verdict stack.

    ``outcome`` is ``"decided"`` when the layer produced the final verdict
    and ``"no-decision"`` when it ran but passed the question on.
    """

    layer: str
    seconds: float
    outcome: str


@dataclass(frozen=True)
class InfeasibilityCertificate:
    """Machine-checkable evidence that a graph fails the Theorem-1 condition.

    ``kind`` is one of ``"count-screen"`` (``n ≤ 3f``, Corollary 2),
    ``"in-degree-screen"`` (a node with in-degree ``< 2f + 1``, Corollary 3)
    or ``"witness"`` (an explicit violating partition).  ``witness`` is
    mandatory for the ``"witness"`` kind; ``details`` records provenance
    (which layer or backend produced the evidence) and the screen
    quantities needed to re-check it.
    """

    kind: str
    witness: PartitionWitness | None = None
    details: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FeasibilityCertificate:
    """Machine-checkable evidence that a graph satisfies the condition.

    ``kind`` is one of ``"complete-graph"`` (complete with ``n > 3f``),
    ``"core-structure"`` (a Definition-4 core of ``2f + 1`` hubs, carried in
    ``core``), ``"exhaustive"`` (the enumeration found no violation) or
    ``"exact"`` (a constraint backend exhausted the search space).  The two
    search kinds are re-checked by re-running the bounded search; the two
    structural kinds are re-checked directly from the graph.
    """

    kind: str
    core: frozenset | None = None
    details: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Outcome of the layered solver: status, certificate and timings.

    ``decided_by`` names the layer that settled the question (``None`` for
    ``UNKNOWN``); ``certificate`` is an
    :class:`InfeasibilityCertificate`/:class:`FeasibilityCertificate`
    matching the status, and is always ``None`` exactly when the status is
    ``UNKNOWN``.  ``timings`` lists one :class:`LayerTiming` per layer that
    actually ran, in execution order.
    """

    status: str
    f: int
    certificate: InfeasibilityCertificate | FeasibilityCertificate | None
    timings: tuple[LayerTiming, ...]
    decided_by: str | None
    reason: str

    def describe(self) -> str:
        """Return a one-line human-readable summary of the verdict."""
        layer = self.decided_by or "none"
        total = sum(timing.seconds for timing in self.timings)
        return (
            f"{self.status} (f = {self.f}, decided by {layer}, "
            f"{total * 1000:.1f} ms): {self.reason}"
        )


def find_source_component_witness(graph: Digraph) -> PartitionWitness | None:
    """Return the violating partition implied by two source components.

    A *source component* is a strongly connected component with no incoming
    edge from outside itself.  Each is insulated for any threshold ``≥ 1``
    (its members receive zero values from outside), so two of them form a
    genuine witness with ``F = ∅``: ``L`` and ``R`` are the first two source
    components in canonical order, ``C`` is everything else.  Returns
    ``None`` when fewer than two source components exist — in particular
    for every strongly connected graph.
    """
    components = strongly_connected_components(graph)
    if len(components) < 2:
        return None
    membership = {
        node: position
        for position, component in enumerate(components)
        for node in component
    }
    has_external_in = [False] * len(components)
    for source, target in graph.edges:
        if membership[source] != membership[target]:
            has_external_in[membership[target]] = True
    sources = [
        component
        for position, component in enumerate(components)
        if not has_external_in[position]
    ]
    if len(sources) < 2:
        return None
    left, right = sources[0], sources[1]
    center = frozenset(graph.nodes) - left - right
    return PartitionWitness(
        faulty=frozenset(), left=left, center=center, right=right
    )


#: A layer's decision: ``(status, certificate, reason)``; ``None`` = undecided.
LayerDecision = tuple[
    str, InfeasibilityCertificate | FeasibilityCertificate, str
]


def _screen_layer(graph: Digraph, f: int) -> LayerDecision | None:
    """Run the constant-factor screens; return (status, certificate, reason)."""
    n = graph.number_of_nodes
    if not passes_count_screen(n, f):
        certificate = InfeasibilityCertificate(
            kind="count-screen", details={"n": n, "f": f}
        )
        return INFEASIBLE, certificate, f"n = {n} does not exceed 3f = {3 * f}"
    if not passes_in_degree_screen(graph, f):
        minimum = minimum_in_degree(graph)
        certificate = InfeasibilityCertificate(
            kind="in-degree-screen",
            details={"minimum_in_degree": minimum, "required": 2 * f + 1},
        )
        return (
            INFEASIBLE,
            certificate,
            f"minimum in-degree {minimum} is below 2f + 1 = {2 * f + 1}",
        )
    if is_complete(graph):
        certificate = FeasibilityCertificate(
            kind="complete-graph", details={"n": n}
        )
        return FEASIBLE, certificate, f"complete graph with n = {n} > 3f"
    if f > 0:
        core = find_core_clique(graph, f)
        if core is not None:
            certificate = FeasibilityCertificate(kind="core-structure", core=core)
            return (
                FEASIBLE,
                certificate,
                f"core structure of {len(core)} hubs (Definition 4)",
            )
    witness = find_source_component_witness(graph)
    if witness is not None:
        certificate = InfeasibilityCertificate(
            kind="witness",
            witness=witness,
            details={"source": "source-components"},
        )
        return (
            INFEASIBLE,
            certificate,
            "two source components are simultaneously insulated",
        )
    return None


def feasibility_verdict(
    graph: Digraph,
    f: int,
    max_exhaustive_nodes: int = DEFAULT_MAX_EXACT_NODES,
    max_exact_nodes: int = DEFAULT_MAX_EXACT_BACKEND_NODES,
    witness_attempts: int = DEFAULT_WITNESS_ATTEMPTS,
    greedy_seeds: int | None = None,
    rng: int = 0,
    use_exact: bool = True,
    exact_backend: str = "dpll",
    decision_budget: int = DEFAULT_DECISION_BUDGET,
) -> FeasibilityVerdict:
    """Decide Theorem-1 feasibility with the layered certificate stack.

    Layers run in fixed order — screens, exhaustive enumeration (only when
    ``n ≤ max_exhaustive_nodes``), greedy + randomized witness search, and
    the exact constraint backend (only when ``use_exact`` and
    ``n ≤ max_exact_nodes``) — and the first decision wins.  Every decided
    verdict carries a certificate that :func:`verify_certificate` accepts;
    when no layer decides, the status is ``UNKNOWN`` with no certificate.

    ``witness_attempts`` and ``rng`` parameterize the randomized search;
    ``greedy_seeds`` caps the greedy layer's seed count (default: every
    node up to :data:`DEFAULT_GREEDY_SEED_CAP`, evenly strided beyond);
    ``exact_backend`` and ``decision_budget`` are forwarded to
    :func:`repro.conditions.exact.exact_violation_search`.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    n = graph.number_of_nodes
    timings: list[LayerTiming] = []

    def run_layer(
        name: str, action: Callable[[], LayerDecision | None]
    ) -> LayerDecision | None:
        """Time one layer; record the timing and return its decision."""
        start = time.perf_counter()
        decision = action()
        elapsed = time.perf_counter() - start
        timings.append(
            LayerTiming(
                layer=name,
                seconds=elapsed,
                outcome="decided" if decision is not None else "no-decision",
            )
        )
        return decision

    decision = run_layer("screens", lambda: _screen_layer(graph, f))
    if decision is None and n <= max_exhaustive_nodes:

        def exhaustive() -> LayerDecision:
            """Run the definitive enumeration within its node cap."""
            found = find_violating_partition(graph, f, max_nodes=max_exhaustive_nodes)
            if found is None:
                certificate = FeasibilityCertificate(
                    kind="exhaustive",
                    details={"method": "bitset", "max_nodes": max_exhaustive_nodes},
                )
                return FEASIBLE, certificate, "exhaustive search found no violation"
            certificate = InfeasibilityCertificate(
                kind="witness", witness=found, details={"source": "exhaustive"}
            )
            return INFEASIBLE, certificate, "exhaustive search found a violation"

        decision = run_layer("exhaustive", exhaustive)
    if decision is None and n >= 2:

        def witness_search() -> LayerDecision | None:
            """Promote a heuristic witness to a verified certificate."""
            seed_cap = (
                min(n, DEFAULT_GREEDY_SEED_CAP)
                if greedy_seeds is None
                else greedy_seeds
            )
            found = greedy_witness_search(graph, f, max_seeds=seed_cap)
            source = "greedy"
            if found is None:
                found = random_witness_search(
                    graph, f, attempts=witness_attempts, rng=rng
                )
                source = "random"
            if found is None:
                return None
            if not verify_witness_fast(graph, f, found):
                return None  # never certify an unverified witness
            certificate = InfeasibilityCertificate(
                kind="witness", witness=found, details={"source": source}
            )
            return (
                INFEASIBLE,
                certificate,
                f"{source} search found a verified violating partition",
            )

        decision = run_layer("witness-search", witness_search)
    if (
        decision is None
        and use_exact
        and n <= max_exact_nodes
        and n > max_exhaustive_nodes
    ):

        def exact() -> LayerDecision | None:
            """Push past the enumeration cap with a constraint backend."""
            result = exact_violation_search(
                graph,
                f,
                backend=exact_backend,
                max_nodes=max_exact_nodes,
                decision_budget=decision_budget,
            )
            if result.status == "violation":
                certificate = InfeasibilityCertificate(
                    kind="witness",
                    witness=result.witness,
                    details={"source": result.backend},
                )
                return (
                    INFEASIBLE,
                    certificate,
                    f"{result.backend} backend found a violation",
                )
            if result.status == "satisfied":
                certificate = FeasibilityCertificate(
                    kind="exact",
                    details={
                        "backend": result.backend,
                        "decision_budget": decision_budget,
                        "fault_sets_examined": result.fault_sets_examined,
                    },
                )
                return (
                    FEASIBLE,
                    certificate,
                    f"{result.backend} backend exhausted the search space",
                )
            return None  # budget ran out: stay undecided

        decision = run_layer("exact", exact)
    if decision is None:
        return FeasibilityVerdict(
            status=UNKNOWN,
            f=f,
            certificate=None,
            timings=tuple(timings),
            decided_by=None,
            reason=(
                f"no layer decided: n = {n} exceeds the exact caps and no "
                f"witness was found in {witness_attempts} attempts"
            ),
        )
    status, certificate, reason = decision
    return FeasibilityVerdict(
        status=status,
        f=f,
        certificate=certificate,
        timings=tuple(timings),
        decided_by=timings[-1].layer,
        reason=reason,
    )


def _verify_infeasibility(
    graph: Digraph, f: int, certificate: InfeasibilityCertificate
) -> bool:
    """Re-check an infeasibility certificate from scratch."""
    if certificate.kind == "count-screen":
        return not passes_count_screen(graph.number_of_nodes, f)
    if certificate.kind == "in-degree-screen":
        return not passes_in_degree_screen(graph, f)
    if certificate.kind == "witness":
        if certificate.witness is None:
            return False
        return verify_witness_fast(graph, f, certificate.witness)
    return False


def _verify_feasibility(
    graph: Digraph, f: int, certificate: FeasibilityCertificate
) -> bool:
    """Re-check a feasibility certificate from scratch."""
    n = graph.number_of_nodes
    if certificate.kind == "complete-graph":
        return is_complete(graph) and passes_count_screen(n, f)
    if certificate.kind == "core-structure":
        core = certificate.core
        if core is None or len(core) != 2 * f + 1 or f < 1:
            return False
        if not passes_count_screen(n, f):
            return False
        if not core <= graph.nodes:
            return False
        return all(
            graph.has_edge(hub, other) and graph.has_edge(other, hub)
            for hub in core
            for other in graph.nodes
            if other != hub
        )
    if certificate.kind == "exhaustive":
        cap = int(certificate.details.get("max_nodes", DEFAULT_MAX_EXACT_NODES))
        if n > cap:
            return False
        return find_violating_partition(graph, f, max_nodes=cap) is None
    if certificate.kind == "exact":
        budget = int(
            certificate.details.get("decision_budget", DEFAULT_DECISION_BUDGET)
        )
        result = exact_violation_search(
            graph, f, backend="dpll", max_nodes=n, decision_budget=budget
        )
        return result.status == "satisfied"
    return False


def verify_certificate(graph: Digraph, f: int, verdict: FeasibilityVerdict) -> bool:
    """Re-check a verdict's certificate independently of the solver run.

    Returns ``True`` exactly when the verdict is *sound*: an ``UNKNOWN``
    verdict carries no certificate, an ``INFEASIBLE`` verdict carries an
    :class:`InfeasibilityCertificate` whose evidence re-checks against the
    graph (screen inequalities recomputed, witnesses re-verified through the
    deletion-closure fixed point), and a ``FEASIBLE`` verdict carries a
    :class:`FeasibilityCertificate` whose structure re-checks (or whose
    bounded search, re-run, still finds no violation).
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if verdict.status == UNKNOWN:
        return verdict.certificate is None
    if verdict.status == INFEASIBLE:
        if not isinstance(verdict.certificate, InfeasibilityCertificate):
            return False
        return _verify_infeasibility(graph, f, verdict.certificate)
    if verdict.status == FEASIBLE:
        if not isinstance(verdict.certificate, FeasibilityCertificate):
            return False
        return _verify_feasibility(graph, f, verdict.certificate)
    return False
