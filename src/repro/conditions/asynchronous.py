"""The asynchronous variant of the feasibility condition (Section 7).

Section 7 of the paper states that for (totally) asynchronous networks the
necessary and sufficient condition is obtained from Theorem 1 by replacing the
``≥ f + 1`` incoming-link requirement in the definition of ``⇒`` with
``≥ 2f + 1``.  Two immediate consequences mirror Corollaries 2 and 3:

* every node needs in-degree ``≥ 3f + 1`` when ``f > 0``, and
* the number of nodes must exceed ``5f``.

The checkers here reuse the synchronous machinery of
:mod:`repro.conditions.necessary` with the larger threshold.
"""

from __future__ import annotations

from repro.conditions.necessary import (
    DEFAULT_MAX_EXACT_NODES,
    find_violating_partition,
    passes_count_screen,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.graphs.properties import is_complete, minimum_in_degree
from repro.types import FeasibilityResult, PartitionWitness


def async_threshold(f: int) -> int:
    """Return the ``⇒`` threshold of the asynchronous condition: ``2f + 1``."""
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    return 2 * f + 1


def passes_async_count_screen(n: int, f: int) -> bool:
    """Asynchronous analogue of Corollary 2: the node count must exceed ``5f``.

    For ``f = 0`` the asynchronous condition coincides with the synchronous
    one at threshold 1, so any ``n ≥ 1`` passes the screen.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if f == 0:
        return True
    return n > 5 * f


def passes_async_in_degree_screen(graph: Digraph, f: int) -> bool:
    """Asynchronous analogue of Corollary 3: in-degree ``≥ 3f + 1`` when ``f > 0``."""
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if f == 0:
        return True
    return minimum_in_degree(graph) >= 3 * f + 1


def find_async_violating_partition(
    graph: Digraph,
    f: int,
    max_nodes: int = DEFAULT_MAX_EXACT_NODES,
    method: str = "bitset",
) -> PartitionWitness | None:
    """Exhaustively search for a partition violating the asynchronous condition.

    ``method`` routes to the bitset fast path (default) or the legacy
    pure-Python enumeration, exactly as in the synchronous checker.
    """
    return find_violating_partition(
        graph, f, threshold=async_threshold(f), max_nodes=max_nodes, method=method
    )


def satisfies_async_condition(
    graph: Digraph,
    f: int,
    max_nodes: int = DEFAULT_MAX_EXACT_NODES,
    method: str = "bitset",
) -> bool:
    """Return whether ``graph`` satisfies the asynchronous condition for ``f``."""
    return (
        find_async_violating_partition(
            graph, f, max_nodes=max_nodes, method=method
        )
        is None
    )


def check_async_feasibility(
    graph: Digraph,
    f: int,
    max_nodes: int = DEFAULT_MAX_EXACT_NODES,
    method: str = "bitset",
) -> FeasibilityResult:
    """Decide feasibility of asynchronous iterative consensus on ``graph``.

    Mirrors :func:`repro.conditions.necessary.check_feasibility` with the
    Section-7 screens (``n > 5f``, in-degree ``≥ 3f + 1``) and the ``2f + 1``
    threshold in the exhaustive search.
    """
    n = graph.number_of_nodes
    if not passes_async_count_screen(n, f):
        return FeasibilityResult(
            satisfied=False,
            f=f,
            method="screen:n>5f",
            reason=f"n = {n} does not exceed 5f = {5 * f} (Section 7)",
        )
    if not passes_async_in_degree_screen(graph, f):
        return FeasibilityResult(
            satisfied=False,
            f=f,
            method="screen:in-degree",
            reason=(
                f"minimum in-degree {minimum_in_degree(graph)} is below "
                f"3f + 1 = {3 * f + 1} (Section 7)"
            ),
        )
    if is_complete(graph) and passes_count_screen(n, f) and n > 5 * f:
        return FeasibilityResult(
            satisfied=True,
            f=f,
            method="structural:complete",
            reason=f"complete graph with n = {n} > 5f = {5 * f}",
        )
    witness = find_async_violating_partition(
        graph, f, max_nodes=max_nodes, method=method
    )
    if witness is None:
        return FeasibilityResult(
            satisfied=True,
            f=f,
            method="exhaustive",
            reason="no violating partition exists at threshold 2f + 1",
        )
    return FeasibilityResult(
        satisfied=False,
        f=f,
        witness=witness,
        method="exhaustive",
        reason=f"violating partition found: {witness.describe()}",
    )
