"""Checkers for the paper's necessary-and-sufficient condition (Theorem 1).

Theorem 1 (necessity; Section 5 proves the same condition sufficient):

    For every partition ``F, L, C, R`` of ``V`` with ``|F| ≤ f``, ``L ≠ ∅``
    and ``R ≠ ∅``, at least one of ``C ∪ R ⇒ L`` and ``L ∪ C ⇒ R`` holds,
    where ``A ⇒ B`` means some node of ``B`` has at least ``f + 1``
    in-neighbours in ``A``.

This module provides

* :func:`violates_condition` / :func:`verify_witness` — check a single
  candidate partition,
* :func:`find_violating_partition` — an exact (exhaustive) search for a
  violating partition, exponential in ``n`` but organised so that only
  ``2^{n-|F|}`` candidate ``L`` sets are enumerated per fault set ``F``
  (the matching ``R`` is computed by a closure, see below),
* fast necessary *screens* derived from the corollaries
  (:func:`passes_count_screen` — Corollary 2, ``n > 3f``;
  :func:`passes_in_degree_screen` — Corollary 3, in-degree ``≥ 2f + 1``),
* structural *sufficient* shortcuts (complete graph with ``n > 3f``; presence
  of a core-network structure, Definition 4),
* :func:`check_feasibility` — the one-stop API combining screens, shortcuts
  and the exhaustive search into a :class:`~repro.types.FeasibilityResult`.

Search strategy
---------------
For a fixed fault set ``F`` let ``W = V − F``.  A partition ``(L, C, R)``
violates the condition exactly when

* every node of ``L`` has fewer than ``f + 1`` in-neighbours in ``W − L``
  (this is ``C ∪ R ⇏ L``), and
* every node of ``R`` has fewer than ``f + 1`` in-neighbours in ``W − R``
  (this is ``L ∪ C ⇏ R``),

i.e. both ``L`` and ``R`` are *insulated* sets of ``W`` (no member receives
``f + 1`` values from outside the set), and they are disjoint; ``C`` is simply
the rest.  Therefore it suffices to enumerate candidate insulated sets ``L``
(``2^{|W|}`` of them), and for each to ask whether ``W − L`` contains a
non-empty insulated set ``R``.  The latter question has a greedy answer: keep
deleting from ``W − L`` any node with ``≥ f + 1`` in-neighbours outside the
current candidate; the fixed point is the unique *maximal* insulated subset of
``W − L``, and a non-empty fixed point is exactly the witness we need.  This
reduces the naive ``3^{|W|}`` partition enumeration to ``2^{|W|}`` insulated
set checks, each near-linear in the graph size.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Iterable, Iterator

from repro.conditions.bitset import (
    MAX_BITSET_NODES,
    find_violating_partition_bitset,
)
from repro.exceptions import (
    GraphTooLargeError,
    InvalidParameterError,
    InvalidPartitionError,
)
from repro.graphs.digraph import Digraph
from repro.graphs.properties import is_complete, minimum_in_degree
from repro.types import FeasibilityResult, NodeId, PartitionWitness

# Default cap on the node count accepted by the exhaustive search.  The search
# enumerates all fault sets of size <= f and, for each, all subsets of the
# remaining nodes, so the cost is roughly sum_{|F|<=f} C(n,|F|) * 2^(n-|F|).
# The bitset fast path (repro.conditions.bitset) evaluates candidate subsets
# as masked popcounts in vectorized blocks, which moves the practical ceiling
# from ~16 (pure-Python sets) to the mid-20s; the cap follows suit.
DEFAULT_MAX_EXACT_NODES = 24

#: Accepted values for the checkers' ``method`` escape hatch.
CHECKER_METHODS = ("bitset", "python")


def _validate_method(method: str) -> None:
    """Reject unknown ``method`` values with the list of known ones."""
    if method not in CHECKER_METHODS:
        known = ", ".join(repr(name) for name in CHECKER_METHODS)
        raise InvalidParameterError(
            f"unknown checker method {method!r}; expected one of {known}"
        )


def _validate_size(n: int, max_nodes: int, checker: str) -> None:
    """Shared up-front node-count guard for every exhaustive checker.

    Raises :class:`GraphTooLargeError` (recording ``n``, the cap and the
    checker name) before any enumeration work begins, so oversized graphs
    fail fast and with a consistent message across modules.
    """
    if n > max_nodes:
        raise GraphTooLargeError(n, max_nodes, checker=checker)


# ---------------------------------------------------------------------------
# Single-partition checks
# ---------------------------------------------------------------------------
def _insulated(
    graph: Digraph,
    candidate: frozenset[NodeId],
    universe: frozenset[NodeId],
    threshold: int,
) -> bool:
    """Return whether every node of ``candidate`` has fewer than ``threshold``
    in-neighbours in ``universe − candidate``."""
    outside = universe - candidate
    return all(
        graph.in_degree_within(node, outside) < threshold for node in candidate
    )


def violates_condition(
    graph: Digraph,
    f: int,
    faulty: Iterable[NodeId],
    left: Iterable[NodeId],
    center: Iterable[NodeId],
    right: Iterable[NodeId],
    threshold: int | None = None,
) -> bool:
    """Return whether the partition ``F, L, C, R`` violates Theorem 1.

    A violation means ``C ∪ R ⇏ L`` **and** ``L ∪ C ⇏ R``.  The parts must
    be pairwise disjoint, cover ``V``, satisfy ``|F| ≤ f`` and have non-empty
    ``L`` and ``R``; otherwise :class:`InvalidPartitionError` is raised.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    fault_set = frozenset(faulty)
    left_set = frozenset(left)
    center_set = frozenset(center)
    right_set = frozenset(right)
    parts = [fault_set, left_set, center_set, right_set]
    covered: set[NodeId] = set()
    total = 0
    for part in parts:
        covered |= part
        total += len(part)
    if total != len(covered) or covered != set(graph.nodes):
        raise InvalidPartitionError(
            "F, L, C, R must be pairwise disjoint and cover the whole vertex set"
        )
    if len(fault_set) > f:
        raise InvalidPartitionError(
            f"|F| = {len(fault_set)} exceeds the fault budget f = {f}"
        )
    if not left_set or not right_set:
        raise InvalidPartitionError("L and R must both be non-empty")
    effective_threshold = f + 1 if threshold is None else threshold
    universe = left_set | center_set | right_set
    return _insulated(graph, left_set, universe, effective_threshold) and _insulated(
        graph, right_set, universe, effective_threshold
    )


def verify_witness(
    graph: Digraph,
    f: int,
    witness: PartitionWitness,
    threshold: int | None = None,
) -> bool:
    """Return whether ``witness`` is a genuine violating partition of ``graph``.

    Used by tests and by the benchmark harness to validate both the paper's
    hand-constructed witnesses (e.g. the chord-network counter-example of
    Section 6.3) and witnesses produced by the randomized search.
    """
    try:
        return violates_condition(
            graph,
            f,
            witness.faulty,
            witness.left,
            witness.center,
            witness.right,
            threshold=threshold,
        )
    except InvalidPartitionError:
        return False


# ---------------------------------------------------------------------------
# Fast screens (Corollaries 2 and 3)
# ---------------------------------------------------------------------------
def passes_count_screen(n: int, f: int) -> bool:
    """Corollary 2 screen: a correct iterative algorithm requires ``n > 3f``.

    ``f = 0`` needs at least one node (consensus of an empty system is
    undefined); the paper additionally assumes ``n ≥ 2`` throughout.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    return n > 3 * f


def passes_in_degree_screen(graph: Digraph, f: int) -> bool:
    """Corollary 3 screen: with ``f > 0`` every node needs in-degree ``≥ 2f + 1``.

    For ``f = 0`` the corollary imposes no constraint, so the screen passes.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if f == 0:
        return True
    return minimum_in_degree(graph) >= 2 * f + 1


# ---------------------------------------------------------------------------
# Structural sufficient shortcuts
# ---------------------------------------------------------------------------
def find_core_clique(graph: Digraph, f: int) -> frozenset[NodeId] | None:
    """Return a set ``K`` of ``2f + 1`` nodes forming a core structure, if any.

    A *core structure* (generalising Definition 4 to arbitrary supergraphs) is
    a set ``K`` of ``2f + 1`` nodes such that every node of ``K`` has
    bidirectional edges to **every** other node of the graph.  A graph
    containing a core structure is a supergraph of a core network, and since
    the Theorem-1 condition is monotone under edge additions, it satisfies the
    condition whenever ``n > 3f``.

    The search is cheap: a node can belong to ``K`` only if it is
    bidirectionally connected to all other nodes, so we simply collect such
    nodes and take the first ``2f + 1`` of them (sorted for determinism).
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    required = 2 * f + 1
    nodes = graph.nodes
    if len(nodes) < required:
        return None
    hubs = [
        node
        for node in sorted(nodes, key=repr)
        if all(
            graph.has_edge(node, other) and graph.has_edge(other, node)
            for other in nodes
            if other != node
        )
    ]
    if len(hubs) < required:
        return None
    return frozenset(hubs[:required])


def is_core_network(graph: Digraph, f: int) -> bool:
    """Return whether ``graph`` contains a core structure (Definition 4) and
    has ``n > 3f`` nodes, which together guarantee the Theorem-1 condition."""
    if not passes_count_screen(graph.number_of_nodes, f):
        return False
    return find_core_clique(graph, f) is not None


# ---------------------------------------------------------------------------
# Exhaustive search
# ---------------------------------------------------------------------------
def _iter_fault_sets(
    nodes: tuple[NodeId, ...], f: int
) -> Iterator[frozenset[NodeId]]:
    """Yield every subset of ``nodes`` of size ``0 … f`` (the candidate ``F``)."""
    for size in range(min(f, len(nodes)) + 1):
        for subset in combinations(nodes, size):
            yield frozenset(subset)


def maximal_insulated_subset(
    graph: Digraph,
    candidate_pool: frozenset[NodeId],
    universe: frozenset[NodeId],
    threshold: int,
) -> frozenset[NodeId]:
    """Return the unique maximal ``R ⊆ candidate_pool`` such that every node of
    ``R`` has fewer than ``threshold`` in-neighbours in ``universe − R``.

    Computed by the standard deletion closure: repeatedly remove any node that
    already receives ``threshold`` or more values from outside the current
    candidate set; nodes removed can belong to no insulated subset of the
    pool, so the fixed point is maximal.  An empty result means no non-empty
    insulated subset exists inside ``candidate_pool``.

    The closure runs a worklist with an incremental outside-in-degree counter
    per node: deleting ``u`` bumps the counter of every out-neighbour of
    ``u`` still in the candidate set (``u`` just moved to the outside),
    enqueueing those that cross the threshold.  Counters only grow, so each
    node is deleted at most once and the closure is ``O(V + E)`` — the old
    implementation rebuilt ``universe − current`` after every single discard,
    making it quadratic-plus in ``n``.  The deletion closure is confluent, so
    the processing order does not affect the fixed point.
    """
    current = set(candidate_pool)
    if not current:
        return frozenset()
    outside = universe - current
    outside_degree = {
        node: graph.in_degree_within(node, outside) for node in current
    }
    worklist = deque(
        node for node in current if outside_degree[node] >= threshold
    )
    enqueued = set(worklist)
    while worklist:
        node = worklist.popleft()
        enqueued.discard(node)
        current.discard(node)
        if node not in universe:
            # A pool node outside the universe never joins the outside set,
            # so its deletion cannot raise anyone's counter.
            continue
        for successor in graph.out_neighbors(node):
            if successor in current:
                outside_degree[successor] += 1
                if (
                    outside_degree[successor] >= threshold
                    and successor not in enqueued
                ):
                    worklist.append(successor)
                    enqueued.add(successor)
    return frozenset(current)


def find_violating_partition(
    graph: Digraph,
    f: int,
    threshold: int | None = None,
    max_nodes: int = DEFAULT_MAX_EXACT_NODES,
    method: str = "bitset",
) -> PartitionWitness | None:
    """Exhaustively search for a partition violating Theorem 1.

    Returns a :class:`~repro.types.PartitionWitness` if one exists and
    ``None`` otherwise (i.e. ``None`` certifies that the graph satisfies the
    condition for this ``f``).  The search enumerates every fault set ``F``
    of size ``≤ f`` and every candidate insulated set ``L ⊆ V − F``; the
    matching ``R`` is obtained by the maximal-insulated-subset closure (see
    the module docstring), so the overall cost is
    ``Σ_{|F| ≤ f} C(n, |F|) · 2^{n − |F|}`` insulated-set checks.

    ``method`` selects the execution path: ``"bitset"`` (default) runs the
    vectorized kernels of :mod:`repro.conditions.bitset`; ``"python"`` keeps
    the legacy pure-Python set enumeration.  Both paths visit candidates in
    the same canonical order and return identical witnesses.

    Raises :class:`~repro.exceptions.GraphTooLargeError` when the graph has
    more than ``max_nodes`` nodes; raise the cap explicitly to force the
    enumeration on larger graphs.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    _validate_method(method)
    nodes = tuple(sorted(graph.nodes, key=repr))
    n = len(nodes)
    _validate_size(n, max_nodes, "find_violating_partition")
    if n < 2:
        # With a single node there is no pair of non-empty disjoint L and R,
        # so the condition holds vacuously.
        return None
    if method == "bitset" and n <= MAX_BITSET_NODES:
        return find_violating_partition_bitset(graph, f, threshold=threshold)
    effective_threshold = f + 1 if threshold is None else threshold

    for fault_set in _iter_fault_sets(nodes, f):
        remaining = tuple(node for node in nodes if node not in fault_set)
        universe = frozenset(remaining)
        if len(remaining) < 2:
            continue
        # Enumerate candidate L sets (non-empty proper subsets of the
        # remaining nodes).  Iterating bitmasks keeps the enumeration cheap
        # and deterministic.
        count = len(remaining)
        for mask in range(1, (1 << count) - 1):
            left = frozenset(
                remaining[index] for index in range(count) if mask & (1 << index)
            )
            if not _insulated(graph, left, universe, effective_threshold):
                continue
            pool = universe - left
            right = maximal_insulated_subset(
                graph, pool, universe, effective_threshold
            )
            if right:
                center = universe - left - right
                return PartitionWitness(
                    faulty=fault_set, left=left, center=center, right=right
                )
    return None


def satisfies_theorem1(
    graph: Digraph,
    f: int,
    threshold: int | None = None,
    max_nodes: int = DEFAULT_MAX_EXACT_NODES,
    method: str = "bitset",
) -> bool:
    """Return whether ``graph`` satisfies the Theorem-1 condition for ``f``.

    Thin wrapper around :func:`find_violating_partition`.
    """
    return (
        find_violating_partition(
            graph, f, threshold=threshold, max_nodes=max_nodes, method=method
        )
        is None
    )


# ---------------------------------------------------------------------------
# Combined feasibility check
# ---------------------------------------------------------------------------
def check_feasibility(
    graph: Digraph,
    f: int,
    max_nodes: int = DEFAULT_MAX_EXACT_NODES,
    use_structural_shortcuts: bool = True,
    method: str = "bitset",
) -> FeasibilityResult:
    """Decide whether iterative approximate Byzantine consensus tolerating
    ``f`` faults is possible on ``graph`` (synchronous model).

    The verdict is produced by the cheapest applicable method:

    1. Corollary-2 screen (``n > 3f``) — rejects immediately when violated.
    2. Corollary-3 screen (in-degree ``≥ 2f + 1`` for ``f > 0``) — rejects
       immediately when violated.
    3. Structural shortcuts — a complete graph with ``n > 3f`` or a graph
       containing a core structure (Definition 4) satisfies the condition.
    4. The exhaustive Theorem-1 search, which is exact and also supplies a
       witness partition when the condition fails.

    The returned :class:`~repro.types.FeasibilityResult` records which method
    decided and, for negative verdicts from the exhaustive search, the
    violating partition.  ``method`` routes the exhaustive step to the
    bitset fast path (default) or the legacy pure-Python enumeration;
    ``method="auto"`` instead delegates to the layered verdict stack of
    :mod:`repro.conditions.verdict`, which scales past ``max_nodes`` by
    adding witness-search and constraint-backend layers — it raises
    :class:`~repro.exceptions.GraphTooLargeError` if the stack returns
    ``UNKNOWN`` (no layer could decide within its budget).
    """
    if method == "auto":
        # Imported lazily: repro.conditions.verdict imports this module.
        from repro.conditions.verdict import UNKNOWN, feasibility_verdict

        verdict = feasibility_verdict(graph, f, max_exhaustive_nodes=max_nodes)
        if verdict.status == UNKNOWN:
            raise GraphTooLargeError(
                graph.number_of_nodes, max_nodes, checker="check_feasibility"
            )
        witness = getattr(verdict.certificate, "witness", None)
        return FeasibilityResult(
            satisfied=verdict.status == "FEASIBLE",
            f=f,
            witness=witness,
            method=f"verdict:{verdict.decided_by}",
            reason=verdict.reason,
        )
    n = graph.number_of_nodes
    if not passes_count_screen(n, f):
        return FeasibilityResult(
            satisfied=False,
            f=f,
            method="screen:n>3f",
            reason=f"n = {n} does not exceed 3f = {3 * f} (Corollary 2)",
        )
    if not passes_in_degree_screen(graph, f):
        return FeasibilityResult(
            satisfied=False,
            f=f,
            method="screen:in-degree",
            reason=(
                f"minimum in-degree {minimum_in_degree(graph)} is below "
                f"2f + 1 = {2 * f + 1} (Corollary 3)"
            ),
        )
    if use_structural_shortcuts:
        if is_complete(graph):
            return FeasibilityResult(
                satisfied=True,
                f=f,
                method="structural:complete",
                reason=f"complete graph with n = {n} > 3f = {3 * f}",
            )
        if f > 0 and is_core_network(graph, f):
            return FeasibilityResult(
                satisfied=True,
                f=f,
                method="structural:core-network",
                reason="graph contains a core structure (Definition 4)",
            )
    witness = find_violating_partition(
        graph, f, max_nodes=max_nodes, method=method
    )
    if witness is None:
        return FeasibilityResult(
            satisfied=True,
            f=f,
            method="exhaustive",
            reason="no violating partition exists",
        )
    return FeasibilityResult(
        satisfied=False,
        f=f,
        witness=witness,
        method="exhaustive",
        reason=f"violating partition found: {witness.describe()}",
    )
