"""Witness construction and heuristic witness search.

A *witness* is a partition ``F, L, C, R`` demonstrating that a graph violates
the Theorem-1 condition (or its asynchronous variant).  This module provides

* canonical witnesses for the paper's hand-analysed examples
  (:func:`chord_n7_f2_witness` for the Section-6.3 counter-example,
  :func:`hypercube_dimension_cut_witness` for the Figure-3 partition),
* a randomized witness search (:func:`random_witness_search`) usable on
  graphs too large for the exhaustive checker — it can *disprove* the
  condition by exhibiting a witness but can never prove the condition holds,
* a greedy "grow two insulated islands" heuristic
  (:func:`greedy_witness_search`) that works well on graphs with obvious
  bottleneck cuts (barbells, hypercube dimension cuts).
"""

from __future__ import annotations

import numpy as np

from repro.conditions.bitset import (
    MAX_BITSET_NODES,
    BitsetDigraphView,
    maximal_insulated_subset_mask,
)
from repro.conditions.necessary import (
    maximal_insulated_subset,
    verify_witness,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, PartitionWitness


def _bitset_view(graph: Digraph) -> BitsetDigraphView | None:
    """Return a packed adjacency view for the closure fast path, when it fits."""
    if graph.number_of_nodes <= MAX_BITSET_NODES:
        return BitsetDigraphView(graph)
    return None


def _closure(
    graph: Digraph,
    view: BitsetDigraphView | None,
    pool: frozenset[NodeId],
    universe: frozenset[NodeId],
    threshold: int,
) -> frozenset[NodeId]:
    """Maximal insulated subset of ``pool``, via the bitset kernel when a
    view is available (the closure dominates the witness searches' cost)."""
    if view is None:
        return maximal_insulated_subset(graph, pool, universe, threshold)
    return view.set_of(
        maximal_insulated_subset_mask(
            view, view.mask_of(pool), view.mask_of(universe), threshold
        )
    )


def verify_witness_fast(
    graph: Digraph,
    f: int,
    witness: PartitionWitness,
    threshold: int | None = None,
    view: BitsetDigraphView | None = None,
) -> bool:
    """Return whether ``witness`` is a genuine violating partition, using the
    packed mask closure when a bitset view is available.

    Equivalent to :func:`repro.conditions.necessary.verify_witness` (the
    partition structure is checked, then insulation of ``L`` and ``R``), but
    the insulation checks run as ``closure(X) == X`` fixed-point tests on the
    ``uint64`` masks — a set is insulated exactly when the deletion closure
    leaves it untouched.  Pass a pre-built ``view`` to amortise packing
    across many verifications; graphs beyond ``MAX_BITSET_NODES`` fall back
    to the pure-Python check.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if view is None:
        view = _bitset_view(graph)
    if view is None:
        return verify_witness(graph, f, witness, threshold=threshold)
    if len(witness.faulty) > f:
        return False
    if witness.all_nodes != graph.nodes:
        return False
    effective_threshold = f + 1 if threshold is None else threshold
    universe_mask = view.full_mask & ~view.mask_of(witness.faulty)
    for side in (witness.left, witness.right):
        side_mask = view.mask_of(side)
        closed = maximal_insulated_subset_mask(
            view, side_mask, universe_mask, effective_threshold
        )
        if closed != side_mask:
            return False
    return True


# ---------------------------------------------------------------------------
# Canonical paper witnesses
# ---------------------------------------------------------------------------
def chord_n7_f2_witness() -> PartitionWitness:
    """Return the paper's counter-example for the chord network with
    ``n = 7, f = 2`` (Section 6.3).

    The paper takes nodes 5 and 6 faulty, ``L = {0, 2}`` and ``R = {1, 3, 4}``:
    ``L ⇏ R`` because ``|L| < f + 1 = 3``, and ``R ⇏ L`` because
    ``N⁻_0 ∩ R = {3, 4}`` and ``N⁻_2 ∩ R = {1, 4}`` both have size below 3.
    """
    return PartitionWitness(
        faulty=frozenset({5, 6}),
        left=frozenset({0, 2}),
        center=frozenset(),
        right=frozenset({1, 3, 4}),
    )


def hypercube_dimension_cut_witness(dimension: int, cut_bit: int | None = None) -> PartitionWitness:
    """Return the Figure-3 style witness for the ``dimension``-cube and ``f ≥ 1``.

    Cutting the hypercube along one dimension leaves every node with exactly
    one neighbour on the other side, so with ``F = ∅`` and ``C = ∅`` neither
    half ``⇒`` the other at threshold ``f + 1 ≥ 2``.  By default the highest
    bit is cut, reproducing the paper's ``{0,1,2,3}`` vs ``{4,5,6,7}`` split
    for ``dimension = 3``.
    """
    from repro.graphs.generators import hypercube_dimension_cut

    if dimension < 1:
        raise InvalidParameterError(f"dimension must be >= 1, got {dimension}")
    bit = dimension - 1 if cut_bit is None else cut_bit
    low, high = hypercube_dimension_cut(dimension, bit)
    return PartitionWitness(
        faulty=frozenset(), left=low, center=frozenset(), right=high
    )


# ---------------------------------------------------------------------------
# Heuristic searches
# ---------------------------------------------------------------------------
def _witness_from_left(
    graph: Digraph,
    fault_set: frozenset[NodeId],
    left: frozenset[NodeId],
    threshold: int,
    view: BitsetDigraphView | None = None,
) -> PartitionWitness | None:
    """Try to complete a candidate ``L`` into a full witness for fault set ``F``.

    ``L`` must itself be insulated in ``V − F``; the matching ``R`` is the
    maximal insulated subset of the remainder, and ``C`` is whatever is left.
    Returns ``None`` when no completion exists.
    """
    universe = graph.nodes - fault_set
    if not left or left - universe:
        return None
    outside = universe - left
    if any(graph.in_degree_within(node, outside) >= threshold for node in left):
        return None
    right = _closure(graph, view, outside, universe, threshold)
    if not right:
        return None
    return PartitionWitness(
        faulty=fault_set,
        left=left,
        center=universe - left - right,
        right=right,
    )


def greedy_witness_search(
    graph: Digraph,
    f: int,
    threshold: int | None = None,
    max_seeds: int | None = None,
) -> PartitionWitness | None:
    """Deterministic greedy search for a violating partition.

    For every node ``v`` (as a seed) and every fault set consisting of the
    ``k`` highest-in-degree in-neighbours of ``v`` for each ``k = 0 … f``,
    the search grows ``L`` from ``{v}`` by repeatedly absorbing the
    in-neighbours that prevent ``L`` from being insulated, then tries to
    complete the candidate into a witness.  Every prefix size is tried —
    not just ``k = 0`` and ``k = f`` — because knocking out *too many*
    neighbours can merge the islands a smaller fault set would keep apart.
    The search is sound (every returned witness is verified) but incomplete:
    ``None`` does not prove the condition holds.

    ``max_seeds`` caps the number of seed nodes tried (evenly spaced over the
    ``repr``-sorted node order, so the cap stays deterministic); ``None``
    tries every node.  The verdict stack uses the cap to bound the layer's
    cost on graphs with hundreds of nodes.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if max_seeds is not None and max_seeds < 1:
        raise InvalidParameterError(f"max_seeds must be >= 1, got {max_seeds}")
    effective_threshold = f + 1 if threshold is None else threshold
    nodes = sorted(graph.nodes, key=repr)
    n = len(nodes)
    view = _bitset_view(graph)

    seeds = nodes
    if max_seeds is not None and max_seeds < n:
        stride = n / max_seeds
        seeds = [nodes[int(index * stride)] for index in range(max_seeds)]

    for seed in seeds:
        # Candidate fault sets: every prefix of the seed's in-neighbours
        # sorted by descending in-degree (knocking out well-connected
        # neighbours is the most effective way to isolate the seed).  The
        # pre-fix code only tried the empty set and the full top-f prefix,
        # missing witnesses that need an intermediate fault set.
        neighbor_by_degree = sorted(
            graph.in_neighbors(seed), key=lambda v: (-graph.in_degree(v), repr(v))
        )
        fault_candidates = [frozenset()]
        if f > 0 and neighbor_by_degree:
            fault_candidates.extend(
                frozenset(neighbor_by_degree[:size])
                for size in range(1, min(f, len(neighbor_by_degree)) + 1)
            )
        for fault_set in fault_candidates:
            if seed in fault_set:
                continue
            universe = graph.nodes - fault_set
            left: set[NodeId] = {seed}
            # Absorb offending in-neighbours until L is insulated or too big.
            for _ in range(n):
                outside = universe - left
                offenders = [
                    node
                    for node in left
                    if graph.in_degree_within(node, outside) >= effective_threshold
                ]
                if not offenders:
                    break
                grew = False
                for node in offenders:
                    external = sorted(
                        graph.in_neighbors_within(node, outside), key=repr
                    )
                    needed = (
                        graph.in_degree_within(node, outside)
                        - effective_threshold
                        + 1
                    )
                    for absorb in external[:needed]:
                        left.add(absorb)
                        grew = True
                if not grew:
                    break
            if len(left) >= len(universe):
                continue
            witness = _witness_from_left(
                graph, fault_set, frozenset(left), effective_threshold, view=view
            )
            if witness is not None and verify_witness_fast(
                graph, f, witness, threshold=effective_threshold, view=view
            ):
                return witness
    return None


#: Upper bound on raw RNG draws per requested attempt: duplicate samples are
#: resampled without consuming an attempt, and this factor keeps the resample
#: loop finite on tiny graphs whose sample space is quickly exhausted.
DUPLICATE_DRAW_FACTOR = 8


def random_witness_search(
    graph: Digraph,
    f: int,
    attempts: int = 200,
    threshold: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> PartitionWitness | None:
    """Randomized search for a violating partition.

    Each attempt samples a fault set ``F`` (uniform size ``0 … f``) and a seed
    set ``L₀``, computes the maximal insulated subset of ``V − F`` containing
    the seeds' side, and tries to complete it into a witness.  Sound but
    incomplete; useful on graphs beyond the exhaustive checker's cap.

    Exact duplicates of an earlier ``(F, L₀)`` sample are resampled instead
    of silently burning an attempt (bounded by ``DUPLICATE_DRAW_FACTOR``
    draws per attempt so tiny sample spaces still terminate), and candidate
    witnesses are re-verified through the bitset mask closure when the graph
    fits a :class:`BitsetDigraphView`.  The search stays deterministic for a
    fixed ``rng`` seed.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if attempts < 1:
        raise InvalidParameterError(f"attempts must be >= 1, got {attempts}")
    effective_threshold = f + 1 if threshold is None else threshold
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    nodes = sorted(graph.nodes, key=repr)
    n = len(nodes)
    if n < 2:
        return None
    view = _bitset_view(graph)

    seen: set[tuple[frozenset[NodeId], frozenset[NodeId]]] = set()
    performed = 0
    draws = 0
    max_draws = attempts * DUPLICATE_DRAW_FACTOR
    while performed < attempts and draws < max_draws:
        draws += 1
        fault_size = int(generator.integers(0, f + 1)) if f > 0 else 0
        fault_indices = generator.choice(n, size=fault_size, replace=False)
        fault_set = frozenset(nodes[int(index)] for index in fault_indices)
        universe = graph.nodes - fault_set
        remaining = sorted(universe, key=repr)
        if len(remaining) < 2:
            continue
        # Sample a random bipartition of the remaining nodes; shrink each side
        # to its maximal insulated subset and keep the pair if both survive.
        side_mask = generator.random(len(remaining)) < 0.5
        left_pool = frozenset(
            node for node, flag in zip(remaining, side_mask) if flag
        )
        sample = (fault_set, left_pool)
        if sample in seen:
            continue
        seen.add(sample)
        performed += 1
        right_pool = universe - left_pool
        if not left_pool or not right_pool:
            continue
        left = _closure(graph, view, left_pool, universe, effective_threshold)
        if not left:
            continue
        right = _closure(
            graph, view, universe - left, universe, effective_threshold
        )
        if not right:
            continue
        witness = PartitionWitness(
            faulty=fault_set,
            left=left,
            center=universe - left - right,
            right=right,
        )
        if verify_witness_fast(
            graph, f, witness, threshold=effective_threshold, view=view
        ):
            return witness
    return None
