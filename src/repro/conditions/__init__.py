"""Feasibility-condition machinery: the ``⇒`` relation, propagation,
the Theorem-1 exhaustive checker (bitset-vectorized by default), corollary
screens, the asynchronous variant,
robustness notions from companion work, and witness search."""

from repro.conditions.bitset import (
    MAX_BITSET_NODES,
    BitsetDigraphView,
    find_violating_partition_bitset,
    is_r_robust_bitset,
    is_r_s_robust_bitset,
    maximal_insulated_subset_mask,
    outside_degree_table,
    popcount_u64,
    r_reachable_counts,
    robustness_degree_bitset,
)
from repro.conditions.asynchronous import (
    async_threshold,
    check_async_feasibility,
    find_async_violating_partition,
    passes_async_count_screen,
    passes_async_in_degree_screen,
    satisfies_async_condition,
)
from repro.conditions.necessary import (
    CHECKER_METHODS,
    DEFAULT_MAX_EXACT_NODES,
    check_feasibility,
    find_core_clique,
    find_violating_partition,
    is_core_network,
    maximal_insulated_subset,
    passes_count_screen,
    passes_in_degree_screen,
    satisfies_theorem1,
    verify_witness,
    violates_condition,
)
from repro.conditions.relations import (
    influenced_set,
    influenced_set_f,
    propagates,
    propagates_f,
    propagation_dichotomy,
    propagation_length_bound,
    reaches,
    reaches_f,
)
from repro.conditions.robustness import (
    DEFAULT_MAX_ROBUSTNESS_NODES,
    disjoint_pair_count,
    is_r_robust,
    is_r_s_robust,
    r_reachable_subset,
    robustness_degree,
)
from repro.conditions.witnesses import (
    chord_n7_f2_witness,
    greedy_witness_search,
    hypercube_dimension_cut_witness,
    random_witness_search,
)

__all__ = [
    # relations
    "influenced_set",
    "influenced_set_f",
    "propagates",
    "propagates_f",
    "propagation_dichotomy",
    "propagation_length_bound",
    "reaches",
    "reaches_f",
    # bitset fast path
    "MAX_BITSET_NODES",
    "BitsetDigraphView",
    "find_violating_partition_bitset",
    "is_r_robust_bitset",
    "is_r_s_robust_bitset",
    "maximal_insulated_subset_mask",
    "outside_degree_table",
    "popcount_u64",
    "r_reachable_counts",
    "robustness_degree_bitset",
    # necessary / sufficient condition
    "CHECKER_METHODS",
    "DEFAULT_MAX_EXACT_NODES",
    "check_feasibility",
    "find_core_clique",
    "find_violating_partition",
    "is_core_network",
    "maximal_insulated_subset",
    "passes_count_screen",
    "passes_in_degree_screen",
    "satisfies_theorem1",
    "verify_witness",
    "violates_condition",
    # asynchronous variant
    "async_threshold",
    "check_async_feasibility",
    "find_async_violating_partition",
    "passes_async_count_screen",
    "passes_async_in_degree_screen",
    "satisfies_async_condition",
    # robustness
    "DEFAULT_MAX_ROBUSTNESS_NODES",
    "disjoint_pair_count",
    "is_r_robust",
    "is_r_s_robust",
    "r_reachable_subset",
    "robustness_degree",
    # witnesses
    "chord_n7_f2_witness",
    "greedy_witness_search",
    "hypercube_dimension_cut_witness",
    "random_witness_search",
]
