"""Bitset-vectorized kernels for the exact feasibility and robustness checkers.

The exhaustive Theorem-1 search and the robustness checkers are exponential
enumerations whose inner loops were pure-Python ``frozenset`` algebra: one
``in_degree_within`` call (a hash-set intersection) per node per candidate
set.  This module re-expresses those inner loops as fixed-width bit
arithmetic so the exponential enumerations run at memory bandwidth instead of
interpreter speed:

* :class:`BitsetDigraphView` packs a :class:`~repro.graphs.digraph.Digraph`
  into one ``uint64`` adjacency word per node (node order sorted by ``repr``,
  bit ``j`` of ``in_masks[i]`` set iff ``nodes[j] → nodes[i]``).  The checker
  caps are far below 64 nodes, so a single word per node suffices; the same
  layout generalises to ``ceil(n / 64)`` words should the caps ever pass 64.
* ``|N⁻_v ∩ A|`` — the primitive of every checker — becomes
  ``popcount(in_masks[v] & mask(A))``: one AND plus one population count,
  vectorized across whole blocks of candidate sets with
  :func:`numpy.bitwise_count`.
* The deletion closure behind :func:`maximal_insulated_subset` becomes
  :func:`maximal_insulated_subset_mask` (single candidate, incremental
  ``outside`` mask) and a batched fixed point over a vector of candidate
  pools inside :func:`find_violating_partition_bitset`.
* The ``3^n`` disjoint-pair enumeration behind the robustness checkers is
  replaced by full ``2^n`` per-subset tables (:func:`r_reachable_counts`)
  combined through a subset-sum (SOS) dynamic program, turning the pair
  search into ``O(n · 2^n)`` vector operations.

The public checker APIs in :mod:`repro.conditions.necessary` and
:mod:`repro.conditions.robustness` route here by default
(``method="bitset"``) and keep the legacy pure-Python path as an escape
hatch (``method="python"``) and as the parity oracle for the test suite.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, PartitionWitness

#: Largest node count representable by the single-word mask layout.
MAX_BITSET_NODES = 64

#: Block size (log2) for the vectorized candidate-``L`` enumeration: subsets
#: are evaluated 2^16 at a time, bounding peak memory to a few MB per block.
DEFAULT_BLOCK_BITS = 16

_U64_ONE = np.uint64(1)
_U64_ZERO = np.uint64(0)


if hasattr(np, "bitwise_count"):

    def popcount_u64(words: np.ndarray) -> np.ndarray:
        """Return the per-element population count of a ``uint64`` array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy < 2.0

    _POPCOUNT_TABLE = np.array(
        [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
    )

    def popcount_u64(words: np.ndarray) -> np.ndarray:
        """Return the per-element population count of a ``uint64`` array.

        Fallback for numpy builds without :func:`numpy.bitwise_count`: view
        each 64-bit word as four 16-bit half-words and sum a lookup table.
        """
        halves = np.ascontiguousarray(words).view(np.uint16)
        return (
            _POPCOUNT_TABLE[halves]
            .reshape(*words.shape, 4)
            .sum(axis=-1, dtype=np.uint8)
        )


class BitsetDigraphView:
    """Packed-``uint64`` adjacency view of a :class:`Digraph`.

    Nodes are assigned bit indices ``0 … n − 1`` in ``repr``-sorted order
    (the same canonical order the legacy checkers enumerate in, so witnesses
    found by the two paths coincide).  ``in_mask_ints[i]`` is a Python int
    whose bit ``j`` is set iff ``nodes[j] → nodes[i]``; ``in_masks`` is the
    same data as a ``(n,)`` ``uint64`` array for vectorized kernels.
    """

    __slots__ = ("nodes", "index", "n", "in_mask_ints", "in_masks", "in_degrees", "full_mask")

    def __init__(self, graph: Digraph) -> None:
        nodes = tuple(sorted(graph.nodes, key=repr))
        n = len(nodes)
        if n > MAX_BITSET_NODES:
            raise InvalidParameterError(
                f"BitsetDigraphView packs masks into single 64-bit words and "
                f"supports at most {MAX_BITSET_NODES} nodes, got n = {n}"
            )
        index = {node: position for position, node in enumerate(nodes)}
        in_mask_ints: list[int] = []
        for node in nodes:
            mask = 0
            for predecessor in graph.in_neighbors(node):
                mask |= 1 << index[predecessor]
            in_mask_ints.append(mask)
        self.nodes = nodes
        self.index = index
        self.n = n
        self.in_mask_ints = in_mask_ints
        self.in_masks = np.array(in_mask_ints, dtype=np.uint64)
        self.in_degrees = np.array(
            [mask.bit_count() for mask in in_mask_ints], dtype=np.int32
        )
        self.full_mask = (1 << n) - 1

    def mask_of(self, nodes: Iterable[NodeId]) -> int:
        """Return the bitmask encoding ``nodes`` (each must be in the graph)."""
        mask = 0
        for node in nodes:
            try:
                mask |= 1 << self.index[node]
            except KeyError:
                raise InvalidParameterError(
                    f"node {node!r} is not in the bitset view"
                ) from None
        return mask

    def set_of(self, mask: int) -> frozenset[NodeId]:
        """Return the node set encoded by ``mask`` (inverse of :meth:`mask_of`)."""
        members = []
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            members.append(self.nodes[low.bit_length() - 1])
        return frozenset(members)


# ---------------------------------------------------------------------------
# Deletion-closure kernels
# ---------------------------------------------------------------------------
def maximal_insulated_subset_mask(
    view: BitsetDigraphView,
    pool_mask: int,
    universe_mask: int,
    threshold: int,
) -> int:
    """Mask form of :func:`repro.conditions.necessary.maximal_insulated_subset`.

    Repeatedly deletes from ``pool_mask`` any node with ``≥ threshold``
    in-neighbours in ``universe_mask − current``; the ``outside`` mask is
    updated incrementally (one OR per deletion) instead of being rebuilt, so
    the closure is linear in deletions times scan width.
    """
    current = pool_mask
    in_masks = view.in_mask_ints
    changed = True
    while changed and current:
        changed = False
        outside = universe_mask & ~current
        scan = current
        while scan:
            low = scan & -scan
            scan ^= low
            if (in_masks[low.bit_length() - 1] & outside).bit_count() >= threshold:
                current ^= low
                outside |= universe_mask & low
                changed = True
    return current


def _batched_closure(
    compact_in: np.ndarray,
    pools: np.ndarray,
    universe_mask: int,
    threshold: int,
) -> np.ndarray:
    """Run the deletion closure on a whole vector of candidate pools at once.

    ``compact_in`` holds one in-neighbour word per node; ``pools`` is a
    ``(B,)`` ``uint64`` vector of candidate masks sharing ``universe_mask``.
    Each sweep deletes, simultaneously across the batch, every node that
    currently receives ``≥ threshold`` values from outside its pool; the
    deletion closure is confluent, so the batched fixed point equals the
    sequential one.
    """
    current = pools.copy()
    universe = np.uint64(universe_mask)
    node_count = len(compact_in)
    while True:
        outside = universe & ~current
        remove = np.zeros_like(current)
        for position in range(node_count):
            bit = np.uint64(1 << position)
            member = (current & bit) != _U64_ZERO
            offending = popcount_u64(compact_in[position] & outside) >= threshold
            remove |= np.where(member & offending, bit, _U64_ZERO)
        if not remove.any():
            return current
        current &= ~remove


# ---------------------------------------------------------------------------
# Exhaustive Theorem-1 search
# ---------------------------------------------------------------------------
def _search_fault_set(
    compact_in: np.ndarray,
    count: int,
    threshold: int,
    block_bits: int,
) -> tuple[int, int] | None:
    """Search one fault set's ``2^count`` candidate ``L`` masks for a witness.

    Candidate masks are evaluated in ascending order in blocks of
    ``2^block_bits``: a block-wide insulation test (one masked popcount per
    node), then the batched closure on the survivors' complements.  Returns
    the first ``(left_mask, right_mask)`` pair (matching the legacy search
    order exactly) or ``None``.
    """
    full = (1 << count) - 1
    full_word = np.uint64(full)
    block = 1 << min(block_bits, count)
    for start in range(1, full, block):
        stop = min(start + block, full)
        masks = np.arange(start, stop, dtype=np.uint64)
        outside = full_word & ~masks
        insulated = np.ones(masks.shape, dtype=bool)
        for position in range(count):
            member = (masks >> np.uint64(position)) & _U64_ONE != _U64_ZERO
            offending = (
                popcount_u64(compact_in[position] & outside) >= threshold
            )
            insulated &= ~(member & offending)
        if not insulated.any():
            continue
        candidates = masks[insulated]
        pools = full_word & ~candidates
        closed = _batched_closure(compact_in, pools, full, threshold)
        viable = np.nonzero(closed)[0]
        if viable.size:
            first = viable[0]
            return int(candidates[first]), int(closed[first])
    return None


def find_violating_partition_bitset(
    graph: Digraph | BitsetDigraphView,
    f: int,
    threshold: int | None = None,
    block_bits: int = DEFAULT_BLOCK_BITS,
) -> PartitionWitness | None:
    """Bitset fast path of :func:`repro.conditions.necessary.find_violating_partition`.

    Enumerates fault sets in the legacy order (sizes ``0 … f``, nodes sorted
    by ``repr``) and, per fault set, sweeps the ``2^{n−|F|}`` candidate ``L``
    masks with :func:`_search_fault_set`.  Returns the same witness the
    legacy search would return (the search order and the uniqueness of the
    closure fixed point make the two paths pick identical partitions), or
    ``None`` when the condition holds.  Node-count caps are enforced by the
    public wrapper; this function only requires ``n ≤ MAX_BITSET_NODES``.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    view = graph if isinstance(graph, BitsetDigraphView) else BitsetDigraphView(graph)
    n = view.n
    if n < 2:
        return None
    effective_threshold = f + 1 if threshold is None else threshold
    for size in range(min(f, n) + 1):
        for combo in combinations(range(n), size):
            fault_mask = 0
            for position in combo:
                fault_mask |= 1 << position
            remaining = [
                position
                for position in range(n)
                if not (fault_mask >> position) & 1
            ]
            count = len(remaining)
            if count < 2:
                continue
            # Re-index the surviving nodes' in-masks onto compact bits
            # 0 … count−1 (in-neighbours inside F never count towards the
            # threshold because the universe is V − F).
            compact_in = np.empty(count, dtype=np.uint64)
            for compact_pos, global_pos in enumerate(remaining):
                source_mask = view.in_mask_ints[global_pos] & ~fault_mask
                compact = 0
                for other_pos, other_global in enumerate(remaining):
                    if (source_mask >> other_global) & 1:
                        compact |= 1 << other_pos
                compact_in[compact_pos] = compact
            found = _search_fault_set(
                compact_in, count, effective_threshold, block_bits
            )
            if found is None:
                continue
            left_mask, right_mask = found
            left = frozenset(
                view.nodes[remaining[position]]
                for position in range(count)
                if (left_mask >> position) & 1
            )
            right = frozenset(
                view.nodes[remaining[position]]
                for position in range(count)
                if (right_mask >> position) & 1
            )
            faulty = frozenset(view.nodes[position] for position in combo)
            center = (
                frozenset(view.nodes[position] for position in remaining)
                - left
                - right
            )
            return PartitionWitness(
                faulty=faulty, left=left, center=center, right=right
            )
    return None


# ---------------------------------------------------------------------------
# Robustness kernels (full 2^n subset tables + subset-sum DP)
# ---------------------------------------------------------------------------
def outside_degree_table(view: BitsetDigraphView) -> np.ndarray:
    """Return the ``(n, 2^n)`` table of per-node outside-degrees by subset.

    ``table[i, mask]`` is ``|N⁻(nodes[i]) \\ S|`` when ``nodes[i] ∈ S`` (for
    ``S = set_of(mask)``) and ``−1`` otherwise, so thresholding with
    ``table >= r`` directly yields r-reachability membership for any
    ``r ≥ 1``.  The table does not depend on ``r`` — this is the dominant
    masked-popcount work of the robustness checkers, computed once and
    reused across every ``r`` (``robustness_degree`` probes up to
    ``⌈n/2⌉`` values).  ``int8`` suffices: degrees stay below the 64-node
    mask width.
    """
    n = view.n
    all_masks = np.arange(1 << n, dtype=np.uint64)
    table = np.empty((n, 1 << n), dtype=np.int8)
    for position in range(n):
        member = (all_masks >> np.uint64(position)) & _U64_ONE != _U64_ZERO
        inside = popcount_u64(all_masks & np.uint64(view.in_mask_ints[position]))
        outside_degree = view.in_degrees[position] - inside.astype(np.int16)
        np.copyto(table[position], outside_degree.astype(np.int8))
        table[position][~member] = -1
    return table


def r_reachable_counts(
    view: BitsetDigraphView, r: int, table: np.ndarray | None = None
) -> np.ndarray:
    """Return ``|X_S^r|`` for **every** subset ``S``, indexed by mask.

    ``counts[mask]`` is the number of nodes of ``S = set_of(mask)`` with at
    least ``r`` in-neighbours outside ``S`` — the size of the r-reachable
    subset ``X_S^r``.  Pass a precomputed :func:`outside_degree_table` to
    amortise the popcount passes across multiple ``r`` values.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    if table is None:
        table = outside_degree_table(view)
    return (table >= r).sum(axis=0, dtype=np.int32)


def _subset_or(flags: np.ndarray, n: int) -> np.ndarray:
    """Subset-sum DP (OR): result[X] is true iff some ``S ⊆ X`` has flags[S]."""
    accumulated = flags.copy()
    for bit in range(n):
        planes = accumulated.reshape(-1, 2, 1 << bit)
        planes[:, 1, :] |= planes[:, 0, :]
    return accumulated


def _subset_min(values: np.ndarray, n: int) -> np.ndarray:
    """Subset-sum DP (min): result[X] is ``min over S ⊆ X of values[S]``."""
    accumulated = values.copy()
    for bit in range(n):
        planes = accumulated.reshape(-1, 2, 1 << bit)
        np.minimum(planes[:, 1, :], planes[:, 0, :], out=planes[:, 1, :])
    return accumulated


def is_r_robust_bitset(
    view: BitsetDigraphView, r: int, table: np.ndarray | None = None
) -> bool:
    """Bitset fast path of :func:`repro.conditions.robustness.is_r_robust`.

    The graph fails to be r-robust exactly when two disjoint non-empty
    subsets are both non-r-reachable.  With the per-subset table of
    :func:`r_reachable_counts`, the pair search reduces to: does any
    non-reachable ``S`` have a non-empty non-reachable subset inside its
    complement?  The latter is answered for all complements at once by the
    subset-OR dynamic program — ``O(n · 2^n)`` vector operations instead of
    ``3^n`` Python-set decodes.  ``table`` optionally reuses a precomputed
    :func:`outside_degree_table` across ``r`` values.
    """
    n = view.n
    if n < 2:
        return True
    non_reachable = r_reachable_counts(view, r, table=table) == 0
    non_reachable[0] = False
    if not non_reachable.any():
        return True
    has_bad_subset = _subset_or(non_reachable, n)
    bad_masks = np.nonzero(non_reachable)[0]
    complements = view.full_mask - bad_masks
    return not has_bad_subset[complements].any()


#: Sentinel larger than any attainable ``|X_S^r|`` sum, used by the
#: (r, s)-robustness score tables.
_UNREACHABLE_SCORE = np.int32(1 << 20)


def is_r_s_robust_bitset(view: BitsetDigraphView, r: int, s: int) -> bool:
    """Bitset fast path of :func:`repro.conditions.robustness.is_r_s_robust`.

    A pair ``(S₁, S₂)`` refutes (r, s)-robustness when both sides are only
    partially r-reachable and their reachable counts sum below ``s``.  Each
    subset gets a score — ``|X_S^r|`` when ``|X_S^r| < |S|``, +∞ otherwise —
    and the subset-min dynamic program finds, for every complement, the best
    partner score; a refuting pair exists iff some score plus its
    complement's best partner stays below ``s``.
    """
    if s < 1:
        raise InvalidParameterError(f"s must be >= 1, got {s}")
    n = view.n
    if n < 2:
        return True
    counts = r_reachable_counts(view, r)
    sizes = popcount_u64(np.arange(1 << n, dtype=np.uint64)).astype(np.int32)
    scores = np.where(
        (sizes > 0) & (counts < sizes), counts, _UNREACHABLE_SCORE
    ).astype(np.int32)
    best_partner = _subset_min(scores, n)
    partial = np.nonzero(scores < _UNREACHABLE_SCORE)[0]
    if not partial.size:
        return True
    complements = view.full_mask - partial
    return not np.any(scores[partial] + best_partner[complements] < s)


def robustness_degree_bitset(view: BitsetDigraphView) -> int:
    """Bitset fast path of :func:`repro.conditions.robustness.robustness_degree`.

    The r-independent outside-degree table is computed once and shared by
    every probe of the ascending-``r`` loop.
    """
    n = view.n
    if n < 2:
        return 0
    table = outside_degree_table(view)
    best = 0
    for r in range(1, (n + 1) // 2 + 1):
        if is_r_robust_bitset(view, r, table=table):
            best = r
        else:
            break
    return best
