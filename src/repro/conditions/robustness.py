"""Graph robustness notions from the companion literature.

The paper's related-work section cites Zhang & Sundaram [18] and LeBlanc,
Zhang, Sundaram & Koutsoukos [11, 17], whose characterisations of resilient
consensus use *r-robustness* and *(r, s)-robustness*.  We implement both so
that the benchmark harness can compare the Theorem-1 condition with
``(f + 1, f + 1)``-robustness on the paper's graph families (experiment E11).

Definitions (for a digraph ``G`` with in-neighbour sets ``N⁻``):

* For a node set ``S``, the *r-reachable* subset
  ``X_S^r = { v ∈ S : |N⁻_v \\ S| ≥ r }`` — the nodes of ``S`` with at least
  ``r`` in-neighbours outside ``S``.
* ``G`` is *r-robust* if for every pair of non-empty disjoint node sets
  ``S₁, S₂`` at least one of them is r-reachable (contains a node with ``≥ r``
  in-neighbours outside its own set).
* ``G`` is *(r, s)-robust* if for every pair of non-empty disjoint node sets
  ``S₁, S₂`` at least one of the following holds:
  ``|X_{S₁}^r| = |S₁|``, ``|X_{S₂}^r| = |S₂|``, or
  ``|X_{S₁}^r| + |X_{S₂}^r| ≥ s``.

Both checks are exhaustive (exponential in ``n``) like the exact Theorem-1
checker and validate the same node-count cap up front.  The default path
(``method="bitset"``) evaluates per-subset reachability tables with the
vectorized kernels of :mod:`repro.conditions.bitset`; the legacy pure-Python
pair enumeration stays available via ``method="python"`` and enumerates only
canonical pairs (the smallest participating node pinned to ``S₁``) instead
of decoding all ``3^n`` assignments and discarding the symmetric half.
"""

from __future__ import annotations

from typing import Iterator

from repro.conditions.bitset import (
    MAX_BITSET_NODES,
    BitsetDigraphView,
    is_r_robust_bitset,
    is_r_s_robust_bitset,
    robustness_degree_bitset,
)
from repro.conditions.necessary import _validate_method, _validate_size
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId

# The bitset path builds 2^n per-subset tables (a few MB of vectors at
# n = 20) instead of decoding 3^n base-3 assignments in Python, so the cap
# rises from the pure-Python ceiling of 14 accordingly.
DEFAULT_MAX_ROBUSTNESS_NODES = 20


def r_reachable_subset(graph: Digraph, node_set: frozenset[NodeId], r: int) -> frozenset[NodeId]:
    """Return ``X_S^r``: the nodes of ``node_set`` with at least ``r``
    in-neighbours outside ``node_set``."""
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    outside = graph.nodes - node_set
    return frozenset(
        node
        for node in node_set
        if graph.in_degree_within(node, outside) >= r
    )


def disjoint_pair_count(n: int) -> int:
    """Return the number of unordered pairs of non-empty disjoint subsets of
    an ``n``-element set: ``(3^n − 2^{n+1} + 1) / 2``.

    (Ordered pairs by inclusion–exclusion: ``3^n`` three-way assignments
    minus ``2^n`` each for an empty side, plus the doubly-empty assignment;
    halve for unordered.)  :func:`_iter_disjoint_pairs` yields exactly this
    many pairs — asserted by the test suite.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    return (3**n - 2 ** (n + 1) + 1) // 2


def _iter_disjoint_pairs(
    nodes: tuple[NodeId, ...]
) -> Iterator[tuple[frozenset[NodeId], frozenset[NodeId]]]:
    """Yield every unordered pair of non-empty disjoint subsets ``(S1, S2)``.

    Pairs are generated canonically: the smallest participating node (in the
    given ``nodes`` order) is pinned to ``S1``, and only the nodes after it
    receive a three-way assignment (neither / S1 / S2).  This enumerates
    ``Σ_p 3^{n−1−p}`` assignments — about half the naive ``3^n`` decode that
    produced every pair twice and then discarded the symmetric copies — and
    skips only the ``S2 = ∅`` assignments (a vanishing ``(2/3)^k`` fraction).
    """
    n = len(nodes)
    for pivot in range(n):
        rest = nodes[pivot + 1 :]
        width = len(rest)
        for code in range(3**width):
            s1 = [nodes[pivot]]
            s2: list[NodeId] = []
            assignment = code
            for index in range(width):
                digit = assignment % 3
                assignment //= 3
                if digit == 1:
                    s1.append(rest[index])
                elif digit == 2:
                    s2.append(rest[index])
            if not s2:
                continue
            yield frozenset(s1), frozenset(s2)


def is_r_robust(
    graph: Digraph,
    r: int,
    max_nodes: int = DEFAULT_MAX_ROBUSTNESS_NODES,
    method: str = "bitset",
) -> bool:
    """Return whether ``graph`` is r-robust (exhaustive check).

    ``method="bitset"`` (default) answers via per-subset reachability tables
    and a subset-sum dynamic program; ``method="python"`` runs the legacy
    canonical pair enumeration.  Both validate the node cap up front.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    _validate_method(method)
    nodes = tuple(sorted(graph.nodes, key=repr))
    _validate_size(len(nodes), max_nodes, "is_r_robust")
    if len(nodes) < 2:
        return True
    if method == "bitset" and len(nodes) <= MAX_BITSET_NODES:
        return is_r_robust_bitset(BitsetDigraphView(graph), r)
    for s1, s2 in _iter_disjoint_pairs(nodes):
        if not r_reachable_subset(graph, s1, r) and not r_reachable_subset(
            graph, s2, r
        ):
            return False
    return True


def is_r_s_robust(
    graph: Digraph,
    r: int,
    s: int,
    max_nodes: int = DEFAULT_MAX_ROBUSTNESS_NODES,
    method: str = "bitset",
) -> bool:
    """Return whether ``graph`` is (r, s)-robust (exhaustive check).

    Same execution paths and up-front cap validation as :func:`is_r_robust`.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    if s < 1:
        raise InvalidParameterError(f"s must be >= 1, got {s}")
    _validate_method(method)
    nodes = tuple(sorted(graph.nodes, key=repr))
    _validate_size(len(nodes), max_nodes, "is_r_s_robust")
    if len(nodes) < 2:
        return True
    if method == "bitset" and len(nodes) <= MAX_BITSET_NODES:
        return is_r_s_robust_bitset(BitsetDigraphView(graph), r, s)
    for s1, s2 in _iter_disjoint_pairs(nodes):
        reach1 = r_reachable_subset(graph, s1, r)
        if len(reach1) == len(s1):
            continue
        reach2 = r_reachable_subset(graph, s2, r)
        if len(reach2) == len(s2):
            continue
        if len(reach1) + len(reach2) >= s:
            continue
        return False
    return True


def robustness_degree(
    graph: Digraph,
    max_nodes: int = DEFAULT_MAX_ROBUSTNESS_NODES,
    method: str = "bitset",
) -> int:
    """Return the largest ``r`` such that ``graph`` is r-robust.

    By convention the result is 0 for graphs that are not even 1-robust
    (disconnected in the robustness sense).  The maximum meaningful value is
    ``⌈n / 2⌉``, attained by complete graphs.
    """
    _validate_method(method)
    nodes = tuple(sorted(graph.nodes, key=repr))
    n = len(nodes)
    _validate_size(n, max_nodes, "robustness_degree")
    if n < 2:
        return 0
    if method == "bitset" and n <= MAX_BITSET_NODES:
        return robustness_degree_bitset(BitsetDigraphView(graph))
    best = 0
    upper = (n + 1) // 2
    for r in range(1, upper + 1):
        if is_r_robust(graph, r, max_nodes=max_nodes, method=method):
            best = r
        else:
            break
    return best
