"""Graph robustness notions from the companion literature.

The paper's related-work section cites Zhang & Sundaram [18] and LeBlanc,
Zhang, Sundaram & Koutsoukos [11, 17], whose characterisations of resilient
consensus use *r-robustness* and *(r, s)-robustness*.  We implement both so
that the benchmark harness can compare the Theorem-1 condition with
``(f + 1, f + 1)``-robustness on the paper's graph families (experiment E11).

Definitions (for a digraph ``G`` with in-neighbour sets ``N⁻``):

* For a node set ``S``, the *r-reachable* subset
  ``X_S^r = { v ∈ S : |N⁻_v \\ S| ≥ r }`` — the nodes of ``S`` with at least
  ``r`` in-neighbours outside ``S``.
* ``G`` is *r-robust* if for every pair of non-empty disjoint node sets
  ``S₁, S₂`` at least one of them is r-reachable (contains a node with ``≥ r``
  in-neighbours outside its own set).
* ``G`` is *(r, s)-robust* if for every pair of non-empty disjoint node sets
  ``S₁, S₂`` at least one of the following holds:
  ``|X_{S₁}^r| = |S₁|``, ``|X_{S₂}^r| = |S₂|``, or
  ``|X_{S₁}^r| + |X_{S₂}^r| ≥ s``.

Both checks are exhaustive (exponential in ``n``) like the exact Theorem-1
checker, and guarded by the same node-count cap.
"""

from __future__ import annotations

from repro.exceptions import GraphTooLargeError, InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId

DEFAULT_MAX_ROBUSTNESS_NODES = 14


def r_reachable_subset(graph: Digraph, node_set: frozenset[NodeId], r: int) -> frozenset[NodeId]:
    """Return ``X_S^r``: the nodes of ``node_set`` with at least ``r``
    in-neighbours outside ``node_set``."""
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    outside = graph.nodes - node_set
    return frozenset(
        node
        for node in node_set
        if graph.in_degree_within(node, outside) >= r
    )


def _iter_disjoint_pairs(nodes: tuple[NodeId, ...]):
    """Yield every unordered pair of non-empty disjoint subsets ``(S1, S2)``.

    Each node is assigned to S1, S2 or neither (3^n assignments); unordered
    pairs are produced once by requiring the smallest participating node to be
    in S1.
    """
    n = len(nodes)
    # Iterate assignments as base-3 numbers: digit 0 = neither, 1 = S1, 2 = S2.
    total = 3**n
    for code in range(total):
        assignment = code
        s1: list[NodeId] = []
        s2: list[NodeId] = []
        first_participant_side = 0
        for index in range(n):
            digit = assignment % 3
            assignment //= 3
            if digit == 1:
                if first_participant_side == 0:
                    first_participant_side = 1
                s1.append(nodes[index])
            elif digit == 2:
                if first_participant_side == 0:
                    first_participant_side = 2
                s2.append(nodes[index])
        if not s1 or not s2:
            continue
        if first_participant_side == 2:
            # The symmetric assignment with S1/S2 swapped is (or was)
            # enumerated separately; skip to avoid double work.
            continue
        yield frozenset(s1), frozenset(s2)


def is_r_robust(
    graph: Digraph, r: int, max_nodes: int = DEFAULT_MAX_ROBUSTNESS_NODES
) -> bool:
    """Return whether ``graph`` is r-robust (exhaustive check)."""
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    nodes = tuple(sorted(graph.nodes, key=repr))
    if len(nodes) > max_nodes:
        raise GraphTooLargeError(len(nodes), max_nodes)
    if len(nodes) < 2:
        return True
    for s1, s2 in _iter_disjoint_pairs(nodes):
        if not r_reachable_subset(graph, s1, r) and not r_reachable_subset(
            graph, s2, r
        ):
            return False
    return True


def is_r_s_robust(
    graph: Digraph,
    r: int,
    s: int,
    max_nodes: int = DEFAULT_MAX_ROBUSTNESS_NODES,
) -> bool:
    """Return whether ``graph`` is (r, s)-robust (exhaustive check)."""
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    if s < 1:
        raise InvalidParameterError(f"s must be >= 1, got {s}")
    nodes = tuple(sorted(graph.nodes, key=repr))
    if len(nodes) > max_nodes:
        raise GraphTooLargeError(len(nodes), max_nodes)
    if len(nodes) < 2:
        return True
    for s1, s2 in _iter_disjoint_pairs(nodes):
        reach1 = r_reachable_subset(graph, s1, r)
        if len(reach1) == len(s1):
            continue
        reach2 = r_reachable_subset(graph, s2, r)
        if len(reach2) == len(s2):
            continue
        if len(reach1) + len(reach2) >= s:
            continue
        return False
    return True


def robustness_degree(
    graph: Digraph, max_nodes: int = DEFAULT_MAX_ROBUSTNESS_NODES
) -> int:
    """Return the largest ``r`` such that ``graph`` is r-robust.

    By convention the result is 0 for graphs that are not even 1-robust
    (disconnected in the robustness sense).  The maximum meaningful value is
    ``⌈n / 2⌉``, attained by complete graphs.
    """
    nodes = tuple(sorted(graph.nodes, key=repr))
    n = len(nodes)
    if n > max_nodes:
        raise GraphTooLargeError(n, max_nodes)
    if n < 2:
        return 0
    best = 0
    upper = (n + 1) // 2
    for r in range(1, upper + 1):
        if is_r_robust(graph, r, max_nodes=max_nodes):
            best = r
        else:
            break
    return best
