"""Exact constraint-solving backends for the Theorem-1 violation search.

The exhaustive checkers in :mod:`repro.conditions.necessary` and
:mod:`repro.conditions.bitset` enumerate all ``2^{n-|F|}`` candidate ``L``
sets per fault set, which caps them near ``n = 24``.  This module reframes
the search as a constraint-satisfaction problem — assign each non-faulty
node one of the labels ``L``, ``R``, ``C`` so that both ``L`` and ``R`` are
non-empty *insulated* sets — and solves it with backtracking backends that
prune instead of enumerating:

* :func:`exact_violation_search` — the public entry point, returning an
  :class:`ExactSearchResult` with a verified witness, a ``satisfied``
  verdict, or ``unknown`` when the decision budget runs out.
* A built-in DPLL-style solver (``backend="dpll"``) with unit propagation on
  per-node outside-degree counters, label-domain pruning, swap-symmetry
  breaking, and a trail-based undo stack.  Pure Python, always available.
* Optional SAT (``backend="pysat"``) and MILP (``backend="pulp"``) backends
  that encode the whole problem — fault selection included — as one solver
  call.  Both are gated on their third-party imports and skipped cleanly
  when the solver package is absent; see :func:`available_backends`.

Fault-set reduction
-------------------
The DPLL backend enumerates only fault sets of the single size
``k = min(f, n - 2)`` instead of all sizes ``0 … f``.  This is complete
because any witness with ``|F| = s < k`` extends to one with ``|F| = k``:
moving a node of ``C`` into ``F`` shrinks the universe, which can only
shrink the outside in-degree of the remaining ``L`` and ``R`` members, and
moving a member of ``L`` (or ``R``) into ``F`` leaves that side's outside
set unchanged while shrinking the other side's — so insulation is preserved
as long as each side keeps one member, and ``|C| + |L| - 1 + |R| - 1 =
(n - s) - 2 ≥ k - s`` nodes are movable.

All backends are parity-tested against the bitset checker on graphs within
its cap; any witness a backend produces is re-verified with
:func:`repro.conditions.necessary.verify_witness` before being returned, so
an encoding bug can only surface as an explicit
:class:`~repro.exceptions.ConditionCheckError`, never as a bogus verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import util as _importlib_util
from itertools import combinations

from repro.conditions.necessary import verify_witness
from repro.exceptions import (
    ConditionCheckError,
    GraphTooLargeError,
    InvalidParameterError,
)
from repro.graphs.digraph import Digraph
from repro.types import NodeId, PartitionWitness

#: Node-count cap for the exact backends.  The DPLL solver prunes far better
#: than the enumerative checkers, so its cap sits above
#: ``DEFAULT_MAX_EXACT_NODES`` (24) — but it is still worst-case exponential,
#: hence a cap at all.
DEFAULT_MAX_EXACT_BACKEND_NODES = 32

#: Default decision budget for the DPLL backend.  Exceeding it yields an
#: ``unknown`` result instead of an open-ended search.
DEFAULT_DECISION_BUDGET = 250_000

#: Backend names accepted by :func:`exact_violation_search`, in the
#: preference order used by ``backend="auto"``.
EXACT_BACKENDS = ("pysat", "pulp", "dpll")

_LABEL_L, _LABEL_R, _LABEL_C = 1, 2, 3
_DOMAIN_BIT = {_LABEL_L: 1, _LABEL_R: 2, _LABEL_C: 4}
_DOMAIN_ALL = 7
_DOMAIN_C_ONLY = 4


@dataclass(frozen=True)
class ExactSearchResult:
    """Outcome of one :func:`exact_violation_search` call.

    ``status`` is ``"violation"`` (a verified witness was found),
    ``"satisfied"`` (the search space was exhausted without one — an exact
    negative), or ``"unknown"`` (the decision budget ran out first).
    ``decisions`` counts DPLL branch points (0 for the solver backends);
    ``fault_sets_examined`` counts fully-searched fault sets.
    """

    status: str
    backend: str
    witness: PartitionWitness | None = None
    decisions: int = 0
    fault_sets_examined: int = 0
    reason: str = ""


def available_backends() -> tuple[str, ...]:
    """Return the usable backend names in ``auto``-preference order.

    ``"dpll"`` is always present; ``"pysat"`` and ``"pulp"`` appear only when
    the corresponding optional package is importable.  The import probe uses
    :func:`importlib.util.find_spec`, so merely listing backends never pays a
    solver start-up cost.
    """
    names: list[str] = []
    if _importlib_util.find_spec("pysat") is not None:
        names.append("pysat")
    if _importlib_util.find_spec("pulp") is not None:
        names.append("pulp")
    names.append("dpll")
    return tuple(names)


def _resolve_backend(backend: str) -> str:
    """Map ``backend`` (possibly ``"auto"``) to a concrete usable backend."""
    if backend == "auto":
        return available_backends()[0]
    if backend not in EXACT_BACKENDS:
        known = ", ".join(repr(name) for name in ("auto", *EXACT_BACKENDS))
        raise InvalidParameterError(
            f"unknown exact backend {backend!r}; expected one of {known}"
        )
    if backend != "dpll" and _importlib_util.find_spec(backend) is None:
        raise InvalidParameterError(
            f"exact backend {backend!r} requires the optional package "
            f"{backend!r}, which is not installed"
        )
    return backend


class _BudgetExceeded(Exception):
    """Internal signal: the DPLL decision budget ran out."""


class _UniverseSolver:
    """DPLL search for a violating bipartition inside one universe ``W``.

    Nodes are compact indices ``0 … m − 1``; ``in_nbrs``/``out_nbrs`` list
    each node's in-/out-neighbours *within the universe*.  A solution is an
    assignment of every node to ``L``/``R``/``C`` with non-empty ``L`` and
    ``R`` where every ``L`` node has fewer than ``tau`` in-neighbours
    assigned outside ``L``, and symmetrically for ``R``.

    The solver keeps, per node ``x``, the counters ``not_l[x]`` /
    ``not_r[x]`` (in-neighbours already assigned a label other than
    ``L``/``R``).  Crossing ``tau`` removes the corresponding label from the
    node's domain (conflict if already assigned that label); a domain
    reduced to ``{C}`` auto-assigns ``C``, cascading through the counters.
    All mutations are recorded on a trail for O(1) backtracking.
    """

    def __init__(
        self,
        in_nbrs: list[tuple[int, ...]],
        out_nbrs: list[tuple[int, ...]],
        tau: int,
        budget: dict[str, int],
    ) -> None:
        self.in_nbrs = in_nbrs
        self.out_nbrs = out_nbrs
        self.m = len(in_nbrs)
        self.tau = tau
        self.budget = budget
        self.assigned = [0] * self.m
        self.allowed = [_DOMAIN_ALL] * self.m
        self.not_l = [0] * self.m
        self.not_r = [0] * self.m

    # Trail ops: (0, x, _) assignment, (1, y, _) not_l bump, (2, y, _)
    # not_r bump, (3, x, old) domain change.
    def _undo(self, trail: list[tuple[int, int, int]], mark: int) -> None:
        """Roll state back to trail position ``mark``."""
        while len(trail) > mark:
            kind, node, payload = trail.pop()
            if kind == 0:
                self.assigned[node] = 0
            elif kind == 1:
                self.not_l[node] -= 1
            elif kind == 2:
                self.not_r[node] -= 1
            else:
                self.allowed[node] = payload

    def _restrict(
        self, node: int, bit: int, trail: list, queue: list
    ) -> bool:
        """Remove domain ``bit`` from ``node``; auto-assign ``C`` if forced.

        Returns ``False`` on conflict (the node is already assigned the
        removed label).
        """
        label = _LABEL_L if bit == 1 else _LABEL_R
        if self.assigned[node] == label:
            return False
        if self.assigned[node] == 0 and self.allowed[node] & bit:
            trail.append((3, node, self.allowed[node]))
            self.allowed[node] &= ~bit
            if self.allowed[node] == _DOMAIN_C_ONLY:
                queue.append((node, _LABEL_C))
        return True

    def assign(self, node: int, label: int, trail: list) -> bool:
        """Assign ``node := label`` and propagate; ``False`` on conflict.

        The caller is responsible for undoing the trail on failure.
        """
        queue = [(node, label)]
        while queue:
            current, value = queue.pop()
            if self.assigned[current]:
                if self.assigned[current] != value:
                    return False
                continue
            if not self.allowed[current] & _DOMAIN_BIT[value]:
                return False
            self.assigned[current] = value
            trail.append((0, current, 0))
            if value != _LABEL_L:
                for successor in self.out_nbrs[current]:
                    self.not_l[successor] += 1
                    trail.append((1, successor, 0))
                    if self.not_l[successor] == self.tau:
                        if not self._restrict(successor, 1, trail, queue):
                            return False
            if value != _LABEL_R:
                for successor in self.out_nbrs[current]:
                    self.not_r[successor] += 1
                    trail.append((2, successor, 0))
                    if self.not_r[successor] == self.tau:
                        if not self._restrict(successor, 2, trail, queue):
                            return False
        return True

    def _dfs(self, trail: list) -> bool:
        """Depth-first search over the remaining unassigned nodes."""
        pivot = -1
        for node in range(self.m):
            if not self.assigned[node]:
                pivot = node
                break
        if pivot < 0:
            return True
        self.budget["decisions"] += 1
        if self.budget["decisions"] > self.budget["limit"]:
            raise _BudgetExceeded
        for label in (_LABEL_L, _LABEL_R, _LABEL_C):
            if not self.allowed[pivot] & _DOMAIN_BIT[label]:
                continue
            mark = len(trail)
            if self.assign(pivot, label, trail) and self._dfs(trail):
                return True
            self._undo(trail, mark)
        return False

    def solve(self) -> tuple[int, ...] | None:
        """Return a violating label vector, or ``None`` if none exists.

        Swap symmetry (relabelling ``L ↔ R`` preserves violations) is broken
        by seeding: ``i`` ranges over the smallest index in ``L ∪ R`` (and is
        placed in ``L``), ``j > i`` over the smallest index in ``R``; nodes
        below ``i`` are ``C`` and nodes between ``i`` and ``j`` are barred
        from ``R``.
        """
        if self.m < 2 or self.tau <= 0:
            return None
        for i in range(self.m - 1):
            for j in range(i + 1, self.m):
                trail: list[tuple[int, int, int]] = []
                ok = True
                for prefix in range(i):
                    if not self.assign(prefix, _LABEL_C, trail):
                        ok = False
                        break
                if ok:
                    ok = self.assign(i, _LABEL_L, trail)
                if ok:
                    queue: list[tuple[int, int]] = []
                    for middle in range(i + 1, j):
                        if not self._restrict(middle, 2, trail, queue):
                            ok = False
                            break
                    if ok:
                        for node, label in queue:
                            if not self.assign(node, label, trail):
                                ok = False
                                break
                if ok:
                    ok = self.assign(j, _LABEL_R, trail)
                if ok and self._dfs(trail):
                    return tuple(self.assigned)
                self._undo(trail, 0)
        return None


def _dpll_search(
    graph: Digraph,
    f: int,
    tau: int,
    decision_budget: int,
) -> ExactSearchResult:
    """Run the built-in DPLL backend over all canonical-size fault sets."""
    nodes = tuple(sorted(graph.nodes, key=repr))
    n = len(nodes)
    if n < 2:
        return ExactSearchResult(
            status="satisfied",
            backend="dpll",
            reason="fewer than two nodes: no non-empty disjoint L and R",
        )
    position_of = {node: position for position, node in enumerate(nodes)}
    global_in: list[tuple[int, ...]] = [
        tuple(
            sorted(position_of[predecessor] for predecessor in graph.in_neighbors(node))
        )
        for node in nodes
    ]
    fault_size = min(f, n - 2)
    budget = {"decisions": 0, "limit": decision_budget}
    examined = 0
    try:
        for combo in combinations(range(n), fault_size):
            fault_positions = set(combo)
            remaining = [
                position for position in range(n) if position not in fault_positions
            ]
            compact_index = {
                global_pos: local for local, global_pos in enumerate(remaining)
            }
            in_nbrs: list[tuple[int, ...]] = []
            out_nbrs: list[list[int]] = [[] for _ in remaining]
            for local, global_pos in enumerate(remaining):
                members = tuple(
                    compact_index[predecessor]
                    for predecessor in global_in[global_pos]
                    if predecessor in compact_index
                )
                in_nbrs.append(members)
                for member in members:
                    out_nbrs[member].append(local)
            solver = _UniverseSolver(
                in_nbrs, [tuple(outs) for outs in out_nbrs], tau, budget
            )
            labels = solver.solve()
            examined += 1
            if labels is not None:
                faulty = frozenset(nodes[position] for position in combo)
                left = frozenset(
                    nodes[remaining[local]]
                    for local, label in enumerate(labels)
                    if label == _LABEL_L
                )
                right = frozenset(
                    nodes[remaining[local]]
                    for local, label in enumerate(labels)
                    if label == _LABEL_R
                )
                center = frozenset(
                    nodes[remaining[local]]
                    for local, label in enumerate(labels)
                    if label == _LABEL_C
                )
                witness = PartitionWitness(
                    faulty=faulty, left=left, center=center, right=right
                )
                return ExactSearchResult(
                    status="violation",
                    backend="dpll",
                    witness=witness,
                    decisions=budget["decisions"],
                    fault_sets_examined=examined,
                    reason=f"violating partition found: {witness.describe()}",
                )
    except _BudgetExceeded:
        return ExactSearchResult(
            status="unknown",
            backend="dpll",
            decisions=budget["decisions"],
            fault_sets_examined=examined,
            reason=(
                f"decision budget {decision_budget} exhausted after "
                f"{examined} fault sets"
            ),
        )
    return ExactSearchResult(
        status="satisfied",
        backend="dpll",
        decisions=budget["decisions"],
        fault_sets_examined=examined,
        reason="all canonical fault sets searched without a violation",
    )


def _pysat_search(graph: Digraph, f: int, tau: int) -> ExactSearchResult:
    """Encode the whole violation search as one SAT call (pysat backend).

    Variables per node ``v``: ``l_v``/``r_v``/``phi_v`` for membership in
    ``L``/``R``/``F`` (mutually exclusive; ``C`` is the default), plus the
    definitional auxiliaries ``d_v ⟺ ¬l_v ∧ ¬phi_v`` (``v`` counts against
    an ``L`` member's insulation) and ``e_v ⟺ ¬r_v ∧ ¬phi_v``.  Cardinality
    constraints use sequential-counter encodings; the per-node insulation
    bound ``Σ d_u ≤ tau − 1`` is activated conditionally by adding the guard
    literal ``¬l_v`` to every clause of its encoding.
    """
    from pysat.card import CardEnc, EncType
    from pysat.formula import IDPool
    from pysat.solvers import Solver

    nodes = tuple(sorted(graph.nodes, key=repr))
    pool = IDPool()
    in_left = {node: pool.id(("l", position)) for position, node in enumerate(nodes)}
    in_right = {node: pool.id(("r", position)) for position, node in enumerate(nodes)}
    in_fault = {node: pool.id(("f", position)) for position, node in enumerate(nodes)}
    counts_vs_left = {
        node: pool.id(("d", position)) for position, node in enumerate(nodes)
    }
    counts_vs_right = {
        node: pool.id(("e", position)) for position, node in enumerate(nodes)
    }
    clauses: list[list[int]] = []
    for node in nodes:
        left, right, fault = in_left[node], in_right[node], in_fault[node]
        versus_left, versus_right = counts_vs_left[node], counts_vs_right[node]
        clauses += [[-left, -right], [-left, -fault], [-right, -fault]]
        clauses += [
            [-versus_left, -left],
            [-versus_left, -fault],
            [versus_left, left, fault],
        ]
        clauses += [
            [-versus_right, -right],
            [-versus_right, -fault],
            [versus_right, right, fault],
        ]
    clauses.append([in_left[node] for node in nodes])
    clauses.append([in_right[node] for node in nodes])
    if f == 0:
        clauses += [[-in_fault[node]] for node in nodes]
    else:
        fault_card = CardEnc.atmost(
            lits=[in_fault[node] for node in nodes],
            bound=f,
            vpool=pool,
            encoding=EncType.seqcounter,
        )
        clauses += fault_card.clauses
    for node in nodes:
        predecessors = tuple(sorted(graph.in_neighbors(node), key=repr))
        for member_var, counter_map in (
            (in_left[node], counts_vs_left),
            (in_right[node], counts_vs_right),
        ):
            counted = [counter_map[predecessor] for predecessor in predecessors]
            if len(counted) < tau:
                continue  # fewer than tau counters can never reach tau
            guard = -member_var
            if tau == 1:
                clauses += [[guard, -lit] for lit in counted]
                continue
            insulation = CardEnc.atmost(
                lits=counted, bound=tau - 1, vpool=pool, encoding=EncType.seqcounter
            )
            clauses += [clause + [guard] for clause in insulation.clauses]
    with Solver(bootstrap_with=clauses) as solver:
        if not solver.solve():
            return ExactSearchResult(
                status="satisfied",
                backend="pysat",
                reason="SAT encoding is unsatisfiable: no violating partition",
            )
        model = set(solver.get_model() or ())
    faulty = frozenset(node for node in nodes if in_fault[node] in model)
    left_set = frozenset(node for node in nodes if in_left[node] in model)
    right_set = frozenset(node for node in nodes if in_right[node] in model)
    center = frozenset(nodes) - faulty - left_set - right_set
    witness = PartitionWitness(
        faulty=faulty, left=left_set, center=center, right=right_set
    )
    return ExactSearchResult(
        status="violation",
        backend="pysat",
        witness=witness,
        reason=f"violating partition found: {witness.describe()}",
    )


def _pulp_search(graph: Digraph, f: int, tau: int) -> ExactSearchResult:
    """Encode the whole violation search as one MILP call (pulp backend).

    Binary variables mirror the SAT encoding; the conditional insulation
    bound becomes the big-M constraint
    ``Σ_{u ∈ N⁻(v)} (1 − l_u − phi_u) ≤ tau − 1 + |N⁻(v)| · (1 − l_v)``.
    """
    import pulp

    nodes = tuple(sorted(graph.nodes, key=repr))
    problem = pulp.LpProblem("theorem1_violation", pulp.LpMinimize)
    in_left = {
        node: pulp.LpVariable(f"l_{position}", cat="Binary")
        for position, node in enumerate(nodes)
    }
    in_right = {
        node: pulp.LpVariable(f"r_{position}", cat="Binary")
        for position, node in enumerate(nodes)
    }
    in_fault = {
        node: pulp.LpVariable(f"f_{position}", cat="Binary")
        for position, node in enumerate(nodes)
    }
    problem += 0  # pure feasibility problem
    for node in nodes:
        problem += in_left[node] + in_right[node] + in_fault[node] <= 1
    problem += pulp.lpSum(in_left.values()) >= 1
    problem += pulp.lpSum(in_right.values()) >= 1
    problem += pulp.lpSum(in_fault.values()) <= f
    for node in nodes:
        predecessors = tuple(sorted(graph.in_neighbors(node), key=repr))
        big_m = len(predecessors)
        if big_m < tau:
            continue  # the bound can never be exceeded
        problem += (
            pulp.lpSum(
                1 - in_left[predecessor] - in_fault[predecessor]
                for predecessor in predecessors
            )
            <= tau - 1 + big_m * (1 - in_left[node])
        )
        problem += (
            pulp.lpSum(
                1 - in_right[predecessor] - in_fault[predecessor]
                for predecessor in predecessors
            )
            <= tau - 1 + big_m * (1 - in_right[node])
        )
    status = problem.solve(pulp.PULP_CBC_CMD(msg=False))
    if status == pulp.LpStatusInfeasible:
        return ExactSearchResult(
            status="satisfied",
            backend="pulp",
            reason="MILP encoding is infeasible: no violating partition",
        )
    if status != pulp.LpStatusOptimal:
        return ExactSearchResult(
            status="unknown",
            backend="pulp",
            reason=f"MILP solver returned status {pulp.LpStatus[status]!r}",
        )

    def chosen(variable: "pulp.LpVariable") -> bool:
        value = variable.value()
        return value is not None and value > 0.5

    faulty = frozenset(node for node in nodes if chosen(in_fault[node]))
    left_set = frozenset(node for node in nodes if chosen(in_left[node]))
    right_set = frozenset(node for node in nodes if chosen(in_right[node]))
    center = frozenset(nodes) - faulty - left_set - right_set
    witness = PartitionWitness(
        faulty=faulty, left=left_set, center=center, right=right_set
    )
    return ExactSearchResult(
        status="violation",
        backend="pulp",
        witness=witness,
        reason=f"violating partition found: {witness.describe()}",
    )


def exact_violation_search(
    graph: Digraph,
    f: int,
    threshold: int | None = None,
    backend: str = "auto",
    max_nodes: int = DEFAULT_MAX_EXACT_BACKEND_NODES,
    decision_budget: int = DEFAULT_DECISION_BUDGET,
) -> ExactSearchResult:
    """Search for a Theorem-1 violating partition with an exact backend.

    ``backend`` is one of ``"auto"`` (first available of
    :data:`EXACT_BACKENDS`), ``"dpll"``, ``"pysat"`` or ``"pulp"``;
    requesting an uninstalled solver raises
    :class:`~repro.exceptions.InvalidParameterError`.  ``decision_budget``
    bounds the DPLL backend's branch points — exhausting it yields an
    ``unknown`` result rather than an open-ended search (the solver
    backends ignore it).

    Every ``"violation"`` result carries a witness that has already been
    re-verified by :func:`~repro.conditions.necessary.verify_witness`; a
    backend producing an invalid witness raises
    :class:`~repro.exceptions.ConditionCheckError` instead of returning.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if decision_budget < 1:
        raise InvalidParameterError(
            f"decision_budget must be >= 1, got {decision_budget}"
        )
    resolved = _resolve_backend(backend)
    n = graph.number_of_nodes
    if n > max_nodes:
        raise GraphTooLargeError(n, max_nodes, checker="exact_violation_search")
    tau = f + 1 if threshold is None else threshold
    if tau <= 0 or n < 2:
        return ExactSearchResult(
            status="satisfied",
            backend=resolved,
            reason=(
                "threshold <= 0 admits no insulated set"
                if tau <= 0
                else "fewer than two nodes: no non-empty disjoint L and R"
            ),
        )
    if resolved == "pysat":
        result = _pysat_search(graph, f, tau)
    elif resolved == "pulp":
        result = _pulp_search(graph, f, tau)
    else:
        result = _dpll_search(graph, f, tau, decision_budget)
    if result.status == "violation":
        assert result.witness is not None
        if not verify_witness(graph, f, result.witness, threshold=threshold):
            raise ConditionCheckError(
                f"backend {resolved!r} produced a witness that fails "
                f"re-verification: {result.witness.describe()}"
            )
    return result
