"""The paper's set relations: ``⇒``, ``in(A ⇒ B)`` and propagation.

Definition 1:
    For non-empty disjoint node sets ``A`` and ``B``, ``A ⇒ B`` iff there is a
    node ``v ∈ B`` with at least ``f + 1`` incoming links from nodes in ``A``.

Definition 2:
    ``in(A ⇒ B)`` is the set of all nodes in ``B`` that each have at least
    ``f + 1`` incoming links from nodes in ``A``.

Definition 3:
    ``A`` *propagates to* ``B`` in ``l`` steps if repeatedly moving
    ``in(A_τ ⇒ B_τ)`` from ``B_τ`` into ``A_τ`` exhausts ``B`` after ``l``
    steps (with every intermediate step moving at least one node).

All functions take the threshold ``f + 1`` explicitly (as ``threshold``) so the
same machinery serves both the synchronous condition (threshold ``f + 1``) and
the asynchronous variant of Section 7 (threshold ``2f + 1``).  Convenience
wrappers that accept ``f`` directly are provided for the synchronous case.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import InvalidParameterError, InvalidPartitionError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, PropagationResult


def _validate_threshold(threshold: int) -> None:
    if threshold < 1:
        raise InvalidParameterError(
            f"the ⇒ threshold must be >= 1 (it is f + 1 or 2f + 1), got {threshold}"
        )


def _as_frozen(nodes: Iterable[NodeId]) -> frozenset[NodeId]:
    return nodes if isinstance(nodes, frozenset) else frozenset(nodes)


def _validate_disjoint_subsets(
    graph: Digraph, source_set: frozenset[NodeId], target_set: frozenset[NodeId]
) -> None:
    unknown = (source_set | target_set) - graph.nodes
    if unknown:
        raise InvalidPartitionError(
            f"nodes {sorted(unknown, key=repr)!r} are not in the graph"
        )
    if source_set & target_set:
        raise InvalidPartitionError(
            "the sets of the ⇒ relation must be disjoint; found overlap "
            f"{sorted(source_set & target_set, key=repr)!r}"
        )


# ---------------------------------------------------------------------------
# Definition 1 and 2
# ---------------------------------------------------------------------------
def influenced_set(
    graph: Digraph,
    source_set: Iterable[NodeId],
    target_set: Iterable[NodeId],
    threshold: int,
) -> frozenset[NodeId]:
    """Return ``in(A ⇒ B)`` at the given threshold.

    These are the nodes of ``target_set`` with at least ``threshold`` incoming
    edges from ``source_set``.  Following the paper's convention, the result
    is empty when ``A ⇏ B``.
    """
    _validate_threshold(threshold)
    sources = _as_frozen(source_set)
    targets = _as_frozen(target_set)
    _validate_disjoint_subsets(graph, sources, targets)
    return frozenset(
        node
        for node in targets
        if graph.in_degree_within(node, sources) >= threshold
    )


def reaches(
    graph: Digraph,
    source_set: Iterable[NodeId],
    target_set: Iterable[NodeId],
    threshold: int,
) -> bool:
    """Return whether ``A ⇒ B`` at the given threshold (Definition 1).

    Empty ``A`` or ``B`` never satisfy the relation (the definition requires
    non-empty sets, and an empty ``A`` cannot supply any incoming edge).
    """
    _validate_threshold(threshold)
    sources = _as_frozen(source_set)
    targets = _as_frozen(target_set)
    _validate_disjoint_subsets(graph, sources, targets)
    if not sources or not targets:
        return False
    if len(sources) < threshold:
        # No node can have `threshold` in-neighbours inside a smaller set.
        return False
    return any(
        graph.in_degree_within(node, sources) >= threshold for node in targets
    )


def reaches_f(
    graph: Digraph,
    source_set: Iterable[NodeId],
    target_set: Iterable[NodeId],
    f: int,
) -> bool:
    """Synchronous-model convenience wrapper: ``A ⇒ B`` with threshold ``f + 1``."""
    return reaches(graph, source_set, target_set, f + 1)


def influenced_set_f(
    graph: Digraph,
    source_set: Iterable[NodeId],
    target_set: Iterable[NodeId],
    f: int,
) -> frozenset[NodeId]:
    """Synchronous-model convenience wrapper: ``in(A ⇒ B)`` with threshold ``f + 1``."""
    return influenced_set(graph, source_set, target_set, f + 1)


# ---------------------------------------------------------------------------
# Definition 3: propagation
# ---------------------------------------------------------------------------
def propagates(
    graph: Digraph,
    source_set: Iterable[NodeId],
    target_set: Iterable[NodeId],
    threshold: int,
) -> PropagationResult:
    """Determine whether ``A`` propagates to ``B`` (Definition 3).

    Returns a :class:`~repro.types.PropagationResult` holding the propagating
    sequences ``A_0 … A_l`` and ``B_0 … B_l``.  When propagation fails, the
    sequences returned are the maximal prefix computed before the expansion
    stalled (``in(A_k ⇒ B_k) = ∅`` with ``B_k ≠ ∅``), which is exactly the
    configuration used inside the proof of Lemma 2.
    """
    _validate_threshold(threshold)
    sources = _as_frozen(source_set)
    targets = _as_frozen(target_set)
    _validate_disjoint_subsets(graph, sources, targets)
    if not sources or not targets:
        raise InvalidPartitionError(
            "propagation is defined only for non-empty disjoint sets A and B"
        )

    a_sequence: list[frozenset[NodeId]] = [sources]
    b_sequence: list[frozenset[NodeId]] = [targets]
    current_sources = sources
    current_targets = targets
    while current_targets:
        moved = influenced_set(graph, current_sources, current_targets, threshold)
        if not moved:
            return PropagationResult(
                propagates=False,
                steps=len(a_sequence) - 1,
                a_sets=tuple(a_sequence),
                b_sets=tuple(b_sequence),
            )
        current_sources = current_sources | moved
        current_targets = current_targets - moved
        a_sequence.append(current_sources)
        b_sequence.append(current_targets)
    return PropagationResult(
        propagates=True,
        steps=len(a_sequence) - 1,
        a_sets=tuple(a_sequence),
        b_sets=tuple(b_sequence),
    )


def propagates_f(
    graph: Digraph,
    source_set: Iterable[NodeId],
    target_set: Iterable[NodeId],
    f: int,
) -> PropagationResult:
    """Synchronous-model convenience wrapper for :func:`propagates`."""
    return propagates(graph, source_set, target_set, f + 1)


def propagation_dichotomy(
    graph: Digraph,
    set_a: Iterable[NodeId],
    set_b: Iterable[NodeId],
    threshold: int,
) -> tuple[PropagationResult, PropagationResult]:
    """Compute both propagation directions between ``A`` and ``B``.

    Lemma 2 of the paper states that when the graph satisfies the Theorem-1
    condition and ``A, B, F`` partition ``V`` (``|F| ≤ f``), at least one of
    "A propagates to B" / "B propagates to A" holds.  This helper evaluates
    both directions; the convergence analysis (Lemma 5) uses whichever
    direction succeeds, preferring the one whose *source* set has the smaller
    value interval.
    """
    forward = propagates(graph, set_a, set_b, threshold)
    backward = propagates(graph, set_b, set_a, threshold)
    return forward, backward


def propagation_length_bound(n: int, f: int) -> int:
    """Return the paper's upper bound ``n − f − 1`` on the propagation length.

    Definition 3's discussion notes that ``l`` is at most ``n − f − 1``
    because the propagating source set must have at least ``f + 1`` nodes and
    grows by at least one node per step.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    return max(1, n - f - 1)
