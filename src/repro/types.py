"""Shared type aliases and small value objects used across the library.

The library models the paper's objects directly:

* nodes are arbitrary hashable identifiers (the generators use ``int``),
* node states are real numbers (``float``),
* a *fault set* ``F`` is a frozenset of node identifiers with ``|F| <= f``,
* a *partition witness* records the sets ``F, L, C, R`` of Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

# A node identifier.  Generators produce ``int`` nodes but any hashable value
# is accepted by the graph type and the algorithms.
NodeId = Hashable

# A directed edge ``(source, target)`` meaning ``source`` can transmit to
# ``target`` (the paper's ``(i, j) ∈ E`` convention).
Edge = tuple[NodeId, NodeId]

# A mapping from node identifier to its real-valued state / input.
ValueMap = Mapping[NodeId, float]


@dataclass(frozen=True)
class RoundRecord:
    """State of the system at the end of one iteration.

    Attributes
    ----------
    round_index:
        The iteration number ``t`` (0 is the initial state, before any
        message exchange).
    values:
        State ``v_i[t]`` of every node, including faulty nodes' nominal
        states (what the adversary reports as its "state"; fault-free nodes
        never rely on it).
    fault_free_max:
        ``U[t] = max over fault-free i of v_i[t]``.
    fault_free_min:
        ``µ[t] = min over fault-free i of v_i[t]``.
    """

    round_index: int
    values: dict[NodeId, float]
    fault_free_max: float
    fault_free_min: float

    @property
    def spread(self) -> float:
        """Return ``U[t] − µ[t]``, the quantity driven to zero by convergence."""
        return self.fault_free_max - self.fault_free_min


@dataclass(frozen=True)
class ReceivedValue:
    """A single value received by a node during one iteration.

    ``sender`` identifies the in-neighbour the value arrived from (edges are
    authenticated in the paper's model, so the receiver always knows the
    sender), and ``value`` is the real number carried by the message.
    """

    sender: NodeId
    value: float


@dataclass(frozen=True)
class ConsensusOutcome:
    """Summary of a finished consensus simulation.

    Attributes
    ----------
    converged:
        Whether the fault-free spread ``U[t] − µ[t]`` dropped to or below the
        requested tolerance within the allotted number of iterations.
    rounds_executed:
        Number of iterations actually executed (excluding round 0).
    final_spread:
        ``U[T] − µ[T]`` at the last executed iteration ``T``.
    initial_spread:
        ``U[0] − µ[0]``.
    validity_ok:
        Whether validity (eq. 1 of the paper) held at every iteration:
        ``U[t] ≤ U[t−1]`` and ``µ[t] ≥ µ[t−1]``, which together with round 0
        gives the convex-hull form of validity.
    final_values:
        Final state of every fault-free node.
    history:
        Full per-round records (present only when tracing was enabled).
    """

    converged: bool
    rounds_executed: int
    final_spread: float
    initial_spread: float
    validity_ok: bool
    final_values: dict[NodeId, float]
    history: tuple[RoundRecord, ...] = field(default_factory=tuple)

    @property
    def contraction_ratio(self) -> float:
        """Overall contraction ``final_spread / initial_spread``.

        Returns 0.0 when the initial spread is zero (already agreed), so that
        the ratio is always well defined and monotone in the final spread.
        """
        if self.initial_spread == 0:
            return 0.0
        return self.final_spread / self.initial_spread


@dataclass(frozen=True)
class PartitionWitness:
    """A partition ``F, L, C, R`` of the vertex set witnessing a violation of
    the Theorem-1 condition (or, in the asynchronous variant, of its
    ``2f + 1`` counterpart).

    A witness certifies that ``C ∪ R ⇏ L`` and ``L ∪ C ⇏ R``; per the
    necessity proof, an adversary controlling ``F`` can then prevent the sets
    ``L`` and ``R`` from ever agreeing.
    """

    faulty: frozenset[NodeId]
    left: frozenset[NodeId]
    center: frozenset[NodeId]
    right: frozenset[NodeId]

    def __post_init__(self) -> None:
        overlap_pairs = (
            (self.faulty, self.left),
            (self.faulty, self.center),
            (self.faulty, self.right),
            (self.left, self.center),
            (self.left, self.right),
            (self.center, self.right),
        )
        for first, second in overlap_pairs:
            if first & second:
                raise ValueError(
                    "partition witness parts must be pairwise disjoint; "
                    f"found overlap {sorted(first & second, key=repr)!r}"
                )
        if not self.left or not self.right:
            raise ValueError("witness sets L and R must both be non-empty")

    @property
    def all_nodes(self) -> frozenset[NodeId]:
        """All nodes covered by the witness (``F ∪ L ∪ C ∪ R``)."""
        return self.faulty | self.left | self.center | self.right

    def describe(self) -> str:
        """Return a compact human-readable description of the witness."""

        def fmt(nodes: frozenset[NodeId]) -> str:
            return "{" + ", ".join(str(v) for v in sorted(nodes, key=repr)) + "}"

        return (
            f"F={fmt(self.faulty)}, L={fmt(self.left)}, "
            f"C={fmt(self.center)}, R={fmt(self.right)}"
        )


@dataclass(frozen=True)
class FeasibilityResult:
    """Result of a feasibility (Theorem 1 / async variant) check.

    Attributes
    ----------
    satisfied:
        ``True`` when the graph satisfies the condition for the given ``f``.
    f:
        The fault budget the check was performed for.
    witness:
        When ``satisfied`` is ``False`` and the checker produces
        counter-examples, the violating partition.  Heuristic checkers may
        report ``satisfied=False`` only when they find a witness, so a
        ``False`` without witness can only come from the fast screens
        (Corollaries 2 and 3) where the witness is implicit.
    method:
        Name of the checker that produced the verdict (``"exhaustive"``,
        ``"screen:n>3f"``, ``"screen:in-degree"``, ``"randomized"``,
        ``"structural"``).
    reason:
        Optional human-readable explanation.
    """

    satisfied: bool
    f: int
    witness: PartitionWitness | None = None
    method: str = "exhaustive"
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.satisfied


@dataclass(frozen=True)
class PropagationResult:
    """Result of computing whether a set ``A`` propagates to a set ``B``
    (Definition 3 of the paper).

    ``steps`` is the propagation length ``l`` when propagation succeeds.  The
    sequences ``a_sets``/``b_sets`` are the propagating sequences
    ``A_0..A_l`` and ``B_0..B_l``; when propagation fails they hold the
    maximal prefix computed before the expansion stalled.
    """

    propagates: bool
    steps: int
    a_sets: tuple[frozenset[NodeId], ...]
    b_sets: tuple[frozenset[NodeId], ...]

    @property
    def length(self) -> int:
        """Alias for ``steps`` matching the paper's symbol ``l``."""
        return self.steps


def as_node_tuple(nodes: Sequence[NodeId] | frozenset[NodeId]) -> tuple[NodeId, ...]:
    """Return ``nodes`` as a tuple sorted by ``repr`` for deterministic output.

    Sorting by ``repr`` keeps mixed node-identifier types (e.g. ints and
    strings in the same graph) comparable and stable across runs.
    """
    return tuple(sorted(nodes, key=repr))
