"""Experiment drivers that regenerate every result of the paper (and the
ablations listed in DESIGN.md).  Each driver returns plain rows (lists of
dictionaries) so that the benchmark harness can both time them and assert the
qualitative shape the paper reports, while the examples print them."""

from repro.experiments.ablation import (
    ablation_cell,
    ablation_summary,
    algorithm_ablation,
    default_ablation_graphs,
    rule_zoo,
)
from repro.experiments.asynchronous import (
    async_condition_sweep,
    asynchronous_cell,
    async_simulation_study,
    async_sweep,
)
from repro.experiments.checker import (
    checker_agreement_study,
    checker_cell,
    checker_scaling_cases,
    checker_test_battery,
    exhaustive_checker_workload,
)
from repro.experiments.convergence_rate import (
    convergence_rate_cell,
    convergence_rate_study,
    convergence_rate_sweep,
    default_rate_cases,
)
from repro.experiments.corollaries import (
    corollaries_cell,
    corollary2_sweep,
    corollary3_edge_removal,
    low_in_degree_always_fails,
)
from repro.experiments.families import (
    chord_case_studies,
    families_cell,
    chord_feasibility_sweep,
    core_network_batch_sweep,
    core_network_minimality_comparison,
    core_network_study,
    hypercube_study,
)
from repro.experiments.dynamic import (
    CHURN_P_AWAKE,
    DYNAMIC_SCHEDULE_KINDS,
    churn_sweep_cell,
    churn_sweep_study,
    default_dynamic_cases,
    dynamic_topology_cell,
    dynamic_topology_study,
    make_dynamic_schedule,
)
from repro.experiments.feasibility_scale import (
    DEFAULT_SCALE_SIZES,
    feasibility_scale_battery,
    feasibility_scale_cell,
    feasibility_scale_study,
)
from repro.experiments.necessity import (
    NecessityDemonstration,
    default_necessity_cases,
    demonstrate_necessity,
    necessity_cell,
    necessity_rows,
    split_brain_stall_study,
)
from repro.experiments.reporting import (
    format_table,
    print_table,
    summarize_booleans,
)
from repro.experiments.scale import (
    SCALE_DTYPES,
    default_scale_sizes,
    large_n_cell,
    large_n_study,
)
from repro.experiments.robustness import (
    default_robustness_cases,
    robustness_cell,
    robustness_comparison,
)
from repro.experiments.showdown import (
    SHOWDOWN_STRATEGIES,
    adversary_showdown,
    adversary_showdown_cell,
    default_showdown_cases,
    make_showdown_strategy,
)
from repro.experiments.validity import (
    adversary_zoo,
    count_validity_failures,
    default_validity_graphs,
    validity_cell,
    validity_study,
)

__all__ = [
    "ablation_cell",
    "ablation_summary",
    "algorithm_ablation",
    "default_ablation_graphs",
    "rule_zoo",
    "async_condition_sweep",
    "asynchronous_cell",
    "async_simulation_study",
    "async_sweep",
    "checker_agreement_study",
    "checker_cell",
    "checker_scaling_cases",
    "checker_test_battery",
    "exhaustive_checker_workload",
    "convergence_rate_cell",
    "convergence_rate_study",
    "convergence_rate_sweep",
    "default_rate_cases",
    "corollaries_cell",
    "corollary2_sweep",
    "corollary3_edge_removal",
    "low_in_degree_always_fails",
    "chord_case_studies",
    "families_cell",
    "chord_feasibility_sweep",
    "core_network_batch_sweep",
    "core_network_minimality_comparison",
    "core_network_study",
    "hypercube_study",
    "CHURN_P_AWAKE",
    "DYNAMIC_SCHEDULE_KINDS",
    "churn_sweep_cell",
    "churn_sweep_study",
    "default_dynamic_cases",
    "dynamic_topology_cell",
    "dynamic_topology_study",
    "make_dynamic_schedule",
    "DEFAULT_SCALE_SIZES",
    "feasibility_scale_battery",
    "feasibility_scale_cell",
    "feasibility_scale_study",
    "NecessityDemonstration",
    "default_necessity_cases",
    "demonstrate_necessity",
    "necessity_cell",
    "necessity_rows",
    "split_brain_stall_study",
    "format_table",
    "print_table",
    "summarize_booleans",
    "default_robustness_cases",
    "robustness_cell",
    "robustness_comparison",
    "SCALE_DTYPES",
    "default_scale_sizes",
    "large_n_cell",
    "large_n_study",
    "SHOWDOWN_STRATEGIES",
    "adversary_showdown",
    "adversary_showdown_cell",
    "default_showdown_cases",
    "make_showdown_strategy",
    "adversary_zoo",
    "count_validity_failures",
    "default_validity_graphs",
    "validity_cell",
    "validity_study",
]
