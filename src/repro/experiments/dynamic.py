"""Experiments E16/E17 — dynamic topology and churn (roadmap scenario axis).

The paper analyses a *static* communication graph; the roadmap's dynamic
tier asks how Algorithm 1 behaves when links flap and nodes sleep.  Two
experiments cover that axis:

* **E16 ``dynamic_topology``** sweeps the schedule kinds of
  :mod:`repro.simulation.dynamic` (periodic edge outages, seeded random edge
  up/down, random churn, and their composition) over the paper's graph
  families, running batched executions on the dense vectorized engine.
  Every cell re-runs its first batch row through the scalar reference
  engine in lockstep (:func:`~repro.simulation.vectorized.cross_check_engines`
  with the schedule) and one masked round through the sparse engine, and
  **raises** :class:`~repro.exceptions.SimulationError` on any divergence —
  the sweep's numbers are tied to the cross-engine bit-exactness contract.

* **E17 ``churn_sweep``** fixes the graph and sweeps the per-round awake
  probability, reporting how convergence degrades with participation.  The
  scalar engine's participation-aware validity verdict
  (:class:`~repro.simulation.metrics.ParticipationValidityTracker`) audits
  the first row of every cell: asleep nodes must hold their state exactly
  and the fault-free hull must still never expand.
"""

from __future__ import annotations

from typing import TypedDict

import numpy as np

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.exceptions import InvalidParameterError, SimulationError
from repro.graphs.digraph import Digraph
from repro.graphs.generators import chord_network, complete_graph, core_network
from repro.simulation.dynamic import (
    ComposedSchedule,
    PeriodicEdgeSchedule,
    RandomChurnSchedule,
    RandomEdgeSchedule,
    ScheduleLayout,
    StaticSchedule,
    TopologySchedule,
    resolve_activity,
)
from repro.simulation.engine import SimulationConfig, SynchronousEngine
from repro.simulation.sparse import SparseEngine
from repro.simulation.vectorized import (
    VectorizedEngine,
    cross_check_engines,
    random_input_matrix,
)
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict
from repro.types import NodeId


class DynamicTopologyRow(TypedDict):
    """One guarded cell of the E16 dynamic-topology sweep."""

    case: str
    schedule: str
    n: int
    f: int
    batch: int
    rounds: int
    mean_edge_down_fraction: float
    mean_asleep_fraction: float
    fraction_converged: float
    all_validity_ok: bool
    mean_final_spread: float
    mean_contraction: float
    scalar_guard: bool
    sparse_guard: bool


#: Runtime half of :class:`DynamicTopologyRow`; validated at shard boundaries.
DYNAMIC_TOPOLOGY_SCHEMA = schema_from_typeddict(
    DynamicTopologyRow,
    roles={
        "case": "label",
        "schedule": "label",
        "n": "parameter",
        "f": "parameter",
        "batch": "parameter",
        "rounds": "parameter",
        "mean_edge_down_fraction": "metric",
        "mean_asleep_fraction": "metric",
        "fraction_converged": "metric",
        "all_validity_ok": "verdict",
        "mean_final_spread": "metric",
        "mean_contraction": "metric",
        "scalar_guard": "verdict",
        "sparse_guard": "verdict",
    },
)


class ChurnSweepRow(TypedDict):
    """One awake-probability point of the E17 churn sweep."""

    n: int
    f: int
    p_awake: float
    batch: int
    rounds: int
    mean_asleep_fraction: float
    fraction_converged: float
    all_validity_ok: bool
    participation_audit_ok: bool
    mean_rounds: float
    p90_rounds: float
    mean_final_spread: float


#: Runtime half of :class:`ChurnSweepRow`; validated at shard boundaries.
CHURN_SWEEP_SCHEMA = schema_from_typeddict(
    ChurnSweepRow,
    roles={
        "n": "parameter",
        "f": "parameter",
        "p_awake": "parameter",
        "batch": "parameter",
        "rounds": "parameter",
        "mean_asleep_fraction": "metric",
        "fraction_converged": "metric",
        "all_validity_ok": "verdict",
        "participation_audit_ok": "verdict",
        "mean_rounds": "metric",
        "p90_rounds": "metric",
        "mean_final_spread": "metric",
    },
)

#: Schedule kinds the E16 grid sweeps (``make_dynamic_schedule`` keys).
DYNAMIC_SCHEDULE_KINDS = (
    "static",
    "periodic-edges",
    "random-edges",
    "churn",
    "composed",
)

#: Awake probabilities of the default E17 grid (1.0 is the static baseline).
CHURN_P_AWAKE = (1.0, 0.9, 0.75, 0.5)


def default_dynamic_cases() -> list[tuple[str, Digraph, int]]:
    """Return the labelled ``(name, graph, f)`` cases E16 sweeps."""
    return [
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=9 f=2", core_network(9, 2), 2),
        ("chord n=8 f=1", chord_network(8, 1), 1),
    ]


def make_dynamic_schedule(
    kind: str,
    graph: Digraph,
    seed: int = 0,
    p_up: float = 0.8,
    p_awake: float = 0.85,
) -> TopologySchedule:
    """Build one of the sweepable schedules for ``graph``.

    ``periodic-edges`` alternates a phase with every fourth canonical edge
    down against a fully-up phase; the random kinds use the documented
    seeded streams, and ``composed`` ANDs a random edge schedule with a
    random churn schedule sharing ``seed`` (their distinct stream keys keep
    the masks decorrelated).
    """
    if kind == "static":
        return StaticSchedule()
    if kind == "periodic-edges":
        layout = ScheduleLayout.for_graph(graph)
        return PeriodicEdgeSchedule([layout.edges[::4], ()])
    if kind == "random-edges":
        return RandomEdgeSchedule(p_up=p_up, seed=seed)
    if kind == "churn":
        return RandomChurnSchedule(p_awake=p_awake, seed=seed)
    if kind == "composed":
        return ComposedSchedule(
            RandomEdgeSchedule(p_up=p_up, seed=seed),
            RandomChurnSchedule(p_awake=p_awake, seed=seed),
        )
    raise InvalidParameterError(
        f"unknown schedule kind {kind!r}; known: {DYNAMIC_SCHEDULE_KINDS}"
    )


def _mean_masked_fraction(
    schedule: TopologySchedule, graph: Digraph, rounds: int
) -> tuple[float, float]:
    """Return the mean fraction of (down edges, asleep nodes) over ``rounds``.

    Re-queries the schedule (pure function of the round) instead of
    instrumenting the engines.
    """
    layout = ScheduleLayout.for_graph(graph)
    edge_down = 0.0
    asleep = 0.0
    for round_index in range(1, rounds + 1):
        activity = resolve_activity(schedule, round_index, layout)
        if activity.edge_up is not None:
            edge_down += float((~activity.edge_up).mean())
        if activity.awake is not None:
            asleep += float((~activity.awake).mean())
    return edge_down / rounds, asleep / rounds


def dynamic_topology_study(
    cases: list[tuple[str, Digraph, int]] | None = None,
    schedule_kind: str = "composed",
    batch: int = 16,
    rounds: int = 60,
    p_up: float = 0.8,
    p_awake: float = 0.85,
    seed: int = 0,
) -> list[DynamicTopologyRow]:
    """Run one schedule kind over the graph cases with equivalence guards.

    Per case: ``batch`` executions on the dense engine under the schedule
    and the batch-native extreme-push adversary, a scalar-vs-dense lockstep
    check of the first row (scalar adversary, full trajectory), and a
    one-round dense-vs-sparse bit-equality check of the whole batch.  Any
    divergence raises :class:`~repro.exceptions.SimulationError`.
    """
    chosen = cases if cases is not None else default_dynamic_cases()
    rows: list[DynamicTopologyRow] = []
    for index, (label, graph, f) in enumerate(chosen):
        rule = TrimmedMeanRule(f)
        faulty: frozenset[NodeId] = random_fault_set(graph, f, rng=seed + index)
        schedule = make_dynamic_schedule(
            schedule_kind, graph, seed=seed + index, p_up=p_up, p_awake=p_awake
        )
        config = SimulationConfig(
            max_rounds=rounds,
            tolerance=1e-9,
            record_history=False,
            stop_on_convergence=False,
        )
        engine = VectorizedEngine(
            graph,
            rule,
            faulty=faulty,
            adversary=BatchExtremePushStrategy(delta=1.5),
            config=config,
            schedule=schedule,
        )
        matrix = random_input_matrix(engine.nodes, batch, rng=seed + index)
        outcome = engine.run_batch(matrix)

        # Guard 1: the first batch row, replayed scalar-vs-dense in lockstep
        # under the same schedule, must stay bit-identical every round.
        row_inputs = dict(zip(engine.nodes, matrix[0].tolist()))
        report = cross_check_engines(
            graph=graph,
            rule=rule,
            inputs=row_inputs,
            faulty=faulty,
            adversary=ExtremePushStrategy(delta=1.5),
            config=config,
            rounds=min(rounds, 20),
            schedule=schedule,
        )
        if not report.identical:
            raise SimulationError(
                f"scalar/dense divergence under {schedule.name!r} on {label} "
                f"at round {report.first_divergence_round}"
            )

        # Guard 2: one masked round of the whole batch, dense vs sparse.
        sparse = SparseEngine(
            graph,
            rule,
            faulty=faulty,
            adversary=BatchExtremePushStrategy(delta=1.5),
            config=config,
            schedule=schedule,
        )
        if not np.array_equal(
            engine.step_matrix(matrix, 1), sparse.step_matrix(matrix, 1)
        ):
            raise SimulationError(
                f"dense/sparse divergence under {schedule.name!r} on {label}"
            )

        edge_down, asleep = _mean_masked_fraction(schedule, graph, rounds)
        rows.append(
            {
                "case": label,
                "schedule": schedule.name,
                "n": graph.number_of_nodes,
                "f": f,
                "batch": batch,
                "rounds": rounds,
                "mean_edge_down_fraction": edge_down,
                "mean_asleep_fraction": asleep,
                "fraction_converged": outcome.fraction_converged,
                "all_validity_ok": outcome.all_valid,
                "mean_final_spread": float(outcome.final_spread.mean()),
                "mean_contraction": float(
                    (outcome.final_spread / outcome.initial_spread).mean()
                ),
                "scalar_guard": True,
                "sparse_guard": True,
            }
        )
    return rows


@register_experiment(
    name="dynamic_topology",
    paper_section=(
        "Beyond the paper's static-graph model: dynamic links and churn "
        "(roadmap dynamic tier, E16)"
    ),
    claim=(
        "Under masked links and sleeping nodes Algorithm 1 keeps validity in "
        "every execution and still contracts whenever enough of the graph "
        "stays up, with all engine tiers bit-identical on the same schedule."
    ),
    engine="vectorized",
    grid={
        "case": tuple(label for label, _, _ in default_dynamic_cases()),
        "schedule_kind": DYNAMIC_SCHEDULE_KINDS,
        "batch": (16,),
        "rounds": (60,),
    },
    schema=DYNAMIC_TOPOLOGY_SCHEMA,
)
def dynamic_topology_cell(
    case: str,
    schedule_kind: str = "composed",
    batch: int = 16,
    rounds: int = 60,
    seed: int = 0,
) -> list[DynamicTopologyRow]:
    """Registry cell for E16: one (case, schedule kind) guarded dynamic sweep."""
    return dynamic_topology_study(
        cases=select_labelled_case(
            case, default_dynamic_cases(), "dynamic-topology case"
        ),
        schedule_kind=schedule_kind,
        batch=batch,
        rounds=rounds,
        seed=seed,
    )


def churn_sweep_study(
    p_awake: float = 0.9,
    n: int = 9,
    f: int = 2,
    batch: int = 32,
    rounds: int = 120,
    tolerance: float = 1e-6,
    seed: int = 0,
) -> list[ChurnSweepRow]:
    """Measure convergence degradation under one awake probability.

    Runs ``batch`` executions on the dense engine over ``core_network(n, f)``
    under a :class:`~repro.simulation.dynamic.RandomChurnSchedule`, then
    replays the first row through the scalar engine, whose run-level verdict
    includes the participation audit (asleep nodes must hold their state
    exactly; the hull must never expand).
    """
    graph = core_network(n, f)
    rule = TrimmedMeanRule(f)
    faulty: frozenset[NodeId] = random_fault_set(graph, f, rng=seed)
    schedule: TopologySchedule = (
        StaticSchedule()
        if p_awake >= 1.0
        else RandomChurnSchedule(p_awake=p_awake, seed=seed)
    )
    config = SimulationConfig(
        max_rounds=rounds,
        tolerance=tolerance,
        record_history=False,
    )
    engine = VectorizedEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=BatchExtremePushStrategy(delta=1.0),
        config=config,
        schedule=schedule,
    )
    matrix = random_input_matrix(engine.nodes, batch, rng=seed)
    outcome = engine.run_batch(matrix)

    # Participation audit: the scalar engine folds the sleep-consistency
    # check (ParticipationValidityTracker) into its validity verdict.
    scalar = SynchronousEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=ExtremePushStrategy(delta=1.0),
        config=config,
        schedule=schedule,
    )
    audited = scalar.run(dict(zip(engine.nodes, matrix[0].tolist())))

    converged_rounds = outcome.rounds_executed[outcome.converged]
    _, asleep = _mean_masked_fraction(schedule, graph, rounds)
    return [
        {
            "n": n,
            "f": f,
            "p_awake": p_awake,
            "batch": batch,
            "rounds": rounds,
            "mean_asleep_fraction": asleep,
            "fraction_converged": outcome.fraction_converged,
            "all_validity_ok": outcome.all_valid,
            "participation_audit_ok": audited.validity_ok,
            "mean_rounds": outcome.mean_rounds_to_convergence(),
            "p90_rounds": (
                float(np.percentile(converged_rounds, 90))
                if converged_rounds.size
                else float("nan")
            ),
            "mean_final_spread": float(outcome.final_spread.mean()),
        }
    ]


@register_experiment(
    name="churn_sweep",
    paper_section=(
        "Participation/churn robustness of Algorithm 1 (roadmap dynamic "
        "tier, E17)"
    ),
    claim=(
        "Convergence slows gracefully as the per-round awake probability "
        "drops, while validity and exact sleep-state consistency hold in "
        "every execution."
    ),
    engine="vectorized",
    grid={
        "p_awake": CHURN_P_AWAKE,
        "batch": (32,),
        "rounds": (120,),
    },
    schema=CHURN_SWEEP_SCHEMA,
)
def churn_sweep_cell(
    p_awake: float,
    batch: int = 32,
    rounds: int = 120,
    seed: int = 0,
) -> list[ChurnSweepRow]:
    """Registry cell for E17: one awake-probability point of the churn sweep."""
    return churn_sweep_study(
        p_awake=p_awake, batch=batch, rounds=rounds, seed=seed
    )
