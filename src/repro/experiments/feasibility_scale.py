"""Experiment E12 — the feasibility verdict stack on 100–1000-node graphs.

The exhaustive Theorem-1 checker caps out in the mid-20s of nodes; the
layered verdict stack (:mod:`repro.conditions.verdict`) keeps answering the
feasibility question past that by combining corollary screens, structural
shortcuts, the source-component screen and certified witness search.  This
sweep measures how often each layer decides — and at what cost — across
three random families chosen to exercise different layers:

* sparse Erdős–Rényi digraphs, whose minimum in-degree collapses below
  ``2f + 1`` (the Corollary-3 screen decides INFEASIBLE);
* heterogeneous ring lattices, whose ring backbone passes the screens but
  whose thin long-range wiring leaves arc-shaped violating partitions for
  the witness layer to certify (denser wiring pushes toward UNKNOWN —
  witness search is one-sided and cannot prove feasibility);
* core-like networks, whose ``2f + 1`` hubs form a Definition-4 core
  structure (the screens decide FEASIBLE).

Every decided verdict's certificate is re-verified from scratch through
:func:`repro.conditions.verdict.verify_certificate`; the ``certificate_ok``
column must be true on every row.
"""

from __future__ import annotations

import time
from typing import TypedDict

from repro.conditions.verdict import (
    UNKNOWN,
    feasibility_verdict,
    verify_certificate,
)
from repro.graphs.digraph import Digraph
from repro.graphs.random_graphs import (
    erdos_renyi_digraph,
    heterogeneous_ring_lattice,
    random_core_like_network,
)
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict


class FeasibilityScaleRow(TypedDict):
    """One audited verdict of the E12 feasibility-at-scale sweep."""

    case: str
    n: int
    f: int
    status: str
    decided: bool
    decided_by: str
    certificate: str
    certificate_ok: bool
    screens_ms: float
    witness_ms: float
    elapsed_seconds: float


#: Runtime half of :class:`FeasibilityScaleRow`; validated at shard boundaries.
FEASIBILITY_SCALE_SCHEMA = schema_from_typeddict(
    FeasibilityScaleRow,
    roles={
        "case": "label",
        "n": "parameter",
        "f": "parameter",
        "status": "label",
        "decided": "verdict",
        "decided_by": "label",
        "certificate": "label",
        "certificate_ok": "verdict",
        "screens_ms": "metric",
        "witness_ms": "metric",
        "elapsed_seconds": "metric",
    },
)

#: Node counts swept by the scale battery.
DEFAULT_SCALE_SIZES = (100, 300, 1000)


def feasibility_scale_battery(seed: int = 11) -> list[tuple[str, Digraph, int]]:
    """Return the labelled 100–1000-node battery for the verdict sweep.

    Each size contributes one graph per family; generator seeds are derived
    from ``seed`` and the size so cases are independent but reproducible.
    """
    cases: list[tuple[str, Digraph, int]] = []
    for n in DEFAULT_SCALE_SIZES:
        cases.append(
            (
                f"hetring n={n} f=2 extra=0.5",
                heterogeneous_ring_lattice(n, 2, 0.5, rng=seed + n),
                2,
            )
        )
        cases.append(
            (
                f"hetring n={n} f=2 extra=2.0",
                heterogeneous_ring_lattice(n, 2, 2.0, rng=seed + n),
                2,
            )
        )
        cases.append(
            (
                f"erdos-renyi n={n} sparse f=2",
                erdos_renyi_digraph(n, 3.0 / n, rng=seed + n),
                2,
            )
        )
        cases.append(
            (
                f"core-like n={n} f=3",
                random_core_like_network(n, 3, rng=seed + n),
                3,
            )
        )
    return cases


def feasibility_scale_study(
    battery: list[tuple[str, Digraph, int]] | None = None,
    witness_attempts: int = 60,
    seed: int = 23,
) -> list[FeasibilityScaleRow]:
    """Run the verdict stack over the battery and audit every certificate.

    Each row records the verdict status, the deciding layer, the certificate
    kind, whether the certificate re-verifies from scratch, and the
    wall-clock split across layers.
    """
    chosen = battery if battery is not None else feasibility_scale_battery()
    rows: list[FeasibilityScaleRow] = []
    for label, graph, f in chosen:
        start = time.perf_counter()
        verdict = feasibility_verdict(
            graph, f, witness_attempts=witness_attempts, rng=seed
        )
        elapsed = time.perf_counter() - start
        layer_ms = {
            timing.layer: timing.seconds * 1000 for timing in verdict.timings
        }
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "status": verdict.status,
                "decided": verdict.status != UNKNOWN,
                "decided_by": verdict.decided_by or "-",
                "certificate": getattr(verdict.certificate, "kind", "-"),
                "certificate_ok": verify_certificate(graph, f, verdict),
                "screens_ms": round(layer_ms.get("screens", 0.0), 3),
                "witness_ms": round(layer_ms.get("witness-search", 0.0), 3),
                "elapsed_seconds": elapsed,
            }
        )
    return rows


@register_experiment(
    name="feasibility_at_scale",
    paper_section="Theorem-1 feasibility beyond the exact cap (E12)",
    claim=(
        "The layered verdict stack decides Theorem-1 feasibility with "
        "re-verifiable certificates on most 100-1000-node random graphs."
    ),
    engine="checker",
    grid={
        "case": tuple(label for label, _, _ in feasibility_scale_battery()),
        "witness_attempts": (60,),
    },
    schema=FEASIBILITY_SCALE_SCHEMA,
)
def feasibility_scale_cell(
    case: str, witness_attempts: int = 60, seed: int = 23
) -> list[FeasibilityScaleRow]:
    """Registry cell for E12: the verdict stack on one battery graph."""
    matching = select_labelled_case(
        case, feasibility_scale_battery(), "feasibility_at_scale case"
    )
    return feasibility_scale_study(
        battery=matching, witness_attempts=witness_attempts, seed=seed
    )
