"""Experiment E9 — the asynchronous extension (Section 7).

Two parts:

1. *Condition sweep* — mirror the Corollary-2/3 sweeps with the asynchronous
   screens (``n > 5f``, in-degree ``≥ 3f + 1``) and the ``2f + 1`` threshold
   in the exhaustive checker, confirming the thresholds shift exactly as
   Section 7 states.
2. *Simulation* — run Algorithm 1 through the partially asynchronous engine
   (bounded message delay ``B``) on graphs satisfying the asynchronous
   condition and report convergence and hull validity, and show that delays
   slow but do not break convergence on those graphs.
"""

from __future__ import annotations

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.asynchronous import (
    check_async_feasibility,
    passes_async_count_screen,
    passes_async_in_degree_screen,
)
from repro.conditions.necessary import check_feasibility
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.graphs.generators import complete_graph, core_network
from repro.simulation.async_engine import run_partially_asynchronous
from repro.simulation.inputs import bimodal_inputs


def async_condition_sweep(
    f: int,
    n_values: list[int] | None = None,
) -> list[dict[str, object]]:
    """Sweep ``n`` over complete graphs comparing the synchronous and
    asynchronous feasibility conditions (the thresholds ``3f`` vs ``5f``)."""
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    chosen_n = n_values if n_values is not None else list(range(2, 5 * f + 4))
    rows: list[dict[str, object]] = []
    for n in chosen_n:
        graph = complete_graph(n)
        sync_result = check_feasibility(graph, f)
        async_result = check_async_feasibility(graph, f)
        rows.append(
            {
                "n": n,
                "f": f,
                "sync_condition": sync_result.satisfied,
                "async_condition": async_result.satisfied,
                "n_gt_3f": n > 3 * f,
                "n_gt_5f": passes_async_count_screen(n, f) if f > 0 else n >= 1,
                "async_in_degree_screen": passes_async_in_degree_screen(graph, f),
            }
        )
    return rows


def async_simulation_study(
    cases: list[tuple[str, Digraph, int]] | None = None,
    delays: list[int] | None = None,
    rounds: int = 600,
    tolerance: float = 1e-5,
    seed: int = 23,
) -> list[dict[str, object]]:
    """Run Algorithm 1 under bounded message delays on async-feasible graphs.

    For each case and each delay bound ``B`` the row records whether the run
    converged, how many rounds it took and whether every fault-free value
    stayed within the initial fault-free hull.
    """
    chosen_cases = (
        cases
        if cases is not None
        else [
            ("complete n=6 f=1", complete_graph(6), 1),
            ("complete n=11 f=2", complete_graph(11), 2),
            ("core n=8 f=1", core_network(8, 1), 1),
        ]
    )
    chosen_delays = delays if delays is not None else [0, 1, 3]
    rows: list[dict[str, object]] = []
    for index, (label, graph, f) in enumerate(chosen_cases):
        rule = TrimmedMeanRule(f)
        faulty = random_fault_set(graph, f, rng=seed + index) if f > 0 else frozenset()
        inputs = bimodal_inputs(graph.nodes, 0.0, 1.0, rng=seed + index)
        async_feasible = check_async_feasibility(graph, f).satisfied
        for delay in chosen_delays:
            outcome = run_partially_asynchronous(
                graph=graph,
                rule=rule,
                inputs=inputs,
                faulty=faulty,
                adversary=ExtremePushStrategy(delta=1.0) if faulty else None,
                max_delay=delay,
                max_rounds=rounds,
                tolerance=tolerance,
                rng=seed + index,
            )
            rows.append(
                {
                    "case": label,
                    "f": f,
                    "async_condition_holds": async_feasible,
                    "max_delay_B": delay,
                    "converged": outcome.converged,
                    "rounds": outcome.rounds_executed,
                    "final_spread": outcome.final_spread,
                    "hull_validity_ok": outcome.validity_ok,
                }
            )
    return rows
