"""Experiment E9 — the asynchronous extension (Section 7).

Three parts:

1. *Condition sweep* — mirror the Corollary-2/3 sweeps with the asynchronous
   screens (``n > 5f``, in-degree ``≥ 3f + 1``) and the ``2f + 1`` threshold
   in the exhaustive checker, confirming the thresholds shift exactly as
   Section 7 states.
2. *Simulation study* — run Algorithm 1 through the partially asynchronous
   model (bounded message delay ``B``) on graphs satisfying the asynchronous
   condition and report convergence and hull validity, showing that delays
   slow but do not break convergence on those graphs.
3. *Monte-Carlo sweep* (:func:`async_sweep`) — the batched workhorse: for
   every case × delay bound × activation probability it runs ``B``
   independent executions through
   :class:`~repro.simulation.vectorized_async.VectorizedAsyncEngine` as one
   ``(B, n)`` matrix and aggregates convergence statistics.  One sweep cell
   costs roughly what a *single* scalar execution used to.

Both simulation drivers run on the vectorized asynchronous engine; the
cross-engine parity suite (``tests/test_engine_parity.py``) pins it
bit-for-bit to the scalar reference, so the speed costs no fidelity.
"""

from __future__ import annotations

from typing import TypedDict

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.asynchronous import (
    check_async_feasibility,
    passes_async_count_screen,
    passes_async_in_degree_screen,
)
from repro.conditions.necessary import check_feasibility
from repro.exceptions import GraphTooLargeError, InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.graphs.generators import complete_graph, core_network
from repro.simulation.engine import SimulationConfig
from repro.simulation.inputs import bimodal_inputs
from repro.simulation.vectorized import random_input_matrix
from repro.simulation.vectorized_async import (
    VectorizedAsyncEngine,
    run_vectorized_async,
)
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict


class AsynchronousRow(TypedDict):
    """One Monte-Carlo cell of the E9 asynchronous sweep.

    ``async_condition_holds`` is ``None`` when the graph exceeds the exact
    checker's node cap (the simulation still runs).
    """

    case: str
    f: int
    async_condition_holds: bool | None
    max_delay_B: int
    update_probability: float
    batch: int
    fraction_converged: float
    mean_rounds: float
    all_hull_valid: bool
    mean_final_spread: float


#: Runtime half of :class:`AsynchronousRow`; validated at shard boundaries.
ASYNCHRONOUS_SCHEMA = schema_from_typeddict(
    AsynchronousRow,
    roles={
        "case": "label",
        "f": "parameter",
        "async_condition_holds": "verdict",
        "max_delay_B": "parameter",
        "update_probability": "parameter",
        "batch": "parameter",
        "fraction_converged": "metric",
        "mean_rounds": "metric",
        "all_hull_valid": "verdict",
        "mean_final_spread": "metric",
    },
)


def async_condition_sweep(
    f: int,
    n_values: list[int] | None = None,
) -> list[dict[str, object]]:
    """Sweep ``n`` over complete graphs comparing the synchronous and
    asynchronous feasibility conditions (the thresholds ``3f`` vs ``5f``)."""
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    chosen_n = n_values if n_values is not None else list(range(2, 5 * f + 4))
    rows: list[dict[str, object]] = []
    for n in chosen_n:
        graph = complete_graph(n)
        sync_result = check_feasibility(graph, f)
        async_result = check_async_feasibility(graph, f)
        rows.append(
            {
                "n": n,
                "f": f,
                "sync_condition": sync_result.satisfied,
                "async_condition": async_result.satisfied,
                "n_gt_3f": n > 3 * f,
                "n_gt_5f": passes_async_count_screen(n, f) if f > 0 else n >= 1,
                "async_in_degree_screen": passes_async_in_degree_screen(graph, f),
            }
        )
    return rows


def _default_cases() -> list[tuple[str, Digraph, int]]:
    """The labelled ``(graph, f)`` scenarios shared by both simulation drivers."""
    return [
        ("complete n=6 f=1", complete_graph(6), 1),
        ("complete n=11 f=2", complete_graph(11), 2),
        ("core n=8 f=1", core_network(8, 1), 1),
    ]


def _async_feasibility_flag(graph: Digraph, f: int) -> bool | None:
    """Exhaustive async-condition verdict, or ``None`` when the graph exceeds
    the exact checker's node cap (the sweep still runs the simulation)."""
    try:
        return check_async_feasibility(graph, f).satisfied
    except GraphTooLargeError:
        return None


def async_simulation_study(
    cases: list[tuple[str, Digraph, int]] | None = None,
    delays: list[int] | None = None,
    rounds: int = 600,
    tolerance: float = 1e-5,
    seed: int = 23,
) -> list[dict[str, object]]:
    """Run Algorithm 1 under bounded message delays on async-feasible graphs.

    For each case and each delay bound ``B`` the row records whether the run
    converged, how many rounds it took and whether every fault-free value
    stayed within the initial fault-free hull.  Executions go through the
    vectorized asynchronous engine (bit-exact with the scalar reference).
    """
    chosen_cases = cases if cases is not None else _default_cases()
    chosen_delays = delays if delays is not None else [0, 1, 3]
    rows: list[dict[str, object]] = []
    for index, (label, graph, f) in enumerate(chosen_cases):
        rule = TrimmedMeanRule(f)
        faulty = random_fault_set(graph, f, rng=seed + index) if f > 0 else frozenset()
        inputs = bimodal_inputs(graph.nodes, 0.0, 1.0, rng=seed + index)
        async_feasible = _async_feasibility_flag(graph, f)
        for delay in chosen_delays:
            outcome = run_vectorized_async(
                graph=graph,
                rule=rule,
                inputs=inputs,
                faulty=faulty,
                adversary=ExtremePushStrategy(delta=1.0) if faulty else None,
                max_delay=delay,
                max_rounds=rounds,
                tolerance=tolerance,
                rng=seed + index,
            )
            rows.append(
                {
                    "case": label,
                    "f": f,
                    "async_condition_holds": async_feasible,
                    "max_delay_B": delay,
                    "converged": outcome.converged,
                    "rounds": outcome.rounds_executed,
                    "final_spread": outcome.final_spread,
                    "hull_validity_ok": outcome.validity_ok,
                }
            )
    return rows


def async_sweep(
    cases: list[tuple[str, Digraph, int]] | None = None,
    delays: list[int] | None = None,
    update_probabilities: list[float] | None = None,
    batch: int = 32,
    rounds: int = 600,
    tolerance: float = 1e-5,
    seed: int = 23,
) -> list[AsynchronousRow]:
    """Batched Monte-Carlo sweep of the partially asynchronous model.

    For every case × delay bound × activation probability, runs ``batch``
    independent executions (i.i.d. uniform inputs) as one vectorized pass and
    aggregates: fraction converged, mean rounds to convergence, whether the
    initial-hull validity held in every execution, and the mean final spread.
    The per-row RNG streams derive from ``seed`` via the engine's
    seed-spawning contract, so every cell is reproducible run to run.
    """
    if batch < 1:
        raise InvalidParameterError(f"batch must be >= 1, got {batch}")
    chosen_cases = cases if cases is not None else _default_cases()
    chosen_delays = delays if delays is not None else [0, 1, 3]
    chosen_probabilities = (
        update_probabilities if update_probabilities is not None else [1.0, 0.75]
    )
    rows: list[AsynchronousRow] = []
    for index, (label, graph, f) in enumerate(chosen_cases):
        rule = TrimmedMeanRule(f)
        faulty = random_fault_set(graph, f, rng=seed + index) if f > 0 else frozenset()
        async_feasible = _async_feasibility_flag(graph, f)
        config = SimulationConfig(
            max_rounds=rounds, tolerance=tolerance, record_history=False
        )
        # One input matrix per case: every delay × probability cell runs the
        # same B executions, so differences across cells are model effects.
        matrix = random_input_matrix(
            tuple(sorted(graph.nodes, key=repr)), batch, rng=seed + 7 * index
        )
        for delay in chosen_delays:
            for probability in chosen_probabilities:
                engine = VectorizedAsyncEngine(
                    graph=graph,
                    rule=rule,
                    faulty=faulty,
                    adversary=BatchExtremePushStrategy(1.0) if faulty else None,
                    config=config,
                    max_delay=delay,
                    update_probability=probability,
                )
                outcome = engine.run_batch(
                    matrix, rng=seed + 1000 * index + 10 * delay
                )
                rows.append(
                    {
                        "case": label,
                        "f": f,
                        "async_condition_holds": async_feasible,
                        "max_delay_B": delay,
                        "update_probability": probability,
                        "batch": batch,
                        "fraction_converged": outcome.fraction_converged,
                        "mean_rounds": outcome.mean_rounds_to_convergence(),
                        "all_hull_valid": outcome.all_valid,
                        "mean_final_spread": float(outcome.final_spread.mean()),
                    }
                )
    return rows


@register_experiment(
    name="asynchronous",
    paper_section="Section 7 (E9)",
    claim=(
        "Bounded message delays and sporadic activation slow but do not "
        "break convergence on graphs satisfying the asynchronous condition."
    ),
    engine="vectorized-async",
    grid={
        "case": tuple(label for label, _, _ in _default_cases()),
        "max_delay": (0, 1, 3),
        "update_probability": (1.0, 0.75),
        "batch": (32,),
        "rounds": (600,),
        "tolerance": (1e-5,),
    },
    schema=ASYNCHRONOUS_SCHEMA,
)
def asynchronous_cell(
    case: str,
    max_delay: int = 1,
    update_probability: float = 1.0,
    batch: int = 32,
    rounds: int = 600,
    tolerance: float = 1e-5,
    seed: int = 23,
) -> list[AsynchronousRow]:
    """Registry cell for E9: one Monte-Carlo cell of the asynchronous sweep."""
    return async_sweep(
        cases=select_labelled_case(case, _default_cases(), "asynchronous case"),
        delays=[max_delay],
        update_probabilities=[update_probability],
        batch=batch,
        rounds=rounds,
        tolerance=tolerance,
        seed=seed,
    )
