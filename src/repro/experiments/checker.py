"""Experiment E10 (ablation) — behaviour of the condition checkers.

Two questions:

1. *Agreement* — do the cheap screens, the greedy witness search and the
   randomized witness search agree with the exact (exhaustive) checker on a
   battery of small graphs?  Screens may only produce false "pass" (they are
   necessary, not sufficient), and the heuristic searches may only produce
   false "pass" (they are sound when they report a witness); neither may ever
   contradict the exact checker in the other direction.
2. *Cost* — how does the exhaustive checker's running time scale with ``n``
   and ``f`` compared to the screens and heuristics?  (Timed by the
   pytest-benchmark harness; this module only supplies the workloads.)
"""

from __future__ import annotations

import time
from typing import TypedDict

import numpy as np

from repro.conditions.necessary import (
    DEFAULT_MAX_EXACT_NODES,
    check_feasibility,
    find_violating_partition,
    passes_count_screen,
    passes_in_degree_screen,
    verify_witness,
)
from repro.conditions.witnesses import greedy_witness_search, random_witness_search
from repro.graphs.digraph import Digraph
from repro.graphs.generators import (
    butterfly_barbell,
    chord_network,
    complete_graph,
    core_network,
    hypercube,
    ring_lattice,
    undirected_ring,
)
from repro.graphs.random_graphs import erdos_renyi_digraph, k_in_regular_digraph
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict


class CheckerRow(TypedDict):
    """One row of the E10 checker-agreement study (one battery graph)."""

    case: str
    n: int
    f: int
    exact_condition_holds: bool
    methods_agree: bool
    screens_pass: bool
    greedy_found_witness: bool
    random_found_witness: bool
    consistent: bool


#: Runtime half of :class:`CheckerRow`; validated at shard boundaries.
CHECKER_SCHEMA = schema_from_typeddict(
    CheckerRow,
    roles={
        "case": "label",
        "n": "parameter",
        "f": "parameter",
        "exact_condition_holds": "verdict",
        "methods_agree": "verdict",
        "screens_pass": "verdict",
        "greedy_found_witness": "verdict",
        "random_found_witness": "verdict",
        "consistent": "verdict",
    },
)


class CheckerScalingRow(TypedDict):
    """One row of the E10b checker-scaling sweep (one large graph)."""

    case: str
    n: int
    f: int
    satisfied: bool
    decided_by: str
    witness_valid: bool
    elapsed_seconds: float


#: Runtime half of :class:`CheckerScalingRow`; validated at shard boundaries.
CHECKER_SCALING_SCHEMA = schema_from_typeddict(
    CheckerScalingRow,
    roles={
        "case": "label",
        "n": "parameter",
        "f": "parameter",
        "satisfied": "verdict",
        "decided_by": "label",
        "witness_valid": "verdict",
        "elapsed_seconds": "metric",
    },
)


def checker_test_battery(seed: int = 17) -> list[tuple[str, Digraph, int]]:
    """Return a labelled battery of small graphs covering both verdicts."""
    rng = np.random.default_rng(seed)
    battery: list[tuple[str, Digraph, int]] = [
        ("complete n=4 f=1", complete_graph(4), 1),
        ("complete n=6 f=1", complete_graph(6), 1),
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=7 f=2", core_network(7, 2), 2),
        ("core n=5 f=1", core_network(5, 1), 1),
        ("chord n=5 f=1", chord_network(5, 1), 1),
        ("chord n=7 f=2", chord_network(7, 2), 2),
        ("chord n=8 f=1", chord_network(8, 1), 1),
        ("hypercube d=3 f=1", hypercube(3), 1),
        ("ring n=6 f=1", undirected_ring(6), 1),
        ("ring-lattice n=8 k=3 f=1", ring_lattice(8, 3), 1),
        ("barbell 4+4 bridge=1 f=1", butterfly_barbell(4, 1), 1),
        ("barbell 4+4 bridge=3 f=1", butterfly_barbell(4, 3), 1),
    ]
    for index in range(3):
        battery.append(
            (
                f"erdos-renyi n=8 p=0.6 #{index}",
                erdos_renyi_digraph(8, 0.6, rng=rng),
                1,
            )
        )
        battery.append(
            (
                f"k-in-regular n=8 k=4 #{index}",
                k_in_regular_digraph(8, 4, rng=rng),
                1,
            )
        )
    return battery


def checker_agreement_study(
    battery: list[tuple[str, Digraph, int]] | None = None,
    random_attempts: int = 300,
    seed: int = 29,
) -> list[CheckerRow]:
    """Compare the exact checker against screens and heuristic searches.

    Every row records the exact verdict, the screen verdicts and whether each
    heuristic found a witness; the ``consistent`` column is true when no
    method contradicts the exact verdict in the disallowed direction.
    """
    chosen = battery if battery is not None else checker_test_battery()
    rows: list[CheckerRow] = []
    for label, graph, f in chosen:
        exact_witness = find_violating_partition(graph, f, method="bitset")
        legacy_witness = find_violating_partition(graph, f, method="python")
        methods_agree = exact_witness == legacy_witness
        exact_holds = exact_witness is None
        screens_pass = passes_count_screen(
            graph.number_of_nodes, f
        ) and passes_in_degree_screen(graph, f)
        greedy = greedy_witness_search(graph, f)
        randomized = random_witness_search(
            graph, f, attempts=random_attempts, rng=seed
        )
        greedy_valid = greedy is None or verify_witness(graph, f, greedy)
        randomized_valid = randomized is None or verify_witness(graph, f, randomized)
        consistent = True
        # The bitset fast path and the legacy enumeration are the same search
        # in different arithmetic; any disagreement is an implementation bug.
        if not methods_agree:
            consistent = False
        # Screens are necessary conditions: they may pass on infeasible graphs
        # but must never fail on feasible ones.
        if exact_holds and not screens_pass:
            consistent = False
        # Heuristic witnesses must be genuine (sound) and can only exist when
        # the exact checker also finds the graph infeasible.
        if greedy is not None and (exact_holds or not greedy_valid):
            consistent = False
        if randomized is not None and (exact_holds or not randomized_valid):
            consistent = False
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "exact_condition_holds": exact_holds,
                "methods_agree": methods_agree,
                "screens_pass": screens_pass,
                "greedy_found_witness": greedy is not None,
                "random_found_witness": randomized is not None,
                "consistent": consistent,
            }
        )
    return rows


def checker_scaling_cases() -> list[tuple[str, Digraph, int]]:
    """Return cases of growing size for the checker-cost benchmark."""
    return [
        ("core n=7 f=2", core_network(7, 2), 2),
        ("core n=10 f=3", core_network(10, 3), 3),
        ("chord n=9 f=2", chord_network(9, 2), 2),
        ("chord n=11 f=2", chord_network(11, 2), 2),
        ("hypercube d=3 f=1", hypercube(3), 1),
        ("hypercube d=4 f=1", hypercube(4), 1),
    ]


def exhaustive_checker_workload(case: tuple[str, Digraph, int]) -> bool:
    """Benchmark payload: run the full feasibility pipeline on one case."""
    _, graph, f = case
    return check_feasibility(graph, f, use_structural_shortcuts=False).satisfied


def checker_scaling_battery() -> list[tuple[str, Digraph, int]]:
    """Labelled cases at and beyond the legacy pure-Python ceiling (n = 16).

    The ``n > 16`` entries used to raise
    :class:`~repro.exceptions.GraphTooLargeError` under the old default cap;
    the ``n = 16`` entries sat exactly at it and cost seconds through the
    set-based enumeration (see ``BENCH_checker.json``) versus milliseconds
    here.  The mix covers feasible graphs (full ``2^{n−|F|}`` enumeration,
    the worst case) and violating ones (early exit on the first witness).
    """
    return [
        ("chord n=16 f=1", chord_network(16, 1), 1),
        ("chord n=20 f=1", chord_network(20, 1), 1),
        ("core n=18 f=2", core_network(18, 2), 2),
        ("ring-lattice n=20 k=4 f=1", ring_lattice(20, 4), 1),
        ("hypercube d=4 f=1", hypercube(4), 1),
        ("barbell 12+12 n=24 f=1", butterfly_barbell(12, 1), 1),
    ]


@register_experiment(
    name="checker_scaling",
    paper_section="Theorem-1 checker at scale (E10b)",
    claim=(
        "The bitset-vectorized checker decides the exact Theorem-1 "
        "condition on graphs beyond the legacy pure-Python ceiling."
    ),
    engine="checker",
    grid={
        "case": tuple(label for label, _, _ in checker_scaling_battery()),
    },
    schema=CHECKER_SCALING_SCHEMA,
)
def checker_scaling_cell(case: str) -> list[CheckerScalingRow]:
    """Registry cell for E10b: time the exact bitset check on one large case."""
    matching = select_labelled_case(
        case, checker_scaling_battery(), "checker_scaling case"
    )
    rows: list[CheckerScalingRow] = []
    for label, graph, f in matching:
        cap = max(graph.number_of_nodes, DEFAULT_MAX_EXACT_NODES)
        start = time.perf_counter()
        result = check_feasibility(
            graph, f, max_nodes=cap, use_structural_shortcuts=False
        )
        elapsed = time.perf_counter() - start
        witness_valid = result.witness is None or verify_witness(
            graph, f, result.witness
        )
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "satisfied": result.satisfied,
                "decided_by": result.method,
                "witness_valid": witness_valid,
                "elapsed_seconds": elapsed,
            }
        )
    return rows


@register_experiment(
    name="checker",
    paper_section="Theorem-1 checker toolchain (E10)",
    claim=(
        "Screens and heuristic witness searches never contradict the "
        "exhaustive Theorem-1 checker in the disallowed direction."
    ),
    engine="checker",
    grid={
        "case": tuple(label for label, _, _ in checker_test_battery()),
        "random_attempts": (300,),
    },
    schema=CHECKER_SCHEMA,
)
def checker_cell(
    case: str, random_attempts: int = 300, seed: int = 29
) -> list[CheckerRow]:
    """Registry cell for E10: the checker-agreement study on one battery graph."""
    matching = select_labelled_case(case, checker_test_battery(), "checker case")
    return checker_agreement_study(
        battery=matching, random_attempts=random_attempts, seed=seed
    )
