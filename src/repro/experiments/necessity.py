"""Experiment E1 — necessity of the Theorem-1 condition.

For graphs that *violate* the condition, the necessity proof constructs an
explicit adversarial scenario: give the nodes of ``L`` the input ``m``, the
nodes of ``R`` the input ``M > m``, nodes of ``C`` inputs inside ``[m, M]``,
and let the faulty nodes in ``F`` send ``m⁻ < m`` to ``L``, ``M⁺ > M`` to
``R`` and in-range values to ``C``.  Any validity-respecting iterative
algorithm then keeps ``L`` at ``m`` and ``R`` at ``M`` forever.

The driver reproduces this computationally: it finds (or is given) a violating
partition, mounts the :class:`~repro.adversary.strategies.SplitBrainStrategy`
attack, runs a chosen update rule, and reports that

* the spread never shrinks below the gap ``M − m`` (no convergence), while
* validity still holds (the algorithm itself is well behaved — it is the graph
  that makes consensus impossible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TypedDict

import numpy as np

from repro.adversary.strategies import SplitBrainStrategy
from repro.adversary.vectorized import BatchSplitBrainStrategy
from repro.algorithms.base import UpdateRule
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.necessary import find_violating_partition, verify_witness
from repro.conditions.witnesses import (
    chord_n7_f2_witness,
    hypercube_dimension_cut_witness,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.graphs.generators import chord_network, hypercube, undirected_ring
from repro.simulation.engine import SimulationConfig, run_synchronous
from repro.simulation.inputs import split_inputs_from_witness
from repro.simulation.vectorized import (
    BatchOutcome,
    BatchRunner,
    VectorizedEngine,
    run_vectorized,
)
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict
from repro.types import ConsensusOutcome, PartitionWitness


class NecessityRow(TypedDict):
    """One row of the E1 necessity sweep (one violating graph, one attack)."""

    case: str
    n: int
    f: int
    witness: str
    rounds: int
    final_spread: float
    converged: bool
    validity_ok: bool
    stalled: bool


#: Runtime half of :class:`NecessityRow`; validated at shard boundaries.
NECESSITY_SCHEMA = schema_from_typeddict(
    NecessityRow,
    roles={
        "case": "label",
        "n": "parameter",
        "f": "parameter",
        "witness": "label",
        "rounds": "metric",
        "final_spread": "metric",
        "converged": "verdict",
        "validity_ok": "verdict",
        "stalled": "verdict",
    },
)


@dataclass(frozen=True)
class NecessityDemonstration:
    """Outcome of one split-brain attack on a condition-violating graph.

    Attributes
    ----------
    witness:
        The violating partition used to mount the attack.
    outcome:
        The simulation outcome.
    stalled:
        Whether the fault-free spread stayed at (or above) its initial value —
        the non-convergence the necessity proof predicts.
    left_stuck / right_stuck:
        Whether every node of ``L`` ended exactly at the low input and every
        node of ``R`` at the high input.
    """

    witness: PartitionWitness
    outcome: ConsensusOutcome
    stalled: bool
    left_stuck: bool
    right_stuck: bool


def demonstrate_necessity(
    graph: Digraph,
    f: int,
    witness: PartitionWitness | None = None,
    rule: UpdateRule | None = None,
    rounds: int = 50,
    low_value: float = 0.0,
    high_value: float = 1.0,
) -> NecessityDemonstration:
    """Mount the necessity-proof attack on ``graph`` and report the outcome.

    ``witness`` may be supplied (e.g. the paper's chord counter-example); when
    omitted the exhaustive checker finds one.  Raises
    :class:`~repro.exceptions.InvalidParameterError` if the graph actually
    satisfies the condition (there is nothing to demonstrate).
    """
    if witness is None:
        witness = find_violating_partition(graph, f)
        if witness is None:
            raise InvalidParameterError(
                "graph satisfies the Theorem-1 condition; the necessity attack "
                "requires a violating partition"
            )
    if not verify_witness(graph, f, witness):
        raise InvalidParameterError(
            f"the supplied partition {witness.describe()} does not violate the "
            "condition on this graph"
        )
    chosen_rule = rule if rule is not None else TrimmedMeanRule(f)
    inputs = split_inputs_from_witness(
        witness, low_value=low_value, high_value=high_value
    )
    # Trimmed rules run on the vectorized engine with the batch-native
    # split-brain attack (bit-exact with the scalar pair and ~an order of
    # magnitude faster); rules without a vectorized kernel keep the
    # scalar path.
    if VectorizedEngine.supports_rule(chosen_rule):
        outcome = run_vectorized(
            graph=graph,
            rule=chosen_rule,
            inputs=inputs,
            faulty=witness.faulty,
            adversary=BatchSplitBrainStrategy(
                witness, low_value=low_value, high_value=high_value, margin=1.0
            ),
            max_rounds=rounds,
            tolerance=1e-9,
            record_history=True,
            stop_on_convergence=True,
        )
    else:
        outcome = run_synchronous(
            graph=graph,
            rule=chosen_rule,
            inputs=inputs,
            faulty=witness.faulty,
            adversary=SplitBrainStrategy(
                witness, low_value=low_value, high_value=high_value, margin=1.0
            ),
            max_rounds=rounds,
            tolerance=1e-9,
            record_history=True,
            stop_on_convergence=True,
        )
    gap = high_value - low_value
    stalled = outcome.final_spread >= gap - 1e-9
    left_stuck = all(
        abs(outcome.final_values[node] - low_value) <= 1e-9
        for node in witness.left
    )
    right_stuck = all(
        abs(outcome.final_values[node] - high_value) <= 1e-9
        for node in witness.right
    )
    return NecessityDemonstration(
        witness=witness,
        outcome=outcome,
        stalled=stalled,
        left_stuck=left_stuck,
        right_stuck=right_stuck,
    )


def split_brain_stall_study(
    graph: Digraph,
    f: int,
    witness: PartitionWitness,
    batch: int = 16,
    rounds: int = 120,
    seed: int = 0,
    low_value: float = 0.0,
    high_value: float = 1.0,
) -> tuple[BatchOutcome, float]:
    """Monte-Carlo batch of the necessity attack on one violating partition.

    Every row pins ``L`` at ``low_value`` and ``R`` at ``high_value`` (the
    proof's requirement) and draws the centre and faulty inputs uniformly in
    between, so the batch samples the attack over many legitimate input
    assignments.  Returns the batch outcome and the fraction of executions
    stalled at the full ``high_value − low_value`` gap — 1.0 whenever the
    witness is genuine.  Shared by the robustness comparison and the
    ``adversary_showdown`` sweep.
    """
    strategy = BatchSplitBrainStrategy(
        witness, low_value=low_value, high_value=high_value, margin=1.0
    )
    runner = BatchRunner(
        graph=graph,
        rule=TrimmedMeanRule(f),
        faulty=witness.faulty,
        adversary=strategy,
        config=SimulationConfig(
            max_rounds=rounds, tolerance=1e-9, record_history=False
        ),
    )
    base = strategy.recommended_inputs()
    # RNG-stream contract: one spawned stream per batch row, draws in
    # canonical repr-sorted node order (set iteration is hash-ordered and
    # was caught by reprolint ORD001), so row k's inputs are independent
    # of the batch size and of every other row.
    drawn_nodes = sorted(witness.center | witness.faulty, key=repr)
    row_streams = np.random.SeedSequence(seed).spawn(batch)
    inputs = []
    for row_stream in row_streams:
        rng = np.random.default_rng(row_stream)
        row = dict(base)
        for node in drawn_nodes:
            row[node] = float(rng.uniform(low_value, high_value))
        inputs.append(row)
    outcome = runner.run(inputs)
    gap = high_value - low_value
    stalled = float((outcome.final_spread >= gap - 1e-9).mean())
    return outcome, stalled


def necessity_rows(
    cases: list[tuple[str, Digraph, int, PartitionWitness | None]],
    rounds: int = 50,
) -> list[NecessityRow]:
    """Run :func:`demonstrate_necessity` over labelled cases and return table rows.

    Each case is ``(label, graph, f, witness_or_None)``.
    """
    rows: list[NecessityRow] = []
    for label, graph, f, witness in cases:
        demo = demonstrate_necessity(graph, f, witness=witness, rounds=rounds)
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "witness": demo.witness.describe(),
                "rounds": demo.outcome.rounds_executed,
                "final_spread": demo.outcome.final_spread,
                "converged": demo.outcome.converged,
                "validity_ok": demo.outcome.validity_ok,
                "stalled": demo.stalled,
            }
        )
    return rows


def default_necessity_cases() -> list[tuple[str, Digraph, int, PartitionWitness | None]]:
    """Labelled condition-violating graphs for the registered E1 sweep.

    The chord and hypercube entries carry the paper's explicit witnesses;
    the ring entries let the exhaustive checker find one — the ``n = 18``
    ring sits beyond the legacy checker's ceiling and exercises the bitset
    fast path end to end.
    """
    return [
        ("chord n=7 f=2", chord_network(7, 2), 2, chord_n7_f2_witness()),
        ("hypercube d=3 f=1", hypercube(3), 1, hypercube_dimension_cut_witness(3)),
        ("ring n=6 f=1", undirected_ring(6), 1, None),
        ("ring n=18 f=1", undirected_ring(18), 1, None),
    ]


@register_experiment(
    name="necessity",
    paper_section="Section 3, Theorem 1 necessity (E1)",
    claim=(
        "On condition-violating graphs the split-brain adversary pins the "
        "two partition sides apart forever while validity still holds."
    ),
    engine="vectorized",
    grid={
        "case": (
            "chord n=7 f=2",
            "hypercube d=3 f=1",
            "ring n=6 f=1",
            "ring n=18 f=1",
        ),
        "rounds": (50,),
    },
    schema=NECESSITY_SCHEMA,
)
def necessity_cell(case: str, rounds: int = 50) -> list[NecessityRow]:
    """Registry cell for E1: mount the necessity attack on one violating graph."""
    matching = select_labelled_case(
        case, default_necessity_cases(), "necessity case"
    )
    return necessity_rows(matching, rounds=rounds)
