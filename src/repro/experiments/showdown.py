"""Experiment E13 — the adversary showdown: every batch-native strategy
against every graph family.

The necessity proof needs one hand-picked attack; robust reproduction wants
the opposite — *families* of adversarial executions, in the spirit of the
invariant-inference and accountable-consensus literature that stresses
protocols with many adversarial behaviours rather than one.  This sweep
crosses the full batch-native strategy library
(:mod:`repro.adversary.vectorized`) with feasible **and** condition-violating
graph families and records, per ``(strategy, case)`` cell, the Monte-Carlo
convergence fraction, whether validity (Theorem 2) survived in every
execution, and — for the split-brain attack — the fraction of executions
stalled at the full input gap.

The expected shape: on feasible graphs Algorithm 1 converges with validity
intact under *every* strategy; on violating graphs the split-brain attack
stalls every execution while generic disruption may or may not.  Everything
runs on the batched vectorized engine, so a full strategy x family grid is a
few batched passes rather than thousands of scalar runs.
"""

from __future__ import annotations

from typing import TypedDict

import numpy as np

from repro.adversary.selection import highest_out_degree_fault_set
from repro.adversary.vectorized import (
    BatchBroadcastConsistentWrapper,
    BatchExtremePushStrategy,
    BatchFrozenValueStrategy,
    BatchRandomNoiseStrategy,
    BatchSplitBrainStrategy,
    BatchStaticValueStrategy,
    BatchStrategy,
)
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.necessary import check_feasibility, find_violating_partition
from repro.conditions.witnesses import chord_n7_f2_witness
from repro.exceptions import InvalidParameterError
from repro.experiments.necessity import split_brain_stall_study
from repro.graphs.digraph import Digraph
from repro.graphs.generators import (
    chord_network,
    complete_graph,
    core_network,
    undirected_ring,
)
from repro.simulation.engine import SimulationConfig
from repro.simulation.vectorized import BatchRunner, random_input_matrix
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict
from repro.types import PartitionWitness


class ShowdownRow(TypedDict):
    """One (strategy, case) cell of the E13 adversary showdown.

    The four statistics columns are ``None`` on inapplicable cells
    (split-brain on a feasible graph has no witness to attack through), and
    ``stalled_fraction`` is ``None`` for every non-split-brain strategy.
    """

    case: str
    strategy: str
    n: int
    f: int
    batch: int
    condition_holds: bool
    applicable: bool
    fraction_converged: float | None
    all_validity_ok: bool | None
    mean_rounds: float | None
    stalled_fraction: float | None


#: Runtime half of :class:`ShowdownRow`; validated at shard boundaries.
SHOWDOWN_SCHEMA = schema_from_typeddict(
    ShowdownRow,
    roles={
        "case": "label",
        "strategy": "label",
        "n": "parameter",
        "f": "parameter",
        "batch": "parameter",
        "condition_holds": "verdict",
        "applicable": "verdict",
        "fraction_converged": "metric",
        "all_validity_ok": "verdict",
        "mean_rounds": "metric",
        "stalled_fraction": "metric",
    },
)

#: Strategy labels accepted by the sweep, in display order.
SHOWDOWN_STRATEGIES = (
    "static",
    "frozen",
    "noise",
    "extreme-push",
    "broadcast-extreme",
    "split-brain",
)


def default_showdown_cases() -> list[tuple[str, Digraph, int]]:
    """Labelled graph-family cases: feasible and condition-violating mixed.

    The chord ``n=7, f=2`` counter-example and the ``n=6`` ring violate the
    Theorem-1 condition (split-brain applies); the rest satisfy it.
    """
    return [
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=7 f=2", core_network(7, 2), 2),
        ("core n=10 f=3", core_network(10, 3), 3),
        ("chord n=8 f=1", chord_network(8, 1), 1),
        ("chord n=7 f=2", chord_network(7, 2), 2),
        ("ring n=6 f=1", undirected_ring(6), 1),
    ]


def make_showdown_strategy(
    strategy: str,
    witness: PartitionWitness | None = None,
    seed: int = 0,
) -> BatchStrategy:
    """Instantiate one batch-native strategy by its sweep label.

    ``witness`` is required for ``"split-brain"``; ``seed`` roots the
    per-row noise streams (the RNG-stream contract).
    """
    if strategy == "static":
        return BatchStaticValueStrategy(500.0)
    if strategy == "frozen":
        return BatchFrozenValueStrategy()
    if strategy == "noise":
        return BatchRandomNoiseStrategy(
            -10.0, 10.0, rng=np.random.SeedSequence(seed)
        )
    if strategy == "extreme-push":
        return BatchExtremePushStrategy(delta=3.0)
    if strategy == "broadcast-extreme":
        return BatchBroadcastConsistentWrapper(BatchExtremePushStrategy(delta=3.0))
    if strategy == "split-brain":
        if witness is None:
            raise InvalidParameterError(
                "split-brain needs a violating partition witness"
            )
        return BatchSplitBrainStrategy(witness, 0.0, 1.0, margin=1.0)
    raise InvalidParameterError(
        f"unknown showdown strategy {strategy!r}; known: {SHOWDOWN_STRATEGIES}"
    )


def _witness_for(label: str, graph: Digraph, f: int) -> PartitionWitness | None:
    """Return a violating partition for the case, or ``None`` if feasible."""
    if label == "chord n=7 f=2":
        return chord_n7_f2_witness()
    if check_feasibility(graph, f).satisfied:
        return None
    return find_violating_partition(graph, f)


def adversary_showdown(
    cases: list[tuple[str, Digraph, int]] | None = None,
    strategies: tuple[str, ...] = SHOWDOWN_STRATEGIES,
    batch: int = 32,
    rounds: int = 150,
    seed: int = 0,
) -> list[ShowdownRow]:
    """Run the full strategy x case cross as batched Monte-Carlo passes.

    Split-brain cells on feasible graphs report ``applicable=False`` (there
    is no witness to attack through); split-brain on violating graphs pins
    ``L`` at 0 and ``R`` at 1 with per-row random centre/faulty inputs and
    reports the stalled fraction.  All other cells draw ``batch`` uniform
    input rows and use the ``f`` highest-out-degree nodes as the fault set.
    """
    chosen = cases if cases is not None else default_showdown_cases()
    rows: list[ShowdownRow] = []
    for label, graph, f in chosen:
        witness = _witness_for(label, graph, f)
        for strategy_label in strategies:
            if strategy_label == "split-brain" and witness is None:
                rows.append(
                    {
                        "case": label,
                        "strategy": strategy_label,
                        "n": graph.number_of_nodes,
                        "f": f,
                        "batch": batch,
                        "condition_holds": witness is None,
                        "applicable": False,
                        "fraction_converged": None,
                        "all_validity_ok": None,
                        "mean_rounds": None,
                        "stalled_fraction": None,
                    }
                )
                continue
            stalled: float | None
            if strategy_label == "split-brain":
                assert witness is not None
                outcome, stalled = split_brain_stall_study(
                    graph, f, witness, batch=batch, rounds=rounds, seed=seed
                )
            else:
                runner = BatchRunner(
                    graph=graph,
                    rule=TrimmedMeanRule(f),
                    faulty=highest_out_degree_fault_set(graph, f),
                    adversary=make_showdown_strategy(strategy_label, seed=seed),
                    config=SimulationConfig(
                        max_rounds=rounds, tolerance=1e-6, record_history=False
                    ),
                )
                matrix = random_input_matrix(
                    runner.engine.nodes, batch, rng=seed
                )
                outcome = runner.run(matrix)
                stalled = None
            rows.append(
                {
                    "case": label,
                    "strategy": strategy_label,
                    "n": graph.number_of_nodes,
                    "f": f,
                    "batch": batch,
                    "condition_holds": witness is None,
                    "applicable": True,
                    "fraction_converged": outcome.fraction_converged,
                    "all_validity_ok": outcome.all_valid,
                    "mean_rounds": outcome.mean_rounds_to_convergence(),
                    "stalled_fraction": stalled,
                }
            )
    return rows


@register_experiment(
    name="adversary_showdown",
    paper_section="Theorems 1-2 stress test across adversary families (E13)",
    claim=(
        "On feasible graphs Algorithm 1 converges with validity intact under "
        "every strategy in the batch-native library; on violating graphs the "
        "split-brain attack stalls every execution."
    ),
    engine="vectorized",
    grid={
        "case": tuple(label for label, _, _ in default_showdown_cases()),
        "strategy": SHOWDOWN_STRATEGIES,
        "batch": (32,),
        "rounds": (150,),
    },
    schema=SHOWDOWN_SCHEMA,
)
def adversary_showdown_cell(
    case: str,
    strategy: str,
    batch: int = 32,
    rounds: int = 150,
    seed: int = 0,
) -> list[ShowdownRow]:
    """Registry cell for E13: one batch-native strategy on one graph family."""
    matching = select_labelled_case(
        case, default_showdown_cases(), "showdown case"
    )
    return adversary_showdown(
        cases=matching,
        strategies=(strategy,),
        batch=batch,
        rounds=rounds,
        seed=seed,
    )
