"""Experiment E7 — convergence rate: measured contraction vs the Lemma-5 bound.

For each graph family the driver

1. computes ``α`` (eq. 3) and the worst-case window length ``n − f − 1``,
2. runs Algorithm 1 under an extreme-pushing adversary and records the trace,
3. replays Theorem 3's windowed argument along the trace
   (:func:`repro.analysis.convergence.verify_theorem3_windows`), reporting the
   analytical per-window factor and the contraction actually measured, and
4. fits an empirical per-round decay rate for comparison.

The paper's bound must never be violated (measured ≤ bound per window); the
measured rate is typically far better than the bound, and the driver reports
the gap so the benchmark can show the bound's conservatism quantitatively.

Execution is vectorized: the per-case study runs on
:func:`~repro.simulation.vectorized.run_vectorized` (bit-identical to the
scalar engine), and :func:`convergence_rate_sweep` extends each case into a
Monte-Carlo batch over many input draws via
:class:`~repro.simulation.vectorized.BatchRunner`.
"""

from __future__ import annotations

from typing import TypedDict

import numpy as np

from repro.adversary.selection import random_fault_set
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.analysis.convergence import (
    alpha_for_rule,
    empirical_decay_rate,
    lemma5_contraction_factor,
    rounds_to_reach,
    verify_theorem3_windows,
    worst_case_window_length,
)
from repro.graphs.digraph import Digraph
from repro.graphs.generators import chord_network, complete_graph, core_network
from repro.simulation.engine import SimulationConfig
from repro.simulation.inputs import bimodal_inputs
from repro.simulation.trace import spreads_from_records
from repro.simulation.vectorized import BatchRunner, run_vectorized
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict
from repro.types import NodeId


class ConvergenceRateRow(TypedDict):
    """One Monte-Carlo cell of the E7 convergence-rate sweep.

    ``max_rounds`` and the percentile columns are ``float`` because an empty
    converged set yields ``nan`` (declared float; int values still validate).
    """

    case: str
    n: int
    f: int
    batch: int
    alpha: float
    fraction_converged: float
    all_validity_ok: bool
    mean_rounds: float
    p50_rounds: float
    p90_rounds: float
    max_rounds: float
    bound_rounds: int


#: Runtime half of :class:`ConvergenceRateRow`; validated at shard boundaries.
CONVERGENCE_RATE_SCHEMA = schema_from_typeddict(
    ConvergenceRateRow,
    roles={
        "case": "label",
        "n": "parameter",
        "f": "parameter",
        "batch": "parameter",
        "alpha": "metric",
        "fraction_converged": "metric",
        "all_validity_ok": "verdict",
        "mean_rounds": "metric",
        "p50_rounds": "metric",
        "p90_rounds": "metric",
        "max_rounds": "metric",
        "bound_rounds": "metric",
    },
)


def default_rate_cases() -> list[tuple[str, Digraph, int]]:
    """Return the labelled ``(name, graph, f)`` cases used by the E7 benchmark."""
    return [
        ("complete n=4 f=1", complete_graph(4), 1),
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=7 f=2", core_network(7, 2), 2),
        ("core n=10 f=3", core_network(10, 3), 3),
        ("chord n=5 f=1", chord_network(5, 1), 1),
        ("chord n=8 f=1", chord_network(8, 1), 1),
    ]


def convergence_rate_study(
    cases: list[tuple[str, Digraph, int]] | None = None,
    rounds: int = 120,
    seed: int = 11,
) -> list[dict[str, object]]:
    """Measure contraction vs the analytical bound for each case.

    Every row reports ``α``, the worst-case window bound, the Lemma-5 factor
    at that window, the measured per-round decay rate, the analytically
    bounded round count to reach ``1e-4`` of the initial spread, the measured
    round count, and whether every Theorem-3 window respected the bound.
    """
    chosen = cases if cases is not None else default_rate_cases()
    rows: list[dict[str, object]] = []
    for index, (label, graph, f) in enumerate(chosen):
        rule = TrimmedMeanRule(f)
        faulty: frozenset[NodeId] = (
            random_fault_set(graph, f, rng=seed + index) if f > 0 else frozenset()
        )
        fault_free = graph.nodes - faulty
        alpha = alpha_for_rule(graph, rule, fault_free=fault_free)
        window_bound = worst_case_window_length(graph.number_of_nodes, f)
        factor_bound = lemma5_contraction_factor(alpha, window_bound)

        inputs = bimodal_inputs(graph.nodes, 0.0, 1.0, rng=seed + index)
        outcome = run_vectorized(
            graph=graph,
            rule=rule,
            inputs=inputs,
            faulty=faulty,
            adversary=BatchExtremePushStrategy(delta=1.0) if faulty else None,
            max_rounds=rounds,
            tolerance=1e-10,
            record_history=True,
            stop_on_convergence=False,
        )
        spreads = spreads_from_records(outcome.history)
        measured_rate = empirical_decay_rate(spreads)
        target = 1e-4 * max(outcome.initial_spread, 1e-300)
        measured_rounds = next(
            (
                record.round_index
                for record in outcome.history
                if record.spread <= target
            ),
            None,
        )
        bound_rounds = rounds_to_reach(
            outcome.initial_spread, target, alpha, window_bound
        )
        checks = verify_theorem3_windows(
            outcome.history, graph, f, alpha, faulty=faulty
        )
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "alpha": alpha,
                "window_bound": window_bound,
                "lemma5_factor": factor_bound,
                "measured_rate_per_round": measured_rate,
                "bound_rounds_to_1e-4": bound_rounds,
                "measured_rounds_to_1e-4": measured_rounds,
                "windows_checked": len(checks),
                "all_windows_respect_bound": all(check.satisfied for check in checks),
                "validity_ok": outcome.validity_ok,
            }
        )
    return rows


def convergence_rate_sweep(
    cases: list[tuple[str, Digraph, int]] | None = None,
    batch: int = 64,
    rounds: int = 300,
    tolerance: float = 1e-7,
    seed: int = 11,
) -> list[ConvergenceRateRow]:
    """Monte-Carlo extension of E7: ``batch`` random input draws per case.

    Each case runs as one batched pass of the vectorized engine under the
    extreme-pushing adversary; rows report the convergence fraction and the
    distribution (mean / p50 / p90 / max) of rounds-to-tolerance across the
    batch, plus how the mean compares to the analytical Lemma-5 round bound.
    Deterministic for a fixed ``seed``.
    """
    chosen = cases if cases is not None else default_rate_cases()
    rows: list[ConvergenceRateRow] = []
    for index, (label, graph, f) in enumerate(chosen):
        rule = TrimmedMeanRule(f)
        faulty: frozenset[NodeId] = (
            random_fault_set(graph, f, rng=seed + index) if f > 0 else frozenset()
        )
        fault_free = graph.nodes - faulty
        alpha = alpha_for_rule(graph, rule, fault_free=fault_free)
        window_bound = worst_case_window_length(graph.number_of_nodes, f)
        runner = BatchRunner(
            graph=graph,
            rule=rule,
            faulty=faulty,
            adversary=BatchExtremePushStrategy(delta=1.0) if faulty else None,
            config=SimulationConfig(
                max_rounds=rounds,
                tolerance=tolerance,
                record_history=False,
            ),
        )
        outcome = runner.run_uniform(batch, rng=seed + index)
        converged_rounds = outcome.rounds_executed[outcome.converged]
        bound_rounds = rounds_to_reach(1.0, tolerance, alpha, window_bound)
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "batch": batch,
                "alpha": alpha,
                "fraction_converged": outcome.fraction_converged,
                "all_validity_ok": outcome.all_valid,
                "mean_rounds": outcome.mean_rounds_to_convergence(),
                "p50_rounds": (
                    float(np.percentile(converged_rounds, 50))
                    if converged_rounds.size
                    else float("nan")
                ),
                "p90_rounds": (
                    float(np.percentile(converged_rounds, 90))
                    if converged_rounds.size
                    else float("nan")
                ),
                "max_rounds": (
                    int(converged_rounds.max())
                    if converged_rounds.size
                    else float("nan")
                ),
                "bound_rounds": bound_rounds,
            }
        )
    return rows


@register_experiment(
    name="convergence_rate",
    paper_section="Section 5, Theorem 3 / Lemma 5 (E7)",
    claim=(
        "The measured per-window contraction never violates the Lemma-5 "
        "bound and is typically far better than it."
    ),
    engine="vectorized",
    grid={
        "case": tuple(label for label, _, _ in default_rate_cases()),
        "batch": (64,),
        "rounds": (300,),
        "tolerance": (1e-7,),
    },
    schema=CONVERGENCE_RATE_SCHEMA,
)
def convergence_rate_cell(
    case: str,
    batch: int = 64,
    rounds: int = 300,
    tolerance: float = 1e-7,
    seed: int = 11,
) -> list[ConvergenceRateRow]:
    """Registry cell for E7: one Monte-Carlo case on the vectorized engine."""
    return convergence_rate_sweep(
        cases=select_labelled_case(
            case, default_rate_cases(), "convergence-rate case"
        ),
        batch=batch,
        rounds=rounds,
        tolerance=tolerance,
        seed=seed,
    )
