"""Experiment E11 (ablation) — Theorem-1 condition vs graph robustness.

The companion work of LeBlanc, Zhang, Sundaram and Koutsoukos characterises
resilient consensus (under the broadcast / local models) via
``(r, s)``-robustness; in particular ``(f + 1, f + 1)``-robustness is the
condition most closely corresponding to the paper's Theorem 1 under the
``f``-total Byzantine model.  This driver evaluates both predicates on the
paper's graph families and reports where they agree, connecting the paper's
characterisation to the robustness literature it cites.
"""

from __future__ import annotations

from repro.conditions.necessary import check_feasibility
from repro.conditions.robustness import is_r_robust, is_r_s_robust, robustness_degree
from repro.graphs.digraph import Digraph
from repro.graphs.generators import (
    chord_network,
    complete_graph,
    core_network,
    hypercube,
    undirected_ring,
)
from repro.sweeps.registry import register_experiment, select_labelled_case


def default_robustness_cases() -> list[tuple[str, Digraph, int]]:
    """Return the labelled ``(name, graph, f)`` cases for the comparison."""
    return [
        ("complete n=4 f=1", complete_graph(4), 1),
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=7 f=2", core_network(7, 2), 2),
        ("core n=5 f=1", core_network(5, 1), 1),
        ("chord n=5 f=1", chord_network(5, 1), 1),
        ("chord n=7 f=2", chord_network(7, 2), 2),
        ("chord n=8 f=1", chord_network(8, 1), 1),
        ("hypercube d=3 f=1", hypercube(3), 1),
        ("hypercube d=4 f=1", hypercube(4), 1),
        ("ring n=6 f=1", undirected_ring(6), 1),
    ]


def robustness_comparison(
    cases: list[tuple[str, Digraph, int]] | None = None,
) -> list[dict[str, object]]:
    """Evaluate Theorem 1, ``(2f+1)``-robustness and ``(f+1, f+1)``-robustness.

    Each row records all three verdicts plus the graph's robustness degree;
    the ``agrees`` column states whether the Theorem-1 verdict matches
    ``(f+1, f+1)``-robustness on that case.
    """
    chosen = cases if cases is not None else default_robustness_cases()
    rows: list[dict[str, object]] = []
    for label, graph, f in chosen:
        theorem1 = check_feasibility(graph, f, use_structural_shortcuts=False).satisfied
        r_plus = is_r_robust(graph, 2 * f + 1)
        r_s = is_r_s_robust(graph, f + 1, f + 1)
        degree = robustness_degree(graph)
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "theorem1_holds": theorem1,
                "robust_2f+1": r_plus,
                "robust_(f+1,f+1)": r_s,
                "robustness_degree": degree,
                "agrees": theorem1 == r_s,
            }
        )
    return rows


@register_experiment(
    name="robustness",
    paper_section="Related work: (r, s)-robustness (E11)",
    claim=(
        "The Theorem-1 verdict coincides with (f+1, f+1)-robustness on the "
        "paper's graph families."
    ),
    engine="checker",
    grid={"case": tuple(label for label, _, _ in default_robustness_cases())},
)
def robustness_cell(case: str) -> list[dict[str, object]]:
    """Registry cell for E11: Theorem 1 vs robustness notions on one graph."""
    matching = select_labelled_case(
        case, default_robustness_cases(), "robustness case"
    )
    return robustness_comparison(cases=matching)
