"""Experiment E11 (ablation) — Theorem-1 condition vs graph robustness.

The companion work of LeBlanc, Zhang, Sundaram and Koutsoukos characterises
resilient consensus (under the broadcast / local models) via
``(r, s)``-robustness; in particular ``(f + 1, f + 1)``-robustness is the
condition most closely corresponding to the paper's Theorem 1 under the
``f``-total Byzantine model.  This driver evaluates both predicates on the
paper's graph families and reports where they agree, connecting the paper's
characterisation to the robustness literature it cites.

Each structural verdict is also checked *dynamically* on the batched
vectorized engine: feasible graphs run a Monte-Carlo batch under the
batch-native extreme-pushing adversary (they must converge), infeasible
graphs mount the batch-native split-brain attack on the checker's witness
(they must stall) — so every row ties the static predicates to the
adversarial behaviour they predict.
"""

from __future__ import annotations

from typing import TypedDict

from repro.adversary.selection import highest_out_degree_fault_set
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.necessary import check_feasibility, find_violating_partition
from repro.conditions.robustness import is_r_robust, is_r_s_robust, robustness_degree
from repro.experiments.necessity import split_brain_stall_study
from repro.graphs.digraph import Digraph
from repro.graphs.generators import (
    chord_network,
    complete_graph,
    core_network,
    hypercube,
    undirected_ring,
)
from repro.simulation.engine import SimulationConfig
from repro.simulation.vectorized import BatchRunner
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict
from repro.types import FeasibilityResult


class _SimColumns(TypedDict):
    """Batched-simulation columns backing one structural verdict.

    All four are ``None`` when no attack could be mounted (no witness).
    """

    sim_adversary: str | None
    sim_fraction_converged: float | None
    sim_all_validity_ok: bool | None
    sim_stalled_fraction: float | None


# Functional syntax because the robustness predicates are spelled with the
# paper's notation ("robust_2f+1" is not a Python identifier).
RobustnessRow = TypedDict(
    "RobustnessRow",
    {
        "case": str,
        "n": int,
        "f": int,
        "theorem1_holds": bool,
        "robust_2f+1": bool,
        "robust_(f+1,f+1)": bool,
        "robustness_degree": int,
        "agrees": bool,
        "sim_adversary": str | None,
        "sim_fraction_converged": float | None,
        "sim_all_validity_ok": bool | None,
        "sim_stalled_fraction": float | None,
    },
)

#: Runtime half of :class:`RobustnessRow`; validated at shard boundaries.
ROBUSTNESS_SCHEMA = schema_from_typeddict(
    RobustnessRow,
    roles={
        "case": "label",
        "n": "parameter",
        "f": "parameter",
        "theorem1_holds": "verdict",
        "robust_2f+1": "verdict",
        "robust_(f+1,f+1)": "verdict",
        "robustness_degree": "metric",
        "agrees": "verdict",
        "sim_adversary": "label",
        "sim_fraction_converged": "metric",
        "sim_all_validity_ok": "verdict",
        "sim_stalled_fraction": "metric",
    },
)


def default_robustness_cases() -> list[tuple[str, Digraph, int]]:
    """Return the labelled ``(name, graph, f)`` cases for the comparison."""
    return [
        ("complete n=4 f=1", complete_graph(4), 1),
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=7 f=2", core_network(7, 2), 2),
        ("core n=5 f=1", core_network(5, 1), 1),
        ("chord n=5 f=1", chord_network(5, 1), 1),
        ("chord n=7 f=2", chord_network(7, 2), 2),
        ("chord n=8 f=1", chord_network(8, 1), 1),
        ("hypercube d=3 f=1", hypercube(3), 1),
        ("hypercube d=4 f=1", hypercube(4), 1),
        ("ring n=6 f=1", undirected_ring(6), 1),
    ]


def _dynamic_check(
    graph: Digraph,
    f: int,
    feasibility: FeasibilityResult,
    batch: int,
    rounds: int,
    seed: int,
) -> _SimColumns:
    """Exercise the structural verdict on the batched vectorized engine.

    Feasible graphs run ``batch`` random executions under the batch-native
    extreme-pushing adversary; infeasible graphs mount the batch-native
    split-brain attack on the checker's witness (when it produced one) and
    report the fraction of executions stalled at the full input gap.
    """
    if feasibility.satisfied:
        runner = BatchRunner(
            graph=graph,
            rule=TrimmedMeanRule(f),
            faulty=highest_out_degree_fault_set(graph, f),
            adversary=BatchExtremePushStrategy(delta=2.0),
            config=SimulationConfig(
                max_rounds=rounds, tolerance=1e-6, record_history=False
            ),
        )
        outcome = runner.run_uniform(batch, rng=seed)
        return {
            "sim_adversary": "batch-extreme-push",
            "sim_fraction_converged": outcome.fraction_converged,
            "sim_all_validity_ok": outcome.all_valid,
            "sim_stalled_fraction": None,
        }
    witness = feasibility.witness
    if witness is None:
        # Screen-based verdicts (e.g. the in-degree screen) carry no
        # witness; the exhaustive search supplies one for the attack.
        witness = find_violating_partition(graph, f)
    if witness is None:  # pragma: no cover - a False verdict has a witness
        return {
            "sim_adversary": None,
            "sim_fraction_converged": None,
            "sim_all_validity_ok": None,
            "sim_stalled_fraction": None,
        }
    outcome, stalled = split_brain_stall_study(
        graph, f, witness, batch=batch, rounds=rounds, seed=seed
    )
    return {
        "sim_adversary": "batch-split-brain",
        "sim_fraction_converged": outcome.fraction_converged,
        "sim_all_validity_ok": outcome.all_valid,
        "sim_stalled_fraction": stalled,
    }


def robustness_comparison(
    cases: list[tuple[str, Digraph, int]] | None = None,
    batch: int = 16,
    rounds: int = 120,
    seed: int = 23,
) -> list[RobustnessRow]:
    """Evaluate Theorem 1, ``(2f+1)``-robustness and ``(f+1, f+1)``-robustness.

    Each row records all three verdicts plus the graph's robustness degree;
    the ``agrees`` column states whether the Theorem-1 verdict matches
    ``(f+1, f+1)``-robustness on that case, and the ``sim_*`` columns report
    the batched adversarial simulation backing the verdict (see
    :func:`_dynamic_check`).
    """
    chosen = cases if cases is not None else default_robustness_cases()
    rows: list[RobustnessRow] = []
    for label, graph, f in chosen:
        feasibility = check_feasibility(graph, f, use_structural_shortcuts=False)
        theorem1 = feasibility.satisfied
        r_plus = is_r_robust(graph, 2 * f + 1)
        r_s = is_r_s_robust(graph, f + 1, f + 1)
        degree = robustness_degree(graph)
        sim = _dynamic_check(
            graph, f, feasibility, batch=batch, rounds=rounds, seed=seed
        )
        rows.append(
            {
                "case": label,
                "n": graph.number_of_nodes,
                "f": f,
                "theorem1_holds": theorem1,
                "robust_2f+1": r_plus,
                "robust_(f+1,f+1)": r_s,
                "robustness_degree": degree,
                "agrees": theorem1 == r_s,
                "sim_adversary": sim["sim_adversary"],
                "sim_fraction_converged": sim["sim_fraction_converged"],
                "sim_all_validity_ok": sim["sim_all_validity_ok"],
                "sim_stalled_fraction": sim["sim_stalled_fraction"],
            }
        )
    return rows


@register_experiment(
    name="robustness",
    paper_section="Related work: (r, s)-robustness (E11)",
    claim=(
        "The Theorem-1 verdict coincides with (f+1, f+1)-robustness on the "
        "paper's graph families, and the batched adversarial simulation "
        "matches both."
    ),
    engine="mixed",
    grid={
        "case": tuple(label for label, _, _ in default_robustness_cases()),
        "batch": (16,),
    },
    schema=ROBUSTNESS_SCHEMA,
)
def robustness_cell(
    case: str, batch: int = 16, seed: int = 23
) -> list[RobustnessRow]:
    """Registry cell for E11: Theorem 1 vs robustness notions on one graph."""
    matching = select_labelled_case(
        case, default_robustness_cases(), "robustness case"
    )
    return robustness_comparison(cases=matching, batch=batch, seed=seed)
