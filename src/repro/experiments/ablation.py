"""Experiment E12 (ablation) — update-rule comparison under attack.

Compares the paper's Algorithm 1 (trimmed mean) with W-MSR, the trimmed
midpoint, the median and the non-fault-tolerant linear average on feasible
graphs under the same adversaries.  The qualitative shape the paper implies:

* trimmed mean and W-MSR preserve validity and converge,
* the plain average is dragged outside the input hull (validity violated) and
  generally fails to converge to a legitimate value,
* the median and midpoint sit in between (valid on these families, but without
  the paper's general guarantee).
"""

from __future__ import annotations

from typing import TypedDict

from repro.adversary.base import ByzantineStrategy
from repro.adversary.selection import highest_out_degree_fault_set
from repro.adversary.strategies import ExtremePushStrategy, StaticValueStrategy
from repro.adversary.vectorized import (
    BatchExtremePushStrategy,
    BatchStaticValueStrategy,
    BatchStrategy,
)
from repro.algorithms.base import UpdateRule
from repro.algorithms.linear import LinearAverageRule, MedianRule
from repro.algorithms.trimmed_mean import TrimmedMeanRule, TrimmedMidpointRule
from repro.algorithms.wmsr import WMSRRule
from repro.graphs.digraph import Digraph
from repro.graphs.generators import complete_graph, core_network
from repro.simulation.engine import run_synchronous
from repro.simulation.inputs import linear_ramp_inputs
from repro.simulation.vectorized import VectorizedEngine, run_vectorized
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict


class AblationRow(TypedDict):
    """One row of the E12 rule ablation (one graph x rule x adversary)."""

    graph: str
    f: int
    rule: str
    adversary: str
    engine: str
    converged: bool
    validity_ok: bool
    final_within_input_hull: bool
    rounds: int
    final_spread: float


#: Runtime half of :class:`AblationRow`; validated at shard boundaries.
ABLATION_SCHEMA = schema_from_typeddict(
    AblationRow,
    roles={
        "graph": "label",
        "f": "parameter",
        "rule": "label",
        "adversary": "label",
        "engine": "label",
        "converged": "verdict",
        "validity_ok": "verdict",
        "final_within_input_hull": "verdict",
        "rounds": "metric",
        "final_spread": "metric",
    },
)


def default_ablation_graphs() -> list[tuple[str, Digraph, int]]:
    """Return the labelled feasible graphs used by the rule ablation."""
    return [
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=7 f=2", core_network(7, 2), 2),
        ("core n=10 f=3", core_network(10, 3), 3),
    ]


def rule_zoo(f: int) -> list[UpdateRule]:
    """Return one configured instance of every update rule in the library."""
    return [
        TrimmedMeanRule(f),
        WMSRRule(f),
        TrimmedMidpointRule(f),
        MedianRule(f),
        LinearAverageRule(f),
    ]


def adversaries_for_ablation() -> list[tuple[str, ByzantineStrategy, BatchStrategy]]:
    """Return the two ablation adversaries (one per failure mode), each as a
    ``(label, scalar strategy, bit-exact batch-native strategy)`` pair.

    The static far-away value exposes validity violations of averaging rules;
    the extreme-pushing adversary stresses convergence.
    """
    return [
        (
            "static-value",
            StaticValueStrategy(1000.0),
            BatchStaticValueStrategy(1000.0),
        ),
        (
            "extreme-push",
            ExtremePushStrategy(delta=5.0),
            BatchExtremePushStrategy(delta=5.0),
        ),
    ]


def algorithm_ablation(
    graphs: list[tuple[str, Digraph, int]] | None = None,
    rounds: int = 150,
    tolerance: float = 1e-6,
) -> list[AblationRow]:
    """Cross every (graph, rule, adversary) combination and record outcomes.

    Trimmed rules execute on the vectorized engine driven by the
    batch-native adversaries (bit-exact with the scalar pair); rules without
    a vectorized kernel (W-MSR, median, linear average) keep the scalar
    engine and the scalar strategies.
    """
    chosen = graphs if graphs is not None else default_ablation_graphs()
    rows: list[AblationRow] = []
    for label, graph, f in chosen:
        faulty = highest_out_degree_fault_set(graph, f)
        inputs = linear_ramp_inputs(graph.nodes, 0.0, 1.0)
        hull_low = min(
            value for node, value in inputs.items() if node not in faulty
        )
        hull_high = max(
            value for node, value in inputs.items() if node not in faulty
        )
        for rule in rule_zoo(f):
            vectorized = VectorizedEngine.supports_rule(rule)
            for adversary_label, scalar_adversary, batch_adversary in (
                adversaries_for_ablation()
            ):
                if vectorized:
                    outcome = run_vectorized(
                        graph=graph,
                        rule=rule,
                        inputs=inputs,
                        faulty=faulty,
                        adversary=batch_adversary,
                        max_rounds=rounds,
                        tolerance=tolerance,
                    )
                else:
                    outcome = run_synchronous(
                        graph=graph,
                        rule=rule,
                        inputs=inputs,
                        faulty=faulty,
                        adversary=scalar_adversary,
                        max_rounds=rounds,
                        tolerance=tolerance,
                    )
                final_within_hull = all(
                    hull_low - 1e-9 <= value <= hull_high + 1e-9
                    for value in outcome.final_values.values()
                )
                rows.append(
                    {
                        "graph": label,
                        "f": f,
                        "rule": rule.name,
                        "adversary": adversary_label,
                        "engine": "vectorized" if vectorized else "scalar",
                        "converged": outcome.converged,
                        "validity_ok": outcome.validity_ok,
                        "final_within_input_hull": final_within_hull,
                        "rounds": outcome.rounds_executed,
                        "final_spread": outcome.final_spread,
                    }
                )
    return rows


def ablation_summary(rows: list[AblationRow]) -> list[dict[str, object]]:
    """Aggregate ablation rows per rule: validity failures and convergence counts."""
    by_rule: dict[str, dict[str, int]] = {}
    for row in rows:
        entry = by_rule.setdefault(
            str(row["rule"]),
            {"cases": 0, "validity_failures": 0, "hull_escapes": 0, "converged": 0},
        )
        entry["cases"] += 1
        entry["validity_failures"] += 0 if row["validity_ok"] else 1
        entry["hull_escapes"] += 0 if row["final_within_input_hull"] else 1
        entry["converged"] += 1 if row["converged"] else 0
    return [
        {
            "rule": rule,
            "cases": counts["cases"],
            "validity_failures": counts["validity_failures"],
            "hull_escapes": counts["hull_escapes"],
            "converged": counts["converged"],
        }
        for rule, counts in sorted(by_rule.items())
    ]


@register_experiment(
    name="ablation",
    paper_section="Algorithm 1 vs alternative update rules (E12)",
    claim=(
        "Trimmed mean and W-MSR stay valid and converge under attack; the "
        "non-fault-tolerant linear average is dragged out of the input hull."
    ),
    engine="mixed",
    grid={
        "graph": tuple(label for label, _, _ in default_ablation_graphs()),
        "rounds": (150,),
        "tolerance": (1e-6,),
    },
    schema=ABLATION_SCHEMA,
)
def ablation_cell(
    graph: str, rounds: int = 150, tolerance: float = 1e-6
) -> list[AblationRow]:
    """Registry cell for E12: the whole rule zoo under both adversaries."""
    matching = select_labelled_case(
        graph, default_ablation_graphs(), "ablation graph"
    )
    return algorithm_ablation(graphs=matching, rounds=rounds, tolerance=tolerance)
