"""Experiments E2 and E3 — the corollaries of the necessary condition.

* E2 (Corollary 2): sweeping the number of nodes ``n`` for a fixed fault
  budget ``f`` over complete graphs, the condition holds iff ``n > 3f``; the
  trimmed-mean algorithm converges under attack exactly in those cases.
* E3 (Corollary 3): a graph containing a node of in-degree ``≤ 2f`` always
  fails the condition; removing incoming edges from a feasible graph flips it
  to infeasible as soon as some node's in-degree drops to ``2f``.
"""

from __future__ import annotations

from typing import TypedDict

from repro.adversary.selection import highest_out_degree_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.necessary import (
    check_feasibility,
    passes_count_screen,
    passes_in_degree_screen,
)
from repro.exceptions import AlgorithmPreconditionError, InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.graphs.generators import complete_graph, core_network
from repro.graphs.properties import minimum_in_degree
from repro.simulation.engine import run_synchronous
from repro.simulation.inputs import linear_ramp_inputs
from repro.sweeps.registry import register_experiment
from repro.sweeps.schema import schema_from_typeddict


class _CorollariesRowBase(TypedDict):
    """Column shared by both corollary sweeps."""

    condition_holds: bool


class CorollariesRow(_CorollariesRowBase, total=False):
    """One row of E2 (Corollary 2) or E3 (Corollary 3).

    The two sweeps emit disjoint column sets, so every column except the
    shared ``condition_holds`` verdict is absent-allowed.
    """

    # Corollary-2 columns (n-sweep over complete graphs).
    n: int
    f: int
    n_gt_3f: bool
    method: str
    algorithm_runs: bool
    converged: bool
    validity_ok: bool
    rounds: int
    final_spread: float
    # Corollary-3 columns (edge removal at one victim node).
    removed_incoming_edges: int
    victim_in_degree: int
    min_in_degree: int
    in_degree_screen: bool


#: Runtime half of :class:`CorollariesRow`; validated at shard boundaries.
COROLLARIES_SCHEMA = schema_from_typeddict(
    CorollariesRow,
    roles={
        "n": "parameter",
        "f": "parameter",
        "n_gt_3f": "verdict",
        "condition_holds": "verdict",
        "method": "label",
        "algorithm_runs": "verdict",
        "converged": "verdict",
        "validity_ok": "verdict",
        "rounds": "metric",
        "final_spread": "metric",
        "removed_incoming_edges": "parameter",
        "victim_in_degree": "metric",
        "min_in_degree": "metric",
        "in_degree_screen": "verdict",
    },
)


def corollary2_sweep(
    f: int,
    n_values: list[int] | None = None,
    rounds: int = 200,
    tolerance: float = 1e-6,
) -> list[CorollariesRow]:
    """Sweep ``n`` over complete graphs for fixed ``f`` (experiment E2).

    For every ``n`` the row records whether the Corollary-2 screen and the
    full condition hold, and whether Algorithm 1 converged under an
    extreme-pushing adversary corrupting ``min(f, n − 1)`` nodes.  The paper
    predicts all three verdicts flip together at ``n = 3f + 1``.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    chosen_n = n_values if n_values is not None else list(range(2, 3 * f + 4))
    rows: list[CorollariesRow] = []
    for n in chosen_n:
        graph = complete_graph(n)
        screen = passes_count_screen(n, f)
        feasibility = check_feasibility(graph, f)
        row: CorollariesRow = {
            "n": n,
            "f": f,
            "n_gt_3f": screen,
            "condition_holds": feasibility.satisfied,
            "method": feasibility.method,
        }
        # Run the algorithm when it is structurally defined (in-degree >= 2f);
        # otherwise report that it cannot even be instantiated.
        rule = TrimmedMeanRule(f)
        faulty = highest_out_degree_fault_set(graph, f, size=min(f, max(0, n - 1)))
        inputs = linear_ramp_inputs(graph.nodes, 0.0, 1.0)
        try:
            outcome = run_synchronous(
                graph=graph,
                rule=rule,
                inputs=inputs,
                faulty=faulty,
                adversary=ExtremePushStrategy(delta=1.0),
                max_rounds=rounds,
                tolerance=tolerance,
            )
            row["algorithm_runs"] = True
            row["converged"] = outcome.converged
            row["validity_ok"] = outcome.validity_ok
            row["rounds"] = outcome.rounds_executed
            row["final_spread"] = outcome.final_spread
        except AlgorithmPreconditionError:
            row["algorithm_runs"] = False
            row["converged"] = False
            row["validity_ok"] = True
            row["rounds"] = 0
            row["final_spread"] = float("nan")
        rows.append(row)
    return rows


def corollary3_edge_removal(
    f: int,
    n: int | None = None,
    victim: int | None = None,
) -> list[CorollariesRow]:
    """Progressively remove incoming edges at one node of a core network (E3).

    Starting from a core network (feasible), incoming edges of the ``victim``
    node are removed one at a time.  The paper predicts the condition fails as
    soon as the victim's in-degree drops below ``2f + 1``; the rows record the
    in-degree, the Corollary-3 screen and the exact condition at each step.
    """
    if f < 1:
        raise InvalidParameterError("Corollary 3 is non-trivial only for f >= 1")
    node_count = n if n is not None else 3 * f + 2
    graph = core_network(node_count, f)
    chosen_victim = victim if victim is not None else node_count - 1
    incoming = sorted(graph.in_neighbors(chosen_victim), key=repr)
    rows: list[CorollariesRow] = []
    working = graph.copy()
    for removed_count in range(len(incoming) + 1):
        feasibility = check_feasibility(working, f, use_structural_shortcuts=False)
        rows.append(
            {
                "removed_incoming_edges": removed_count,
                "victim_in_degree": working.in_degree(chosen_victim),
                "min_in_degree": minimum_in_degree(working),
                "in_degree_screen": passes_in_degree_screen(working, f),
                "condition_holds": feasibility.satisfied,
            }
        )
        if removed_count < len(incoming):
            working.remove_edge(incoming[removed_count], chosen_victim)
    return rows


def low_in_degree_always_fails(graph: Digraph, f: int) -> bool:
    """Return whether the combination "some node has in-degree ≤ 2f" and
    "condition holds" ever occurs — it must not (Corollary 3).

    Returns ``True`` when the corollary is respected on this graph (either the
    in-degree screen passes, or the exact condition indeed fails).
    """
    if passes_in_degree_screen(graph, f):
        return True
    return not check_feasibility(graph, f, use_structural_shortcuts=False).satisfied


@register_experiment(
    name="corollaries",
    paper_section="Section 3, Corollaries 2-3 (E2-E3)",
    claim=(
        "Over complete graphs the condition flips exactly at n = 3f + 1, and "
        "a node of in-degree <= 2f always makes it fail."
    ),
    engine="scalar-sync",
    grid={"corollary": (2, 3), "f": (1, 2)},
    schema=COROLLARIES_SCHEMA,
)
def corollaries_cell(corollary: int, f: int) -> list[CorollariesRow]:
    """Registry cell for E2-E3: one corollary sweep for one fault budget."""
    if corollary == 2:
        return corollary2_sweep(f)
    if corollary == 3:
        return corollary3_edge_removal(f)
    raise InvalidParameterError(f"corollary must be 2 or 3, got {corollary!r}")
