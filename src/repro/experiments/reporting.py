"""Plain-text reporting helpers shared by the experiment drivers.

The paper has no measurement tables, so the experiment drivers emit small
qualitative tables (graph family, parameters, condition verdict, convergence
verdict, rates).  These helpers format lists of dictionaries as aligned ASCII
tables so examples and the benchmark harness print directly comparable rows.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions import InvalidParameterError


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
) -> str:
    """Format ``rows`` (a list of dicts) as an aligned ASCII table.

    ``columns`` selects and orders the columns; by default the keys of the
    first row are used.  Missing values render as an empty cell.
    """
    if not rows:
        return "(no rows)"
    selected = list(columns) if columns is not None else list(rows[0].keys())
    if not selected:
        raise InvalidParameterError("at least one column is required")
    table: list[list[str]] = [[str(column) for column in selected]]
    for row in rows:
        table.append(
            [_format_cell(row.get(column, ""), precision) for column in selected]
        )
    widths = [
        max(len(table[line][column]) for line in range(len(table)))
        for column in range(len(selected))
    ]
    lines = []
    for line_index, line in enumerate(table):
        rendered = "  ".join(
            cell.ljust(widths[column]) for column, cell in enumerate(line)
        )
        lines.append(rendered.rstrip())
        if line_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> None:
    """Print a table (optionally preceded by a title and a blank line)."""
    if title:
        print(title)
        print("=" * len(title))
    print(format_table(rows, columns=columns, precision=precision))
    print()


def summarize_booleans(rows: Iterable[Mapping[str, object]], key: str) -> dict[str, int]:
    """Count how many rows have ``True`` / ``False`` under ``key``.

    Handy for quick assertions in benchmarks ("all families converged").
    """
    counts = {"true": 0, "false": 0, "missing": 0}
    for row in rows:
        if key not in row:
            counts["missing"] += 1
        elif bool(row[key]):
            counts["true"] += 1
        else:
            counts["false"] += 1
    return counts
