"""Plain-text reporting helpers shared by the experiment drivers.

The paper has no measurement tables, so the experiment drivers emit small
qualitative tables (graph family, parameters, condition verdict, convergence
verdict, rates).  These helpers format lists of dictionaries as aligned ASCII
tables so examples and the benchmark harness print directly comparable rows.

When a :class:`~repro.sweeps.schema.RowSchema` is available (``repro
report`` reads one out of every run manifest), the table derives its column
order and per-column formatting from the schema's declared kinds instead of
sniffing the first row — absent and ``None`` cells render empty, ``float``
columns format at the requested precision even when a particular value
happens to be integral.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions import InvalidParameterError


def _format_cell(value: object, precision: int, kind: str | None = None) -> str:
    """Render one cell; ``kind`` (from a row schema) overrides type sniffing."""
    if value is None or (isinstance(value, str) and not value):
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, float)) and (
        kind == "float" or (kind is None and isinstance(value, float))
    ):
        return f"{float(value):.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    kinds: Mapping[str, str] | None = None,
) -> str:
    """Format ``rows`` (a list of dicts) as an aligned ASCII table.

    ``columns`` selects and orders the columns; by default the keys of the
    first row are used.  ``kinds`` optionally maps column name → schema kind
    (``int`` / ``float`` / ``bool`` / ``str``) so formatting follows the
    declared type rather than each value's runtime type.  Missing values
    render as an empty cell.
    """
    if not rows:
        return "(no rows)"
    selected = list(columns) if columns is not None else list(rows[0].keys())
    if not selected:
        raise InvalidParameterError("at least one column is required")
    kind_of = dict(kinds) if kinds is not None else {}
    table: list[list[str]] = [[str(column) for column in selected]]
    for row in rows:
        table.append(
            [
                _format_cell(
                    row.get(column, ""), precision, kind_of.get(column)
                )
                for column in selected
            ]
        )
    widths = [
        max(len(table[line][column]) for line in range(len(table)))
        for column in range(len(selected))
    ]
    lines = []
    for line_index, line in enumerate(table):
        rendered = "  ".join(
            cell.ljust(widths[column]) for column, cell in enumerate(line)
        )
        lines.append(rendered.rstrip())
        if line_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
    kinds: Mapping[str, str] | None = None,
) -> None:
    """Print a table (optionally preceded by a title and a blank line)."""
    if title:
        print(title)
        print("=" * len(title))
    print(format_table(rows, columns=columns, precision=precision, kinds=kinds))
    print()


def summarize_booleans(
    rows: Iterable[Mapping[str, object]], key: str
) -> dict[str, int]:
    """Count how many rows have ``True`` / ``False`` under ``key``.

    Handy for quick assertions in benchmarks ("all families converged").
    Values must be real booleans (or ``None``, counted as missing): a
    truthy ``int`` or string under a verdict column is a schema violation
    upstream, and silently counting it as ``True`` here historically masked
    exactly that corruption — so it raises instead.
    """
    counts = {"true": 0, "false": 0, "missing": 0}
    for index, row in enumerate(rows):
        if key not in row or row[key] is None:
            counts["missing"] += 1
            continue
        value = row[key]
        if not isinstance(value, bool):
            raise InvalidParameterError(
                f"summarize_booleans({key!r}): row {index} holds "
                f"{type(value).__name__} ({value!r}), not a bool; "
                "fix the producing row or pick a verdict column"
            )
        if value:
            counts["true"] += 1
        else:
            counts["false"] += 1
    return counts
