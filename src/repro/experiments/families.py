"""Experiments E4–E6 — the paper's Section-6 graph-family case studies.

* E4 core networks (Section 6.1): satisfy the condition; Algorithm 1 converges
  under attack; edge counts support the minimality conjecture for
  ``n = 3f + 1``.
* E5 hypercubes (Section 6.2 / Figure 3): connectivity ``d`` yet the condition
  fails for every ``f ≥ 1``; the dimension-cut partition is an explicit
  witness and the split-brain attack stalls the algorithm across the cut.
* E6 chord networks (Section 6.3): ``f = 1, n = 4`` holds (complete),
  ``f = 2, n = 7`` fails with the paper's witness, ``f = 1, n = 5`` holds; a
  parameter sweep maps the feasibility frontier of the family.

Simulations run on the vectorized engine
(:func:`~repro.simulation.vectorized.run_vectorized`, bit-identical to the
scalar engine); :func:`core_network_batch_sweep` scales E4 into a Monte-Carlo
study over many input draws per ``(n, f)`` via
:class:`~repro.simulation.vectorized.BatchRunner`.
"""

from __future__ import annotations

from typing import TypedDict

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import RandomNoiseStrategy
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.necessary import (
    check_feasibility,
    find_violating_partition,
    is_core_network,
    verify_witness,
)
from repro.conditions.witnesses import (
    chord_n7_f2_witness,
    hypercube_dimension_cut_witness,
)
from repro.exceptions import InvalidParameterError
from repro.experiments.necessity import demonstrate_necessity
from repro.graphs.generators import chord_network, complete_graph, core_network, hypercube
from repro.graphs.properties import (
    is_complete,
    undirected_edge_count,
    vertex_connectivity,
)
from repro.simulation.engine import SimulationConfig
from repro.simulation.inputs import bimodal_inputs, uniform_random_inputs
from repro.simulation.vectorized import BatchRunner, run_vectorized
from repro.sweeps.registry import register_experiment
from repro.sweeps.schema import schema_from_typeddict

# The six Section-6 studies emit disjoint column sets, so the union schema
# marks every column absent-allowed.  Functional syntax because
# ``connectivity_at_least_2f+1`` is not a Python identifier.
FamiliesRow = TypedDict(
    "FamiliesRow",
    {
        # Shared / E4 core-network columns.
        "n": int,
        "f": int,
        "detected_as_core": bool,
        "condition_holds": bool,
        "undirected_edges": int,
        "complete_graph_edges": int,
        "converged": bool,
        "validity_ok": bool,
        "rounds": int,
        # E4 Monte-Carlo batch columns.
        "batch": int,
        "fraction_converged": float,
        "all_validity_ok": bool,
        "mean_rounds": float,
        # Minimality-conjecture columns.
        "core_edges": int,
        "complete_edges": int,
        "savings_fraction": float,
        # E5 hypercube columns.
        "dimension": int,
        "vertex_connectivity": int,
        "connectivity_at_least_2f+1": bool,
        "dimension_cut_is_witness": bool,
        "attack_stalls": bool,
        "attack_validity_ok": bool,
        # E6 chord columns.
        "case": str,
        "is_complete": bool,
        "paper_verdict": bool,
        "agrees_with_paper": bool,
        "paper_witness_valid": bool,
        "checker_found_witness": bool,
        "converged_under_attack": bool,
        "method": str,
    },
    total=False,
)

#: Runtime half of :class:`FamiliesRow`; validated at shard boundaries.
FAMILIES_SCHEMA = schema_from_typeddict(
    FamiliesRow,
    roles={
        "n": "parameter",
        "f": "parameter",
        "detected_as_core": "verdict",
        "condition_holds": "verdict",
        "undirected_edges": "metric",
        "complete_graph_edges": "metric",
        "converged": "verdict",
        "validity_ok": "verdict",
        "rounds": "metric",
        "batch": "parameter",
        "fraction_converged": "metric",
        "all_validity_ok": "verdict",
        "mean_rounds": "metric",
        "core_edges": "metric",
        "complete_edges": "metric",
        "savings_fraction": "metric",
        "dimension": "parameter",
        "vertex_connectivity": "metric",
        "connectivity_at_least_2f+1": "verdict",
        "dimension_cut_is_witness": "verdict",
        "attack_stalls": "verdict",
        "attack_validity_ok": "verdict",
        "case": "label",
        "is_complete": "verdict",
        "paper_verdict": "verdict",
        "agrees_with_paper": "verdict",
        "paper_witness_valid": "verdict",
        "checker_found_witness": "verdict",
        "converged_under_attack": "verdict",
        "method": "label",
    },
)


# ---------------------------------------------------------------------------
# E4 — core networks (Section 6.1)
# ---------------------------------------------------------------------------
def core_network_study(
    cases: list[tuple[int, int]] | None = None,
    rounds: int = 300,
    tolerance: float = 1e-6,
    seed: int = 7,
) -> list[FamiliesRow]:
    """Check and exercise core networks for several ``(n, f)`` pairs.

    Every row reports the structural detection, the exact condition verdict,
    the undirected edge count (for the minimality conjecture) and the outcome
    of Algorithm 1 under an extreme-pushing adversary with ``f`` random
    faulty nodes.
    """
    chosen = cases if cases is not None else [(4, 1), (7, 2), (7, 1), (10, 3), (13, 4)]
    rows: list[FamiliesRow] = []
    for index, (n, f) in enumerate(chosen):
        graph = core_network(n, f)
        feasibility = check_feasibility(graph, f)
        rule = TrimmedMeanRule(f)
        faulty = random_fault_set(graph, f, rng=seed + index)
        outcome = run_vectorized(
            graph=graph,
            rule=rule,
            inputs=uniform_random_inputs(graph.nodes, rng=seed + index),
            faulty=faulty,
            adversary=BatchExtremePushStrategy(delta=2.0),
            max_rounds=rounds,
            tolerance=tolerance,
        )
        rows.append(
            {
                "n": n,
                "f": f,
                "detected_as_core": is_core_network(graph, f),
                "condition_holds": feasibility.satisfied,
                "undirected_edges": undirected_edge_count(graph),
                "complete_graph_edges": n * (n - 1) // 2,
                "converged": outcome.converged,
                "validity_ok": outcome.validity_ok,
                "rounds": outcome.rounds_executed,
            }
        )
    return rows


def core_network_batch_sweep(
    cases: list[tuple[int, int]] | None = None,
    batch: int = 64,
    rounds: int = 300,
    tolerance: float = 1e-6,
    seed: int = 7,
) -> list[FamiliesRow]:
    """Monte-Carlo extension of E4: ``batch`` random input draws per case.

    Each ``(n, f)`` core network runs as one batched pass under the
    extreme-pushing adversary with ``f`` random faulty nodes; rows report the
    fraction of executions that converged, whether validity held in all of
    them, and the mean rounds to convergence.  Deterministic for a fixed
    ``seed``.
    """
    chosen = cases if cases is not None else [(4, 1), (7, 2), (10, 3), (13, 4)]
    rows: list[FamiliesRow] = []
    for index, (n, f) in enumerate(chosen):
        graph = core_network(n, f)
        faulty = random_fault_set(graph, f, rng=seed + index)
        runner = BatchRunner(
            graph=graph,
            rule=TrimmedMeanRule(f),
            faulty=faulty,
            adversary=BatchExtremePushStrategy(delta=2.0),
            config=SimulationConfig(
                max_rounds=rounds,
                tolerance=tolerance,
                record_history=False,
            ),
        )
        outcome = runner.run_uniform(batch, rng=seed + index)
        rows.append(
            {
                "n": n,
                "f": f,
                "batch": batch,
                "fraction_converged": outcome.fraction_converged,
                "all_validity_ok": outcome.all_valid,
                "mean_rounds": outcome.mean_rounds_to_convergence(),
            }
        )
    return rows


def core_network_minimality_comparison(f_values: list[int] | None = None) -> list[FamiliesRow]:
    """Compare edge counts of the ``n = 3f + 1`` core network against the
    complete graph on the same nodes (the paper conjectures the core network
    is edge-minimal among feasible undirected graphs on ``3f + 1`` nodes)."""
    chosen_f = f_values if f_values is not None else [1, 2, 3, 4]
    rows: list[FamiliesRow] = []
    for f in chosen_f:
        n = 3 * f + 1
        core = core_network(n, f)
        complete = complete_graph(n)
        rows.append(
            {
                "f": f,
                "n": n,
                "core_edges": undirected_edge_count(core),
                "complete_edges": undirected_edge_count(complete),
                "savings_fraction": 1.0
                - undirected_edge_count(core) / undirected_edge_count(complete),
                "condition_holds": check_feasibility(core, f).satisfied,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E5 — hypercubes (Section 6.2 / Figure 3)
# ---------------------------------------------------------------------------
def hypercube_study(
    dimensions: list[int] | None = None,
    f_values: list[int] | None = None,
    attack_rounds: int = 30,
) -> list[FamiliesRow]:
    """Reproduce the hypercube analysis of Section 6.2.

    For each dimension ``d`` the rows report the vertex connectivity (equal to
    ``d``), whether the Figure-3 dimension-cut partition violates the
    condition for each requested ``f ≥ 1``, and (for the cube small enough to
    simulate comfortably) whether the split-brain attack across the cut stalls
    Algorithm 1.
    """
    chosen_dimensions = dimensions if dimensions is not None else [3]
    chosen_f = f_values if f_values is not None else [1]
    rows: list[FamiliesRow] = []
    for dimension in chosen_dimensions:
        graph = hypercube(dimension)
        connectivity = vertex_connectivity(graph)
        for f in chosen_f:
            if f < 1:
                raise InvalidParameterError("hypercube study requires f >= 1")
            witness = hypercube_dimension_cut_witness(dimension)
            witness_valid = verify_witness(graph, f, witness)
            row: FamiliesRow = {
                "dimension": dimension,
                "n": graph.number_of_nodes,
                "f": f,
                "vertex_connectivity": connectivity,
                "connectivity_at_least_2f+1": connectivity >= 2 * f + 1,
                "dimension_cut_is_witness": witness_valid,
                "condition_holds": not witness_valid,
            }
            # The attack needs the rule to be defined at every fault-free node
            # (in-degree d >= 2f); skip the simulation otherwise.
            if graph.number_of_nodes <= 64 and dimension >= 2 * f:
                demo = demonstrate_necessity(
                    graph, f, witness=witness, rounds=attack_rounds
                )
                row["attack_stalls"] = demo.stalled
                row["attack_validity_ok"] = demo.outcome.validity_ok
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E6 — chord networks (Section 6.3)
# ---------------------------------------------------------------------------
def chord_case_studies(rounds: int = 300, tolerance: float = 1e-6) -> list[FamiliesRow]:
    """Reproduce the three chord-network instances analysed in Section 6.3."""
    rows: list[FamiliesRow] = []

    # f = 1, n = 4: the chord construction yields the complete graph.
    graph_4 = chord_network(4, 1)
    feas_4 = check_feasibility(graph_4, 1)
    rows.append(
        {
            "case": "chord n=4 f=1",
            "is_complete": is_complete(graph_4),
            "condition_holds": feas_4.satisfied,
            "paper_verdict": True,
            "agrees_with_paper": feas_4.satisfied is True,
        }
    )

    # f = 2, n = 7: fails; the paper's witness must check out, and the
    # exhaustive search must independently find some witness.
    graph_7 = chord_network(7, 2)
    paper_witness = chord_n7_f2_witness()
    witness_ok = verify_witness(graph_7, 2, paper_witness)
    found = find_violating_partition(graph_7, 2)
    feas_7 = check_feasibility(graph_7, 2)
    rows.append(
        {
            "case": "chord n=7 f=2",
            "is_complete": is_complete(graph_7),
            "condition_holds": feas_7.satisfied,
            "paper_verdict": False,
            "paper_witness_valid": witness_ok,
            "checker_found_witness": found is not None,
            "agrees_with_paper": feas_7.satisfied is False and witness_ok,
        }
    )

    # f = 1, n = 5: satisfies the condition; Algorithm 1 converges under attack.
    graph_5 = chord_network(5, 1)
    feas_5 = check_feasibility(graph_5, 1)
    outcome = run_vectorized(
        graph=graph_5,
        rule=TrimmedMeanRule(1),
        inputs=bimodal_inputs(graph_5.nodes, 0.0, 1.0, rng=3),
        faulty=frozenset({0}),
        adversary=RandomNoiseStrategy(-5.0, 5.0, rng=3),
        max_rounds=rounds,
        tolerance=tolerance,
    )
    rows.append(
        {
            "case": "chord n=5 f=1",
            "is_complete": is_complete(graph_5),
            "condition_holds": feas_5.satisfied,
            "paper_verdict": True,
            "converged_under_attack": outcome.converged,
            "validity_ok": outcome.validity_ok,
            "agrees_with_paper": feas_5.satisfied is True,
        }
    )
    return rows


def chord_feasibility_sweep(
    n_values: list[int] | None = None,
    f_values: list[int] | None = None,
) -> list[FamiliesRow]:
    """Map the feasibility frontier of the chord family over ``(n, f)``.

    Extends the paper's three data points into a small sweep; each row records
    the exact condition verdict (and the screens) for one ``(n, f)`` pair.
    """
    chosen_n = n_values if n_values is not None else list(range(4, 11))
    chosen_f = f_values if f_values is not None else [1, 2]
    rows: list[FamiliesRow] = []
    for f in chosen_f:
        for n in chosen_n:
            if n <= 3 * f:
                continue
            graph = chord_network(n, f)
            feasibility = check_feasibility(graph, f, use_structural_shortcuts=True)
            rows.append(
                {
                    "n": n,
                    "f": f,
                    "is_complete": is_complete(graph),
                    "condition_holds": feasibility.satisfied,
                    "method": feasibility.method,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Registry entry point (E4–E6 as one sharded sweep over the studies)
# ---------------------------------------------------------------------------
FAMILY_STUDIES = (
    "core",
    "core-batch",
    "minimality",
    "hypercube",
    "chord-cases",
    "chord-sweep",
)


@register_experiment(
    name="families",
    paper_section="Section 6.1-6.3 (E4-E6)",
    claim=(
        "Core networks are feasible and near edge-minimal, hypercubes fail "
        "the condition for every f >= 1, and the chord family reproduces the "
        "paper's three verdicts."
    ),
    engine="mixed",
    grid={"study": FAMILY_STUDIES},
    schema=FAMILIES_SCHEMA,
)
def families_cell(study: str, seed: int = 7) -> list[FamiliesRow]:
    """Registry cell for E4-E6: one Section-6 family study per cell."""
    if study == "core":
        return core_network_study(seed=seed)
    if study == "core-batch":
        return core_network_batch_sweep(seed=seed)
    if study == "minimality":
        return core_network_minimality_comparison()
    if study == "hypercube":
        return hypercube_study()
    if study == "chord-cases":
        return chord_case_studies()
    if study == "chord-sweep":
        return chord_feasibility_sweep()
    raise InvalidParameterError(
        f"unknown family study {study!r}; known studies: "
        + ", ".join(FAMILY_STUDIES)
    )
