"""Experiment E14 — ``large_n``: the sparse engine tier at scale.

The paper's experiments stop near ``n ≈ 200``; the roadmap's scale-out tier
asks what Algorithm 1 does on graphs two to three orders of magnitude larger.
This sweep runs batched executions of the trimmed-mean rule on the
:func:`~repro.graphs.random_graphs.heterogeneous_ring_lattice` family — an
``O(n)``-edge sparse graph whose in-degrees spread over many distinct values,
the shape the CSR :class:`~repro.simulation.sparse.SparseEngine` is built
for — under the batch-native extreme-push adversary, and records throughput
(node-rounds per second), the validity verdict, and the hull contraction per
cell.

Cells with ``n`` small enough to afford the dense engine also run a one-shot
dense-vs-sparse equivalence guard, so the timing numbers are tied to the
bit-exactness contract rather than taken on faith; the full curve (up to
``n = 10^5``) lives in ``benchmarks/bench_scale.py`` → ``BENCH_scale.json``.
"""

from __future__ import annotations

import time
from typing import TypedDict

import numpy as np

from repro.adversary.selection import random_fault_set
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.exceptions import InvalidParameterError, SimulationError
from repro.graphs.random_graphs import heterogeneous_ring_lattice
from repro.simulation.engine import SimulationConfig
from repro.simulation.sparse import SparseEngine
from repro.simulation.vectorized import VectorizedEngine, random_input_matrix
from repro.sweeps.registry import register_experiment
from repro.sweeps.schema import schema_from_typeddict


class LargeNRow(TypedDict):
    """One batched cell of the E14 large-``n`` scale sweep."""

    n: int
    f: int
    dtype: str
    batch: int
    rounds: int
    edges: int
    nnz: int
    plane_mb_per_row: float
    build_seconds: float
    run_seconds: float
    node_rounds_per_second: float
    fraction_converged: float
    all_validity_ok: bool
    mean_final_spread: float
    mean_contraction: float
    equivalence_checked: bool


#: Runtime half of :class:`LargeNRow`; validated at shard boundaries.
LARGE_N_SCHEMA = schema_from_typeddict(
    LargeNRow,
    roles={
        "n": "parameter",
        "f": "parameter",
        "dtype": "parameter",
        "batch": "parameter",
        "rounds": "parameter",
        "edges": "metric",
        "nnz": "metric",
        "plane_mb_per_row": "metric",
        "build_seconds": "metric",
        "run_seconds": "metric",
        "node_rounds_per_second": "metric",
        "fraction_converged": "metric",
        "all_validity_ok": "verdict",
        "mean_final_spread": "metric",
        "mean_contraction": "metric",
        "equivalence_checked": "verdict",
    },
)

#: State dtypes the sweep accepts (the sparse engine's two tiers).
SCALE_DTYPES = ("float64", "float32")

#: Largest ``n`` for which a cell runs the dense-vs-sparse equivalence guard
#: (the dense engine's per-degree gathers get expensive beyond this).
EQUIVALENCE_GUARD_MAX_N = 2000


def default_scale_sizes() -> tuple[int, ...]:
    """Default ``n`` values of the registry grid (the benchmark goes higher)."""
    return (200, 1000, 5000)


def large_n_study(
    n: int,
    f: int = 2,
    dtype: str = "float64",
    batch: int = 8,
    rounds: int = 30,
    extra_mean: float = 2.0,
    max_plane_bytes: int | None = None,
    seed: int = 0,
) -> list[LargeNRow]:
    """Run one batched large-``n`` cell on the heterogeneous ring lattice.

    Builds the graph and a random ``f``-node fault set from ``seed``, runs
    ``batch`` executions for ``rounds`` rounds under the batch-native
    extreme-push adversary on the sparse engine, and returns a single row
    with build/run timings, throughput, and the validity and contraction
    summary.  For ``n <= EQUIVALENCE_GUARD_MAX_N`` at float64 the row also
    records a one-round dense-vs-sparse bit-equality check.
    """
    if dtype not in SCALE_DTYPES:
        raise InvalidParameterError(
            f"dtype must be one of {SCALE_DTYPES}, got {dtype!r}"
        )
    # RNG-stream contract: one child stream per stage (graph build, fault
    # selection, input matrix), spawned from the cell seed, so a change in
    # how many draws one stage consumes can never shift another stage's.
    graph_stream, fault_stream, input_stream = np.random.SeedSequence(
        seed
    ).spawn(3)
    build_start = time.perf_counter()
    graph = heterogeneous_ring_lattice(
        n, f, extra_mean=extra_mean, rng=np.random.default_rng(graph_stream)
    )
    faulty = random_fault_set(graph, f, rng=np.random.default_rng(fault_stream))
    engine = SparseEngine(
        graph,
        TrimmedMeanRule(f),
        faulty=faulty,
        adversary=BatchExtremePushStrategy(delta=1.5),
        config=SimulationConfig(
            max_rounds=rounds,
            tolerance=1e-6,
            record_history=False,
            stop_on_convergence=False,
        ),
        dtype=np.dtype(dtype),
        max_plane_bytes=max_plane_bytes,
    )
    build_seconds = time.perf_counter() - build_start

    matrix = random_input_matrix(
        engine.nodes, batch, rng=np.random.default_rng(input_stream)
    )
    run_start = time.perf_counter()
    outcome = engine.run_batch(matrix)
    run_seconds = time.perf_counter() - run_start

    equivalence_checked = False
    if dtype == "float64" and n <= EQUIVALENCE_GUARD_MAX_N:
        dense = VectorizedEngine(
            graph,
            TrimmedMeanRule(f),
            faulty=faulty,
            adversary=BatchExtremePushStrategy(delta=1.5),
            config=engine.config,
        )
        if not np.array_equal(
            dense.step_matrix(matrix, 1), engine.step_matrix(matrix, 1)
        ):
            raise SimulationError(
                f"sparse engine diverged from the dense engine at n={n}"
            )
        equivalence_checked = True

    node_rounds = n * rounds * batch
    return [
        {
            "n": n,
            "f": f,
            "dtype": dtype,
            "batch": batch,
            "rounds": rounds,
            "edges": graph.number_of_edges,
            "nnz": engine.nnz,
            "plane_mb_per_row": engine.plane_bytes_per_row / 1e6,
            "build_seconds": build_seconds,
            "run_seconds": run_seconds,
            "node_rounds_per_second": node_rounds / run_seconds,
            "fraction_converged": outcome.fraction_converged,
            "all_validity_ok": outcome.all_valid,
            "mean_final_spread": float(outcome.final_spread.mean()),
            "mean_contraction": float(
                (outcome.final_spread / outcome.initial_spread).mean()
            ),
            "equivalence_checked": equivalence_checked,
        }
    ]


@register_experiment(
    name="large_n",
    paper_section=(
        "Scale-out beyond the paper's n ~ 200 (roadmap large-n tier, E14)"
    ),
    claim=(
        "The CSR sparse tier runs Algorithm 1 on sparse heterogeneous graphs "
        "up to n = 10^5 with validity intact in every execution, bit-exact "
        "with the dense engine at float64."
    ),
    engine="sparse",
    grid={
        "n": default_scale_sizes(),
        "dtype": SCALE_DTYPES,
        "batch": (8,),
        "rounds": (30,),
    },
    schema=LARGE_N_SCHEMA,
)
def large_n_cell(
    n: int,
    dtype: str = "float64",
    batch: int = 8,
    rounds: int = 30,
    seed: int = 0,
) -> list[LargeNRow]:
    """Registry cell for E14: one (n, dtype) point of the scale sweep."""
    return large_n_study(
        n=n, dtype=dtype, batch=batch, rounds=rounds, seed=seed
    )
