"""Experiment E8 — validity (Theorem 2) under every adversary strategy.

Theorem 2 states that Algorithm 1 satisfies validity (eq. 1) on any graph
satisfying the Theorem-1 condition, *regardless* of what the Byzantine nodes
do.  The driver runs Algorithm 1 (and W-MSR for comparison) against the whole
strategy zoo on several feasible graphs and records whether the fault-free
interval ever expanded; it also runs the non-fault-tolerant linear average to
show that it does violate validity under the same attacks.
"""

from __future__ import annotations

from typing import TypedDict

from repro.adversary.base import ByzantineStrategy
from repro.adversary.selection import highest_out_degree_fault_set
from repro.adversary.strategies import (
    BroadcastConsistentStrategy,
    ExtremePushStrategy,
    FrozenValueStrategy,
    RandomNoiseStrategy,
    StaticValueStrategy,
)
from repro.algorithms.base import UpdateRule
from repro.algorithms.linear import LinearAverageRule
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.algorithms.wmsr import WMSRRule
from repro.graphs.digraph import Digraph
from repro.graphs.generators import chord_network, complete_graph, core_network
from repro.simulation.engine import run_synchronous
from repro.simulation.inputs import uniform_random_inputs
from repro.sweeps.registry import register_experiment, select_labelled_case
from repro.sweeps.schema import schema_from_typeddict
from repro.types import NodeId


class ValidityRow(TypedDict):
    """One row of the E8 validity study (one graph x rule x adversary)."""

    graph: str
    f: int
    rule: str
    adversary: str
    validity_ok: bool
    final_within_input_hull: bool
    converged: bool
    final_spread: float


#: Runtime half of :class:`ValidityRow`; validated at shard boundaries.
VALIDITY_SCHEMA = schema_from_typeddict(
    ValidityRow,
    roles={
        "graph": "label",
        "f": "parameter",
        "rule": "label",
        "adversary": "label",
        "validity_ok": "verdict",
        "final_within_input_hull": "verdict",
        "converged": "verdict",
        "final_spread": "metric",
    },
)


def default_validity_graphs() -> list[tuple[str, Digraph, int]]:
    """Return the labelled feasible graphs used by the validity experiment."""
    return [
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=7 f=2", core_network(7, 2), 2),
        ("chord n=5 f=1", chord_network(5, 1), 1),
    ]


def adversary_zoo(seed: int = 5) -> list[ByzantineStrategy]:
    """Return one instance of every adversary strategy in the library."""
    return [
        StaticValueStrategy(100.0),
        FrozenValueStrategy(),
        RandomNoiseStrategy(-10.0, 10.0, rng=seed),
        ExtremePushStrategy(delta=3.0),
        BroadcastConsistentStrategy(ExtremePushStrategy(delta=3.0)),
    ]


def validity_study(
    graphs: list[tuple[str, Digraph, int]] | None = None,
    rules: list[type[UpdateRule]] | None = None,
    rounds: int = 80,
    seed: int = 5,
) -> list[ValidityRow]:
    """Cross every (graph, rule, adversary) combination and record validity.

    The fault set is the ``f`` highest-out-degree nodes (the most damaging
    degree-based choice).  Rows record whether validity held and whether the
    final fault-free values stayed inside the initial fault-free input hull.
    """
    chosen_graphs = graphs if graphs is not None else default_validity_graphs()
    chosen_rules = (
        rules if rules is not None else [TrimmedMeanRule, WMSRRule, LinearAverageRule]
    )
    rows: list[ValidityRow] = []
    for label, graph, f in chosen_graphs:
        faulty = highest_out_degree_fault_set(graph, f)
        inputs = uniform_random_inputs(graph.nodes, rng=seed)
        hull_low = min(
            value for node, value in inputs.items() if node not in faulty
        )
        hull_high = max(
            value for node, value in inputs.items() if node not in faulty
        )
        for rule_type in chosen_rules:
            rule = rule_type(f)
            for adversary in adversary_zoo(seed=seed):
                outcome = run_synchronous(
                    graph=graph,
                    rule=rule,
                    inputs=inputs,
                    faulty=faulty,
                    adversary=adversary,
                    max_rounds=rounds,
                    tolerance=1e-9,
                )
                final_within_hull = all(
                    hull_low - 1e-9 <= value <= hull_high + 1e-9
                    for value in outcome.final_values.values()
                )
                rows.append(
                    {
                        "graph": label,
                        "f": f,
                        "rule": rule.name,
                        "adversary": adversary.name,
                        "validity_ok": outcome.validity_ok,
                        "final_within_input_hull": final_within_hull,
                        "converged": outcome.converged,
                        "final_spread": outcome.final_spread,
                    }
                )
    return rows


def count_validity_failures(
    rows: list[ValidityRow], rule_name: str
) -> tuple[int, int]:
    """Return ``(failures, total)`` validity counts for one rule across rows."""
    relevant = [row for row in rows if row["rule"] == rule_name]
    failures = sum(1 for row in relevant if not row["validity_ok"])
    return failures, len(relevant)


@register_experiment(
    name="validity",
    paper_section="Section 4, Theorem 2 (E8)",
    claim=(
        "Algorithm 1 and W-MSR never let the fault-free interval expand "
        "under any adversary in the zoo; the plain average does."
    ),
    engine="scalar-sync",
    grid={
        "graph": tuple(label for label, _, _ in default_validity_graphs()),
        "rounds": (80,),
    },
    schema=VALIDITY_SCHEMA,
)
def validity_cell(
    graph: str, rounds: int = 80, seed: int = 5
) -> list[ValidityRow]:
    """Registry cell for E8: the full rule x adversary cross on one graph."""
    matching = select_labelled_case(
        graph, default_validity_graphs(), "validity graph"
    )
    return validity_study(graphs=matching, rounds=rounds, seed=seed)
