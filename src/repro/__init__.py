"""repro — a reproduction of "Iterative Approximate Byzantine Consensus in
Arbitrary Directed Graphs" (Vaidya, Tseng, Liang; PODC 2012).

The package provides

* :mod:`repro.graphs` — a directed-graph substrate with generators for every
  family the paper analyses (complete graphs, core networks, hypercubes,
  chord networks, …);
* :mod:`repro.conditions` — the paper's tight necessary-and-sufficient
  feasibility condition (Theorem 1), its corollaries, the asynchronous
  variant of Section 7, propagation machinery and robustness comparisons;
* :mod:`repro.algorithms` — the paper's Algorithm 1 (trimmed mean), W-MSR and
  baselines, as pluggable update rules;
* :mod:`repro.adversary` — Byzantine behaviour strategies including the
  split-brain attack from the necessity proof;
* :mod:`repro.simulation` — synchronous and partially asynchronous round-based
  engines, metrics, traces and the high-level :func:`run_consensus` API;
* :mod:`repro.analysis` — α, the Lemma-5 contraction bound, Theorem-3 window
  verification and empirical rate estimation;
* :mod:`repro.experiments` — drivers that regenerate every paper result.

Quickstart
----------
>>> from repro import core_network, check_feasibility, run_consensus
>>> graph = core_network(n=7, f=2)
>>> check_feasibility(graph, f=2).satisfied
True
>>> outcome = run_consensus(graph, f=2, seed=1)
>>> outcome.converged and outcome.validity_ok
True
"""

from repro.adversary import (
    ByzantineStrategy,
    ExtremePushStrategy,
    RandomNoiseStrategy,
    SplitBrainStrategy,
    StaticValueStrategy,
)
from repro.algorithms import (
    LinearAverageRule,
    MedianRule,
    TrimmedMeanRule,
    TrimmedMidpointRule,
    UpdateRule,
    WMSRRule,
)
from repro.analysis import (
    alpha_for_rule,
    lemma5_contraction_factor,
    verify_theorem3_windows,
)
from repro.conditions import (
    check_async_feasibility,
    check_feasibility,
    find_violating_partition,
    propagates_f,
    reaches_f,
    satisfies_theorem1,
    verify_witness,
)
from repro.graphs import (
    Digraph,
    chord_network,
    complete_graph,
    core_network,
    hypercube,
)
from repro.simulation import (
    run_consensus,
    run_partially_asynchronous,
    run_synchronous,
)
from repro.types import ConsensusOutcome, FeasibilityResult, PartitionWitness

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graphs
    "Digraph",
    "chord_network",
    "complete_graph",
    "core_network",
    "hypercube",
    # conditions
    "check_async_feasibility",
    "check_feasibility",
    "find_violating_partition",
    "propagates_f",
    "reaches_f",
    "satisfies_theorem1",
    "verify_witness",
    # algorithms
    "LinearAverageRule",
    "MedianRule",
    "TrimmedMeanRule",
    "TrimmedMidpointRule",
    "UpdateRule",
    "WMSRRule",
    # adversary
    "ByzantineStrategy",
    "ExtremePushStrategy",
    "RandomNoiseStrategy",
    "SplitBrainStrategy",
    "StaticValueStrategy",
    # simulation
    "run_consensus",
    "run_partially_asynchronous",
    "run_synchronous",
    # analysis
    "alpha_for_rule",
    "lemma5_contraction_factor",
    "verify_theorem3_windows",
    # types
    "ConsensusOutcome",
    "FeasibilityResult",
    "PartitionWitness",
]
