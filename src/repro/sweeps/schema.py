"""Typed row schemas: the contract every experiment's result rows satisfy.

Each registered experiment declares its row shape twice, deliberately in the
same place:

* a :class:`typing.TypedDict` — the **static** half, used to annotate the
  row-producing functions so mypy checks every construction site;
* a :class:`RowSchema` — the **runtime** half, derived *from* the TypedDict
  by :func:`schema_from_typeddict` so the two can never drift apart.

The :class:`RowSchema` records, per column, the value **kind** (``int`` /
``float`` / ``bool`` / ``str``), whether ``None`` is an allowed value
(``optional``, for columns such as a simulation verdict that is undefined
when the condition screen already failed), whether the column may be absent
from some rows (``required=False``, for union-shaped experiments whose
studies emit different key sets), and an **aggregation role** that the
report renderer and the NPZ column extractor consume:

``label``
    string identity of the row (case label, rule name, schedule kind);
``parameter``
    a swept or derived input knob (``n``, ``f``, ``batch``, ``alpha``);
``metric``
    a measured quantity (round counts, spreads, timings, throughputs);
``verdict``
    a boolean pass/fail outcome (``converged``, ``validity_ok``).

Validation (:meth:`RowSchema.validate_row`) runs at every shard boundary —
after the runner produces rows, and again whenever a stored shard or
aggregate is read back — so a column typo or a NumPy scalar that would be
corrupted by JSON round-tripping raises :class:`SchemaViolationError` with
cell coordinates instead of silently narrowing an aggregate.  The schema is
persisted in ``manifest.json`` (:meth:`RowSchema.to_json`) and fingerprinted
(:meth:`RowSchema.fingerprint`) so resuming a run after the schema changed
fails loudly with both fingerprints.
"""

from __future__ import annotations

import hashlib
import json
import types
from dataclasses import dataclass
from typing import (
    Mapping,
    Sequence,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

import numpy as np

from repro.exceptions import InvalidParameterError, SchemaViolationError

#: The value kinds a column may declare.
COLUMN_KINDS = ("int", "float", "bool", "str")

#: The aggregation roles a column may declare (see the module docstring).
COLUMN_ROLES = ("label", "parameter", "metric", "verdict")

#: Kinds whose columns land in the NPZ aggregate as NumPy arrays.
NUMERIC_KINDS = ("int", "float", "bool")


@dataclass(frozen=True)
class Column:
    """One column of a row schema.

    ``kind`` is the JSON-stable value type; ``role`` the aggregation role;
    ``optional`` whether ``None`` is an allowed value; ``required`` whether
    the key must be present in every row (``False`` for union-shaped
    experiments whose studies emit different key sets).
    """

    name: str
    kind: str
    role: str
    optional: bool = False
    required: bool = True

    def __post_init__(self) -> None:
        if self.kind not in COLUMN_KINDS:
            raise InvalidParameterError(
                f"column {self.name!r}: kind must be one of {COLUMN_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.role not in COLUMN_ROLES:
            raise InvalidParameterError(
                f"column {self.name!r}: role must be one of {COLUMN_ROLES}, "
                f"got {self.role!r}"
            )


def _value_matches(value: object, kind: str) -> bool:
    """Whether ``value`` is acceptable for ``kind`` after JSON round-trip.

    Exact Python types only: ``bool`` is *not* an ``int``/``float`` here
    (the numeric tower would silently admit flag columns into means), and
    NumPy integer/bool scalars are rejected because ``json.dumps`` cannot
    represent them (the store's ``default=repr`` would turn them into
    strings).  ``np.floating`` *is* a ``float`` subclass and JSON-exact, so
    it passes the ``float`` kind; an ``int`` where a ``float`` is expected
    is accepted, matching both the numeric tower and NumPy's mixed-list
    promotion in the NPZ extractor.
    """
    if kind == "bool":
        return isinstance(value, bool)
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "float":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, str)


@dataclass(frozen=True)
class RowSchema:
    """Runtime descriptor of one experiment's row shape (see module docs)."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise InvalidParameterError(
                    f"schema {self.name!r}: duplicate column {column.name!r}"
                )
            seen.add(column.name)
        if not self.columns:
            raise InvalidParameterError(
                f"schema {self.name!r} declares no columns"
            )

    # -- lookups -------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """All column names, in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise with the known names."""
        for column in self.columns:
            if column.name == name:
                return column
        raise InvalidParameterError(
            f"schema {self.name!r} has no column {name!r}; "
            f"columns: {', '.join(self.names)}"
        )

    @property
    def numeric_names(self) -> tuple[str, ...]:
        """Names of the int/float/bool columns, in declaration order."""
        return tuple(
            column.name
            for column in self.columns
            if column.kind in NUMERIC_KINDS
        )

    # -- validation ----------------------------------------------------------
    def validate_row(
        self, row: Mapping[str, object], context: str = ""
    ) -> None:
        """Raise :class:`SchemaViolationError` unless ``row`` matches.

        ``context`` carries the cell coordinates (experiment, shard, cell,
        row index) the orchestrator prepends to every message, so a
        violation in a thousand-cell sweep names the offending cell.
        """
        where = f"{context}: " if context else ""
        by_name = {column.name: column for column in self.columns}
        for key in row:
            if key not in by_name:
                raise SchemaViolationError(
                    f"{where}unknown column {key!r} "
                    f"(schema {self.name!r} declares: {', '.join(self.names)})"
                )
        for column in self.columns:
            if column.name not in row:
                if column.required:
                    raise SchemaViolationError(
                        f"{where}missing required column {column.name!r} "
                        f"(schema {self.name!r})"
                    )
                continue
            value = row[column.name]
            if value is None:
                if column.optional:
                    continue
                raise SchemaViolationError(
                    f"{where}column {column.name!r} is None but the schema "
                    f"{self.name!r} does not allow None for it"
                )
            if not _value_matches(value, column.kind):
                raise SchemaViolationError(
                    f"{where}column {column.name!r} expects kind "
                    f"{column.kind!r} but got {type(value).__name__} "
                    f"({value!r}); NumPy integer/bool scalars must be "
                    "converted with int()/bool() before leaving the runner"
                )

    def validate_rows(
        self, rows: object, context: str = ""
    ) -> None:
        """Validate a whole row list (each row's index joins ``context``)."""
        if not isinstance(rows, (list, tuple)):
            raise SchemaViolationError(
                f"{context + ': ' if context else ''}rows must be a list, "
                f"got {type(rows).__name__}"
            )
        for row_index, row in enumerate(rows):
            if not isinstance(row, Mapping):
                raise SchemaViolationError(
                    f"{context + ', ' if context else ''}row {row_index}: "
                    f"expected a mapping, got {type(row).__name__}"
                )
            suffix = f"row {row_index}"
            self.validate_row(
                row, context=f"{context}, {suffix}" if context else suffix
            )

    # -- persistence ---------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        """Return the JSON document persisted into ``manifest.json``."""
        return {
            "name": self.name,
            "columns": [
                {
                    "name": column.name,
                    "kind": column.kind,
                    "role": column.role,
                    "optional": column.optional,
                    "required": column.required,
                }
                for column in self.columns
            ],
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> RowSchema:
        """Rebuild a schema from its :meth:`to_json` document."""
        name = payload.get("name")
        columns = payload.get("columns")
        if not isinstance(name, str) or not isinstance(columns, list):
            raise SchemaViolationError(
                "row_schema document must carry a 'name' string and a "
                f"'columns' list, got {payload!r}"
            )
        rebuilt: list[Column] = []
        for entry in columns:
            if not isinstance(entry, Mapping):
                raise SchemaViolationError(
                    f"row_schema column entry must be a mapping, got {entry!r}"
                )
            try:
                rebuilt.append(
                    Column(
                        name=str(entry["name"]),
                        kind=str(entry["kind"]),
                        role=str(entry["role"]),
                        optional=bool(entry["optional"]),
                        required=bool(entry["required"]),
                    )
                )
            except KeyError as missing:
                raise SchemaViolationError(
                    f"row_schema column entry missing key {missing}; "
                    f"entry: {entry!r}"
                ) from None
        return cls(name=name, columns=tuple(rebuilt))

    def fingerprint(self) -> str:
        """Stable hex fingerprint of the schema (drift detection on resume)."""
        payload = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _hint_kind(name: str, hint: object, schema_name: str) -> tuple[str, bool]:
    """Map one TypedDict value annotation to ``(kind, optional)``.

    Accepts the four scalar kinds and their ``X | None`` /
    ``Optional[X]`` forms (both :data:`typing.Union` and the 3.10
    ``types.UnionType`` spelling).
    """
    optional = False
    origin = get_origin(hint)
    if origin is Union or origin is types.UnionType:
        args = [arg for arg in get_args(hint) if arg is not type(None)]
        if len(args) != 1 or len(get_args(hint)) != len(args) + 1:
            raise InvalidParameterError(
                f"schema {schema_name!r}, column {name!r}: only 'X | None' "
                f"unions are supported, got {hint!r}"
            )
        optional = True
        hint = args[0]
    kinds_by_type: dict[type, str] = {
        bool: "bool",
        int: "int",
        float: "float",
        str: "str",
    }
    if not isinstance(hint, type) or hint not in kinds_by_type:
        raise InvalidParameterError(
            f"schema {schema_name!r}, column {name!r}: unsupported value "
            f"type {hint!r}; rows carry JSON scalars "
            f"({', '.join(COLUMN_KINDS)}, optionally '| None')"
        )
    return kinds_by_type[hint], optional


def schema_from_typeddict(
    typed_dict: type,
    roles: Mapping[str, str],
    name: str | None = None,
) -> RowSchema:
    """Derive the runtime :class:`RowSchema` from a row ``TypedDict``.

    ``roles`` assigns every TypedDict key its aggregation role **and fixes
    the column order** (the report renderer prints columns in ``roles``
    declaration order).  The key sets must match exactly — a key present in
    one but not the other raises at import time, and reprolint rule REG003
    re-checks the same agreement statically.  Keys listed in the
    TypedDict's ``__optional_keys__`` (``total=False`` sections) become
    ``required=False`` columns; ``X | None`` value types become
    ``optional=True`` columns.
    """
    schema_name = name or typed_dict.__name__
    hints = get_type_hints(typed_dict)
    declared = set(hints)
    assigned = set(roles)
    if declared != assigned:
        missing = ", ".join(sorted(declared - assigned)) or "(none)"
        extra = ", ".join(sorted(assigned - declared)) or "(none)"
        raise InvalidParameterError(
            f"schema {schema_name!r}: roles must cover exactly the TypedDict "
            f"keys; missing from roles: {missing}; not in the TypedDict: "
            f"{extra}"
        )
    absent_allowed = frozenset(getattr(typed_dict, "__optional_keys__", ()))
    columns: list[Column] = []
    for key, role in roles.items():
        kind, optional = _hint_kind(key, hints[key], schema_name)
        columns.append(
            Column(
                name=key,
                kind=kind,
                role=role,
                optional=optional,
                required=key not in absent_allowed,
            )
        )
    return RowSchema(name=schema_name, columns=tuple(columns))


def _as_float(value: object) -> float:
    """Coerce one validated numeric cell to ``float`` (NaN-hole arrays)."""
    if isinstance(value, (int, float)):
        return float(value)
    raise SchemaViolationError(
        f"cannot place non-numeric value {value!r} into a numeric column"
    )


def numeric_arrays(
    rows: Sequence[Mapping[str, object]],
    schema: RowSchema,
) -> dict[str, np.ndarray]:
    """Schema-driven NPZ column extraction (see ``store.numeric_columns``).

    Every int/float/bool column of ``schema`` that appears in at least one
    row becomes an array in row order.  Columns with no ``None`` and no
    absent cells take the exact dtype NumPy infers from the values (the
    historical behaviour, preserving bit-identity of existing aggregates);
    a column with ``None`` or absent cells becomes ``float64`` with ``NaN``
    holes — the case the old first-row type sniffing silently dropped.
    """
    if not rows:
        return {}
    arrays: dict[str, np.ndarray] = {}
    for column in schema.columns:
        if column.kind not in NUMERIC_KINDS:
            continue
        values = [row.get(column.name) for row in rows]
        present = [value for value in values if value is not None]
        if not present:
            continue
        if len(present) == len(values):
            arrays[column.name] = np.asarray(values)
        else:
            arrays[column.name] = np.asarray(
                [
                    float("nan") if value is None else _as_float(value)
                    for value in values
                ],
                dtype=np.float64,
            )
    return arrays
