"""Declarative experiment registry and sharded sweep orchestration.

This subpackage turns the experiment driver modules under
:mod:`repro.experiments` into named, rerunnable artifacts:

* :mod:`repro.sweeps.registry` — the :func:`register_experiment` decorator and
  the :class:`ExperimentSpec` records it collects.  Every experiment declares
  its parameter grid, the engine it runs on and the paper section it
  reproduces.
* :mod:`repro.sweeps.schema` — per-experiment typed row schemas: a
  ``TypedDict`` (static half, checked by mypy) and the
  :class:`~repro.sweeps.schema.RowSchema` runtime descriptor derived from
  it, validated at every shard boundary and persisted in run manifests.
* :mod:`repro.sweeps.grid` — parameter-grid expansion into cells, CLI-style
  ``key=v1,v2`` overrides and canonical fingerprints.
* :mod:`repro.sweeps.orchestrator` — splits a grid into deterministic shards
  (per-cell seeds via ``numpy.random.SeedSequence.spawn``), fans them across
  ``multiprocessing`` workers and aggregates bit-identically regardless of the
  worker count.
* :mod:`repro.sweeps.store` — the resumable ``results/`` store: one directory
  per run holding a manifest, per-shard JSON files and a JSON + NPZ aggregate.
* :mod:`repro.sweeps.provenance` — machine / git metadata stamped into run
  manifests and the ``BENCH_*.json`` benchmark files.

The command-line front end is :mod:`repro.cli` (``python -m repro`` or the
``repro`` console script); see ``docs/cli.md`` and ``docs/experiments.md``.
"""

from repro.sweeps.grid import apply_overrides, expand_grid, grid_fingerprint, parse_override
from repro.sweeps.orchestrator import SweepPlan, SweepResult, plan_sweep, run_sweep
from repro.sweeps.provenance import (
    BENCH_SCHEMA_VERSION,
    RUN_SCHEMA_VERSION,
    bench_payload,
    git_revision,
    machine_provenance,
)
from repro.sweeps.registry import (
    ExperimentSpec,
    all_experiments,
    get_experiment,
    register_experiment,
    select_labelled_case,
)
from repro.sweeps.schema import (
    Column,
    RowSchema,
    schema_from_typeddict,
)
from repro.sweeps.store import Aggregate, Manifest, RunStore

__all__ = [
    "Aggregate",
    "BENCH_SCHEMA_VERSION",
    "Column",
    "Manifest",
    "RUN_SCHEMA_VERSION",
    "ExperimentSpec",
    "RowSchema",
    "RunStore",
    "schema_from_typeddict",
    "SweepPlan",
    "SweepResult",
    "all_experiments",
    "apply_overrides",
    "bench_payload",
    "expand_grid",
    "get_experiment",
    "git_revision",
    "grid_fingerprint",
    "machine_provenance",
    "parse_override",
    "plan_sweep",
    "register_experiment",
    "run_sweep",
    "select_labelled_case",
]
