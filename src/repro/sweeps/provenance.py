"""Machine and repository provenance for run manifests and benchmark files.

Every sweep manifest and every ``BENCH_*.json`` records where its numbers
came from: interpreter and NumPy versions, machine architecture, and the git
revision of the working tree (when available).  The benchmark scripts also
share :func:`bench_payload` so both files follow one schema — documented in
``docs/performance.md``.
"""

from __future__ import annotations

import datetime
import platform
import subprocess
from pathlib import Path
from typing import Mapping

import numpy as np


def utc_now_iso() -> str:
    """Current UTC wall-clock time as an ISO-8601 string.

    The clock-hygiene contract (reprolint ``CLK001``) confines wall-clock
    reads to this module: manifests and benchmark payloads stamp their
    metadata through this helper, and nothing on a simulation path may call
    it — a timestamp there would be an input the seed does not control.
    """
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )

#: Schema version of the unified ``BENCH_*.json`` layout.
BENCH_SCHEMA_VERSION = 2

#: Schema version of sweep run manifests / shard files under ``results/``.
RUN_SCHEMA_VERSION = 1


def git_revision(cwd: Path | str | None = None) -> str | None:
    """Return the current git commit sha, or ``None`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def machine_provenance() -> dict[str, object]:
    """Return the provenance block stamped into manifests and BENCH files."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        "git_sha": git_revision(Path(__file__).resolve().parent),
    }


def bench_payload(
    benchmark: str,
    scenario: Mapping[str, object],
    results: Mapping[str, object],
    speedups: Mapping[str, float],
) -> dict[str, object]:
    """Assemble the unified ``BENCH_*.json`` payload (schema v2).

    ``benchmark`` names the harness (``engine-sync`` / ``engine-async``),
    ``scenario`` the fixed configuration that was timed, ``results`` one
    entry per timed path and ``speedups`` the headline ratios.  The payload
    always records that the engine-equivalence guard ran (both harnesses
    refuse to time a drifted engine) and the machine provenance.
    """
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": benchmark,
        "scenario": dict(scenario),
        "equivalence_checked": True,
        "results": dict(results),
        "speedups": dict(speedups),
        "provenance": machine_provenance(),
    }
