"""Parameter grids: expansion into cells, CLI overrides and fingerprints.

A *grid* is an ordered mapping from parameter name to a tuple of values; its
Cartesian product (declaration order, last key varying fastest) is the list
of *cells* a sweep executes.  All values are JSON-serialisable scalars so
that cells round-trip through the run manifest and shard files unchanged.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Mapping, Sequence

from repro.exceptions import InvalidParameterError


def expand_grid(grid: Mapping[str, Sequence[object]]) -> list[dict[str, object]]:
    """Expand ``grid`` into its list of cells.

    Declaration order is preserved and the last parameter varies fastest, so
    the cell list (and therefore shard layout and aggregate row order) is a
    pure function of the grid.  An empty grid yields one empty cell.
    """
    keys = list(grid)
    cells: list[dict[str, object]] = []
    for combo in itertools.product(*(tuple(grid[key]) for key in keys)):
        cells.append(dict(zip(keys, combo)))
    return cells


def parse_override(text: str) -> tuple[str, tuple]:
    """Parse one CLI grid override ``key=v1,v2,...`` into ``(key, values)``.

    Each comma-separated token is parsed as JSON when possible (so ``8`` is an
    int, ``0.5`` a float, ``true`` a bool, ``null`` is ``None``) and kept as a
    plain string otherwise (case labels like ``complete n=4 f=1``).
    """
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise InvalidParameterError(
            f"grid override {text!r} is not of the form key=value[,value...]"
        )
    values: list[object] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            raise InvalidParameterError(f"grid override {text!r} has an empty value")
        try:
            values.append(json.loads(token))
        except json.JSONDecodeError:
            values.append(token)
    return key, tuple(values)


def _coerce_to_base_type(
    key: str, values: tuple, base: Sequence[object] | None
) -> tuple:
    """Align override value types with the declared grid values.

    JSON parsing cannot distinguish ``1e2`` from ``100``; when the declared
    values for ``key`` are all ints (the ``seed`` parameter too), integral
    floats are coerced to int and non-integral floats rejected, so a runner
    expecting an int round count never receives a float.
    """
    int_typed = base is None or all(
        isinstance(value, int) and not isinstance(value, bool) for value in base
    )
    if not int_typed:
        return values
    coerced: list[object] = []
    for value in values:
        if isinstance(value, float):
            if not value.is_integer():
                raise InvalidParameterError(
                    f"grid parameter {key!r} takes integer values, got {value!r}"
                )
            value = int(value)
        coerced.append(value)
    return tuple(coerced)


def apply_overrides(
    grid: Mapping[str, Sequence[object]],
    overrides: Sequence[str],
    extra_allowed: Sequence[str] = (),
) -> dict[str, tuple]:
    """Return ``grid`` with CLI overrides applied.

    Overrides may only touch parameters the grid declares (or names in
    ``extra_allowed``, used for the orchestrator-seeded ``seed`` parameter);
    an unknown name is an error rather than a silently ignored cell axis.
    Values are type-aligned with the declared grid values
    (:func:`_coerce_to_base_type`).
    """
    merged = {str(key): tuple(values) for key, values in grid.items()}
    allowed = set(merged) | set(extra_allowed)
    for text in overrides:
        key, values = parse_override(text)
        if key not in allowed:
            known = ", ".join(sorted(allowed)) or "(none)"
            raise InvalidParameterError(
                f"unknown grid parameter {key!r}; this experiment accepts: {known}"
            )
        merged[key] = _coerce_to_base_type(key, values, merged.get(key))
    return merged


def grid_fingerprint(
    experiment: str,
    grid: Mapping[str, Sequence[object]],
    seed: int,
    num_shards: int,
) -> str:
    """Return a stable hex fingerprint of a sweep's identity.

    The fingerprint covers everything that determines the results — the
    experiment name, the effective grid, the root seed and the shard count —
    and nothing environmental, so a resumed run can verify it is continuing
    the same sweep.
    """
    payload = json.dumps(
        {
            "experiment": experiment,
            "grid": {key: list(values) for key, values in grid.items()},
            "seed": seed,
            "num_shards": num_shards,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
