"""The resumable on-disk results store for sweep runs.

Layout (one directory per run, under ``results/`` by default)::

    results/<run_id>/
        manifest.json      run identity: experiment, grid, cells, shard map,
                           per-cell seeds, fingerprint, row schema, status,
                           provenance
        shard_0000.json    one file per completed shard: the rows of its cells
        ...
        aggregate.json     all rows in cell order (written when the run
                           completes), plus a summary block
        aggregate.npz      the numeric/boolean columns of the aggregate as
                           NumPy arrays (keyed by column name)

Shard files are the resume unit: a re-run with the same fingerprint skips
every shard whose file already exists and only executes the missing ones.
All writes are atomic (temp file + ``os.replace``) so an interrupted run
never leaves a half-written shard behind.

Documents come back **typed and validated**: :meth:`RunStore.read_manifest`
returns a :class:`Manifest` and :meth:`RunStore.read_aggregate` an
:class:`Aggregate` (both ``TypedDict``), each checked for the required keys
on read, and both :meth:`RunStore.read_shard` and
:meth:`RunStore.read_aggregate` re-validate their rows against the run's
:class:`~repro.sweeps.schema.RowSchema` so a hand-edited or
version-skewed run directory fails loudly instead of feeding a corrupted
aggregate downstream.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Sequence, TypedDict, cast

import numpy as np

from repro.exceptions import InvalidParameterError, SchemaViolationError
from repro.sweeps.provenance import RUN_SCHEMA_VERSION
from repro.sweeps.schema import RowSchema, numeric_arrays

MANIFEST_NAME = "manifest.json"
AGGREGATE_NAME = "aggregate.json"
AGGREGATE_NPZ_NAME = "aggregate.npz"


class _ManifestRequired(TypedDict):
    """Keys every run manifest carries from the moment it is first written."""

    schema_version: int
    experiment: str
    paper_section: str
    claim: str
    engine: str
    run_id: str
    fingerprint: str
    seed: int
    grid: dict[str, list[object]]
    num_cells: int
    cells: list[dict[str, object]]
    cell_seeds: list[int]
    num_shards: int
    shards: list[list[int]]
    completed_shards: list[int]
    status: str
    updated_at: str
    provenance: dict[str, object]
    row_schema: dict[str, object]
    parameter_columns: list[str]


class Manifest(_ManifestRequired, total=False):
    """The validated ``manifest.json`` document.

    ``row_count`` only appears once the run has completed and aggregated.
    """

    row_count: int


class _AggregateRequired(TypedDict):
    """Keys every aggregate document carries."""

    schema_version: int
    experiment: str
    run_id: str
    fingerprint: str
    paper_section: str
    engine: str
    row_schema: dict[str, object]
    parameter_columns: list[str]
    row_count: int
    rows: list[dict[str, object]]


class Aggregate(_AggregateRequired, total=False):
    """The validated ``aggregate.json`` document."""


#: (key, required type) pairs checked by the manifest validator.  ``bool``
#: is excluded from the ``int`` checks via exact-type tests below.
_MANIFEST_SCALARS: tuple[tuple[str, type], ...] = (
    ("experiment", str),
    ("paper_section", str),
    ("claim", str),
    ("engine", str),
    ("run_id", str),
    ("fingerprint", str),
    ("status", str),
    ("updated_at", str),
)

_AGGREGATE_SCALARS: tuple[tuple[str, type], ...] = (
    ("experiment", str),
    ("run_id", str),
    ("fingerprint", str),
    ("paper_section", str),
    ("engine", str),
)


def _require_keys(
    payload: Mapping[str, object],
    required: Sequence[str],
    scalars: Sequence[tuple[str, type]],
    what: str,
) -> None:
    """Shared manifest/aggregate structural validation."""
    missing = [key for key in required if key not in payload]
    if missing:
        raise SchemaViolationError(
            f"{what} is missing required key(s): {', '.join(missing)}; "
            "the run directory predates the row-schema layer or was "
            "hand-edited — delete it or use a fresh --run-id"
        )
    for key, expected in scalars:
        value = payload[key]
        if not isinstance(value, expected):
            raise SchemaViolationError(
                f"{what}: key {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )


def _validate_manifest(payload: Mapping[str, object], where: str) -> Manifest:
    """Validate a raw manifest document and return it typed."""
    _require_keys(
        payload, list(_ManifestRequired.__annotations__), _MANIFEST_SCALARS, where
    )
    if not isinstance(payload["row_schema"], Mapping):
        raise SchemaViolationError(
            f"{where}: 'row_schema' must be a mapping, "
            f"got {type(payload['row_schema']).__name__}"
        )
    # Rebuilding proves the stored schema document is well-formed.
    RowSchema.from_json(cast("Mapping[str, object]", payload["row_schema"]))
    return cast(Manifest, dict(payload))


def _validate_aggregate(
    payload: Mapping[str, object], where: str, schema: RowSchema | None
) -> Aggregate:
    """Validate a raw aggregate document (structure + rows) and type it."""
    _require_keys(
        payload,
        list(_AggregateRequired.__annotations__),
        _AGGREGATE_SCALARS,
        where,
    )
    rows = payload["rows"]
    if not isinstance(rows, list):
        raise SchemaViolationError(
            f"{where}: 'rows' must be a list, got {type(rows).__name__}"
        )
    if payload["row_count"] != len(rows):
        raise SchemaViolationError(
            f"{where}: row_count {payload['row_count']!r} disagrees with "
            f"the {len(rows)} stored row(s)"
        )
    if not isinstance(payload["row_schema"], Mapping):
        raise SchemaViolationError(
            f"{where}: 'row_schema' must be a mapping, "
            f"got {type(payload['row_schema']).__name__}"
        )
    stored = RowSchema.from_json(
        cast("Mapping[str, object]", payload["row_schema"])
    )
    if schema is not None and schema.fingerprint() != stored.fingerprint():
        raise SchemaViolationError(
            f"{where}: stored schema {stored.name!r} "
            f"(fingerprint {stored.fingerprint()[:12]}) does not match the "
            f"current schema {schema.name!r} "
            f"(fingerprint {schema.fingerprint()[:12]})"
        )
    parameter_columns = payload["parameter_columns"]
    if not isinstance(parameter_columns, list):
        raise SchemaViolationError(
            f"{where}: 'parameter_columns' must be a list, "
            f"got {type(parameter_columns).__name__}"
        )
    # Aggregate rows interleave grid parameters and the cell index with the
    # experiment's own columns; strip only the keys the schema does not
    # claim (a grid parameter such as "case" may also be a schema column).
    extra = (
        {str(column) for column in parameter_columns} | {"cell_index"}
    ) - set(stored.names)
    for row_index, row in enumerate(rows):
        if not isinstance(row, Mapping):
            raise SchemaViolationError(
                f"{where}, row {row_index}: expected a mapping, "
                f"got {type(row).__name__}"
            )
        stored.validate_row(
            {key: value for key, value in row.items() if key not in extra},
            context=f"{where}, row {row_index}",
        )
    return cast(Aggregate, dict(payload))


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class RunStore:
    """Filesystem access to one run directory (see the module docstring)."""

    def __init__(self, run_dir: Path | str) -> None:
        """Bind the store to ``run_dir`` (created on first write)."""
        self.run_dir = Path(run_dir)

    # -- paths ---------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Path of the run manifest."""
        return self.run_dir / MANIFEST_NAME

    @property
    def aggregate_path(self) -> Path:
        """Path of the JSON aggregate."""
        return self.run_dir / AGGREGATE_NAME

    @property
    def aggregate_npz_path(self) -> Path:
        """Path of the NPZ aggregate (numeric columns)."""
        return self.run_dir / AGGREGATE_NPZ_NAME

    def shard_path(self, shard_index: int) -> Path:
        """Path of one shard's result file."""
        return self.run_dir / f"shard_{shard_index:04d}.json"

    # -- manifest ------------------------------------------------------------
    def write_manifest(self, manifest: Mapping[str, object]) -> None:
        """Atomically (over)write the run manifest."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2, default=repr) + "\n"
        )

    def read_manifest(self) -> Manifest | None:
        """Return the validated manifest, or ``None`` for a fresh directory.

        Raises :class:`~repro.exceptions.SchemaViolationError` when the
        stored document is missing required keys or carries a malformed
        ``row_schema`` — a manifest from before the row-schema layer, or a
        hand-edited one, fails here instead of deeper in the orchestrator.
        """
        if not self.manifest_path.is_file():
            return None
        payload = json.loads(self.manifest_path.read_text())
        return _validate_manifest(payload, f"manifest {self.manifest_path}")

    # -- shards --------------------------------------------------------------
    def write_shard(self, shard_index: int, payload: Mapping[str, object]) -> None:
        """Atomically write one shard's result file."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.shard_path(shard_index),
            json.dumps(payload, indent=2, default=repr) + "\n",
        )

    def read_shard(
        self,
        shard_index: int,
        fingerprint: str | None = None,
        schema: RowSchema | None = None,
    ) -> dict[str, object] | None:
        """Return one shard's payload, or ``None`` when absent.

        When ``fingerprint`` is given, a stored shard from a *different*
        sweep (stale directory reuse) raises instead of silently mixing
        results.  When ``schema`` is given, every stored row is re-validated
        against it, so rows that were corrupted on disk (or written by a
        different code version) raise
        :class:`~repro.exceptions.SchemaViolationError` with their cell
        coordinates.
        """
        path = self.shard_path(shard_index)
        if not path.is_file():
            return None
        payload = json.loads(path.read_text())
        if fingerprint is not None and payload.get("fingerprint") != fingerprint:
            raise InvalidParameterError(
                f"{path} belongs to a different sweep (fingerprint mismatch); "
                "use a fresh --run-id or delete the stale run directory"
            )
        if schema is not None:
            cells = payload.get("cells")
            if not isinstance(cells, list):
                raise SchemaViolationError(
                    f"{path}: shard payload has no 'cells' list"
                )
            for cell in cells:
                if not isinstance(cell, Mapping):
                    raise SchemaViolationError(
                        f"{path}: cell entry is not a mapping"
                    )
                schema.validate_rows(
                    cell.get("rows"),
                    context=f"{path}, cell {cell.get('cell_index')}",
                )
        return payload

    def completed_shards(
        self, num_shards: int, fingerprint: str | None = None
    ) -> set[int]:
        """Return the indices of shards whose result files already exist."""
        return {
            index
            for index in range(num_shards)
            if self.read_shard(index, fingerprint=fingerprint) is not None
        }

    # -- aggregate -----------------------------------------------------------
    def write_aggregate(
        self,
        rows: Sequence[Mapping[str, object]],
        header: Mapping[str, object],
        schema: RowSchema | None = None,
    ) -> None:
        """Write the JSON aggregate and its NPZ companion.

        ``header`` carries the run identity block (experiment, run id,
        fingerprint, row schema, ...); ``rows`` are the merged
        cell-parameter + result rows in cell order.  The NPZ file holds the
        numeric columns — schema-selected when ``schema`` is given (with
        NaN holes for optional columns), value-sniffed otherwise — as one
        array per column: the bulk-analysis-friendly view of the same data.
        """
        payload = {
            "schema_version": RUN_SCHEMA_VERSION,
            **dict(header),
            "row_count": len(rows),
            "rows": [dict(row) for row in rows],
        }
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.aggregate_path, json.dumps(payload, indent=2, default=repr) + "\n"
        )
        columns = numeric_columns(rows, schema=schema)
        if columns:
            tmp = self.aggregate_npz_path.with_suffix(".npz.tmp")
            with open(tmp, "wb") as handle:
                np.savez(handle, **columns)
            os.replace(tmp, self.aggregate_npz_path)

    def read_aggregate(self, schema: RowSchema | None = None) -> Aggregate | None:
        """Return the validated aggregate, or ``None`` when incomplete.

        Every stored row is re-validated against the aggregate's persisted
        row schema (parameter and bookkeeping columns exempted); passing
        ``schema`` additionally pins the persisted schema to the current
        code's fingerprint, so reading a drifted run raises instead of
        returning rows the caller's annotations no longer describe.
        """
        if not self.aggregate_path.is_file():
            return None
        payload = json.loads(self.aggregate_path.read_text())
        return _validate_aggregate(
            payload, f"aggregate {self.aggregate_path}", schema
        )


def numeric_columns(
    rows: Sequence[Mapping[str, object]],
    schema: RowSchema | None = None,
) -> dict[str, np.ndarray]:
    """Extract the numeric/boolean columns of ``rows`` as arrays in row order.

    With a ``schema``, its int/float/bool columns are selected by
    declaration — a column that is ``None`` (or absent) in some rows still
    lands in the NPZ as ``float64`` with NaN holes, fixing the old
    first-row type-sniffing heuristic that silently dropped it.  Columns
    outside the schema (merged cell parameters, ``cell_index``) and the
    schema-less call keep the historical rule: present in every row with an
    ``int`` / ``float`` / ``bool`` value (NumPy scalars included).
    """
    if not rows:
        return {}
    candidates = set(rows[0])
    for row in rows:
        candidates &= set(row)
    if schema is not None:
        columns = numeric_arrays(rows, schema)
        candidates -= set(schema.names)
    else:
        columns = {}
    for key in sorted(candidates):
        values = [row[key] for row in rows]
        if all(
            isinstance(value, (bool, int, float, np.bool_, np.integer, np.floating))
            for value in values
        ):
            columns[key] = np.asarray(values)
    return {key: columns[key] for key in sorted(columns)}
