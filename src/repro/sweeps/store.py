"""The resumable on-disk results store for sweep runs.

Layout (one directory per run, under ``results/`` by default)::

    results/<run_id>/
        manifest.json      run identity: experiment, grid, cells, shard map,
                           per-cell seeds, fingerprint, status, provenance
        shard_0000.json    one file per completed shard: the rows of its cells
        ...
        aggregate.json     all rows in cell order (written when the run
                           completes), plus a summary block
        aggregate.npz      the numeric/boolean columns of the aggregate as
                           NumPy arrays (keyed by column name)

Shard files are the resume unit: a re-run with the same fingerprint skips
every shard whose file already exists and only executes the missing ones.
All writes are atomic (temp file + ``os.replace``) so an interrupted run
never leaves a half-written shard behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.sweeps.provenance import RUN_SCHEMA_VERSION

MANIFEST_NAME = "manifest.json"
AGGREGATE_NAME = "aggregate.json"
AGGREGATE_NPZ_NAME = "aggregate.npz"


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class RunStore:
    """Filesystem access to one run directory (see the module docstring)."""

    def __init__(self, run_dir: Path | str):
        """Bind the store to ``run_dir`` (created on first write)."""
        self.run_dir = Path(run_dir)

    # -- paths ---------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Path of the run manifest."""
        return self.run_dir / MANIFEST_NAME

    @property
    def aggregate_path(self) -> Path:
        """Path of the JSON aggregate."""
        return self.run_dir / AGGREGATE_NAME

    @property
    def aggregate_npz_path(self) -> Path:
        """Path of the NPZ aggregate (numeric columns)."""
        return self.run_dir / AGGREGATE_NPZ_NAME

    def shard_path(self, shard_index: int) -> Path:
        """Path of one shard's result file."""
        return self.run_dir / f"shard_{shard_index:04d}.json"

    # -- manifest ------------------------------------------------------------
    def write_manifest(self, manifest: Mapping[str, object]) -> None:
        """Atomically (over)write the run manifest."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2, default=repr) + "\n"
        )

    def read_manifest(self) -> dict[str, object] | None:
        """Return the manifest, or ``None`` when the run directory is fresh."""
        if not self.manifest_path.is_file():
            return None
        return json.loads(self.manifest_path.read_text())

    # -- shards --------------------------------------------------------------
    def write_shard(self, shard_index: int, payload: Mapping[str, object]) -> None:
        """Atomically write one shard's result file."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.shard_path(shard_index),
            json.dumps(payload, indent=2, default=repr) + "\n",
        )

    def read_shard(
        self, shard_index: int, fingerprint: str | None = None
    ) -> dict[str, object] | None:
        """Return one shard's payload, or ``None`` when absent.

        When ``fingerprint`` is given, a stored shard from a *different*
        sweep (stale directory reuse) raises instead of silently mixing
        results.
        """
        path = self.shard_path(shard_index)
        if not path.is_file():
            return None
        payload = json.loads(path.read_text())
        if fingerprint is not None and payload.get("fingerprint") != fingerprint:
            raise InvalidParameterError(
                f"{path} belongs to a different sweep (fingerprint mismatch); "
                "use a fresh --run-id or delete the stale run directory"
            )
        return payload

    def completed_shards(
        self, num_shards: int, fingerprint: str | None = None
    ) -> set[int]:
        """Return the indices of shards whose result files already exist."""
        return {
            index
            for index in range(num_shards)
            if self.read_shard(index, fingerprint=fingerprint) is not None
        }

    # -- aggregate -----------------------------------------------------------
    def write_aggregate(
        self,
        rows: Sequence[Mapping[str, object]],
        header: Mapping[str, object],
    ) -> None:
        """Write the JSON aggregate and its NPZ companion.

        ``header`` carries the run identity block (experiment, run id,
        fingerprint, ...); ``rows`` are the merged cell-parameter + result
        rows in cell order.  The NPZ file holds every column whose values are
        all ``int`` / ``float`` / ``bool`` across rows, as one array per
        column — the bulk-analysis-friendly view of the same data.
        """
        payload = {
            "schema_version": RUN_SCHEMA_VERSION,
            **dict(header),
            "row_count": len(rows),
            "rows": [dict(row) for row in rows],
        }
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.aggregate_path, json.dumps(payload, indent=2, default=repr) + "\n"
        )
        columns = numeric_columns(rows)
        if columns:
            tmp = self.aggregate_npz_path.with_suffix(".npz.tmp")
            with open(tmp, "wb") as handle:
                np.savez(handle, **columns)
            os.replace(tmp, self.aggregate_npz_path)

    def read_aggregate(self) -> dict[str, object] | None:
        """Return the JSON aggregate, or ``None`` when the run is incomplete."""
        if not self.aggregate_path.is_file():
            return None
        return json.loads(self.aggregate_path.read_text())


def numeric_columns(
    rows: Sequence[Mapping[str, object]]
) -> dict[str, np.ndarray]:
    """Extract the columns of ``rows`` that are numeric/boolean in every row.

    A column qualifies when it is present in every row with an ``int``,
    ``float`` or ``bool`` value (NumPy scalars included); qualifying columns
    come back as arrays in row order, ready for ``np.savez``.
    """
    if not rows:
        return {}
    candidates = set(rows[0])
    for row in rows:
        candidates &= set(row)
    columns: dict[str, np.ndarray] = {}
    for key in sorted(candidates):
        values = [row[key] for row in rows]
        if all(
            isinstance(value, (bool, int, float, np.bool_, np.integer, np.floating))
            for value in values
        ):
            columns[key] = np.asarray(values)
    return columns
