"""The experiment registry: named, rerunnable paper experiments.

The experiment driver modules under :mod:`repro.experiments` register their
entry points with :func:`register_experiment` (one per module, plus the
``checker_scaling`` sweep riding in the checker module), declaring

* the **parameter grid** the experiment sweeps by default (a mapping from
  parameter name to the tuple of values; the Cartesian product forms the
  cells the orchestrator shards),
* the **engine** the cells execute on (``vectorized``, ``vectorized-async``,
  ``scalar-sync``, ``checker`` for pure condition evaluation, or ``mixed``),
* the **paper section** and the one-line **claim** the experiment reproduces.

The registered runner is a plain function taking one grid cell's parameters
as keyword arguments (all JSON-serialisable scalars) and returning a list of
row dictionaries.  Runners that accept a ``seed`` keyword are seeded by the
orchestrator from the run's root ``SeedSequence`` unless the grid pins the
seed explicitly, so every cell is reproducible in isolation and independent
of which worker processes it.

Registration happens at import time of the experiment modules; the registry
loads them lazily on first access, so importing :mod:`repro.sweeps` alone
stays cheap.
"""

from __future__ import annotations

import importlib
import inspect
import threading
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, TypeVar

from repro.exceptions import InvalidParameterError
from repro.sweeps.schema import RowSchema

#: The shape every registered runner satisfies: keyword cell parameters in,
#: a sequence of row mappings out.  ``Sequence[Mapping[...]]`` rather than
#: ``list[dict[...]]`` so runners annotated with their own ``TypedDict``
#: rows (which are ``Mapping``- but not ``dict``-compatible) still conform.
RowFn = Callable[..., Sequence[Mapping[str, object]]]

#: Decorator-preserving type variable: ``@register_experiment(...)`` returns
#: the runner unchanged, with its precise row type intact.
F = TypeVar("F", bound=RowFn)

#: Module whose import registers every experiment (its ``__init__`` pulls in
#: all driver modules).
EXPERIMENTS_MODULE = "repro.experiments"


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata, default grid and runner.

    Attributes
    ----------
    name:
        Registry key, also the CLI argument (``repro run <name>``).
    paper_section:
        The section / theorem of Vaidya–Tseng–Liang (PODC 2012) the
        experiment reproduces, plus the historical driver id (E1–E12).
    claim:
        One sentence stating what the experiment demonstrates.
    engine:
        Which execution path the cells use (``vectorized``,
        ``vectorized-async``, ``scalar-sync``, ``checker`` or ``mixed``).
    grid:
        Default parameter grid; the Cartesian product of the value tuples
        (in declaration order, last key fastest) forms the sweep cells.
    runner:
        ``runner(**cell_params) -> list[dict]``; one call per cell.
    schema:
        The :class:`~repro.sweeps.schema.RowSchema` every row the runner
        emits must satisfy; the orchestrator validates rows against it at
        shard boundaries and persists it in the run manifest.
    description:
        First line of the runner's docstring (shown by ``repro list``).
    accepts_seed:
        Whether the runner takes a ``seed`` keyword; if so and the grid does
        not pin ``seed``, the orchestrator injects a per-cell seed derived
        from the run's root ``SeedSequence``.
    """

    name: str
    paper_section: str
    claim: str
    engine: str
    grid: Mapping[str, tuple]
    runner: RowFn
    schema: RowSchema
    description: str
    accepts_seed: bool

    @property
    def default_cell_count(self) -> int:
        """Number of cells in the default grid."""
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count


_REGISTRY: dict[str, ExperimentSpec] = {}
_LOAD_LOCK = threading.Lock()
_LOADED = False


def register_experiment(
    name: str,
    *,
    paper_section: str,
    claim: str,
    engine: str,
    grid: Mapping[str, Sequence[object]],
    schema: RowSchema,
) -> Callable[[F], F]:
    """Class the decorated function as the registry entry point ``name``.

    The decorator validates the grid (non-empty value tuples, parameter names
    matching the runner's signature), requires the experiment's
    :class:`~repro.sweeps.schema.RowSchema` (reprolint rule REG003 enforces
    the same statically), and records an :class:`ExperimentSpec`; the
    function itself is returned unchanged so it stays directly callable and
    importable.
    """
    normalized = {str(key): tuple(values) for key, values in grid.items()}
    for key, values in normalized.items():
        if not values:
            raise InvalidParameterError(
                f"experiment {name!r}: grid parameter {key!r} has no values"
            )
    if not isinstance(schema, RowSchema):
        raise InvalidParameterError(
            f"experiment {name!r}: schema must be a RowSchema "
            f"(build one with schema_from_typeddict), got {schema!r}"
        )

    def decorate(runner: F) -> F:
        if name in _REGISTRY:
            raise InvalidParameterError(
                f"experiment {name!r} is already registered "
                f"(by {_REGISTRY[name].runner.__module__})"
            )
        parameters = inspect.signature(runner).parameters
        for key in normalized:
            if key not in parameters:
                raise InvalidParameterError(
                    f"experiment {name!r}: grid parameter {key!r} is not a "
                    f"parameter of {runner.__qualname__}"
                )
        doc = inspect.getdoc(runner) or ""
        description = doc.splitlines()[0] if doc else ""
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            paper_section=paper_section,
            claim=claim,
            engine=engine,
            grid=normalized,
            runner=runner,
            schema=schema,
            description=description,
            accepts_seed="seed" in parameters,
        )
        return runner

    return decorate


def _ensure_loaded() -> None:
    """Import the experiments package once so every decorator has run."""
    global _LOADED
    if _LOADED:
        return
    with _LOAD_LOCK:
        if _LOADED:
            return
        importlib.import_module(EXPERIMENTS_MODULE)
        _LOADED = True


def all_experiments() -> dict[str, ExperimentSpec]:
    """Return every registered experiment, sorted by name."""
    _ensure_loaded()
    return dict(sorted(_REGISTRY.items()))


def get_experiment(name: str) -> ExperimentSpec:
    """Return the spec registered under ``name`` or raise with the known names."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise InvalidParameterError(
            f"unknown experiment {name!r}; registered experiments: {known}"
        ) from None


def select_labelled_case(label: str, cases: Sequence[tuple], kind: str) -> list:
    """Return the entries of ``cases`` whose label (first element) is ``label``.

    The registry cells sweep over labelled case tuples; this is their shared
    label → case lookup, raising with the list of known labels on a miss.
    """
    matching = [entry for entry in cases if entry[0] == label]
    if not matching:
        known = ", ".join(str(entry[0]) for entry in cases)
        raise InvalidParameterError(f"unknown {kind} {label!r}; known: {known}")
    return matching
