"""The sharded sweep orchestrator.

A sweep is planned deterministically from ``(experiment, grid, seed,
num_shards)``:

1. the grid expands into an ordered cell list (:func:`repro.sweeps.grid.expand_grid`);
2. the run's root ``numpy.random.SeedSequence`` spawns one child per cell —
   cell ``i`` always receives child ``i``, so its seed depends only on the
   root seed and its position, never on which worker executes it;
3. cells are split into ``num_shards`` contiguous, balanced shards (by
   default one cell per shard, the finest resume granularity).

Execution fans the pending shards across ``multiprocessing`` workers; each
worker rebuilds the plan from the same inputs (no pickled graphs or engines
cross the process boundary) and runs its cells in order.  Aggregation sorts
rows by cell index, so the aggregate is **bit-identical** for any worker
count — enforced by ``tests/test_sweeps.py``.  Completed shards persist as
JSON files in the run directory (:class:`repro.sweeps.store.RunStore`) and
are skipped on resume.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError, SchemaViolationError
from repro.sweeps.grid import apply_overrides, expand_grid, grid_fingerprint
from repro.sweeps.provenance import (
    RUN_SCHEMA_VERSION,
    machine_provenance,
    utc_now_iso,
)
from repro.sweeps.registry import ExperimentSpec, get_experiment
from repro.sweeps.schema import RowSchema
from repro.sweeps.store import Manifest, RunStore

#: Default root directory of the results store.
DEFAULT_RESULTS_ROOT = Path("results")


@dataclass(frozen=True)
class SweepPlan:
    """Deterministic description of one sweep run.

    Everything downstream (shard layout, per-cell seeds, the run id) is a
    pure function of ``(experiment, grid, seed, num_shards)``; two plans
    built from the same inputs are identical in every field.
    """

    experiment: str
    grid: Mapping[str, tuple]
    cells: tuple[dict[str, object], ...]
    cell_seeds: tuple[int, ...]
    shards: tuple[tuple[int, ...], ...]
    seed: int
    fingerprint: str
    run_id: str


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`run_sweep`: where the run lives and its rows."""

    run_id: str
    run_dir: Path
    manifest: Manifest
    rows: list[dict[str, object]]


def _split_shards(num_cells: int, num_shards: int) -> tuple[tuple[int, ...], ...]:
    """Split ``range(num_cells)`` into ``num_shards`` contiguous balanced chunks."""
    base, extra = divmod(num_cells, num_shards)
    shards: list[tuple[int, ...]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return tuple(shards)


def _spawn_cell_seeds(seed: int, num_cells: int) -> tuple[int, ...]:
    """Derive one deterministic seed per cell via ``SeedSequence.spawn``."""
    if num_cells == 0:
        return ()
    children = np.random.SeedSequence(seed).spawn(num_cells)
    return tuple(int(child.generate_state(1)[0]) for child in children)


def plan_from_grid(
    name: str,
    grid: Mapping[str, Sequence[object]],
    seed: int = 0,
    shards: int | None = None,
    run_id: str | None = None,
) -> SweepPlan:
    """Build a :class:`SweepPlan` from an already-effective grid."""
    spec = get_experiment(name)
    effective = {str(key): tuple(values) for key, values in grid.items()}
    cells = expand_grid(effective)
    num_shards = len(cells) if shards is None else shards
    if num_shards < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {num_shards}")
    num_shards = min(num_shards, len(cells))
    fingerprint = grid_fingerprint(name, effective, seed, num_shards)
    return SweepPlan(
        experiment=spec.name,
        grid=effective,
        cells=tuple(cells),
        cell_seeds=_spawn_cell_seeds(seed, len(cells)),
        shards=_split_shards(len(cells), num_shards),
        seed=seed,
        fingerprint=fingerprint,
        run_id=run_id or f"{spec.name}-{fingerprint[:10]}",
    )


def plan_sweep(
    name: str,
    grid_overrides: Sequence[str] = (),
    seed: int = 0,
    shards: int | None = None,
    run_id: str | None = None,
) -> SweepPlan:
    """Plan a sweep of experiment ``name`` with CLI-style grid overrides."""
    spec = get_experiment(name)
    extra = ("seed",) if spec.accepts_seed else ()
    grid = apply_overrides(spec.grid, grid_overrides, extra_allowed=extra)
    return plan_from_grid(name, grid, seed=seed, shards=shards, run_id=run_id)


def _cell_params(
    spec: ExperimentSpec, plan: SweepPlan, cell_index: int
) -> dict[str, object]:
    """Return the runner kwargs for one cell (with the injected seed, if any)."""
    params = dict(plan.cells[cell_index])
    if spec.accepts_seed and "seed" not in params:
        params["seed"] = plan.cell_seeds[cell_index]
    return params


def _parameter_columns(spec: ExperimentSpec, plan: SweepPlan) -> list[str]:
    """Names of the cell-parameter columns merged into aggregate rows."""
    columns = list(plan.grid)
    if spec.accepts_seed and "seed" not in columns:
        columns.append("seed")
    return columns


def execute_shard(plan: SweepPlan, shard_index: int) -> dict[str, object]:
    """Run every cell of one shard and return the shard payload.

    The payload is self-describing (fingerprint, cell indices, per-cell
    parameters and rows) so a shard file can be validated and aggregated
    without re-deriving anything.  Every row is validated against the
    experiment's :class:`~repro.sweeps.schema.RowSchema` before the shard
    leaves this function — an unknown, missing or mistyped column raises
    :class:`~repro.exceptions.SchemaViolationError` naming the experiment,
    shard, cell and row it came from.
    """
    spec = get_experiment(plan.experiment)
    cells_out: list[dict[str, object]] = []
    for cell_index in plan.shards[shard_index]:
        params = _cell_params(spec, plan, cell_index)
        rows = spec.runner(**params)
        spec.schema.validate_rows(
            list(rows),
            context=(
                f"experiment {plan.experiment!r}, shard {shard_index}, "
                f"cell {cell_index}"
            ),
        )
        cells_out.append(
            {
                "cell_index": cell_index,
                "params": params,
                "rows": [dict(row) for row in rows],
            }
        )
    return {
        "schema_version": RUN_SCHEMA_VERSION,
        "experiment": plan.experiment,
        "fingerprint": plan.fingerprint,
        "shard_index": shard_index,
        "cell_indices": list(plan.shards[shard_index]),
        "cells": cells_out,
    }


def _shard_task(
    task: tuple[str, tuple[tuple[str, tuple], ...], int, int, int]
) -> tuple[int, dict[str, object]]:
    """Worker entry point: rebuild the plan and execute one shard.

    Workers receive only JSON-level scalars (experiment name, grid items,
    seed, shard count, shard index) and rebuild the identical plan locally,
    so results cannot depend on pickling details or on the parent's state.
    """
    name, grid_items, seed, num_shards, shard_index = task
    plan = plan_from_grid(name, dict(grid_items), seed=seed, shards=num_shards)
    return shard_index, execute_shard(plan, shard_index)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (inherits ``sys.path``, cheap) and fall back to ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _build_manifest(
    spec: ExperimentSpec, plan: SweepPlan, status: str, completed: Iterable[int]
) -> Manifest:
    """Assemble the manifest document for the current run state."""
    return {
        "schema_version": RUN_SCHEMA_VERSION,
        "experiment": plan.experiment,
        "paper_section": spec.paper_section,
        "claim": spec.claim,
        "engine": spec.engine,
        "run_id": plan.run_id,
        "fingerprint": plan.fingerprint,
        "seed": plan.seed,
        "grid": {key: list(values) for key, values in plan.grid.items()},
        "num_cells": len(plan.cells),
        "cells": [dict(cell) for cell in plan.cells],
        "cell_seeds": list(plan.cell_seeds),
        "num_shards": len(plan.shards),
        "shards": [list(shard) for shard in plan.shards],
        "completed_shards": sorted(completed),
        "status": status,
        "updated_at": utc_now_iso(),
        "provenance": machine_provenance(),
        "row_schema": spec.schema.to_json(),
        "parameter_columns": _parameter_columns(spec, plan),
    }


def aggregate_rows(
    plan: SweepPlan, payloads: Mapping[int, Mapping[str, object]]
) -> list[dict[str, object]]:
    """Merge shard payloads into the flat row list, in cell order.

    Each output row is the cell's parameters, then the driver's row (driver
    keys win on collision — they carry the same values anyway), then the
    bookkeeping ``cell_index``.  Because cells are totally ordered, the
    result is independent of shard completion order and worker count.
    """
    rows: list[dict[str, object]] = []
    for shard_index, shard in enumerate(plan.shards):
        payload = payloads.get(shard_index)
        if payload is None:
            raise InvalidParameterError(
                f"shard {shard_index} missing from the run; the run directory "
                "was modified concurrently"
            )
        for cell in payload["cells"]:
            merged_params = dict(cell["params"])
            for row in cell["rows"]:
                rows.append(
                    {**merged_params, **row, "cell_index": cell["cell_index"]}
                )
        if list(shard) != list(payload["cell_indices"]):
            raise InvalidParameterError(
                f"shard {shard_index} payload does not match the plan "
                "(cell indices differ); the run directory is stale"
            )
    return rows


def run_sweep(
    name: str,
    grid_overrides: Sequence[str] = (),
    workers: int = 1,
    shards: int | None = None,
    seed: int = 0,
    results_root: Path | str = DEFAULT_RESULTS_ROOT,
    run_id: str | None = None,
    resume: bool = True,
    echo: Callable[[str], None] | None = None,
) -> SweepResult:
    """Plan, execute (sharded, optionally multi-process) and persist a sweep.

    Parameters
    ----------
    name:
        Registered experiment name (see ``repro list``).
    grid_overrides:
        CLI-style ``key=v1,v2`` strings narrowing/overriding the default grid.
    workers:
        Process count; ``1`` runs in-process.  Aggregates are bit-identical
        for any value.
    shards:
        Shard count (default: one shard per cell — finest resume unit).
    seed:
        Root seed; per-cell seeds are spawned from it via ``SeedSequence``.
    results_root, run_id:
        Where the run directory lives and what it is called (default id:
        ``<experiment>-<fingerprint prefix>``).
    resume:
        Skip shards whose result files already exist (the default); pass
        ``False`` to recompute everything in place.
    echo:
        Optional progress sink (e.g. ``print``).

    Returns
    -------
    SweepResult
        The run id/directory, the final manifest and the aggregated rows.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    spec = get_experiment(name)
    plan = plan_sweep(name, grid_overrides, seed=seed, shards=shards, run_id=run_id)
    say = echo if echo is not None else (lambda message: None)

    store = RunStore(Path(results_root) / plan.run_id)
    existing = store.read_manifest()
    if existing is not None and existing.get("fingerprint") != plan.fingerprint:
        raise InvalidParameterError(
            f"run directory {store.run_dir} holds a different sweep "
            f"(fingerprint {existing.get('fingerprint')!r}); choose another "
            "--run-id or delete it"
        )
    if existing is not None:
        stored_schema = RowSchema.from_json(existing["row_schema"])
        if stored_schema.fingerprint() != spec.schema.fingerprint():
            raise SchemaViolationError(
                f"run {plan.run_id!r} in {store.run_dir} was produced under "
                f"row schema {stored_schema.name!r} (fingerprint "
                f"{stored_schema.fingerprint()[:12]}) but the current code "
                f"declares {spec.schema.name!r} (fingerprint "
                f"{spec.schema.fingerprint()[:12]}); the schema drifted — "
                "delete the run directory or use a fresh --run-id"
            )

    # One pass over the run directory fills the payload cache; everything
    # downstream (manifest progress, aggregation) reuses it instead of
    # re-reading shard files.  Stored shards are schema-re-validated here,
    # so resume never mixes rows a different code version wrote.
    payloads: dict[int, dict[str, object]] = {}
    if resume:
        for index in range(len(plan.shards)):
            payload = store.read_shard(
                index, fingerprint=plan.fingerprint, schema=spec.schema
            )
            if payload is not None:
                payloads[index] = payload
    pending = [
        index for index in range(len(plan.shards)) if index not in payloads
    ]
    store.write_manifest(_build_manifest(spec, plan, "running", payloads))
    say(
        f"{plan.experiment}: {len(plan.cells)} cells in {len(plan.shards)} shards "
        f"({len(payloads)} already complete, {len(pending)} to run, "
        f"workers={workers}) -> {store.run_dir}"
    )

    def record(shard_index: int, payload: dict[str, object]) -> None:
        store.write_shard(shard_index, payload)
        payloads[shard_index] = payload
        # Refresh the manifest after every shard so an interrupted run
        # reports its true progress.
        store.write_manifest(_build_manifest(spec, plan, "running", payloads))
        say(
            f"  shard {shard_index:04d} done "
            f"({len(payload['cell_indices'])} cells)"
        )

    if pending:
        if workers == 1 or len(pending) == 1:
            for shard_index in pending:
                record(shard_index, execute_shard(plan, shard_index))
        else:
            grid_items = tuple(
                (key, tuple(values)) for key, values in plan.grid.items()
            )
            tasks = [
                (plan.experiment, grid_items, plan.seed, len(plan.shards), index)
                for index in pending
            ]
            context = _pool_context()
            with context.Pool(processes=min(workers, len(pending))) as pool:
                for shard_index, payload in pool.imap_unordered(_shard_task, tasks):
                    record(shard_index, payload)

    rows = aggregate_rows(plan, payloads)
    manifest = _build_manifest(spec, plan, "complete", range(len(plan.shards)))
    manifest["row_count"] = len(rows)
    store.write_aggregate(
        rows,
        header={
            "experiment": plan.experiment,
            "run_id": plan.run_id,
            "fingerprint": plan.fingerprint,
            "paper_section": spec.paper_section,
            "engine": spec.engine,
            "row_schema": spec.schema.to_json(),
            "parameter_columns": _parameter_columns(spec, plan),
        },
        schema=spec.schema,
    )
    store.write_manifest(manifest)
    say(f"  aggregate: {len(rows)} rows -> {store.aggregate_path}")
    return SweepResult(
        run_id=plan.run_id, run_dir=store.run_dir, manifest=manifest, rows=rows
    )
