"""Interoperability and serialisation helpers for :class:`~repro.graphs.digraph.Digraph`.

Provides round-trips to and from

* :class:`networkx.DiGraph` (for callers who want networkx's algorithms or
  drawing support),
* plain edge-list / adjacency-dict representations (for tests, fixtures and
  JSON serialisation),
* a compact text format (one ``source target`` pair per line) for storing
  experiment topologies on disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

import networkx as nx

from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import Edge, NodeId


# ---------------------------------------------------------------------------
# networkx interop
# ---------------------------------------------------------------------------
def to_networkx(graph: Digraph) -> nx.DiGraph:
    """Return a :class:`networkx.DiGraph` with the same nodes and edges."""
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(graph.nodes)
    nx_graph.add_edges_from(graph.edges)
    return nx_graph


def from_networkx(nx_graph: nx.Graph | nx.DiGraph) -> Digraph:
    """Build a :class:`Digraph` from a networkx graph.

    Undirected networkx graphs become symmetric digraphs (each undirected edge
    yields both directed edges), matching the paper's encoding of undirected
    networks.  Self-loops are rejected.
    """
    graph = Digraph(nodes=nx_graph.nodes)
    for source, target in nx_graph.edges:
        if source == target:
            raise InvalidParameterError(
                f"self-loop on {source!r} cannot be represented in the paper's model"
            )
        graph.add_edge(source, target)
        if not nx_graph.is_directed():
            graph.add_edge(target, source)
    return graph


# ---------------------------------------------------------------------------
# Plain-python representations
# ---------------------------------------------------------------------------
def to_edge_list(graph: Digraph) -> list[Edge]:
    """Return a deterministic (repr-sorted) list of directed edges."""
    return sorted(graph.edges, key=repr)


def from_edge_list(edges: Iterable[Edge], nodes: Iterable[NodeId] = ()) -> Digraph:
    """Build a graph from an iterable of directed edges (plus optional
    isolated nodes)."""
    return Digraph(nodes=nodes, edges=edges)


def to_adjacency_dict(graph: Digraph) -> dict[NodeId, list[NodeId]]:
    """Return ``{node: sorted out-neighbours}`` covering every node."""
    return {
        node: sorted(graph.out_neighbors(node), key=repr)
        for node in sorted(graph.nodes, key=repr)
    }


def from_adjacency_dict(adjacency: Mapping[NodeId, Iterable[NodeId]]) -> Digraph:
    """Build a graph from ``{node: out-neighbours}``."""
    graph = Digraph(nodes=adjacency.keys())
    for source, targets in adjacency.items():
        for target in targets:
            graph.add_edge(source, target)
    return graph


# ---------------------------------------------------------------------------
# On-disk formats
# ---------------------------------------------------------------------------
def to_json(graph: Digraph) -> str:
    """Serialise the graph to a JSON string (nodes + edge list).

    Node identifiers must be JSON-serialisable (ints and strings are).
    """
    payload = {
        "nodes": sorted(graph.nodes, key=repr),
        "edges": [list(edge) for edge in to_edge_list(graph)],
    }
    return json.dumps(payload, sort_keys=True)


def from_json(text: str) -> Digraph:
    """Deserialise a graph produced by :func:`to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, dict) or "nodes" not in payload or "edges" not in payload:
        raise InvalidParameterError("JSON payload must contain 'nodes' and 'edges'")
    edges = [tuple(edge) for edge in payload["edges"]]
    for edge in edges:
        if len(edge) != 2:
            raise InvalidParameterError(f"malformed edge entry {edge!r}")
    return Digraph(nodes=payload["nodes"], edges=edges)


def save_edge_list(graph: Digraph, path: str | Path) -> None:
    """Write the graph as a text edge list (``source target`` per line)."""
    lines = [f"{source} {target}" for source, target in to_edge_list(graph)]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_edge_list(path: str | Path, node_type: type = int) -> Digraph:
    """Read a text edge list written by :func:`save_edge_list`.

    ``node_type`` converts the whitespace-separated tokens back into node
    identifiers (``int`` by default).
    """
    graph = Digraph()
    for line_number, raw_line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise InvalidParameterError(
                f"line {line_number} of {path} is not a 'source target' pair: {raw_line!r}"
            )
        graph.add_edge(node_type(parts[0]), node_type(parts[1]))
    return graph
