"""Random graph generators used by experiments and property-based tests.

All generators take an explicit ``rng`` (a :class:`numpy.random.Generator`) or
an integer seed so that every experiment in the benchmark harness is exactly
reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def erdos_renyi_digraph(
    n: int,
    edge_probability: float,
    rng: np.random.Generator | int | None = None,
) -> Digraph:
    """Return a directed Erdős–Rényi graph ``G(n, p)``.

    Every ordered pair ``(i, j)`` with ``i != j`` becomes an edge independently
    with probability ``edge_probability``.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidParameterError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    generator = _as_rng(rng)
    graph = Digraph(nodes=range(n))
    if n == 1 or edge_probability == 0.0:
        return graph
    draws = generator.random((n, n))
    for source in range(n):
        for target in range(n):
            if source != target and draws[source, target] < edge_probability:
                graph.add_edge(source, target)
    return graph


def erdos_renyi_symmetric(
    n: int,
    edge_probability: float,
    rng: np.random.Generator | int | None = None,
) -> Digraph:
    """Return an undirected Erdős–Rényi graph encoded as a symmetric digraph."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidParameterError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    generator = _as_rng(rng)
    graph = Digraph(nodes=range(n))
    for first in range(n):
        for second in range(first + 1, n):
            if generator.random() < edge_probability:
                graph.add_bidirectional_edge(first, second)
    return graph


def k_in_regular_digraph(
    n: int,
    in_degree: int,
    rng: np.random.Generator | int | None = None,
) -> Digraph:
    """Return a random digraph where every node has exactly ``in_degree``
    incoming edges chosen uniformly at random (without replacement) from the
    other nodes.

    This family is useful for Corollary-3 experiments: it lets the caller pin
    the in-degree exactly at, above or below the ``2f + 1`` threshold while
    keeping the rest of the structure random.
    """
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    if not 0 <= in_degree <= n - 1:
        raise InvalidParameterError(
            f"in_degree must be in [0, {n - 1}], got {in_degree}"
        )
    generator = _as_rng(rng)
    graph = Digraph(nodes=range(n))
    for target in range(n):
        candidates = [node for node in range(n) if node != target]
        sources = generator.choice(candidates, size=in_degree, replace=False)
        for source in sources:
            graph.add_edge(int(source), target)
    return graph


def heterogeneous_ring_lattice(
    n: int,
    f: int,
    extra_mean: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> Digraph:
    """Return a large sparse digraph with heterogeneous in-degrees: a
    symmetric ring lattice (``k = f + 1`` neighbours per side, so every node
    starts above the ``2f`` trim floor) plus ``Poisson(extra_mean)`` extra
    random in-edges per node.

    This is the scale-out family of the ``large_n`` experiment and
    ``benchmarks/bench_scale.py``: in-degrees spread over dozens of distinct
    values (exercising the sparse engine's bucket-major plane across many
    degree buckets) while the edge count stays ``O(n)``, so ``n = 10^5`` is
    cheap to build.  Construction is vectorized — the ring offsets and the
    extra-edge endpoints are drawn as flat NumPy arrays, not per-node Python
    loops.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if extra_mean < 0:
        raise InvalidParameterError(f"extra_mean must be >= 0, got {extra_mean}")
    k = f + 1
    if 2 * k >= n:
        raise InvalidParameterError(
            f"heterogeneous ring lattice requires n > 2(f + 1); got n={n}, f={f}"
        )
    generator = _as_rng(rng)
    targets = np.arange(n, dtype=np.int64)
    ring_sources = []
    ring_targets = []
    for offset in range(1, k + 1):
        for signed in (offset, -offset):
            ring_sources.append((targets + signed) % n)
            ring_targets.append(targets)
    counts = generator.poisson(extra_mean, size=n)
    extra_targets = np.repeat(targets, counts)
    # Draw in [0, n - 1) and shift past the target to exclude self-loops.
    extra_sources = generator.integers(0, n - 1, size=extra_targets.size)
    extra_sources = np.where(
        extra_sources >= extra_targets, extra_sources + 1, extra_sources
    )
    sources = np.concatenate(ring_sources + [extra_sources])
    all_targets = np.concatenate(ring_targets + [extra_targets])
    return Digraph(
        nodes=range(n),
        edges=zip(sources.tolist(), all_targets.tolist()),
    )


def random_core_like_network(
    n: int,
    f: int,
    extra_edge_probability: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> Digraph:
    """Return a core network (Definition 4) with additional random symmetric
    edges among the non-core nodes.

    Adding edges never breaks the Theorem-1 condition (the condition is
    monotone under edge addition), so this family always remains feasible; it
    is used to test that monotonicity empirically and to vary α in the
    convergence-rate experiments.
    """
    from repro.graphs.generators import core_network

    generator = _as_rng(rng)
    graph = core_network(n, f)
    clique_size = 2 * f + 1
    outsiders = list(range(clique_size, n))
    for index, first in enumerate(outsiders):
        for second in outsiders[index + 1 :]:
            if generator.random() < extra_edge_probability:
                graph.add_bidirectional_edge(first, second)
    return graph


def random_spanning_strongly_connected(
    n: int,
    extra_edges: int = 0,
    rng: np.random.Generator | int | None = None,
) -> Digraph:
    """Return a random strongly connected digraph on ``n`` nodes.

    Construction: a random Hamiltonian cycle (which guarantees strong
    connectivity) plus ``extra_edges`` additional random directed edges.  The
    family gives sparse strongly connected graphs that typically *fail*
    Theorem 1 for ``f >= 1``, useful as negative examples in tests.
    """
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    if extra_edges < 0:
        raise InvalidParameterError(f"extra_edges must be >= 0, got {extra_edges}")
    generator = _as_rng(rng)
    order = list(generator.permutation(n))
    graph = Digraph(nodes=range(n))
    for index, node in enumerate(order):
        graph.add_edge(int(node), int(order[(index + 1) % n]))
    added = 0
    max_possible = n * (n - 1) - n
    target_extra = min(extra_edges, max_possible)
    while added < target_extra:
        source = int(generator.integers(n))
        target = int(generator.integers(n))
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        added += 1
    return graph


def perturb_with_edge_removals(
    graph: Digraph,
    removals: int,
    rng: np.random.Generator | int | None = None,
) -> Digraph:
    """Return a copy of ``graph`` with ``removals`` uniformly random edges removed.

    Used by ablation benchmarks to measure how quickly random damage destroys
    the Theorem-1 condition on initially feasible graphs.
    """
    if removals < 0:
        raise InvalidParameterError(f"removals must be >= 0, got {removals}")
    generator = _as_rng(rng)
    reduced = graph.copy()
    edges = sorted(reduced.edges, key=repr)
    count = min(removals, len(edges))
    if count == 0:
        return reduced
    chosen = generator.choice(len(edges), size=count, replace=False)
    for index in chosen:
        source, target = edges[int(index)]
        reduced.remove_edge(source, target)
    return reduced
