"""A simple directed graph tailored to the paper's network model.

The paper (Section 2.1) models the network as a *simple directed graph*
``G(V, E)``: no self-loops, no parallel edges, and a directed edge ``(i, j)``
means node ``i`` can reliably transmit to node ``j``.  The consensus
machinery needs fast access to the *incoming* neighbour set ``N⁻_i`` (whose
size governs the trimming in Algorithm 1) and the *outgoing* neighbour set
``N⁺_i`` (the recipients of a node's broadcast).

:class:`Digraph` stores both adjacency directions explicitly.  It is a small
purpose-built class rather than a thin wrapper around :mod:`networkx` so that
the condition checkers and simulation engines have a stable, minimal API that
is easy to reason about and fast for the set-intersection-heavy queries they
perform (``|N⁻_v ∩ A|`` appears in the inner loop of every checker).
Conversion helpers to and from :mod:`networkx` live in :mod:`repro.graphs.io`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import (
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.types import Edge, NodeId


class Digraph:
    """A simple directed graph with fast in/out neighbour queries.

    Parameters
    ----------
    nodes:
        Initial node identifiers.  Any hashable values are accepted.
    edges:
        Initial directed edges ``(source, target)``.  Endpoints not already
        present are added automatically.  Self-loops are rejected, matching
        the paper's model; parallel edges are collapsed silently because the
        edge set is a mathematical set.

    Examples
    --------
    >>> g = Digraph(nodes=[0, 1, 2], edges=[(0, 1), (1, 2), (2, 0)])
    >>> sorted(g.in_neighbors(0))
    [2]
    >>> g.in_degree(1)
    1
    """

    __slots__ = ("_succ", "_pred")

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._succ: dict[NodeId, set[NodeId]] = {}
        self._pred: dict[NodeId, set[NodeId]] = {}
        for node in nodes:
            self.add_node(node)
        for source, target in edges:
            self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` to the graph.  Adding an existing node is a no-op."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, source: NodeId, target: NodeId) -> None:
        """Add the directed edge ``(source, target)``.

        Missing endpoints are created.  Self-loops raise
        :class:`~repro.exceptions.SelfLoopError` because the paper's edge set
        excludes them (a node's own state is always available to it without
        an explicit edge).
        """
        if source == target:
            raise SelfLoopError(source)
        self.add_node(source)
        self.add_node(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for source, target in edges:
            self.add_edge(source, target)

    def add_bidirectional_edge(self, first: NodeId, second: NodeId) -> None:
        """Add both ``(first, second)`` and ``(second, first)``.

        Convenience used by the undirected families in the paper (core
        networks, hypercubes): an undirected link is modelled as the pair of
        directed edges, exactly as Figure 3's caption describes.
        """
        self.add_edge(first, second)
        self.add_edge(second, first)

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove the directed edge ``(source, target)``.

        Raises :class:`~repro.exceptions.EdgeNotFoundError` if absent.
        """
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        self._succ[source].discard(target)
        self._pred[target].discard(source)

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every edge incident to it."""
        self._require_node(node)
        for successor in list(self._succ[node]):
            self._pred[successor].discard(node)
        for predecessor in list(self._pred[node]):
            self._succ[predecessor].discard(node)
        del self._succ[node]
        del self._pred[node]

    def copy(self) -> "Digraph":
        """Return an independent copy of the graph."""
        clone = Digraph()
        clone._succ = {node: set(targets) for node, targets in self._succ.items()}
        clone._pred = {node: set(sources) for node, sources in self._pred.items()}
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[NodeId]:
        """The node set ``V``."""
        return frozenset(self._succ)

    @property
    def number_of_nodes(self) -> int:
        """``n = |V|``."""
        return len(self._succ)

    @property
    def edges(self) -> frozenset[Edge]:
        """The edge set ``E`` as a frozenset of ``(source, target)`` pairs."""
        return frozenset(
            (source, target)
            for source, targets in self._succ.items()
            for target in targets
        )

    @property
    def number_of_edges(self) -> int:
        """``|E|``."""
        return sum(len(targets) for targets in self._succ.values())

    def has_node(self, node: NodeId) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._succ

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """Return whether the directed edge ``(source, target)`` exists."""
        return source in self._succ and target in self._succ[source]

    def in_neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """Return ``N⁻_node``, the set of nodes with an edge *into* ``node``."""
        self._require_node(node)
        return frozenset(self._pred[node])

    def out_neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """Return ``N⁺_node``, the set of nodes ``node`` has an edge *to*."""
        self._require_node(node)
        return frozenset(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        """Return ``|N⁻_node|``."""
        self._require_node(node)
        return len(self._pred[node])

    def out_degree(self, node: NodeId) -> int:
        """Return ``|N⁺_node|``."""
        self._require_node(node)
        return len(self._succ[node])

    def in_neighbors_within(self, node: NodeId, group: frozenset[NodeId] | set[NodeId]) -> set[NodeId]:
        """Return ``N⁻_node ∩ group``.

        This is the primitive underlying the paper's ``⇒`` relation
        (Definition 1) and is kept as a dedicated method because every
        condition checker calls it in its innermost loop.
        """
        self._require_node(node)
        preds = self._pred[node]
        # Iterate over the smaller collection for speed.
        if len(preds) <= len(group):
            return {p for p in preds if p in group}
        return {g for g in group if g in preds}

    def in_degree_within(self, node: NodeId, group: frozenset[NodeId] | set[NodeId]) -> int:
        """Return ``|N⁻_node ∩ group|`` without materialising the set."""
        self._require_node(node)
        preds = self._pred[node]
        if len(preds) <= len(group):
            return sum(1 for p in preds if p in group)
        return sum(1 for g in group if g in preds)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[NodeId]) -> "Digraph":
        """Return the subgraph induced by ``nodes``.

        Unknown nodes raise :class:`~repro.exceptions.NodeNotFoundError`.
        """
        keep = set()
        for node in nodes:
            self._require_node(node)
            keep.add(node)
        sub = Digraph(nodes=keep)
        for source in keep:
            for target in self._succ[source]:
                if target in keep:
                    sub.add_edge(source, target)
        return sub

    def reverse(self) -> "Digraph":
        """Return the graph with every edge direction flipped."""
        rev = Digraph(nodes=self.nodes)
        for source, target in self.edges:
            rev.add_edge(target, source)
        return rev

    def to_undirected_edges(self) -> frozenset[frozenset[NodeId]]:
        """Return the set of unordered node pairs connected in either direction."""
        return frozenset(frozenset((u, v)) for u, v in self.edges)

    def is_symmetric(self) -> bool:
        """Return whether for every edge ``(u, v)`` the reverse ``(v, u)`` exists.

        Symmetric digraphs are how the paper encodes undirected graphs
        (Section 6.1: "G is said to be undirected iff (i, j) ∈ E implies
        (j, i) ∈ E").
        """
        return all(self.has_edge(target, source) for source, target in self.edges)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self.nodes == other.nodes and self.edges == other.edges

    def __repr__(self) -> str:
        return (
            f"Digraph(n={self.number_of_nodes}, m={self.number_of_edges})"
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_node(self, node: NodeId) -> None:
        if node not in self._succ:
            raise NodeNotFoundError(node)
