"""Deterministic graph-family generators.

Every family mentioned in the paper is available here:

* :func:`complete_graph` — the fully connected graphs of the classic
  Dolev et al. setting (and of Corollary 2's threshold ``n > 3f``).
* :func:`core_network` — Definition 4 (Section 6.1): a ``(2f + 1)``-clique
  ``K`` plus bidirectional links between every outside node and every node of
  ``K``.
* :func:`hypercube` — the d-dimensional binary hypercube of Section 6.2 /
  Figure 3, encoded as a symmetric digraph.
* :func:`chord_network` — Definition 5 (Section 6.3): node ``i`` has outgoing
  edges to ``i + 1, …, i + 2f + 1 (mod n)``.

plus standard families used by the experiments and tests (directed/undirected
rings, paths, stars, wheels, ring lattices) and composition helpers.
All generators label nodes ``0 … n − 1``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId


def _require_positive(name: str, value: int) -> None:
    if value < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {value}")


def _require_non_negative(name: str, value: int) -> None:
    if value < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value}")


# ---------------------------------------------------------------------------
# Fully connected and near-complete graphs
# ---------------------------------------------------------------------------
def complete_graph(n: int) -> Digraph:
    """Return the complete digraph on ``n`` nodes (every ordered pair is an edge).

    This is the setting of the original approximate-agreement results
    [Dolev et al. 1986]; Algorithm 1 is correct on it exactly when
    ``n > 3f`` (Corollary 2).
    """
    _require_positive("n", n)
    graph = Digraph(nodes=range(n))
    for source in range(n):
        for target in range(n):
            if source != target:
                graph.add_edge(source, target)
    return graph


def complete_bipartite_graph(left_size: int, right_size: int) -> Digraph:
    """Return the symmetric complete bipartite graph ``K_{left,right}``.

    Nodes ``0 … left_size − 1`` form the left side and the remaining nodes
    the right side; every cross pair is connected in both directions.  Used
    in tests of the condition checkers (bipartite graphs have large cuts but
    poor intra-side connectivity).
    """
    _require_positive("left_size", left_size)
    _require_positive("right_size", right_size)
    graph = Digraph(nodes=range(left_size + right_size))
    for left in range(left_size):
        for right in range(left_size, left_size + right_size):
            graph.add_bidirectional_edge(left, right)
    return graph


# ---------------------------------------------------------------------------
# Paper families
# ---------------------------------------------------------------------------
def core_network(n: int, f: int) -> Digraph:
    """Return a *core network* (Definition 4 of the paper).

    A core network on ``n > 3f`` nodes contains a clique ``K`` of size
    ``2f + 1`` (nodes ``0 … 2f``) and every node outside ``K`` has
    bidirectional links to all nodes of ``K``.  Nodes outside ``K`` have no
    links among themselves, which is what makes the family edge-minimal in
    the paper's conjecture for ``n = 3f + 1``.

    Parameters
    ----------
    n:
        Total number of nodes; must satisfy ``n > 3f`` (and hence
        ``n >= 2f + 1`` so the clique fits).
    f:
        Fault budget the network is designed for.
    """
    _require_positive("n", n)
    _require_non_negative("f", f)
    if n <= 3 * f:
        raise InvalidParameterError(
            f"a core network requires n > 3f; got n={n}, f={f}"
        )
    clique_size = 2 * f + 1
    graph = Digraph(nodes=range(n))
    for first, second in combinations(range(clique_size), 2):
        graph.add_bidirectional_edge(first, second)
    for outside in range(clique_size, n):
        for core_node in range(clique_size):
            graph.add_bidirectional_edge(outside, core_node)
    return graph


def hypercube(dimension: int) -> Digraph:
    """Return the ``dimension``-dimensional binary hypercube as a symmetric digraph.

    Nodes are the integers ``0 … 2^d − 1``; two nodes are adjacent when their
    binary labels differ in exactly one bit.  Section 6.2 of the paper shows
    that although the hypercube has (vertex) connectivity ``d``, cutting the
    edges along any single dimension yields a partition in which every node
    has exactly one neighbour across the cut, so Theorem 1 fails for every
    ``f >= 1``.
    """
    _require_positive("dimension", dimension)
    size = 1 << dimension
    graph = Digraph(nodes=range(size))
    for node in range(size):
        for bit in range(dimension):
            neighbor = node ^ (1 << bit)
            if node < neighbor:
                graph.add_bidirectional_edge(node, neighbor)
    return graph


def hypercube_dimension_cut(dimension: int, cut_bit: int = 0) -> tuple[frozenset[int], frozenset[int]]:
    """Return the two halves of the hypercube split along ``cut_bit``.

    This is exactly the partition illustrated in Figure 3(b) of the paper for
    ``dimension = 3`` and ``cut_bit = 2`` ({0,1,2,3} vs {4,5,6,7}).  Each node
    has exactly one neighbour on the other side, so for any ``f >= 1`` the
    partition violates Theorem 1 (with ``F = ∅`` and ``C = ∅``).
    """
    _require_positive("dimension", dimension)
    if not 0 <= cut_bit < dimension:
        raise InvalidParameterError(
            f"cut_bit must be in [0, {dimension - 1}], got {cut_bit}"
        )
    size = 1 << dimension
    low = frozenset(node for node in range(size) if not node & (1 << cut_bit))
    high = frozenset(node for node in range(size) if node & (1 << cut_bit))
    return low, high


def chord_network(n: int, f: int) -> Digraph:
    """Return a *chord network* (Definition 5 of the paper).

    Nodes are ``0 … n − 1`` and node ``i`` has outgoing edges to
    ``(i + k) mod n`` for ``k = 1 … 2f + 1``.  The graph is directed (not
    symmetric in general).  Section 6.3 analyses three instances:

    * ``f = 1, n = 4`` — fully connected, trivially satisfies Theorem 1;
    * ``f = 2, n = 7`` — fails Theorem 1 (witness ``F = {5, 6}``,
      ``L = {0, 2}``, ``R = {1, 3, 4}``);
    * ``f = 1, n = 5`` — satisfies Theorem 1.
    """
    _require_positive("n", n)
    _require_non_negative("f", f)
    reach = 2 * f + 1
    if reach >= n:
        # Every node would link to all others; the modulo arithmetic below
        # would create self-loops for k = n, so cap the reach at n - 1 which
        # yields the complete digraph.
        reach = n - 1
    graph = Digraph(nodes=range(n))
    for node in range(n):
        for offset in range(1, reach + 1):
            graph.add_edge(node, (node + offset) % n)
    return graph


# ---------------------------------------------------------------------------
# Standard families used by tests and experiments
# ---------------------------------------------------------------------------
def directed_ring(n: int) -> Digraph:
    """Return the directed cycle ``0 → 1 → … → n − 1 → 0``."""
    _require_positive("n", n)
    if n < 2:
        raise InvalidParameterError("a directed ring requires n >= 2")
    graph = Digraph(nodes=range(n))
    for node in range(n):
        graph.add_edge(node, (node + 1) % n)
    return graph


def undirected_ring(n: int) -> Digraph:
    """Return the symmetric cycle on ``n`` nodes."""
    _require_positive("n", n)
    if n < 3:
        raise InvalidParameterError("an undirected ring requires n >= 3")
    graph = Digraph(nodes=range(n))
    for node in range(n):
        graph.add_bidirectional_edge(node, (node + 1) % n)
    return graph


def directed_path(n: int) -> Digraph:
    """Return the directed path ``0 → 1 → … → n − 1``."""
    _require_positive("n", n)
    graph = Digraph(nodes=range(n))
    for node in range(n - 1):
        graph.add_edge(node, node + 1)
    return graph


def star_graph(n: int) -> Digraph:
    """Return the symmetric star: node ``0`` connected both ways to all others."""
    _require_positive("n", n)
    if n < 2:
        raise InvalidParameterError("a star requires n >= 2")
    graph = Digraph(nodes=range(n))
    for leaf in range(1, n):
        graph.add_bidirectional_edge(0, leaf)
    return graph


def wheel_graph(n: int) -> Digraph:
    """Return the symmetric wheel: a hub (node ``0``) plus an undirected ring
    on nodes ``1 … n − 1``, with the hub connected to every ring node."""
    _require_positive("n", n)
    if n < 4:
        raise InvalidParameterError("a wheel requires n >= 4")
    graph = Digraph(nodes=range(n))
    ring = list(range(1, n))
    for index, node in enumerate(ring):
        graph.add_bidirectional_edge(node, ring[(index + 1) % len(ring)])
        graph.add_bidirectional_edge(0, node)
    return graph


def ring_lattice(n: int, k: int) -> Digraph:
    """Return the symmetric ring lattice where each node links to its ``k``
    nearest neighbours on each side (a.k.a. the Watts–Strogatz substrate).

    For ``k >= 2f + 1`` this family is a natural partially connected candidate
    to compare against the (directed) chord networks of Section 6.3.
    """
    _require_positive("n", n)
    _require_positive("k", k)
    if 2 * k >= n:
        raise InvalidParameterError(
            f"ring lattice requires 2k < n; got n={n}, k={k}"
        )
    graph = Digraph(nodes=range(n))
    for node in range(n):
        for offset in range(1, k + 1):
            graph.add_bidirectional_edge(node, (node + offset) % n)
    return graph


def butterfly_barbell(clique_size: int, bridge_width: int = 1) -> Digraph:
    """Return two symmetric cliques of ``clique_size`` nodes joined by
    ``bridge_width`` bidirectional bridge edges.

    This family has an obvious bottleneck and is used in tests and the
    necessity benchmarks: for ``bridge_width <= f`` the cut violates
    Theorem 1, while widening the bridge past ``f + 1`` per-node incoming
    links repairs it only once enough distinct endpoints are covered.
    """
    _require_positive("clique_size", clique_size)
    _require_positive("bridge_width", bridge_width)
    if bridge_width > clique_size:
        raise InvalidParameterError("bridge_width cannot exceed clique_size")
    n = 2 * clique_size
    graph = Digraph(nodes=range(n))
    left = list(range(clique_size))
    right = list(range(clique_size, n))
    for side in (left, right):
        for first, second in combinations(side, 2):
            graph.add_bidirectional_edge(first, second)
    for index in range(bridge_width):
        graph.add_bidirectional_edge(left[index], right[index])
    return graph


# ---------------------------------------------------------------------------
# Composition helpers
# ---------------------------------------------------------------------------
def union(first: Digraph, second: Digraph) -> Digraph:
    """Return the union of two graphs (node sets and edge sets united)."""
    combined = first.copy()
    combined.add_nodes(second.nodes)
    combined.add_edges(second.edges)
    return combined


def with_extra_edges(graph: Digraph, edges: Iterable[tuple[NodeId, NodeId]]) -> Digraph:
    """Return a copy of ``graph`` with the given directed edges added."""
    augmented = graph.copy()
    augmented.add_edges(edges)
    return augmented


def without_edges(graph: Digraph, edges: Iterable[tuple[NodeId, NodeId]]) -> Digraph:
    """Return a copy of ``graph`` with the given directed edges removed."""
    reduced = graph.copy()
    for source, target in edges:
        reduced.remove_edge(source, target)
    return reduced
