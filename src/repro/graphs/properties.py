"""Structural properties of directed graphs.

These helpers answer the structural questions the paper raises around its
examples: degree minima (Corollary 3), vertex connectivity (the hypercube
discussion of Section 6.2 contrasts connectivity ``2f + 1`` with the
Theorem-1 condition), strong connectivity, diameters, and edge counts (the
edge-minimality conjecture for core networks in Section 6.1).

The implementations are self-contained (BFS/max-flow on the library's own
:class:`~repro.graphs.digraph.Digraph`) so that the library does not depend on
:mod:`networkx` for correctness; :mod:`repro.graphs.io` provides conversions
for callers who want to use networkx's richer toolbox.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations

from repro.exceptions import InvalidParameterError, NodeNotFoundError
from repro.graphs.digraph import Digraph
from repro.types import NodeId


# ---------------------------------------------------------------------------
# Degree statistics
# ---------------------------------------------------------------------------
def minimum_in_degree(graph: Digraph) -> int:
    """Return ``min over nodes of |N⁻_i|`` (0 for the empty graph)."""
    if graph.number_of_nodes == 0:
        return 0
    return min(graph.in_degree(node) for node in graph.nodes)


def minimum_out_degree(graph: Digraph) -> int:
    """Return ``min over nodes of |N⁺_i|`` (0 for the empty graph)."""
    if graph.number_of_nodes == 0:
        return 0
    return min(graph.out_degree(node) for node in graph.nodes)


def degree_summary(graph: Digraph) -> dict[str, float]:
    """Return a dictionary of degree statistics (min/max/mean, in and out)."""
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return {
            "min_in": 0.0,
            "max_in": 0.0,
            "mean_in": 0.0,
            "min_out": 0.0,
            "max_out": 0.0,
            "mean_out": 0.0,
        }
    in_degrees = [graph.in_degree(node) for node in nodes]
    out_degrees = [graph.out_degree(node) for node in nodes]
    return {
        "min_in": float(min(in_degrees)),
        "max_in": float(max(in_degrees)),
        "mean_in": sum(in_degrees) / len(nodes),
        "min_out": float(min(out_degrees)),
        "max_out": float(max(out_degrees)),
        "mean_out": sum(out_degrees) / len(nodes),
    }


def undirected_edge_count(graph: Digraph) -> int:
    """Return the number of distinct unordered adjacent pairs.

    For symmetric digraphs this is the undirected edge count used by the
    paper's Section-6.1 edge-minimality conjecture.
    """
    return len(graph.to_undirected_edges())


# ---------------------------------------------------------------------------
# Reachability and connectivity
# ---------------------------------------------------------------------------
def reachable_from(graph: Digraph, source: NodeId) -> frozenset[NodeId]:
    """Return the set of nodes reachable from ``source`` along directed edges
    (including ``source`` itself)."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    seen: set[NodeId] = {source}
    frontier: deque[NodeId] = deque([source])
    while frontier:
        node = frontier.popleft()
        for successor in graph.out_neighbors(node):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def is_strongly_connected(graph: Digraph) -> bool:
    """Return whether every node can reach every other node."""
    nodes = graph.nodes
    if len(nodes) <= 1:
        return True
    start = next(iter(nodes))
    if reachable_from(graph, start) != nodes:
        return False
    return reachable_from(graph.reverse(), start) == nodes


def strongly_connected_components(graph: Digraph) -> tuple[frozenset[NodeId], ...]:
    """Return the strongly connected components (Tarjan's algorithm, iterative).

    Components are returned sorted by their smallest representative's
    ``repr`` so the output is deterministic.
    """
    index_counter = 0
    stack: list[NodeId] = []
    lowlink: dict[NodeId, int] = {}
    index: dict[NodeId, int] = {}
    on_stack: set[NodeId] = set()
    components: list[frozenset[NodeId]] = []

    for root in sorted(graph.nodes, key=repr):
        if root in index:
            continue
        # Iterative Tarjan: each work-stack entry is (node, iterator over successors).
        work: list[tuple[NodeId, list[NodeId], int]] = [
            (root, sorted(graph.out_neighbors(root), key=repr), 0)
        ]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, pointer = work[-1]
            advanced = False
            while pointer < len(successors):
                successor = successors[pointer]
                pointer += 1
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work[-1] = (node, successors, pointer)
                    work.append(
                        (successor, sorted(graph.out_neighbors(successor), key=repr), 0)
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[NodeId] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return tuple(
        sorted(components, key=lambda comp: repr(sorted(comp, key=repr)))
    )


def shortest_path_length(graph: Digraph, source: NodeId, target: NodeId) -> int | None:
    """Return the number of edges on a shortest directed path, or ``None`` if
    ``target`` is unreachable from ``source``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return 0
    distances: dict[NodeId, int] = {source: 0}
    frontier: deque[NodeId] = deque([source])
    while frontier:
        node = frontier.popleft()
        for successor in graph.out_neighbors(node):
            if successor in distances:
                continue
            distances[successor] = distances[node] + 1
            if successor == target:
                return distances[successor]
            frontier.append(successor)
    return None


def diameter(graph: Digraph) -> int | None:
    """Return the directed diameter, or ``None`` if the graph is empty or not
    strongly connected (some pair has no directed path).

    The empty graph has no eccentricities to maximise, so its diameter is
    undefined (``None``) — the pre-fix code skipped the per-source
    strong-connectivity check vacuously and returned ``0``, conflating the
    empty graph with a singleton.  A singleton graph is strongly connected
    with diameter ``0``.
    """
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return None
    worst = 0
    for source in nodes:
        distances: dict[NodeId, int] = {source: 0}
        frontier: deque[NodeId] = deque([source])
        while frontier:
            node = frontier.popleft()
            for successor in graph.out_neighbors(node):
                if successor not in distances:
                    distances[successor] = distances[node] + 1
                    frontier.append(successor)
        if len(distances) != len(nodes):
            return None
        worst = max(worst, max(distances.values()))
    return worst


# ---------------------------------------------------------------------------
# Vertex connectivity (max-flow based)
# ---------------------------------------------------------------------------
def _max_vertex_disjoint_paths(graph: Digraph, source: NodeId, target: NodeId) -> int:
    """Return the maximum number of internally vertex-disjoint directed paths
    from ``source`` to ``target`` using node splitting + unit-capacity max flow.

    By Menger's theorem this equals the minimum number of internal nodes whose
    removal disconnects ``target`` from ``source`` (when ``(source, target)``
    is not an edge).
    """
    if source == target:
        raise InvalidParameterError("source and target must differ")
    # Node splitting: every node v becomes v_in -> v_out with capacity 1,
    # except source/target which get infinite internal capacity.
    nodes = list(graph.nodes)
    capacity: dict[tuple[object, object], int] = {}
    infinity = len(nodes) + 1

    def v_in(node: NodeId) -> tuple[str, NodeId]:
        return ("in", node)

    def v_out(node: NodeId) -> tuple[str, NodeId]:
        return ("out", node)

    for node in nodes:
        internal_capacity = infinity if node in (source, target) else 1
        capacity[(v_in(node), v_out(node))] = internal_capacity
    for edge_source, edge_target in graph.edges:
        capacity[(v_out(edge_source), v_in(edge_target))] = infinity

    adjacency: dict[object, set[object]] = {}
    for (flow_source, flow_target) in capacity:
        adjacency.setdefault(flow_source, set()).add(flow_target)
        adjacency.setdefault(flow_target, set()).add(flow_source)
    residual = dict(capacity)

    def bfs_augment() -> list[object] | None:
        start, goal = v_out(source), v_in(target)
        parents: dict[object, object] = {start: start}
        frontier: deque[object] = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in adjacency.get(node, ()):  # both directions may carry residual
                if neighbor in parents:
                    continue
                if residual.get((node, neighbor), 0) <= 0:
                    continue
                parents[neighbor] = node
                if neighbor == goal:
                    path = [neighbor]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                frontier.append(neighbor)
        return None

    flow = 0
    while True:
        path = bfs_augment()
        if path is None:
            return flow
        bottleneck = min(
            residual.get((path[i], path[i + 1]), 0) for i in range(len(path) - 1)
        )
        for i in range(len(path) - 1):
            forward = (path[i], path[i + 1])
            backward = (path[i + 1], path[i])
            residual[forward] = residual.get(forward, 0) - bottleneck
            residual[backward] = residual.get(backward, 0) + bottleneck
        flow += bottleneck


def vertex_connectivity(graph: Digraph) -> int:
    """Return the directed vertex connectivity of ``graph``.

    The vertex connectivity is the minimum, over ordered pairs ``(s, t)`` with
    no edge ``s → t``, of the number of internally disjoint directed paths
    from ``s`` to ``t``; complete digraphs return ``n − 1`` by convention.
    This is the quantity the paper contrasts with its Theorem-1 condition in
    Section 6.2 (hypercubes have connectivity ``d`` yet fail the condition).
    """
    nodes = sorted(graph.nodes, key=repr)
    n = len(nodes)
    if n <= 1:
        return 0
    best = n - 1
    found_non_adjacent_pair = False
    for source, target in combinations(nodes, 2):
        for ordered_source, ordered_target in ((source, target), (target, source)):
            if graph.has_edge(ordered_source, ordered_target):
                continue
            found_non_adjacent_pair = True
            best = min(
                best,
                _max_vertex_disjoint_paths(graph, ordered_source, ordered_target),
            )
            if best == 0:
                return 0
    if not found_non_adjacent_pair:
        return n - 1
    return best


def is_complete(graph: Digraph) -> bool:
    """Return whether every ordered pair of distinct nodes is an edge."""
    n = graph.number_of_nodes
    return graph.number_of_edges == n * (n - 1)
