"""Module entry point: ``python -m repro`` dispatches to :mod:`repro.cli`."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
