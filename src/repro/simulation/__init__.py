"""Simulation engines (synchronous and partially asynchronous), input
generators, metrics, traces and the high-level :func:`run_consensus` API."""

from repro.simulation.async_engine import (
    PartiallyAsynchronousEngine,
    canonical_edge_order,
    run_partially_asynchronous,
)
from repro.simulation.dynamic import (
    ComposedSchedule,
    PeriodicChurnSchedule,
    PeriodicEdgeSchedule,
    RandomChurnSchedule,
    RandomEdgeSchedule,
    RoundActivity,
    ScheduleLayout,
    StaticSchedule,
    TopologySchedule,
    resolve_activity,
    schedule_rng,
)
from repro.simulation.engine import (
    SimulationConfig,
    SynchronousEngine,
    run_synchronous,
)
from repro.simulation.inputs import (
    bimodal_inputs,
    linear_ramp_inputs,
    split_inputs_from_witness,
    uniform_random_inputs,
)
from repro.simulation.metrics import (
    VALIDITY_TOLERANCE,
    ParticipationValidityTracker,
    ValidityTracker,
    empirical_contraction_ratios,
    fault_free_extremes,
    has_converged,
    spread,
    within_hull,
)
from repro.simulation.run import run_consensus
from repro.simulation.sparse import (
    SparseEngine,
    run_sparse,
    sparse_cross_check_engines,
)
from repro.simulation.trace import ExecutionTrace, spreads_from_records
from repro.simulation.vectorized import (
    BatchOutcome,
    BatchRunner,
    EquivalenceReport,
    VectorizedEngine,
    cross_check_engines,
    random_input_matrix,
    run_vectorized,
)
from repro.simulation.vectorized_async import (
    VectorizedAsyncEngine,
    async_cross_check_engines,
    run_vectorized_async,
    spawn_row_generators,
)

__all__ = [
    "BatchOutcome",
    "BatchRunner",
    "EquivalenceReport",
    "SparseEngine",
    "VectorizedEngine",
    "VectorizedAsyncEngine",
    "run_sparse",
    "sparse_cross_check_engines",
    "async_cross_check_engines",
    "canonical_edge_order",
    "cross_check_engines",
    "random_input_matrix",
    "run_vectorized",
    "run_vectorized_async",
    "spawn_row_generators",
    "PartiallyAsynchronousEngine",
    "run_partially_asynchronous",
    "SimulationConfig",
    "SynchronousEngine",
    "run_synchronous",
    "bimodal_inputs",
    "linear_ramp_inputs",
    "split_inputs_from_witness",
    "uniform_random_inputs",
    "ComposedSchedule",
    "PeriodicChurnSchedule",
    "PeriodicEdgeSchedule",
    "RandomChurnSchedule",
    "RandomEdgeSchedule",
    "RoundActivity",
    "ScheduleLayout",
    "StaticSchedule",
    "TopologySchedule",
    "resolve_activity",
    "schedule_rng",
    "VALIDITY_TOLERANCE",
    "ParticipationValidityTracker",
    "ValidityTracker",
    "empirical_contraction_ratios",
    "fault_free_extremes",
    "has_converged",
    "spread",
    "within_hull",
    "run_consensus",
    "ExecutionTrace",
    "spreads_from_records",
]
