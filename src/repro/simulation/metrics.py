"""Metrics over consensus executions: ``U[t]``, ``µ[t]``, validity, convergence.

The paper's correctness conditions are stated entirely in terms of the largest
and smallest fault-free states:

* Validity (eq. 1): ``U[t] ≤ U[t − 1]`` and ``µ[t] ≥ µ[t − 1]`` for all
  ``t > 0`` (which, with the output constraint, implies the convex-hull form).
* Convergence: ``U[t] − µ[t] → 0``.

These helpers compute the two extremes, track validity across rounds and
decide convergence against a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.exceptions import InvalidParameterError
from repro.types import NodeId

# Validity comparisons allow this much numerical slack: the update rules are
# convex combinations, so any apparent expansion of the fault-free interval
# larger than this indicates a genuine bug rather than floating-point noise.
VALIDITY_TOLERANCE = 1e-9


def fault_free_extremes(
    values: Mapping[NodeId, float], faulty: frozenset[NodeId]
) -> tuple[float, float]:
    """Return ``(µ[t], U[t])`` — the min and max state over fault-free nodes."""
    # reprolint: disable=ORD002 -- min/max are order-free; no need to sort this once-per-round hot path
    fault_free = [value for node, value in values.items() if node not in faulty]
    if not fault_free:
        raise InvalidParameterError(
            "cannot compute fault-free extremes: every node is faulty"
        )
    return min(fault_free), max(fault_free)


def spread(values: Mapping[NodeId, float], faulty: frozenset[NodeId]) -> float:
    """Return ``U[t] − µ[t]``."""
    low, high = fault_free_extremes(values, faulty)
    return high - low


def has_converged(
    values: Mapping[NodeId, float],
    faulty: frozenset[NodeId],
    tolerance: float,
) -> bool:
    """Return whether the fault-free spread is at or below ``tolerance``."""
    if tolerance < 0:
        raise InvalidParameterError(f"tolerance must be >= 0, got {tolerance}")
    return spread(values, faulty) <= tolerance


def within_hull(
    values: Iterable[float], hull_min: float, hull_max: float, slack: float = VALIDITY_TOLERANCE
) -> bool:
    """Return whether every value lies inside ``[hull_min, hull_max]`` up to slack."""
    return all(hull_min - slack <= value <= hull_max + slack for value in values)


@dataclass
class ValidityTracker:
    """Tracks the paper's validity condition across an execution.

    Feed it ``(µ[t], U[t])`` once per round (round 0 first); it records
    whether the interval ``[µ[t], U[t]]`` ever expanded.  ``ok`` stays true
    exactly when validity (eq. 1) held at every observed round.

    Each round is compared against the *tightest* interval observed so far,
    not merely the previous round's: per-round comparison would grant fresh
    slack every round, letting the hull drift by ``rounds × slack`` without
    ever flagging a violation.  Against the running tightest interval the
    total tolerated drift is bounded by one ``slack`` for the whole execution.
    """

    slack: float = VALIDITY_TOLERANCE
    ok: bool = True
    rounds_observed: int = 0
    first_violation_round: int | None = None
    _tightest_min: float = field(default=float("-inf"), init=False)
    _tightest_max: float = field(default=float("inf"), init=False)
    _initial: tuple[float, float] | None = field(default=None, init=False)

    def observe(self, minimum: float, maximum: float) -> None:
        """Record the fault-free extremes of the next round."""
        if minimum > maximum:
            raise InvalidParameterError(
                f"minimum ({minimum}) cannot exceed maximum ({maximum})"
            )
        if self.rounds_observed == 0:
            self._initial = (minimum, maximum)
        else:
            expanded_up = maximum > self._tightest_max + self.slack
            expanded_down = minimum < self._tightest_min - self.slack
            if (expanded_up or expanded_down) and self.ok:
                self.ok = False
                self.first_violation_round = self.rounds_observed
        self._tightest_min = max(self._tightest_min, minimum)
        self._tightest_max = min(self._tightest_max, maximum)
        self.rounds_observed += 1

    @property
    def initial_interval(self) -> tuple[float, float] | None:
        """Return ``(µ[0], U[0])``, or ``None`` before any observation."""
        return self._initial


class ParticipationValidityTracker:
    """Participation-aware validity tracking for churn/sleep-wake runs.

    Under a churn schedule the paper's hull condition still has to hold over
    **all** fault-free nodes, awake or asleep: an asleep node keeps its frozen
    state, which remains part of the fault-free hull, so excluding it would
    let the observed interval *appear* tighter than it is and mask a real
    escape.  This tracker therefore layers two checks on one execution:

    * **Hull check** — the extremes over all fault-free values must never
      widen, delegated to an internal :class:`ValidityTracker` (inheriting
      its running-tightest-interval logic; naive per-round slack would let
      the hull drift by ``rounds × slack``, the PR 5 drift bug).
    * **Sleep check** — an asleep node's value must equal its previous value
      **exactly** (no slack: engines freeze by copying, so any difference is
      an engine bug, not floating-point noise).

    Feed :meth:`observe` the fault-free values (fixed order) once per round,
    round 0 first; the ``awake`` mask describes which of those fault-free
    nodes executed the round's update (ignored at round 0, where the values
    are inputs).
    """

    def __init__(self, slack: float = VALIDITY_TOLERANCE) -> None:
        self._hull = ValidityTracker(slack=slack)
        self._previous: tuple[float, ...] | None = None
        self.sleep_ok: bool = True
        self.first_sleep_violation_round: int | None = None

    def observe(
        self, values: Sequence[float], awake: Sequence[bool] | None = None
    ) -> None:
        """Record one round's fault-free values and participation mask."""
        values = tuple(float(value) for value in values)
        if not values:
            raise InvalidParameterError(
                "cannot track validity without fault-free values"
            )
        if self._previous is not None and len(values) != len(self._previous):
            raise InvalidParameterError(
                f"observed {len(values)} fault-free values after "
                f"{len(self._previous)} in the previous round"
            )
        if self._previous is not None and awake is not None:
            if len(awake) != len(values):
                raise InvalidParameterError(
                    f"awake mask has {len(awake)} entries for "
                    f"{len(values)} fault-free values"
                )
            for position, is_awake in enumerate(awake):
                if is_awake:
                    continue
                if values[position] != self._previous[position] and self.sleep_ok:
                    self.sleep_ok = False
                    self.first_sleep_violation_round = self._hull.rounds_observed
        self._hull.observe(min(values), max(values))
        self._previous = values

    @property
    def ok(self) -> bool:
        """Whether both the hull and the sleep condition held every round."""
        return self._hull.ok and self.sleep_ok

    @property
    def hull_ok(self) -> bool:
        """Whether the fault-free hull never widened (eq. 1)."""
        return self._hull.ok

    @property
    def rounds_observed(self) -> int:
        """Number of rounds observed so far (round 0 included)."""
        return self._hull.rounds_observed

    @property
    def first_violation_round(self) -> int | None:
        """Earliest round either check failed, or ``None``."""
        candidates = [
            round_index
            for round_index in (
                self._hull.first_violation_round,
                self.first_sleep_violation_round,
            )
            if round_index is not None
        ]
        return min(candidates) if candidates else None

    @property
    def initial_interval(self) -> tuple[float, float] | None:
        """Return ``(µ[0], U[0])``, or ``None`` before any observation."""
        return self._hull.initial_interval


def empirical_contraction_ratios(spreads: Iterable[float]) -> list[float]:
    """Return per-round contraction ratios ``spread[t] / spread[t − 1]``.

    Rounds where the previous spread is zero are skipped (the system has
    already agreed exactly).  Used by the convergence-rate analysis and the
    E7 benchmark.
    """
    ratios: list[float] = []
    previous: float | None = None
    for value in spreads:
        if value < 0:
            raise InvalidParameterError(f"spreads must be non-negative, got {value}")
        if previous is not None and previous > 0:
            ratios.append(value / previous)
        previous = value
    return ratios
