"""High-level one-call API: :func:`run_consensus`.

This is the entry point most examples use: given a graph and a fault budget it
picks sensible defaults for everything else (Algorithm 1 as the rule, random
inputs, a random fault set with an extreme-pushing adversary) while letting
callers override any piece.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import ByzantineStrategy
from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.algorithms.base import UpdateRule
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.simulation.async_engine import run_partially_asynchronous
from repro.simulation.engine import run_synchronous
from repro.simulation.inputs import uniform_random_inputs
from repro.simulation.sparse import run_sparse
from repro.simulation.vectorized import run_vectorized
from repro.simulation.vectorized_async import run_vectorized_async
from repro.types import ConsensusOutcome, NodeId, ValueMap

#: Engine names accepted by :func:`run_consensus`: the faithful dict-based
#: reference engines, the dense NumPy engines that are bit-exact with them,
#: or the CSR sparse tier (synchronous model only) for large-``n`` graphs.
ENGINE_CHOICES = ("scalar", "vectorized", "sparse")


def run_consensus(
    graph: Digraph,
    f: int,
    inputs: ValueMap | None = None,
    rule: UpdateRule | None = None,
    faulty: frozenset[NodeId] | set[NodeId] | None = None,
    adversary: ByzantineStrategy | None = None,
    synchronous: bool = True,
    max_delay: int = 1,
    max_rounds: int = 500,
    tolerance: float = 1e-7,
    record_history: bool = True,
    seed: int | None = 0,
    engine: str = "scalar",
) -> ConsensusOutcome:
    """Run one iterative approximate Byzantine consensus execution.

    Parameters
    ----------
    graph:
        The communication graph.
    f:
        Fault budget the fault-free nodes defend against.
    inputs:
        Initial values; defaults to i.i.d. uniform values in ``[0, 1]``
        generated from ``seed``.
    rule:
        Update rule; defaults to the paper's Algorithm 1
        (:class:`~repro.algorithms.trimmed_mean.TrimmedMeanRule`).
    faulty:
        The Byzantine node set; defaults to a random set of ``f`` nodes when
        ``f > 0`` and an adversary is wanted, or the empty set when ``f = 0``.
    adversary:
        Byzantine behaviour; defaults to
        :class:`~repro.adversary.strategies.ExtremePushStrategy` when there
        are faulty nodes.
    synchronous:
        ``True`` (default) uses the synchronous engine; ``False`` uses the
        partially asynchronous engine with delay bound ``max_delay``.
    max_delay:
        Delay bound ``B`` for the asynchronous engine (ignored when
        ``synchronous`` is true).
    max_rounds, tolerance, record_history:
        Passed to the engine.
    seed:
        Seed controlling every default random choice (inputs, fault set,
        asynchronous delays).  ``None`` derives entropy from the OS.
    engine:
        ``"scalar"`` (default) runs the faithful dict-based reference
        engines; ``"vectorized"`` routes the same execution through the
        NumPy engines (:func:`~repro.simulation.vectorized.run_vectorized` /
        :func:`~repro.simulation.vectorized_async.run_vectorized_async`),
        which are bit-exact with the reference for the rules they support;
        ``"sparse"`` routes through the CSR message-plane engine
        (:func:`~repro.simulation.sparse.run_sparse`), bit-exact with the
        dense engine at float64 but built for large sparse graphs.  The
        sparse tier implements the synchronous model only — combining it
        with ``synchronous=False`` raises
        :class:`~repro.exceptions.InvalidParameterError`.

    Returns
    -------
    ConsensusOutcome
        Convergence/validity verdicts, the final fault-free values, and (when
        ``record_history`` is true) the full per-round trace.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if engine not in ENGINE_CHOICES:
        raise InvalidParameterError(
            f"engine must be one of {ENGINE_CHOICES}, got {engine!r}"
        )
    rng = np.random.default_rng(seed)
    chosen_rule = rule if rule is not None else TrimmedMeanRule(f)
    if chosen_rule.f != f:
        raise InvalidParameterError(
            f"rule is configured for f = {chosen_rule.f} but run_consensus was "
            f"called with f = {f}"
        )
    chosen_inputs = (
        dict(inputs)
        if inputs is not None
        else uniform_random_inputs(graph.nodes, rng=rng)
    )
    if faulty is not None:
        chosen_faulty = frozenset(faulty)
    elif f > 0:
        chosen_faulty = random_fault_set(graph, f, rng=rng)
    else:
        chosen_faulty = frozenset()
    chosen_adversary = adversary
    if chosen_adversary is None and chosen_faulty:
        chosen_adversary = ExtremePushStrategy(delta=1.0)

    if engine == "sparse":
        if not synchronous:
            raise InvalidParameterError(
                "the sparse engine tier implements the synchronous model "
                "only; use engine='vectorized' or engine='scalar' with "
                "synchronous=False"
            )
        return run_sparse(
            graph=graph,
            rule=chosen_rule,
            inputs=chosen_inputs,
            faulty=chosen_faulty,
            adversary=chosen_adversary,
            max_rounds=max_rounds,
            tolerance=tolerance,
            record_history=record_history,
        )
    if engine == "vectorized":
        if synchronous:
            return run_vectorized(
                graph=graph,
                rule=chosen_rule,
                inputs=chosen_inputs,
                faulty=chosen_faulty,
                adversary=chosen_adversary,
                max_rounds=max_rounds,
                tolerance=tolerance,
                record_history=record_history,
            )
        return run_vectorized_async(
            graph=graph,
            rule=chosen_rule,
            inputs=chosen_inputs,
            faulty=chosen_faulty,
            adversary=chosen_adversary,
            max_delay=max_delay,
            max_rounds=max_rounds,
            tolerance=tolerance,
            record_history=record_history,
            rng=rng,
        )
    if synchronous:
        return run_synchronous(
            graph=graph,
            rule=chosen_rule,
            inputs=chosen_inputs,
            faulty=chosen_faulty,
            adversary=chosen_adversary,
            max_rounds=max_rounds,
            tolerance=tolerance,
            record_history=record_history,
        )
    return run_partially_asynchronous(
        graph=graph,
        rule=chosen_rule,
        inputs=chosen_inputs,
        faulty=chosen_faulty,
        adversary=chosen_adversary,
        max_delay=max_delay,
        max_rounds=max_rounds,
        tolerance=tolerance,
        record_history=record_history,
        rng=rng,
    )
