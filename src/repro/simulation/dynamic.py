"""Dynamic-topology layer: per-round edge masks and churn/sleep-wake.

Every engine so far simulated a *static* communication pattern.  This module
adds the dynamic scenario axis the roadmap asks for: a
:class:`TopologySchedule` tells the engines, per round, which directed edges
are **up** and which nodes are **awake**, and all five engine tiers (scalar
synchronous, dense vectorized, sparse CSR, scalar and vectorized
asynchronous) consume the same schedule object with identical semantics —
enforced by the cross-engine fuzz suite in ``tests/test_dynamic_fuzz.py``.

Masking semantics
-----------------
The synchronous engines keep their static gather structure and *re-mask*
(the cheap path the roadmap calls for — recompute nothing):

* **Down edge / asleep sender** ``(s, r)`` at round ``t``: receiver ``r``
  still evaluates a length-``|N⁻_r|`` received vector, but the dead slot
  carries ``r``'s **own previous value** ``v_r[t − 1]`` (self-substitution).
  The sort/trim/cumsum kernel is untouched, the update stays a convex
  combination of fault-free round-``t − 1`` values, so validity (eq. 1) is
  preserved by construction.
* **Asleep node**: the node does not execute its update (state frozen),
  and — being an asleep sender — every out-edge it has is masked like a
  down edge.  A node asleep for the whole run is therefore exactly
  equivalent to masking down every edge incident to it (under the midpoint
  rule, whose all-equal update is exact), which the metamorphic suite pins.
* Faulty nodes' *nominal* trace values are unaffected by sleep (sleep masks
  a faulty node's channels, not its label in the trace), and adversary
  strategies consume their RNG draws independently of the masks — the
  engines apply masking downstream of
  :meth:`~repro.adversary.vectorized.BatchStrategy.edge_values`.

The asynchronous engines compose masks with their delivery machinery
instead: a masked channel's message for round ``t`` is simply **never
delivered** (the receiver keeps its freshest previously delivered value),
and receiver sleep is ANDed into the activation mask.  Delay and activation
draws are still consumed for every edge and node, so the random streams stay
mask-independent and the scalar/vectorized async pair remains bit-identical.
Because "never sent" differs from the synchronous self-substitution, the
async tiers intentionally leave the synchronous cross-engine equality set
once masks are active.

RNG-stream contract
-------------------
Random schedules derive the round-``t`` mask from a *pure function* of
``(seed, stream_key, t)``::

    default_rng(SeedSequence(seed, spawn_key=(stream_key, t)))

``SeedSequence(entropy, spawn_key=...)`` is exactly the stream a
``SeedSequence.spawn`` tree would hand out for that key, so masks are
order-independent: any engine (or process) querying round ``t`` gets the
identical mask without replaying rounds ``1 … t − 1``, converged rows cost
nothing, and :meth:`TopologySchedule.activity` may be queried any number of
times per round.  Edge masks are interpreted over
:attr:`ScheduleLayout.edges` (canonical sender-major edge order, the same
order as :func:`repro.simulation.async_engine.canonical_edge_order`) and
awake masks over :attr:`ScheduleLayout.node_order` (nodes sorted by
``repr`` — the engines' state-column order).  Distinct ``stream_key`` values
decorrelate edge and churn streams sharing one seed (the defaults are 0 for
edge schedules and 1 for churn schedules).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId

#: Stream keys separating the random edge and churn mask streams when both
#: derive from one root seed (see the module-level RNG-stream contract).
EDGE_STREAM_KEY = 0
CHURN_STREAM_KEY = 1


@dataclass(frozen=True)
class ScheduleLayout:
    """Canonical orders a schedule's masks are expressed in.

    Built once per graph by every engine that consumes a schedule, so a
    schedule never needs engine-specific knowledge: edge masks are indexed
    by :attr:`edges` (canonical sender-major directed-edge order) and awake
    masks by :attr:`node_order` (nodes sorted by ``repr``, i.e. the batch
    engines' state-column order).
    """

    graph: Digraph
    node_order: tuple[NodeId, ...]
    edges: tuple[tuple[NodeId, NodeId], ...]
    node_index: Mapping[NodeId, int]
    edge_index: Mapping[tuple[NodeId, NodeId], int]

    @classmethod
    def for_graph(cls, graph: Digraph) -> "ScheduleLayout":
        """Build the layout for ``graph``.

        ``edges`` reproduces
        :func:`repro.simulation.async_engine.canonical_edge_order` (senders
        sorted by ``repr``, targets sorted by ``repr`` within a sender);
        the equality is pinned by ``tests/test_dynamic_schedules.py``.
        """
        node_order = tuple(sorted(graph.nodes, key=repr))
        edges = tuple(
            (sender, target)
            for sender in node_order
            for target in sorted(graph.out_neighbors(sender), key=repr)
        )
        return cls(
            graph=graph,
            node_order=node_order,
            edges=edges,
            node_index={node: i for i, node in enumerate(node_order)},
            edge_index={edge: i for i, edge in enumerate(edges)},
        )

    @property
    def edge_count(self) -> int:
        """Number of directed edges ``E``."""
        return len(self.edges)

    @property
    def node_count(self) -> int:
        """Number of nodes ``n``."""
        return len(self.node_order)


@dataclass(frozen=True)
class RoundActivity:
    """One round's topology state: which edges are up, which nodes awake.

    ``edge_up`` is a ``(E,)`` bool array over :attr:`ScheduleLayout.edges`
    (``None`` means every edge is up), ``awake`` a ``(n,)`` bool array over
    :attr:`ScheduleLayout.node_order` (``None`` means every node is awake).
    ``None`` masks let the engines skip the masking code path entirely, so
    a static schedule costs nothing per round.
    """

    edge_up: np.ndarray | None = None
    awake: np.ndarray | None = None

    @property
    def is_static(self) -> bool:
        """Whether this round is indistinguishable from the static topology."""
        return self.edge_up is None and self.awake is None


class TopologySchedule(ABC):
    """Per-round topology plan consumed identically by every engine tier.

    Subclasses implement :meth:`activity` as a **pure function** of
    ``(round_index, layout)``: the engines may query a round several times
    (e.g. once while stepping and once for validity tracking), different
    engines query the same schedule instance concurrently in cross-checks,
    and batched rows all share one schedule — all of which is only sound
    because no call mutates schedule state.
    """

    #: Human-readable name used in experiment rows and benchmark tables.
    name: str = "schedule"

    @abstractmethod
    def activity(self, round_index: int, layout: ScheduleLayout) -> RoundActivity:
        """Return round ``round_index``'s masks (rounds are 1-based)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def schedule_rng(seed: int, stream_key: int, round_index: int) -> np.random.Generator:
    """Return the documented per-round generator of a random schedule.

    The RNG-stream contract in one line:
    ``default_rng(SeedSequence(seed, spawn_key=(stream_key, round_index)))``.
    Pure function of its arguments — no draw-order coupling between rounds,
    engines or processes.
    """
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=(int(stream_key), int(round_index)))
    )


def resolve_activity(
    schedule: TopologySchedule, round_index: int, layout: ScheduleLayout
) -> RoundActivity:
    """Query ``schedule`` for one round and validate the mask shapes.

    Engines funnel every schedule query through this helper so a malformed
    schedule fails loudly at the round it first misbehaves, with the
    expected shapes in the message, instead of crashing deep in a kernel.
    """
    activity = schedule.activity(round_index, layout)
    edge_up, awake = activity.edge_up, activity.awake
    if edge_up is not None:
        edge_up = np.asarray(edge_up, dtype=bool)
        if edge_up.shape != (layout.edge_count,):
            raise InvalidParameterError(
                f"schedule {schedule.name!r} returned an edge mask of shape "
                f"{edge_up.shape} at round {round_index}; expected "
                f"({layout.edge_count},) over the canonical edge order"
            )
    if awake is not None:
        awake = np.asarray(awake, dtype=bool)
        if awake.shape != (layout.node_count,):
            raise InvalidParameterError(
                f"schedule {schedule.name!r} returned an awake mask of shape "
                f"{awake.shape} at round {round_index}; expected "
                f"({layout.node_count},) over the repr-sorted node order"
            )
    if edge_up is activity.edge_up and awake is activity.awake:
        return activity
    return RoundActivity(edge_up=edge_up, awake=awake)


class StaticSchedule(TopologySchedule):
    """The trivial schedule: every edge up, every node awake, every round.

    Exists so "no schedule" and "static schedule" are interchangeable — an
    engine handed a :class:`StaticSchedule` is bit-identical to one handed
    ``None`` (the regression pin in the metamorphic suite).
    """

    name = "static"

    def activity(self, round_index: int, layout: ScheduleLayout) -> RoundActivity:
        """Return the all-``None`` activity (no masking work at all)."""
        return RoundActivity()


class PeriodicEdgeSchedule(TopologySchedule):
    """Deterministic edge masking cycling through explicit down-phases.

    ``down_phases`` is a sequence of edge collections; during round ``t``
    the edges of phase ``(t − 1) mod len(down_phases)`` are **down** and
    everything else is up.  An empty collection makes that phase fully
    static.  Unknown edges raise at query time (the layout is needed to
    validate them).
    """

    name = "periodic-edges"

    def __init__(
        self, down_phases: Sequence[Iterable[tuple[NodeId, NodeId]]]
    ) -> None:
        if not down_phases:
            raise InvalidParameterError(
                "PeriodicEdgeSchedule needs at least one phase"
            )
        self._phases: tuple[tuple[tuple[NodeId, NodeId], ...], ...] = tuple(
            tuple(phase) for phase in down_phases
        )

    @property
    def period(self) -> int:
        """Number of phases the schedule cycles through."""
        return len(self._phases)

    def activity(self, round_index: int, layout: ScheduleLayout) -> RoundActivity:
        """Return the mask of phase ``(round_index − 1) mod period``."""
        phase = self._phases[(round_index - 1) % len(self._phases)]
        if not phase:
            return RoundActivity()
        edge_up = np.ones(layout.edge_count, dtype=bool)
        for edge in phase:
            position = layout.edge_index.get(edge)
            if position is None:
                raise InvalidParameterError(
                    f"PeriodicEdgeSchedule phase contains {edge!r}, which is "
                    "not a directed edge of the graph"
                )
            edge_up[position] = False
        return RoundActivity(edge_up=edge_up)


class PeriodicChurnSchedule(TopologySchedule):
    """Deterministic sleep/wake cycling through explicit asleep-phases.

    ``asleep_phases`` is a sequence of node collections; during round ``t``
    the nodes of phase ``(t − 1) mod len(asleep_phases)`` are **asleep**
    (state frozen, out-edges still carrying the frozen state).
    """

    name = "periodic-churn"

    def __init__(self, asleep_phases: Sequence[Iterable[NodeId]]) -> None:
        if not asleep_phases:
            raise InvalidParameterError(
                "PeriodicChurnSchedule needs at least one phase"
            )
        self._phases: tuple[tuple[NodeId, ...], ...] = tuple(
            tuple(phase) for phase in asleep_phases
        )

    @property
    def period(self) -> int:
        """Number of phases the schedule cycles through."""
        return len(self._phases)

    def activity(self, round_index: int, layout: ScheduleLayout) -> RoundActivity:
        """Return the awake mask of phase ``(round_index − 1) mod period``."""
        phase = self._phases[(round_index - 1) % len(self._phases)]
        if not phase:
            return RoundActivity()
        awake = np.ones(layout.node_count, dtype=bool)
        for node in phase:
            position = layout.node_index.get(node)
            if position is None:
                raise InvalidParameterError(
                    f"PeriodicChurnSchedule phase contains {node!r}, which is "
                    "not a node of the graph"
                )
            awake[position] = False
        return RoundActivity(awake=awake)


class RandomEdgeSchedule(TopologySchedule):
    """Seeded i.i.d. per-round edge up/down masking.

    Round ``t`` draws one ``random(E)`` vector from the contract stream
    ``schedule_rng(seed, stream_key, t)`` (canonical edge order) and keeps
    edge ``e`` up iff ``draw[e] < p_up[e]``.  ``p_up`` is either one scalar
    probability or a mapping from directed edge to probability (missing
    edges fall back to ``default_p_up``), which expresses the heterogeneous
    capacity profiles of the roadmap: stable core links with ``p_up = 1``
    and flaky peripheral links below it.
    """

    name = "random-edges"

    def __init__(
        self,
        p_up: float | Mapping[tuple[NodeId, NodeId], float] = 0.9,
        seed: int = 0,
        default_p_up: float = 1.0,
        stream_key: int = EDGE_STREAM_KEY,
    ) -> None:
        if isinstance(p_up, Mapping):
            for edge, probability in sorted(
                p_up.items(), key=lambda item: repr(item[0])
            ):
                _check_probability(probability, f"p_up[{edge!r}]")
            _check_probability(default_p_up, "default_p_up")
        else:
            _check_probability(p_up, "p_up")
        self._p_up = dict(p_up) if isinstance(p_up, Mapping) else float(p_up)
        self._default = float(default_p_up)
        self._seed = int(seed)
        self._stream_key = int(stream_key)

    @property
    def seed(self) -> int:
        """Root seed of the per-round mask streams."""
        return self._seed

    def _probabilities(self, layout: ScheduleLayout) -> np.ndarray:
        if isinstance(self._p_up, dict):
            unknown = set(self._p_up) - set(layout.edges)
            if unknown:
                raise InvalidParameterError(
                    f"RandomEdgeSchedule p_up mentions non-edges "
                    f"{sorted(unknown, key=repr)!r}"
                )
            return np.array(
                [self._p_up.get(edge, self._default) for edge in layout.edges]
            )
        return np.full(layout.edge_count, self._p_up)

    def activity(self, round_index: int, layout: ScheduleLayout) -> RoundActivity:
        """Return round ``round_index``'s seeded edge mask."""
        probabilities = self._probabilities(layout)
        if (probabilities >= 1.0).all():
            return RoundActivity()
        draws = schedule_rng(self._seed, self._stream_key, round_index).random(
            layout.edge_count
        )
        return RoundActivity(edge_up=draws < probabilities)


class RandomChurnSchedule(TopologySchedule):
    """Seeded i.i.d. per-round sleep/wake participation masking.

    Round ``t`` draws one ``random(n)`` vector from the contract stream
    ``schedule_rng(seed, stream_key, t)`` (repr-sorted node order) and keeps
    node ``i`` awake iff ``draw[i] < p_awake[i]``; nodes listed in
    ``always_awake`` are forced awake regardless of their draw (the draw is
    still consumed, keeping the stream layout-independent).  ``p_awake`` is
    a scalar or a per-node mapping with ``default_p_awake`` fallback.
    """

    name = "random-churn"

    def __init__(
        self,
        p_awake: float | Mapping[NodeId, float] = 0.9,
        seed: int = 0,
        always_awake: Iterable[NodeId] = (),
        default_p_awake: float = 1.0,
        stream_key: int = CHURN_STREAM_KEY,
    ) -> None:
        if isinstance(p_awake, Mapping):
            for node, probability in sorted(
                p_awake.items(), key=lambda item: repr(item[0])
            ):
                _check_probability(probability, f"p_awake[{node!r}]")
            _check_probability(default_p_awake, "default_p_awake")
        else:
            _check_probability(p_awake, "p_awake")
        self._p_awake = (
            dict(p_awake) if isinstance(p_awake, Mapping) else float(p_awake)
        )
        self._default = float(default_p_awake)
        self._seed = int(seed)
        self._always_awake = frozenset(always_awake)
        self._stream_key = int(stream_key)

    @property
    def seed(self) -> int:
        """Root seed of the per-round mask streams."""
        return self._seed

    @property
    def always_awake(self) -> frozenset[NodeId]:
        """Nodes exempt from churn."""
        return self._always_awake

    def _probabilities(self, layout: ScheduleLayout) -> np.ndarray:
        if isinstance(self._p_awake, dict):
            unknown = set(self._p_awake) - set(layout.node_order)
            if unknown:
                raise InvalidParameterError(
                    f"RandomChurnSchedule p_awake mentions unknown nodes "
                    f"{sorted(unknown, key=repr)!r}"
                )
            return np.array(
                [
                    self._p_awake.get(node, self._default)
                    for node in layout.node_order
                ]
            )
        return np.full(layout.node_count, self._p_awake)

    def activity(self, round_index: int, layout: ScheduleLayout) -> RoundActivity:
        """Return round ``round_index``'s seeded awake mask."""
        unknown = self._always_awake - set(layout.node_order)
        if unknown:
            raise InvalidParameterError(
                f"RandomChurnSchedule always_awake mentions unknown nodes "
                f"{sorted(unknown, key=repr)!r}"
            )
        probabilities = self._probabilities(layout)
        draws = schedule_rng(self._seed, self._stream_key, round_index).random(
            layout.node_count
        )
        awake = draws < probabilities
        for node in self._always_awake:
            awake[layout.node_index[node]] = True
        if awake.all():
            return RoundActivity()
        return RoundActivity(awake=awake)


class ComposedSchedule(TopologySchedule):
    """AND-composition of several schedules.

    An edge is up iff every component keeps it up; a node is awake iff every
    component keeps it awake.  The canonical use is pairing a
    :class:`RandomEdgeSchedule` with a :class:`RandomChurnSchedule` — their
    distinct default ``stream_key`` values keep the two mask streams
    decorrelated even under one shared seed.
    """

    def __init__(self, *schedules: TopologySchedule) -> None:
        if not schedules:
            raise InvalidParameterError(
                "ComposedSchedule needs at least one component"
            )
        self._schedules = tuple(schedules)
        self.name = "+".join(schedule.name for schedule in schedules)

    @property
    def components(self) -> tuple[TopologySchedule, ...]:
        """The composed schedules, in application order."""
        return self._schedules

    def activity(self, round_index: int, layout: ScheduleLayout) -> RoundActivity:
        """AND the component masks for one round."""
        edge_up: np.ndarray | None = None
        awake: np.ndarray | None = None
        for schedule in self._schedules:
            part = resolve_activity(schedule, round_index, layout)
            if part.edge_up is not None:
                edge_up = (
                    part.edge_up.copy() if edge_up is None else edge_up & part.edge_up
                )
            if part.awake is not None:
                awake = part.awake.copy() if awake is None else awake & part.awake
        return RoundActivity(edge_up=edge_up, awake=awake)


def _check_probability(value: float, label: str) -> None:
    """Validate one probability parameter."""
    if not 0.0 <= float(value) <= 1.0:
        raise InvalidParameterError(
            f"{label} must lie in [0, 1], got {value}"
        )
