"""Partially asynchronous simulation engine (Section 7).

Section 7 of the paper notes that the synchronous results generalise to the
partially asynchronous model of Bertsekas & Tsitsiklis, which allows message
delays of up to ``B`` iterations.  This engine implements that model:

* a message sent at the start of iteration ``t`` (carrying the sender's state
  ``v_j[t − 1]``) is delivered at iteration ``t + d`` for a per-message delay
  ``d`` drawn uniformly from ``{0, …, B}``;
* every node keeps, per in-neighbour, the **freshest** value delivered so far
  (initialised to the neighbour's input, so that the iteration is well defined
  from round 1);
* every round each node updates using its buffer with probability
  ``update_probability`` (1.0 reproduces "every node computes every round";
  smaller values approximate sporadic activations).

Because nodes may compute on stale values, the *round-to-round* validity
condition (eq. 1) need not hold — but the convex-hull form does: every value
used by a fault-free node either comes from a fault-free node's earlier state
(inside the initial hull) or is a Byzantine value that the trimming discards
or sandwiches.  The engine therefore reports validity with respect to the
**initial fault-free hull**.

RNG-stream contract
-------------------
Delay and activation randomness follows a canonical draw order shared with
:class:`~repro.simulation.vectorized_async.VectorizedAsyncEngine`, so a
scalar execution and a vectorized batch row seeded identically consume the
exact same random stream and produce bit-identical trajectories.  Per
executed round ``t``, in this order:

1. iff ``max_delay > 0``: one call ``rng.integers(0, max_delay + 1, size=E)``
   where ``E`` is the number of directed edges and position ``k`` is the
   ``k``-th edge in *canonical edge order* — senders sorted by ``repr``, and
   within each sender its targets sorted by ``repr``;
2. iff ``update_probability < 1.0``: one call ``rng.random(m)`` over the
   ``m`` fault-free nodes sorted by ``repr``; a node recomputes exactly when
   its coin is ``< update_probability``.

No other engine-level randomness exists (adversary strategies own their own
generators), and converged runs stop drawing.  Earlier revisions drew one
scalar per message while iterating Python sets, which made trajectories
depend on hash ordering; the canonical array draws are reproducible across
processes and are what the cross-engine parity suite pins down.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.adversary.base import AdversaryContext, ByzantineStrategy, PassiveStrategy
from repro.algorithms.base import UpdateRule
from repro.exceptions import (
    FaultBudgetExceededError,
    InvalidParameterError,
    SimulationError,
    ValidityViolationError,
)
from repro.graphs.digraph import Digraph
from repro.simulation.dynamic import (
    ScheduleLayout,
    TopologySchedule,
    resolve_activity,
)
from repro.simulation.engine import SimulationConfig
from repro.simulation.metrics import fault_free_extremes, within_hull
from repro.simulation.trace import ExecutionTrace
from repro.types import ConsensusOutcome, NodeId, ReceivedValue, ValueMap


def canonical_edge_order(graph: Digraph) -> tuple[tuple[NodeId, NodeId], ...]:
    """Return every directed edge in the RNG contract's canonical order.

    Sender-major: senders sorted by ``repr``, and within each sender its
    targets sorted by ``repr``.  Both asynchronous engines interpret the
    per-round delay array in exactly this order.
    """
    return tuple(
        (sender, target)
        for sender in sorted(graph.nodes, key=repr)
        for target in sorted(graph.out_neighbors(sender), key=repr)
    )


class PartiallyAsynchronousEngine:
    """Executor with bounded message delays and optional sporadic activation.

    Parameters
    ----------
    graph, rule, faulty, adversary, config:
        As for :class:`~repro.simulation.engine.SynchronousEngine`.
    max_delay:
        The bound ``B`` on message delay, in iterations.  ``0`` reproduces the
        synchronous engine exactly (every message delivered in the round it
        was sent for).  Negative values raise
        :class:`~repro.exceptions.InvalidParameterError`.
    update_probability:
        Probability that a fault-free node recomputes its state in a given
        round; nodes that skip a round keep their previous state (and their
        buffers keep absorbing deliveries).  Must lie in ``(0, 1]``.
    rng:
        Source of randomness for delays and activations, consumed according
        to the module-level RNG-stream contract.
    schedule:
        Optional :class:`~repro.simulation.dynamic.TopologySchedule`.  A
        message sent over a masked channel (edge down, or sender asleep) is
        simply never delivered — its delay is still drawn, so the RNG stream
        is mask-independent.  An asleep receiver keeps its state frozen for
        the round (its buffers keep absorbing deliveries), composing with the
        activation coins by intersection.  Note this differs from the
        synchronous engines' self-substitution semantics: with a schedule,
        ``max_delay=0`` no longer degenerates to the synchronous engines.
    """

    def __init__(
        self,
        graph: Digraph,
        rule: UpdateRule,
        faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
        adversary: ByzantineStrategy | None = None,
        config: SimulationConfig | None = None,
        max_delay: int = 1,
        update_probability: float = 1.0,
        rng: np.random.Generator | int | None = None,
        schedule: TopologySchedule | None = None,
    ) -> None:
        if max_delay < 0:
            raise InvalidParameterError(f"max_delay must be >= 0, got {max_delay}")
        if not 0.0 < update_probability <= 1.0:
            raise InvalidParameterError(
                f"update_probability must be in (0, 1], got {update_probability}"
            )
        self._graph = graph
        self._rule = rule
        self._faulty = frozenset(faulty)
        self._adversary = adversary if adversary is not None else PassiveStrategy()
        self._config = config if config is not None else SimulationConfig()
        self._max_delay = int(max_delay)
        self._update_probability = float(update_probability)
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

        unknown = self._faulty - graph.nodes
        if unknown:
            raise InvalidParameterError(
                f"faulty nodes {sorted(unknown, key=repr)!r} are not in the graph"
            )
        fault_free = graph.nodes - self._faulty
        if not fault_free:
            # Checked before the fault budget: an all-faulty system is a
            # malformed configuration regardless of how large ``f`` is.
            raise InvalidParameterError("at least one node must be fault-free")
        if len(self._faulty) > rule.f:
            raise FaultBudgetExceededError(len(self._faulty), rule.f)
        rule.validate_graph(graph, nodes=sorted(fault_free, key=repr))

        self._canonical_edges = canonical_edge_order(graph)
        self._ff_sorted: tuple[NodeId, ...] = tuple(
            sorted(fault_free, key=repr)
        )
        self._schedule = schedule
        self._sched_layout = (
            ScheduleLayout.for_graph(graph) if schedule is not None else None
        )

    @property
    def schedule(self) -> TopologySchedule | None:
        """The topology schedule driving per-round masks, if any."""
        return self._schedule

    @property
    def max_delay(self) -> int:
        """The delay bound ``B``."""
        return self._max_delay

    @property
    def update_probability(self) -> float:
        """Per-round activation probability of a fault-free node."""
        return self._update_probability

    @property
    def faulty(self) -> frozenset[NodeId]:
        """The Byzantine node set ``F``."""
        return self._faulty

    def run(self, inputs: ValueMap) -> ConsensusOutcome:
        """Run until the fault-free spread reaches the tolerance or ``max_rounds``."""
        graph = self._graph
        config = self._config
        missing = graph.nodes - inputs.keys()
        if missing:
            raise InvalidParameterError(
                f"inputs missing for nodes {sorted(missing, key=repr)!r}"
            )

        state: dict[NodeId, float] = {
            node: float(inputs[node]) for node in graph.nodes
        }
        nodes_sorted = sorted(graph.nodes, key=repr)
        # Freshest value known per directed edge: (send_round, value).  The
        # initial entries model the paper's assumption that every node knows
        # its in-neighbours' inputs (send_round 0).
        freshest: dict[tuple[NodeId, NodeId], tuple[int, float]] = {}
        for target in graph.nodes:
            for sender in graph.in_neighbors(target):
                freshest[(sender, target)] = (0, state[sender])
        # Messages in flight, keyed by delivery round.
        in_flight: dict[int, list[tuple[int, NodeId, NodeId, float]]] = defaultdict(list)

        trace = ExecutionTrace(faulty=self._faulty)
        hull_min, hull_max = fault_free_extremes(state, self._faulty)
        initial_spread = hull_max - hull_min
        hull_ok = True
        if config.record_history:
            trace.record_round(0, state)

        rounds_executed = 0
        current_spread = initial_spread
        converged = config.stop_on_convergence and initial_spread <= config.tolerance

        layout = self._sched_layout
        for round_index in range(1, config.max_rounds + 1):
            if converged:
                break
            # Per-round masks; ``resolve_activity`` is a pure function, and
            # masking is applied downstream of both the adversary and the
            # delay draws, so every RNG stream stays mask-independent.
            activity = (
                resolve_activity(self._schedule, round_index, layout)
                if self._schedule is not None
                else None
            )
            if activity is not None and activity.is_static:
                activity = None
            edge_up = activity.edge_up if activity is not None else None
            awake = activity.awake if activity is not None else None
            context = AdversaryContext(
                graph=graph,
                round_index=round_index,
                values=dict(state),
                faulty=self._faulty,
                f=self._rule.f,
            )
            # 1. Faulty nodes choose their per-edge values, in canonical
            #    (repr-sorted) sender order — the same contract as the
            #    synchronous engine and ScalarStrategyAdapter, so RNG-backed
            #    strategies consume their own draws identically everywhere.
            faulty_messages: dict[NodeId, dict[NodeId, float]] = {}
            for node in sorted(self._faulty, key=repr):
                outgoing = self._adversary.outgoing_values(node, context)
                missing_targets = graph.out_neighbors(node) - outgoing.keys()
                if missing_targets:
                    raise SimulationError(
                        f"adversary strategy {self._adversary.name!r} did not "
                        f"provide values for edges "
                        f"{sorted(missing_targets, key=repr)!r} out of faulty "
                        f"node {node!r}"
                    )
                # Canonical insertion order for the normalised copy;
                # consumers index by key, so sorting is behaviour-neutral.
                faulty_messages[node] = {
                    target: float(value)
                    for target, value in sorted(
                        outgoing.items(), key=lambda item: repr(item[0])
                    )
                }

            # 2. Every node emits its messages for this round; delays come
            #    from one canonical-order array draw (the RNG contract).
            delays = (
                self._rng.integers(0, self._max_delay + 1, size=len(self._canonical_edges))
                if self._max_delay > 0
                else None
            )
            for position, (sender, target) in enumerate(self._canonical_edges):
                # The delay is drawn for every edge, but a masked channel's
                # message (edge down, or sender asleep) is never delivered.
                channel_up = True
                if edge_up is not None:
                    channel_up = bool(edge_up[position])
                if channel_up and awake is not None:
                    channel_up = bool(awake[layout.node_index[sender]])
                if not channel_up:
                    continue
                if sender in self._faulty:
                    value = faulty_messages[sender][target]
                else:
                    value = state[sender]
                delay = int(delays[position]) if delays is not None else 0
                in_flight[round_index + delay].append(
                    (round_index, sender, target, value)
                )

            # 3. Deliveries scheduled for this round update the buffers
            #    (freshest send time wins).
            for send_round, sender, target, value in in_flight.pop(round_index, []):
                stored_round, _ = freshest[(sender, target)]
                if send_round >= stored_round:
                    freshest[(sender, target)] = (send_round, value)

            # 4. Activation coins: one canonical-order array draw per round.
            active: set[NodeId] | None = None
            if self._update_probability < 1.0:
                coins = self._rng.random(len(self._ff_sorted))
                active = {
                    node
                    for node, coin in zip(self._ff_sorted, coins)
                    if coin < self._update_probability
                }

            # 5. Activated fault-free nodes recompute from their buffers;
            #    faulty nodes take their nominal value.
            new_state = dict(state)
            for node in nodes_sorted:
                if node in self._faulty:
                    new_state[node] = float(
                        self._adversary.nominal_value(node, context)
                    )
                    continue
                if active is not None and node not in active:
                    continue
                # Receiver sleep composes with the activation coins by
                # intersection: an asleep node keeps its state frozen.
                if awake is not None and not awake[layout.node_index[node]]:
                    continue
                received = [
                    ReceivedValue(sender=sender, value=freshest[(sender, node)][1])
                    for sender in sorted(graph.in_neighbors(node), key=repr)
                ]
                new_state[node] = float(
                    self._rule.compute(node, state[node], received)
                )
            state = new_state
            rounds_executed = round_index

            low, high = fault_free_extremes(state, self._faulty)
            fault_free_values = [
                # reprolint: disable=ORD002 -- hull containment is order-free
                value for node, value in state.items() if node not in self._faulty
            ]
            if not within_hull(fault_free_values, hull_min, hull_max):
                hull_ok = False
                if config.strict_validity:
                    raise ValidityViolationError(
                        f"hull validity violated at round {round_index}: a "
                        f"fault-free value left the initial hull "
                        f"[{hull_min}, {hull_max}]"
                    )
            if config.record_history:
                trace.record_round(round_index, state)
            current_spread = high - low
            if config.stop_on_convergence and current_spread <= config.tolerance:
                converged = True

        if not config.stop_on_convergence:
            converged = current_spread <= config.tolerance
        final_values = {
            node: state[node] for node in graph.nodes if node not in self._faulty
        }
        return ConsensusOutcome(
            converged=converged,
            rounds_executed=rounds_executed,
            final_spread=current_spread,
            initial_spread=initial_spread,
            validity_ok=hull_ok,
            final_values=final_values,
            history=trace.as_records() if config.record_history else tuple(),
        )


def run_partially_asynchronous(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: ByzantineStrategy | None = None,
    max_delay: int = 1,
    update_probability: float = 1.0,
    max_rounds: int = 500,
    tolerance: float = 1e-7,
    record_history: bool = True,
    rng: np.random.Generator | int | None = None,
    schedule: TopologySchedule | None = None,
) -> ConsensusOutcome:
    """Functional wrapper around :class:`PartiallyAsynchronousEngine`."""
    config = SimulationConfig(
        max_rounds=max_rounds,
        tolerance=tolerance,
        record_history=record_history,
    )
    engine = PartiallyAsynchronousEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=adversary,
        config=config,
        max_delay=max_delay,
        update_probability=update_probability,
        rng=rng,
        schedule=schedule,
    )
    return engine.run(inputs)
