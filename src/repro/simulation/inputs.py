"""Input-assignment generators for consensus experiments.

Each node starts with a real-valued input (Section 2.3).  The helpers here
produce the input patterns used by the experiments:

* :func:`uniform_random_inputs` — i.i.d. uniform inputs (the generic workload),
* :func:`bimodal_inputs` — two clusters of inputs (stresses convergence
  because the initial spread equals the cluster gap),
* :func:`split_inputs_from_witness` — the adversarial input assignment from
  the necessity proof (``m`` on ``L``, ``M`` on ``R``, midpoint on ``C``),
* :func:`linear_ramp_inputs` — deterministic, evenly spaced inputs (useful in
  tests because the convex hull and the eventual consensus interval are easy
  to reason about).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.types import NodeId, PartitionWitness


def _sorted_nodes(nodes: Iterable[NodeId]) -> list[NodeId]:
    return sorted(nodes, key=repr)


def uniform_random_inputs(
    nodes: Iterable[NodeId],
    low: float = 0.0,
    high: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> dict[NodeId, float]:
    """Return i.i.d. uniform inputs in ``[low, high]`` for every node."""
    if high < low:
        raise InvalidParameterError(f"high ({high}) must be >= low ({low})")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    ordered = _sorted_nodes(nodes)
    draws = generator.uniform(low, high, size=len(ordered))
    return {node: float(value) for node, value in zip(ordered, draws)}


def linear_ramp_inputs(
    nodes: Iterable[NodeId], low: float = 0.0, high: float = 1.0
) -> dict[NodeId, float]:
    """Return evenly spaced deterministic inputs from ``low`` to ``high``.

    Nodes are ordered by ``repr``; a single node gets the midpoint.
    """
    if high < low:
        raise InvalidParameterError(f"high ({high}) must be >= low ({low})")
    ordered = _sorted_nodes(nodes)
    if not ordered:
        return {}
    if len(ordered) == 1:
        return {ordered[0]: (low + high) / 2.0}
    step = (high - low) / (len(ordered) - 1)
    return {node: low + index * step for index, node in enumerate(ordered)}


def bimodal_inputs(
    nodes: Iterable[NodeId],
    low_value: float = 0.0,
    high_value: float = 1.0,
    high_fraction: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> dict[NodeId, float]:
    """Return inputs drawn from two point masses at ``low_value`` and ``high_value``.

    ``high_fraction`` of the nodes (rounded down, at least one of each cluster
    when possible) receive ``high_value``; the assignment of nodes to clusters
    is random.
    """
    if high_value < low_value:
        raise InvalidParameterError(
            f"high_value ({high_value}) must be >= low_value ({low_value})"
        )
    if not 0.0 <= high_fraction <= 1.0:
        raise InvalidParameterError(
            f"high_fraction must be in [0, 1], got {high_fraction}"
        )
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    ordered = _sorted_nodes(nodes)
    count = len(ordered)
    if count == 0:
        return {}
    high_count = int(round(high_fraction * count))
    if count >= 2:
        high_count = min(max(high_count, 1), count - 1)
    chosen = set(
        int(index)
        for index in generator.choice(count, size=high_count, replace=False)
    )
    return {
        node: high_value if index in chosen else low_value
        for index, node in enumerate(ordered)
    }


def split_inputs_from_witness(
    witness: PartitionWitness,
    low_value: float = 0.0,
    high_value: float = 1.0,
) -> dict[NodeId, float]:
    """Return the necessity-proof input assignment for a violating partition.

    Nodes in ``L`` get ``m = low_value``, nodes in ``R`` get ``M = high_value``
    and nodes in ``C`` (and the faulty nodes' nominal inputs) get the midpoint,
    exactly as in the proof of Theorem 1.
    """
    if high_value <= low_value:
        raise InvalidParameterError(
            f"high_value ({high_value}) must exceed low_value ({low_value})"
        )
    midpoint = (low_value + high_value) / 2.0
    inputs: dict[NodeId, float] = {}
    for node in witness.left:
        inputs[node] = low_value
    for node in witness.right:
        inputs[node] = high_value
    for node in witness.center:
        inputs[node] = midpoint
    for node in witness.faulty:
        inputs[node] = midpoint
    return inputs
