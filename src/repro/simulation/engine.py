"""Synchronous round-based simulation engine.

The engine executes exactly the iteration structure of Section 2.3:

1. at the start of iteration ``t`` every fault-free node sends its state
   ``v_i[t − 1]`` on all outgoing edges, while every faulty node sends whatever
   its :class:`~repro.adversary.base.ByzantineStrategy` dictates (possibly
   different values on different edges);
2. every fault-free node receives one value per incoming edge (the vector
   ``r_i[t]``);
3. every fault-free node applies its update rule
   ``v_i[t] = Z_i(r_i[t], v_i[t − 1])``.

The engine tracks ``U[t]``, ``µ[t]``, the validity condition (eq. 1) and
convergence, and can optionally record the full execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.base import AdversaryContext, ByzantineStrategy, PassiveStrategy
from repro.algorithms.base import UpdateRule
from repro.exceptions import (
    FaultBudgetExceededError,
    InvalidParameterError,
    SimulationError,
    ValidityViolationError,
)
from repro.graphs.digraph import Digraph
from repro.simulation.dynamic import (
    ScheduleLayout,
    TopologySchedule,
    resolve_activity,
)
from repro.simulation.metrics import (
    ParticipationValidityTracker,
    ValidityTracker,
    fault_free_extremes,
)
from repro.simulation.trace import ExecutionTrace
from repro.types import ConsensusOutcome, NodeId, ReceivedValue, ValueMap


@dataclass(frozen=True)
class SimulationConfig:
    """Tuning knobs shared by the simulation engines.

    Attributes
    ----------
    max_rounds:
        Maximum number of iterations to execute.
    tolerance:
        Convergence is declared when ``U[t] − µ[t] ≤ tolerance``.
    record_history:
        Whether to keep the full per-round trace in memory.
    strict_validity:
        When true, a violation of the validity condition raises
        :class:`~repro.exceptions.ValidityViolationError` immediately instead
        of merely being reported in the outcome.  The paper's algorithms never
        violate validity, so strict mode is a bug trap (and is exercised by
        negative tests with the non-fault-tolerant baselines).
    stop_on_convergence:
        When true (default), the run stops as soon as the spread reaches the
        tolerance; otherwise it always executes ``max_rounds`` iterations
        (useful for convergence-rate measurements over a fixed horizon).
    """

    max_rounds: int = 500
    tolerance: float = 1e-7
    record_history: bool = True
    strict_validity: bool = False
    stop_on_convergence: bool = True

    def __post_init__(self) -> None:
        if self.max_rounds < 0:
            raise InvalidParameterError(
                f"max_rounds must be >= 0, got {self.max_rounds}"
            )
        if self.tolerance < 0:
            raise InvalidParameterError(
                f"tolerance must be >= 0, got {self.tolerance}"
            )


class SynchronousEngine:
    """Round-based executor of an iterative consensus algorithm.

    Parameters
    ----------
    graph:
        The communication graph ``G(V, E)``.
    rule:
        The update rule ``Z_i`` applied by every fault-free node.
    faulty:
        The set of Byzantine nodes (``|F| ≤ rule.f`` is enforced).
    adversary:
        Behaviour of the faulty nodes; defaults to
        :class:`~repro.adversary.base.PassiveStrategy` (faulty nodes follow
        the protocol), which is the correct control when ``faulty`` is empty.
    config:
        Engine configuration; see :class:`SimulationConfig`.
    schedule:
        Optional :class:`~repro.simulation.dynamic.TopologySchedule`.  A down
        (or asleep-sender) edge contributes the receiver's own previous value
        in place of the message (self-substitution), and an asleep receiver
        skips its update while staying visible on its out-edges; see
        :mod:`repro.simulation.dynamic` for the full semantics.
    """

    def __init__(
        self,
        graph: Digraph,
        rule: UpdateRule,
        faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
        adversary: ByzantineStrategy | None = None,
        config: SimulationConfig | None = None,
        schedule: TopologySchedule | None = None,
    ) -> None:
        self._graph = graph
        self._rule = rule
        self._faulty = frozenset(faulty)
        self._adversary = adversary if adversary is not None else PassiveStrategy()
        self._config = config if config is not None else SimulationConfig()
        self._schedule = schedule
        self._sched_layout = (
            ScheduleLayout.for_graph(graph) if schedule is not None else None
        )

        unknown = self._faulty - graph.nodes
        if unknown:
            raise InvalidParameterError(
                f"faulty nodes {sorted(unknown, key=repr)!r} are not in the graph"
            )
        fault_free = graph.nodes - self._faulty
        if not fault_free:
            # Checked before the fault budget: an all-faulty system is a
            # malformed configuration regardless of how large ``f`` is.
            raise InvalidParameterError("at least one node must be fault-free")
        if len(self._faulty) > rule.f:
            raise FaultBudgetExceededError(len(self._faulty), rule.f)
        # The structural precondition only needs to hold at fault-free nodes:
        # faulty nodes never run the rule.
        rule.validate_graph(graph, nodes=sorted(fault_free, key=repr))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Digraph:
        """The communication graph."""
        return self._graph

    @property
    def rule(self) -> UpdateRule:
        """The update rule driving fault-free nodes."""
        return self._rule

    @property
    def faulty(self) -> frozenset[NodeId]:
        """The Byzantine node set ``F``."""
        return self._faulty

    @property
    def fault_free(self) -> frozenset[NodeId]:
        """The fault-free node set ``V − F``."""
        return self._graph.nodes - self._faulty

    @property
    def config(self) -> SimulationConfig:
        """The engine configuration."""
        return self._config

    @property
    def schedule(self) -> TopologySchedule | None:
        """The topology schedule, or ``None`` for a static run."""
        return self._schedule

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, state: dict[NodeId, float], round_index: int) -> dict[NodeId, float]:
        """Execute one iteration and return the new state of every node.

        ``state`` maps every node to ``v[round_index − 1]``.  Faulty nodes'
        entries in the returned mapping are their *nominal* values as reported
        by the adversary strategy (recorded for tracing only).
        """
        graph = self._graph
        # Resolve this round's topology masks up front.  The adversary below
        # is still interrogated for every channel regardless of the masks, so
        # RNG-backed strategies consume the exact same draws as in a static
        # run (masking is applied downstream of the strategy).
        edge_up_of: dict[tuple[NodeId, NodeId], bool] | None = None
        awake_of: dict[NodeId, bool] | None = None
        if self._schedule is not None:
            activity = resolve_activity(
                self._schedule, round_index, self._sched_layout
            )
            if activity.edge_up is not None:
                edge_up_of = dict(
                    zip(self._sched_layout.edges, activity.edge_up.tolist())
                )
            if activity.awake is not None:
                awake_of = dict(
                    zip(self._sched_layout.node_order, activity.awake.tolist())
                )
        context = AdversaryContext(
            graph=graph,
            round_index=round_index,
            values=dict(state),
            faulty=self._faulty,
            f=self._rule.f,
        )
        # What each faulty node places on each of its outgoing edges.  The
        # RNG-stream contract extends to the adversary layer: strategies are
        # interrogated in canonical (repr-sorted) sender order, so RNG-backed
        # strategies consume draws reproducibly across processes and engines.
        faulty_messages: dict[NodeId, dict[NodeId, float]] = {}
        for node in sorted(self._faulty, key=repr):
            outgoing = self._adversary.outgoing_values(node, context)
            missing = graph.out_neighbors(node) - outgoing.keys()
            if missing:
                raise SimulationError(
                    f"adversary strategy {self._adversary.name!r} did not provide "
                    f"values for edges {sorted(missing, key=repr)!r} out of faulty "
                    f"node {node!r}; the synchronous model has no omissions"
                )
            # Canonical insertion order for the normalised copy; consumers
            # index by key, so sorting here is behaviour-neutral.
            faulty_messages[node] = {
                target: float(value)
                for target, value in sorted(
                    outgoing.items(), key=lambda item: repr(item[0])
                )
            }

        new_state: dict[NodeId, float] = {}
        for node in graph.nodes:
            if node in self._faulty:
                # Sleep masks a faulty node's channels, not its nominal trace
                # label: the adversary's reported value is recorded as-is.
                new_state[node] = float(
                    self._adversary.nominal_value(node, context)
                )
                continue
            if awake_of is not None and not awake_of[node]:
                # Asleep receiver: skip the update, keep the frozen state
                # (still visible on out-edges via ``state`` next round).
                new_state[node] = state[node]
                continue
            received = []
            for sender in sorted(graph.in_neighbors(node), key=repr):
                channel_up = (
                    edge_up_of is None or edge_up_of[(sender, node)]
                ) and (awake_of is None or awake_of[sender])
                if not channel_up:
                    # Down edge or asleep sender: the dead slot carries the
                    # receiver's own previous value (self-substitution).
                    value = state[node]
                elif sender in self._faulty:
                    value = faulty_messages[sender][node]
                else:
                    value = state[sender]
                received.append(ReceivedValue(sender=sender, value=value))
            new_state[node] = float(
                self._rule.compute(node, state[node], received)
            )
        return new_state

    def run(self, inputs: ValueMap) -> ConsensusOutcome:
        """Run the algorithm from ``inputs`` until convergence or ``max_rounds``.

        ``inputs`` must provide an initial value for every node (faulty nodes'
        inputs only matter as the adversary's starting nominal state).
        """
        graph = self._graph
        missing = graph.nodes - inputs.keys()
        if missing:
            raise InvalidParameterError(
                f"inputs missing for nodes {sorted(missing, key=repr)!r}"
            )
        config = self._config
        state: dict[NodeId, float] = {
            node: float(inputs[node]) for node in graph.nodes
        }

        trace = ExecutionTrace(faulty=self._faulty)
        # Under a schedule the participation-aware tracker additionally
        # checks that asleep nodes hold their frozen value exactly; on a
        # static run it degenerates to the plain hull tracker.
        ff_sorted = sorted(graph.nodes - self._faulty, key=repr)
        participation: ParticipationValidityTracker | None = None
        if self._schedule is not None:
            participation = ParticipationValidityTracker()
            participation.observe([state[node] for node in ff_sorted])
        validity = ValidityTracker()
        low, high = fault_free_extremes(state, self._faulty)
        validity.observe(low, high)
        initial_spread = high - low
        if config.record_history:
            trace.record_round(0, state)

        rounds_executed = 0
        converged = initial_spread <= config.tolerance and config.stop_on_convergence
        current_spread = initial_spread
        for round_index in range(1, config.max_rounds + 1):
            if converged:
                break
            state = self.step(state, round_index)
            rounds_executed = round_index
            low, high = fault_free_extremes(state, self._faulty)
            validity.observe(low, high)
            if participation is not None:
                # ``activity`` is a pure function of the round, so re-querying
                # here returns the exact mask ``step`` just applied.
                activity = resolve_activity(
                    self._schedule, round_index, self._sched_layout
                )
                awake = None
                if activity.awake is not None:
                    awake_of = dict(
                        zip(self._sched_layout.node_order, activity.awake.tolist())
                    )
                    awake = [awake_of[node] for node in ff_sorted]
                participation.observe(
                    [state[node] for node in ff_sorted], awake=awake
                )
            if config.strict_validity and not validity.ok:
                raise ValidityViolationError(
                    f"validity violated at round {round_index}: the fault-free "
                    f"interval expanded to [{low}, {high}]"
                )
            if config.record_history:
                trace.record_round(round_index, state)
            current_spread = high - low
            if config.stop_on_convergence and current_spread <= config.tolerance:
                converged = True

        if not config.stop_on_convergence:
            converged = current_spread <= config.tolerance
        final_values = {
            node: state[node] for node in graph.nodes if node not in self._faulty
        }
        validity_ok = validity.ok
        if participation is not None:
            validity_ok = validity_ok and participation.ok
        return ConsensusOutcome(
            converged=converged,
            rounds_executed=rounds_executed,
            final_spread=current_spread,
            initial_spread=initial_spread,
            validity_ok=validity_ok,
            final_values=final_values,
            history=trace.as_records() if config.record_history else tuple(),
        )


def run_synchronous(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: ByzantineStrategy | None = None,
    max_rounds: int = 500,
    tolerance: float = 1e-7,
    record_history: bool = True,
    strict_validity: bool = False,
    stop_on_convergence: bool = True,
    schedule: TopologySchedule | None = None,
) -> ConsensusOutcome:
    """Functional wrapper around :class:`SynchronousEngine`.

    Convenient for one-off runs in examples and tests; the class interface is
    preferable when stepping manually or reusing the engine across inputs.
    """
    config = SimulationConfig(
        max_rounds=max_rounds,
        tolerance=tolerance,
        record_history=record_history,
        strict_validity=strict_validity,
        stop_on_convergence=stop_on_convergence,
    )
    engine = SynchronousEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=adversary,
        config=config,
        schedule=schedule,
    )
    return engine.run(inputs)
