"""CSR-based sparse message-plane engine for large-``n`` simulation.

The dense :class:`~repro.simulation.vectorized.VectorizedEngine` gathers one
``(B, n_g, d)`` block per in-degree group straight from the state matrix —
one fancy gather and one adversary scatter *per group*.  That is fine at the
paper's ``n ≈ 200`` scales but leaves throughput and memory on the table for
the ``n = 10^4 … 10^6`` overlays the roadmap targets, where real topologies
are sparse and degree-heterogeneous (dozens of distinct in-degrees, hence
dozens of per-round gathers).

:class:`SparseEngine` re-expresses the round as flat segment arithmetic over
a compressed-sparse-row message plane:

* **CSR neighbour lists** are built once from the digraph: ``csr_indptr`` /
  ``csr_indices`` hold every fault-free receiver's in-neighbour columns in
  the repr-sorted canonical order (receiver-major, senders sorted by
  ``repr`` within a receiver — exactly the scalar engine's tie-break and the
  batch adversary layer's canonical channel order).
* Each round performs **one** gather ``plane = state[:, plane_indices]``
  into a flat ``(B, nnz)`` message plane whose receiver segments are laid
  out *bucket-major* (receivers grouped by exact in-degree, canonical order
  within a bucket).  Every degree bucket is therefore a contiguous slab that
  reshapes to a ``(B, m_d, d)`` view for free — no per-group fancy gathers.
* Byzantine channel values are scattered once into precomputed flat plane
  positions, then each slab is sorted **in place** and trimmed via the
  contiguous ``[f : d − f]`` slice.
* The equal-weight average prepends the receiver's own value and reduces
  with ``cumsum`` along the segment, reproducing the scalar engine's
  left-to-right floating-point summation order bit for bit.
  (``np.add.reduceat`` was evaluated for the segment sums and rejected: its
  unrolled/pairwise accumulation is **not** sequential, so it is not
  bit-exact with the scalar reference — see ``docs/architecture.md``.)
* ``dtype=np.float32`` opts into a half-memory state plane.  Float32 runs
  are not bit-identical to float64 runs, but they keep the paper's hull
  invariants *exactly*: the float32 trimmed-mean reduction is clamped into
  the local trim hull ``[min(own ∪ survivors), max(own ∪ survivors)]`` — a
  mathematical no-op that removes the one rounding path which could push a
  value out of the fault-free hull.  The contract is documented in
  ``docs/performance.md``.
* ``max_plane_bytes`` tiles the batch: one round streams the ``B`` rows in
  tiles small enough that the plane working set respects the budget, so a
  single box can simulate ``10^5``-plus-node networks at large ``B``.
  Tiling happens *inside* :meth:`SparseEngine.step_matrix` — the adversary
  still sees the full batch once per round, so the RNG-stream contract and
  every :class:`~repro.adversary.vectorized.BatchStrategy` behave exactly as
  in the untiled run.

At float64 the engine is bit-for-bit identical to the dense engine (and
therefore to the scalar reference) — enforced by
:func:`sparse_cross_check_engines`, the three-way parity matrix in
``tests/test_engine_parity.py`` and the randomized differential fuzz suite
in ``tests/test_sparse_fuzz.py``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.adversary.base import ByzantineStrategy
from repro.adversary.vectorized import BatchStrategy
from repro.algorithms.base import UpdateRule
from repro.exceptions import (
    InvalidParameterError,
    SimulationError,
)
from repro.graphs.digraph import Digraph
from repro.simulation.dynamic import ScheduleLayout, TopologySchedule
from repro.simulation.engine import SimulationConfig
from repro.simulation.vectorized import (
    EquivalenceReport,
    VectorizedEngine,
    _divergence_report,
)
from repro.types import ConsensusOutcome, NodeId, ValueMap

#: State dtypes the sparse engine accepts.  float64 is the bit-exact default;
#: float32 trades bit-parity for half the plane memory under the documented
#: tolerance contract (hull invariants still hold exactly).
# reprolint: disable=EXA003 -- this IS the documented dtype= plumbing (docs/architecture.md, float32 tier)
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


@dataclass(frozen=True)
class _DegreeBucket:
    """One contiguous plane slab: all fault-free receivers of one in-degree.

    ``columns`` are the receivers' state columns (canonical order), and
    ``plane_start``/``plane_stop`` bound the slab inside the flat message
    plane, which reshapes to a ``(B, len(columns), degree)`` view for free.
    """

    degree: int
    columns: np.ndarray
    plane_start: int
    plane_stop: int


class SparseEngine(VectorizedEngine):
    """CSR message-plane executor of Algorithm 1 for large sparse graphs.

    Parameters
    ----------
    graph, rule, faulty, adversary, config:
        As for :class:`~repro.simulation.vectorized.VectorizedEngine`; the
        same trimmed update rules are supported and the same
        :class:`~repro.adversary.vectorized.BatchStrategy` adversaries plug
        in unchanged (the canonical channel order is identical).
    dtype:
        ``np.float64`` (default) for bit-exact parity with the dense and
        scalar engines, or ``np.float32`` for half-memory state under the
        documented tolerance contract.
    max_plane_bytes:
        Optional soft budget (in bytes) for the per-round plane working set.
        When the full batch would exceed it, :meth:`step_matrix` processes
        the batch in row tiles of :meth:`plane_tile_rows` rows each;
        results are bit-identical to the untiled run.  ``None`` disables
        tiling.  A single row's working set is the floor — one row is
        always processed at a time even if it alone exceeds the budget.
    """

    def __init__(
        self,
        graph: Digraph,
        rule: UpdateRule,
        faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
        adversary: BatchStrategy | ByzantineStrategy | None = None,
        config: SimulationConfig | None = None,
        schedule: TopologySchedule | None = None,
        *,
        dtype: np.dtype | type = np.float64,
        max_plane_bytes: int | None = None,
    ) -> None:
        requested = np.dtype(dtype)
        if requested not in SUPPORTED_DTYPES:
            raise InvalidParameterError(
                f"SparseEngine dtype must be one of "
                f"{tuple(str(d) for d in SUPPORTED_DTYPES)}, got {requested}"
            )
        if max_plane_bytes is not None and int(max_plane_bytes) < 1:
            raise InvalidParameterError(
                f"max_plane_bytes must be a positive byte budget or None, "
                f"got {max_plane_bytes!r}"
            )
        self._dtype = requested
        self._max_plane_bytes = (
            int(max_plane_bytes) if max_plane_bytes is not None else None
        )
        super().__init__(
            graph,
            rule,
            faulty=faulty,
            adversary=adversary,
            config=config,
            schedule=schedule,
        )

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_index_arrays(self) -> None:
        """Build the CSR lists, the bucket-major plane layout and the flat
        channel scatter positions.

        Two layouts coexist:

        * the **canonical CSR** (:attr:`csr_indptr` / :attr:`csr_indices`)
          keeps receivers in repr-sorted order — it defines the canonical
          channel order shared with the batch adversary layer and is the
          stable public view;
        * the **plane layout** permutes receiver segments bucket-major
          (grouped by exact in-degree) so each bucket is one contiguous
          slab; ``_plane_indices`` is the single per-round gather and
          ``_edge_plane_pos`` maps canonical channel ``j`` to its flat
          plane position.
        """
        graph = self._graph
        self._build_node_columns()

        indptr = [0]
        indices: list[int] = []
        edge_nodes: list[tuple[NodeId, NodeId]] = []
        edge_receiver: list[int] = []  # ff-receiver index of channel j
        edge_slot: list[int] = []  # sender slot within the receiver segment
        for ff_index, column in enumerate(self._ff_cols):
            receiver = self._nodes[column]
            senders = sorted(graph.in_neighbors(receiver), key=repr)
            for slot, sender in enumerate(senders):
                indices.append(self._column[sender])
                if sender in self._faulty:
                    edge_nodes.append((sender, receiver))
                    edge_receiver.append(ff_index)
                    edge_slot.append(slot)
            indptr.append(indptr[-1] + len(senders))

        self._csr_indptr = np.array(indptr, dtype=np.int64)
        self._csr_indices = np.array(indices, dtype=np.int64)
        self._edge_nodes = tuple(edge_nodes)
        self._edge_src_cols = np.array(
            [self._column[s] for s, _t in edge_nodes], dtype=int
        )
        self._edge_dst_cols = np.array(
            [self._column[t] for _s, t in edge_nodes], dtype=int
        )

        # Bucket-major plane layout: stable-sort fault-free receivers by
        # exact in-degree, concatenate their CSR segments.
        degrees = np.diff(self._csr_indptr)
        by_degree: dict[int, list[int]] = {}
        for ff_index, degree in enumerate(degrees):
            by_degree.setdefault(int(degree), []).append(ff_index)

        plane_chunks: list[np.ndarray] = []
        segment_start = np.zeros(len(self._ff_cols), dtype=np.int64)
        buckets: list[_DegreeBucket] = []
        cursor = 0
        for degree in sorted(by_degree):
            members = by_degree[degree]
            start = cursor
            for ff_index in members:
                segment_start[ff_index] = cursor
                lo = self._csr_indptr[ff_index]
                hi = self._csr_indptr[ff_index + 1]
                plane_chunks.append(self._csr_indices[lo:hi])
                cursor += degree
            buckets.append(
                _DegreeBucket(
                    degree=degree,
                    columns=self._ff_cols[np.array(members, dtype=int)],
                    plane_start=start,
                    plane_stop=cursor,
                )
            )
        self._buckets = tuple(buckets)
        self._plane_indices = (
            np.concatenate(plane_chunks)
            if plane_chunks
            else np.empty(0, dtype=np.int64)
        )
        self._edge_plane_pos = (
            segment_start[np.array(edge_receiver, dtype=int)]
            + np.array(edge_slot, dtype=np.int64)
            if edge_nodes
            else np.empty(0, dtype=np.int64)
        )

        # Per-row working-set estimate for the tiling budget: the flat plane
        # plus the largest bucket's own+survivors block and its cumsum
        # output (the two big per-bucket temporaries).
        f = self._rule.f
        max_trim_block = max(
            (
                bucket.columns.size * (max(bucket.degree - 2 * f, 0) + 1)
                for bucket in self._buckets
            ),
            default=0,
        )
        self._plane_row_elements = self._plane_indices.size + 2 * max_trim_block

    def _build_schedule_arrays(self) -> None:
        """Precompute plane-order translations of schedule masks.

        Overrides the dense variant (the sparse engine has no degree
        groups): ``_plane_edge_pos`` maps every flat plane slot to its
        canonical directed-edge position and ``_plane_recv_cols`` to its
        receiver's state column, so a round's ``(E,)`` edge mask becomes a
        flat list of down plane slots plus their self-substitution sources.
        """
        layout = ScheduleLayout.for_graph(self._graph)
        self._sched_layout = layout
        self._chan_edge_pos = np.array(
            [layout.edge_index[edge] for edge in self._edge_nodes], dtype=int
        )
        plane_edge_pos: list[int] = []
        plane_recv_cols: list[int] = []
        for bucket in self._buckets:
            for column in bucket.columns:
                receiver = self._nodes[int(column)]
                senders = sorted(self._graph.in_neighbors(receiver), key=repr)
                plane_edge_pos.extend(
                    layout.edge_index[(sender, receiver)] for sender in senders
                )
                plane_recv_cols.extend([int(column)] * len(senders))
        self._plane_edge_pos = np.array(plane_edge_pos, dtype=np.int64)
        self._plane_recv_cols = np.array(plane_recv_cols, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """State dtype of the engine (``float64`` default, ``float32`` tier)."""
        return self._dtype

    @property
    def max_plane_bytes(self) -> int | None:
        """The plane working-set budget in bytes (``None`` = untiled)."""
        return self._max_plane_bytes

    @property
    def csr_indptr(self) -> np.ndarray:
        """CSR row pointer: fault-free receivers in canonical (repr) order."""
        return self._csr_indptr

    @property
    def csr_indices(self) -> np.ndarray:
        """CSR column indices: sender state columns, repr-sorted per receiver."""
        return self._csr_indices

    @property
    def nnz(self) -> int:
        """Number of fault-free-receiver message slots (plane width)."""
        return int(self._csr_indices.size)

    @property
    def plane_bytes_per_row(self) -> int:
        """Estimated plane working-set bytes for one batch row."""
        return int(self._plane_row_elements) * self._dtype.itemsize

    def plane_tile_rows(self, batch: int) -> int:
        """Return how many batch rows one kernel tile processes.

        Without a budget the whole batch is one tile.  With a budget the
        tile is the largest row count whose estimated plane working set
        (:attr:`plane_bytes_per_row` per row) fits ``max_plane_bytes``,
        floored at one row.
        """
        if batch < 1:
            raise InvalidParameterError(f"batch must be >= 1, got {batch}")
        if self._max_plane_bytes is None:
            return batch
        per_row = max(self.plane_bytes_per_row, 1)
        return max(1, min(batch, self._max_plane_bytes // per_row))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step_matrix(self, state: np.ndarray, round_index: int) -> np.ndarray:
        """Execute one iteration on a ``(B, n)`` state matrix.

        Semantics are identical to
        :meth:`~repro.simulation.vectorized.VectorizedEngine.step_matrix`
        (bit-for-bit at float64): the adversary fills every faulty →
        fault-free channel once for the full batch, then the sparse kernel
        streams the rows in plane tiles.
        """
        state = np.asarray(state, dtype=self._dtype)
        if state.ndim != 2 or state.shape[1] != len(self._nodes):
            raise InvalidParameterError(
                f"state matrix must have shape (B, {len(self._nodes)}), "
                f"got {state.shape}"
            )
        batch = state.shape[0]

        # Masks are resolved once per round (before tiling) exactly like the
        # adversary: every tile sees the same round activity, and the
        # adversary's draws stay mask-independent.
        activity = self._round_activity(round_index)

        context = None
        channel_values: np.ndarray | None = None
        if self._faulty_cols.size:
            context = self._context(
                state, round_index, active_edge_mask=self._channel_mask(activity)
            )
            channel_values = np.asarray(
                self._adversary.edge_values(context), dtype=self._dtype
            )
            expected = (batch, len(self._edge_nodes))
            if channel_values.shape != expected:
                raise SimulationError(
                    f"batch adversary {self._adversary.name!r} returned edge "
                    f"values of shape {channel_values.shape}; expected {expected}"
                )

        down_slots: np.ndarray | None = None
        down_recv: np.ndarray | None = None
        if activity is not None:
            up = np.ones(self._plane_indices.shape, dtype=bool)
            if activity.edge_up is not None:
                up &= activity.edge_up[self._plane_edge_pos]
            if activity.awake is not None:
                up &= activity.awake[self._plane_indices]
            if not up.all():
                down_slots = np.flatnonzero(~up)
                down_recv = self._plane_recv_cols[down_slots]

        new_state = np.array(state)
        tile = self.plane_tile_rows(batch)
        for start in range(0, batch, tile):
            stop = min(start + tile, batch)
            self._step_tile(
                state[start:stop],
                None if channel_values is None else channel_values[start:stop],
                new_state[start:stop],
                down_slots=down_slots,
                down_recv=down_recv,
            )

        if activity is not None and activity.awake is not None:
            ff = self._ff_cols
            new_state[:, ff] = np.where(
                activity.awake[ff][None, :], new_state[:, ff], state[:, ff]
            )

        if self._faulty_cols.size:
            assert context is not None
            nominal = np.asarray(
                self._adversary.nominal_values(context), dtype=self._dtype
            )
            expected = (batch, self._faulty_cols.shape[0])
            if nominal.shape != expected:
                raise SimulationError(
                    f"batch adversary {self._adversary.name!r} returned nominal "
                    f"values of shape {nominal.shape}; expected {expected}"
                )
            new_state[:, self._faulty_cols] = nominal
        return new_state

    def _step_tile(
        self,
        state_tile: np.ndarray,
        channel_tile: np.ndarray | None,
        out_tile: np.ndarray,
        down_slots: np.ndarray | None = None,
        down_recv: np.ndarray | None = None,
    ) -> None:
        """Run the sparse kernel on one row tile, writing fault-free columns
        of ``out_tile`` in place (``out_tile`` is a view of the round's new
        state matrix).

        ``down_slots``/``down_recv`` describe this round's masked plane
        slots: each down slot is overwritten with its receiver's own
        previous value (self-substitution), after the adversary scatter so
        down faulty channels are substituted too — the same order the dense
        kernel applies.
        """
        f = self._rule.f
        # reprolint: disable=EXA003 -- float32 clamp gate of the documented dtype= plumbing
        clamp32 = self._dtype == np.dtype(np.float32)
        plane = state_tile[:, self._plane_indices]
        if channel_tile is not None and self._edge_plane_pos.size:
            plane[:, self._edge_plane_pos] = channel_tile
        if down_slots is not None:
            plane[:, down_slots] = state_tile[:, down_recv]
        rows = state_tile.shape[0]
        for bucket in self._buckets:
            d = bucket.degree
            block = plane[:, bucket.plane_start : bucket.plane_stop].reshape(
                rows, bucket.columns.size, d
            )
            block.sort(axis=-1)
            own = state_tile[:, bucket.columns]
            survivors = block[:, :, f : d - f]
            if self._mode == "mean":
                full = np.concatenate([own[:, :, None], survivors], axis=2)
                totals = np.cumsum(full, axis=2)[:, :, -1]
                values = totals / float(full.shape[2])
                if clamp32:
                    # Mathematically a no-op (the mean of points lies in
                    # their hull); at float32 it removes the rounding path
                    # that could push a value one ulp outside the local trim
                    # hull, keeping the paper's validity invariant exact.
                    if survivors.shape[2]:
                        lows = np.minimum(own, survivors[:, :, 0])
                        highs = np.maximum(own, survivors[:, :, -1])
                    else:
                        lows = highs = own
                    np.clip(values, lows, highs, out=values)
            else:  # midpoint
                mins = np.minimum(own, survivors.min(axis=2, initial=np.inf))
                maxs = np.maximum(own, survivors.max(axis=2, initial=-np.inf))
                values = (mins + maxs) / 2.0
            out_tile[:, bucket.columns] = values


def sparse_cross_check_engines(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: BatchStrategy | ByzantineStrategy | None = None,
    config: SimulationConfig | None = None,
    rounds: int | None = None,
    schedule: TopologySchedule | None = None,
) -> EquivalenceReport:
    """Run the dense and sparse engines round-for-round and compare states.

    Mirrors :func:`~repro.simulation.vectorized.cross_check_engines` but
    pins the *sparse* engine (at float64) to the dense engine instead of the
    dense engine to the scalar one; chaining the two checks pins all three.
    Both engines receive deep copies of ``adversary`` so stateful or
    RNG-backed strategies (scalar or batch-native) start from identical
    state and consume their draws independently.
    """
    chosen_config = config if config is not None else SimulationConfig()
    total_rounds = rounds if rounds is not None else chosen_config.max_rounds

    dense = VectorizedEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=copy.deepcopy(adversary) if adversary is not None else None,
        config=chosen_config,
        schedule=copy.deepcopy(schedule) if schedule is not None else None,
    )
    sparse = SparseEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=copy.deepcopy(adversary) if adversary is not None else None,
        config=chosen_config,
        schedule=copy.deepcopy(schedule) if schedule is not None else None,
    )

    dense_state = dense.pack_inputs(inputs)
    sparse_state = sparse.pack_inputs(inputs)

    def stepped_pairs() -> Iterator[tuple[int, float, float]]:
        nonlocal dense_state, sparse_state
        for round_index in range(1, total_rounds + 1):
            dense_state = dense.step_matrix(dense_state, round_index)
            sparse_state = sparse.step_matrix(sparse_state, round_index)
            for column in range(len(dense.nodes)):
                yield (
                    round_index,
                    float(dense_state[0, column]),
                    float(sparse_state[0, column]),
                )

    return _divergence_report(total_rounds, stepped_pairs())


def run_sparse(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: BatchStrategy | ByzantineStrategy | None = None,
    max_rounds: int = 500,
    tolerance: float = 1e-7,
    record_history: bool = True,
    strict_validity: bool = False,
    stop_on_convergence: bool = True,
    dtype: np.dtype | type = np.float64,
    max_plane_bytes: int | None = None,
    cross_check: bool = False,
    cross_check_rounds: int = 25,
    schedule: TopologySchedule | None = None,
) -> ConsensusOutcome:
    """Functional wrapper around :class:`SparseEngine`, mirroring
    :func:`~repro.simulation.vectorized.run_vectorized`.

    With ``cross_check=True`` the run is preceded by a
    :func:`sparse_cross_check_engines` pass over ``cross_check_rounds``
    rounds pinning the sparse kernel to the dense engine; any divergence
    raises :class:`~repro.exceptions.SimulationError`.  The cross-check
    always runs at float64 — that is the tier where bit-parity is the
    contract — regardless of the requested ``dtype``.
    """
    config = SimulationConfig(
        max_rounds=max_rounds,
        tolerance=tolerance,
        record_history=record_history,
        strict_validity=strict_validity,
        stop_on_convergence=stop_on_convergence,
    )
    if cross_check:
        report = sparse_cross_check_engines(
            graph=graph,
            rule=rule,
            inputs=inputs,
            faulty=faulty,
            adversary=adversary,
            config=config,
            rounds=min(cross_check_rounds, max_rounds),
            schedule=schedule,
        )
        if not report.identical:
            raise SimulationError(
                "sparse engine diverged from the dense engine at round "
                f"{report.first_divergence_round} (max abs difference "
                f"{report.max_abs_difference:.3e})"
            )
        adversary = copy.deepcopy(adversary) if adversary is not None else None
    engine = SparseEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=adversary,
        config=config,
        schedule=schedule,
        dtype=dtype,
        max_plane_bytes=max_plane_bytes,
    )
    return engine.run(inputs)
