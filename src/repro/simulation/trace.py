"""Execution traces: the full per-round history of a consensus run.

A trace is a sequence of :class:`~repro.types.RoundRecord` objects (round 0 is
the initial state).  Traces power the convergence-rate analysis (experiment
E7), plotting in the examples, and the regression tests that compare measured
contraction against the Lemma-5 bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.simulation.metrics import fault_free_extremes
from repro.types import NodeId, RoundRecord


@dataclass
class ExecutionTrace:
    """Mutable collection of per-round records for one consensus execution."""

    faulty: frozenset[NodeId] = frozenset()
    records: list[RoundRecord] = field(default_factory=list)

    def record_round(self, round_index: int, values: Mapping[NodeId, float]) -> RoundRecord:
        """Append the state at the end of ``round_index`` and return the record."""
        if self.records and round_index != self.records[-1].round_index + 1:
            raise InvalidParameterError(
                f"round {round_index} recorded out of order; expected "
                f"{self.records[-1].round_index + 1}"
            )
        low, high = fault_free_extremes(values, self.faulty)
        record = RoundRecord(
            round_index=round_index,
            values=dict(values),
            fault_free_max=high,
            fault_free_min=low,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self.records[index]

    @property
    def rounds(self) -> int:
        """Number of executed iterations (excluding the initial round 0)."""
        return max(0, len(self.records) - 1)

    def spreads(self) -> np.ndarray:
        """Return the array of fault-free spreads ``U[t] − µ[t]`` per round."""
        return np.array([record.spread for record in self.records], dtype=float)

    def maxima(self) -> np.ndarray:
        """Return the array of ``U[t]`` per round."""
        return np.array([record.fault_free_max for record in self.records], dtype=float)

    def minima(self) -> np.ndarray:
        """Return the array of ``µ[t]`` per round."""
        return np.array([record.fault_free_min for record in self.records], dtype=float)

    def node_series(self, node: NodeId) -> np.ndarray:
        """Return the state trajectory of a single node across all rounds."""
        try:
            return np.array(
                [record.values[node] for record in self.records], dtype=float
            )
        except KeyError as error:
            raise InvalidParameterError(
                f"node {node!r} does not appear in the trace"
            ) from error

    def fault_free_values(self, round_index: int) -> dict[NodeId, float]:
        """Return fault-free node states at a given round."""
        record = self.records[round_index]
        return {
            node: value
            for node, value in sorted(
                record.values.items(), key=lambda item: repr(item[0])
            )
            if node not in self.faulty
        }

    def as_records(self) -> tuple[RoundRecord, ...]:
        """Return an immutable snapshot of the trace."""
        return tuple(self.records)

    # ------------------------------------------------------------------
    # Serialisation for reports
    # ------------------------------------------------------------------
    def summary_rows(self, every: int = 1) -> list[dict[str, float]]:
        """Return a list of ``{round, min, max, spread}`` rows for reporting.

        ``every`` subsamples the trace (e.g. ``every=10`` keeps rounds
        0, 10, 20, …, always including the final round).
        """
        if every < 1:
            raise InvalidParameterError(f"every must be >= 1, got {every}")
        rows = []
        for record in self.records:
            if record.round_index % every == 0 or record is self.records[-1]:
                rows.append(
                    {
                        "round": float(record.round_index),
                        "min": record.fault_free_min,
                        "max": record.fault_free_max,
                        "spread": record.spread,
                    }
                )
        return rows


def spreads_from_records(records: Sequence[RoundRecord]) -> np.ndarray:
    """Return the spread series from a sequence of round records."""
    return np.array([record.spread for record in records], dtype=float)
