"""NumPy-vectorized synchronous engine and batched Monte-Carlo runner.

:class:`~repro.simulation.engine.SynchronousEngine` walks Python dicts one
node at a time, which is faithful but slow for the Monte-Carlo sweeps the
experiment drivers run.  This module re-expresses one round of Algorithm 1 as
batched array operations:

* the states of **all** nodes live in a single ``(B, n)`` float matrix
  covering ``B`` independent executions (different inputs and adversary
  draws) of the **same** ``(graph, rule, faulty)`` configuration;
* per-node incoming-edge index arrays are precomputed once from the
  :class:`~repro.graphs.digraph.Digraph`, so a round is a gather →
  adversary-scatter → sort → trim → cumulative-sum pipeline with no
  per-node Python;
* the trimmed-mean reduction preserves the scalar engine's exact
  floating-point summation order (own value first, then survivors in sorted
  order, accumulated left to right via ``cumsum``), so a vectorized execution
  is **bit-for-bit identical** to the scalar one — enforced by
  :func:`cross_check_engines` and the property tests.

The speedup is the point: the transition-matrix view of the update (the
Lemma 5 machinery in :mod:`repro.analysis.markov`) says a round is a gather
plus a row-stochastic reduction, and that is exactly what the arrays do.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.adversary.base import ByzantineStrategy
from repro.adversary.vectorized import (
    BatchAdversaryContext,
    BatchStrategy,
    as_batch_strategy,
)
from repro.algorithms.base import UpdateRule
from repro.algorithms.trimmed_mean import TrimmedMeanRule, TrimmedMidpointRule
from repro.exceptions import (
    FaultBudgetExceededError,
    InvalidParameterError,
    SimulationError,
    ValidityViolationError,
)
from repro.graphs.digraph import Digraph
from repro.simulation.dynamic import (
    RoundActivity,
    ScheduleLayout,
    TopologySchedule,
    resolve_activity,
)
from repro.simulation.engine import SimulationConfig, SynchronousEngine
from repro.simulation.metrics import VALIDITY_TOLERANCE, ValidityTracker
from repro.simulation.trace import ExecutionTrace
from repro.types import ConsensusOutcome, NodeId, ValueMap


@dataclass(frozen=True)
class _DegreeGroup:
    """Dense per-round work unit: all fault-free nodes of one in-degree.

    ``in_idx`` gathers the ``(B, n_g, degree)`` received block from the state
    matrix; ``edge_index``/``edge_rows``/``edge_slots`` scatter the
    adversary's channel values into it before the sort.
    """

    degree: int
    columns: np.ndarray
    in_idx: np.ndarray
    edge_index: np.ndarray
    edge_rows: np.ndarray
    edge_slots: np.ndarray


@dataclass(frozen=True)
class BatchOutcome:
    """Summary of ``B`` independent consensus executions run as one batch.

    Attributes
    ----------
    nodes:
        Column order of ``final_states`` (nodes sorted by ``repr``).
    faulty:
        The Byzantine node set shared by every execution.
    converged:
        ``(B,)`` bool: whether each execution's fault-free spread reached the
        tolerance within the allotted rounds.
    rounds_executed:
        ``(B,)`` int: iterations executed per row (rows that converge stop
        updating; their count is the round convergence was reached).
    initial_spread / final_spread:
        ``(B,)`` float: ``U[0] − µ[0]`` and the spread at each row's last
        executed round.
    validity_ok:
        ``(B,)`` bool: whether validity (eq. 1) held at every round.
    final_states:
        ``(B, n)`` float: final state of every node (faulty columns hold the
        adversary's nominal values).
    spread_history:
        ``(T + 1, B)`` float array of per-round fault-free spreads when
        history recording was enabled, else ``None``.
    """

    nodes: tuple[NodeId, ...]
    faulty: frozenset[NodeId]
    converged: np.ndarray
    rounds_executed: np.ndarray
    initial_spread: np.ndarray
    final_spread: np.ndarray
    validity_ok: np.ndarray
    final_states: np.ndarray
    spread_history: np.ndarray | None = None

    @property
    def batch_size(self) -> int:
        """Number of executions ``B`` in the batch."""
        return int(self.converged.shape[0])

    @property
    def fraction_converged(self) -> float:
        """Fraction of executions that converged."""
        return float(self.converged.mean())

    @property
    def all_valid(self) -> bool:
        """Whether validity held in every execution."""
        return bool(self.validity_ok.all())

    def mean_rounds_to_convergence(self) -> float:
        """Mean rounds over the converged executions (``nan`` if none)."""
        if not self.converged.any():
            return float("nan")
        return float(self.rounds_executed[self.converged].mean())


class VectorizedEngine:
    """Array-based executor of Algorithm 1 over batches of executions.

    Parameters
    ----------
    graph, rule, faulty, config:
        As for :class:`~repro.simulation.engine.SynchronousEngine`.  Only the
        trimmed update rules of the paper
        (:class:`~repro.algorithms.trimmed_mean.TrimmedMeanRule`,
        :class:`~repro.algorithms.trimmed_mean.TrimmedMidpointRule`) have a
        vectorized kernel; other rules must use the scalar engine.
    adversary:
        A :class:`~repro.adversary.vectorized.BatchStrategy`, or a scalar
        :class:`~repro.adversary.base.ByzantineStrategy` (wrapped in a
        :class:`~repro.adversary.vectorized.ScalarStrategyAdapter`
        automatically), or ``None`` for protocol-following faulty nodes.
    """

    #: Update rules the vectorized kernel implements; everything else must
    #: use the scalar engine.  Callers choosing an engine should go through
    #: :meth:`supports_rule` rather than repeating this list.
    SUPPORTED_RULES: tuple[type, ...] = (TrimmedMeanRule, TrimmedMidpointRule)

    #: State dtype used by :meth:`pack_inputs` / :meth:`step_matrix`.  The
    #: dense engine is float64-only (bit-exactness with the scalar engine is
    #: its contract); :class:`~repro.simulation.sparse.SparseEngine` shadows
    #: this with an instance attribute to offer an opt-in float32 tier.
    _dtype: np.dtype = np.dtype(np.float64)

    @classmethod
    def supports_rule(cls, rule: UpdateRule) -> bool:
        """Return whether this engine has a vectorized kernel for ``rule``."""
        return isinstance(rule, cls.SUPPORTED_RULES)

    def __init__(
        self,
        graph: Digraph,
        rule: UpdateRule,
        faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
        adversary: BatchStrategy | ByzantineStrategy | None = None,
        config: SimulationConfig | None = None,
        schedule: TopologySchedule | None = None,
    ) -> None:
        self._graph = graph
        self._rule = rule
        self._faulty = frozenset(faulty)
        self._adversary = as_batch_strategy(adversary)
        self._config = config if config is not None else SimulationConfig()
        self._schedule = schedule

        if isinstance(rule, TrimmedMeanRule):
            self._mode = "mean"
        elif isinstance(rule, TrimmedMidpointRule):
            self._mode = "midpoint"
        else:
            raise InvalidParameterError(
                f"VectorizedEngine has no kernel for rule {rule.name!r}; "
                "supported rules are TrimmedMeanRule and TrimmedMidpointRule "
                "(use SynchronousEngine for other rules)"
            )

        unknown = self._faulty - graph.nodes
        if unknown:
            raise InvalidParameterError(
                f"faulty nodes {sorted(unknown, key=repr)!r} are not in the graph"
            )
        fault_free = graph.nodes - self._faulty
        if not fault_free:
            raise InvalidParameterError("at least one node must be fault-free")
        if len(self._faulty) > rule.f:
            raise FaultBudgetExceededError(len(self._faulty), rule.f)
        rule.validate_graph(graph, nodes=sorted(fault_free, key=repr))

        self._build_index_arrays()
        if schedule is not None:
            self._build_schedule_arrays()

    def _build_node_columns(self) -> None:
        """Set up the canonical node → column maps shared by every engine.

        Nodes are sorted by ``repr`` (the scalar engine's deterministic
        tie-break) and split into faulty and fault-free column index arrays.
        Both the dense and the sparse engine derive their gather structures
        and the canonical channel order from this layout.
        """
        self._nodes: tuple[NodeId, ...] = tuple(
            sorted(self._graph.nodes, key=repr)
        )
        self._column = {node: index for index, node in enumerate(self._nodes)}
        self._faulty_cols = np.array(
            [i for i, node in enumerate(self._nodes) if node in self._faulty],
            dtype=int,
        )
        self._ff_cols = np.array(
            [i for i, node in enumerate(self._nodes) if node not in self._faulty],
            dtype=int,
        )

    def _build_index_arrays(self) -> None:
        """Precompute the gather/scatter index arrays for one round.

        Fault-free nodes are grouped by exact in-degree so every group works
        on a dense ``(B, n_g, d)`` block with no padding: the trim window is
        a contiguous slice ``[f : d − f]`` and the equal-weight average is a
        single ``cumsum`` whose last column is the left-to-right total —
        reproducing the scalar engine's floating-point summation order
        bit for bit.  Within each node's row, senders are ordered by
        ``repr`` (the scalar engine's deterministic tie-break).
        """
        graph = self._graph
        self._build_node_columns()

        # Canonical channel order (receiver-major, senders by repr within a
        # receiver) shared with BatchAdversaryContext.edge_nodes.
        edge_nodes: list[tuple[NodeId, NodeId]] = []
        by_degree: dict[int, dict[str, list]] = {}
        for column in self._ff_cols:
            receiver = self._nodes[column]
            senders = sorted(graph.in_neighbors(receiver), key=repr)
            group = by_degree.setdefault(
                len(senders),
                {"cols": [], "in_idx": [], "edge_index": [], "rows": [], "slots": []},
            )
            row = len(group["cols"])
            group["cols"].append(column)
            group["in_idx"].append([self._column[s] for s in senders])
            for slot, sender in enumerate(senders):
                if sender in self._faulty:
                    group["edge_index"].append(len(edge_nodes))
                    group["rows"].append(row)
                    group["slots"].append(slot)
                    edge_nodes.append((sender, receiver))

        self._groups = []
        for degree in sorted(by_degree):
            group = by_degree[degree]
            self._groups.append(
                _DegreeGroup(
                    degree=degree,
                    columns=np.array(group["cols"], dtype=int),
                    in_idx=np.array(group["in_idx"], dtype=int).reshape(
                        len(group["cols"]), degree
                    ),
                    edge_index=np.array(group["edge_index"], dtype=int),
                    edge_rows=np.array(group["rows"], dtype=int),
                    edge_slots=np.array(group["slots"], dtype=int),
                )
            )

        self._edge_nodes = tuple(edge_nodes)
        self._edge_src_cols = np.array(
            [self._column[s] for s, _t in edge_nodes], dtype=int
        )
        self._edge_dst_cols = np.array(
            [self._column[t] for _s, t in edge_nodes], dtype=int
        )

    def _build_schedule_arrays(self) -> None:
        """Precompute translations from schedule masks to kernel indices.

        Schedule masks are expressed over the canonical sender-major edge
        order (:class:`~repro.simulation.dynamic.ScheduleLayout`); the dense
        kernel works in degree groups and in the receiver-major faulty
        channel order.  These index arrays translate a ``(E,)`` edge mask
        into per-group ``(n_g, d)`` slot masks and a ``(E_f,)`` channel mask
        once, so per-round masking stays pure fancy indexing.
        """
        layout = ScheduleLayout.for_graph(self._graph)
        self._sched_layout = layout
        self._chan_edge_pos = np.array(
            [layout.edge_index[edge] for edge in self._edge_nodes], dtype=int
        )
        group_edge_pos: list[np.ndarray] = []
        for group in self._groups:
            rows = []
            for column in group.columns:
                receiver = self._nodes[int(column)]
                senders = sorted(self._graph.in_neighbors(receiver), key=repr)
                rows.append(
                    [layout.edge_index[(sender, receiver)] for sender in senders]
                )
            group_edge_pos.append(
                np.array(rows, dtype=int).reshape(len(group.columns), group.degree)
            )
        self._group_edge_pos = group_edge_pos

    def _round_activity(self, round_index: int) -> RoundActivity | None:
        """Resolve the schedule's masks for one round (``None`` if static)."""
        if self._schedule is None:
            return None
        activity = resolve_activity(
            self._schedule, round_index, self._sched_layout
        )
        return None if activity.is_static else activity

    def _channel_mask(self, activity: RoundActivity | None) -> np.ndarray | None:
        """Return the ``(E_f,)`` up-mask over faulty channels, or ``None``."""
        if activity is None:
            return None
        mask = np.ones(len(self._edge_nodes), dtype=bool)
        if activity.edge_up is not None:
            mask &= activity.edge_up[self._chan_edge_pos]
        if activity.awake is not None:
            mask &= activity.awake[self._edge_src_cols]
        return mask

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Digraph:
        """The communication graph."""
        return self._graph

    @property
    def rule(self) -> UpdateRule:
        """The update rule driving fault-free nodes."""
        return self._rule

    @property
    def faulty(self) -> frozenset[NodeId]:
        """The Byzantine node set ``F``."""
        return self._faulty

    @property
    def fault_free(self) -> frozenset[NodeId]:
        """The fault-free node set ``V − F``."""
        return self._graph.nodes - self._faulty

    @property
    def config(self) -> SimulationConfig:
        """The engine configuration."""
        return self._config

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """Column order of state matrices (nodes sorted by ``repr``)."""
        return self._nodes

    @property
    def schedule(self) -> TopologySchedule | None:
        """The topology schedule, or ``None`` for a static run."""
        return self._schedule

    # ------------------------------------------------------------------
    # Input packing
    # ------------------------------------------------------------------
    def pack_inputs(
        self, inputs: np.ndarray | ValueMap | Sequence[ValueMap]
    ) -> np.ndarray:
        """Return a ``(B, n)`` float matrix in :attr:`nodes` column order.

        Accepts a single value map (``B = 1``), a sequence of value maps
        (one per row), or an already-packed array (validated and copied).
        """
        if isinstance(inputs, np.ndarray):
            matrix = np.array(inputs, dtype=self._dtype)
            if matrix.ndim == 1:
                matrix = matrix[None, :]
            if matrix.ndim != 2 or matrix.shape[1] != len(self._nodes):
                raise InvalidParameterError(
                    f"input matrix must have shape (B, {len(self._nodes)}), "
                    f"got {matrix.shape}"
                )
            return matrix
        if isinstance(inputs, Mapping):
            inputs = [inputs]
        rows = []
        for value_map in inputs:
            missing = self._graph.nodes - value_map.keys()
            if missing:
                raise InvalidParameterError(
                    f"inputs missing for nodes {sorted(missing, key=repr)!r}"
                )
            rows.append([float(value_map[node]) for node in self._nodes])
        if not rows:
            raise InvalidParameterError("at least one input assignment is required")
        return np.array(rows, dtype=self._dtype)

    def _context(
        self,
        state: np.ndarray,
        round_index: int,
        active_edge_mask: np.ndarray | None = None,
    ) -> BatchAdversaryContext:
        return BatchAdversaryContext(
            graph=self._graph,
            round_index=round_index,
            state=state,
            nodes=self._nodes,
            faulty=self._faulty,
            f=self._rule.f,
            faulty_columns=self._faulty_cols,
            fault_free_columns=self._ff_cols,
            edge_nodes=self._edge_nodes,
            edge_source_columns=self._edge_src_cols,
            edge_target_columns=self._edge_dst_cols,
            active_edge_mask=active_edge_mask,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step_matrix(self, state: np.ndarray, round_index: int) -> np.ndarray:
        """Execute one iteration on a ``(B, n)`` state matrix.

        Returns the new ``(B, n)`` matrix; faulty columns hold the
        adversary's nominal values, exactly like the scalar engine's
        :meth:`~repro.simulation.engine.SynchronousEngine.step`.
        """
        state = np.asarray(state, dtype=self._dtype)
        if state.ndim != 2 or state.shape[1] != len(self._nodes):
            raise InvalidParameterError(
                f"state matrix must have shape (B, {len(self._nodes)}), "
                f"got {state.shape}"
            )
        batch = state.shape[0]
        f = self._rule.f

        # Masking is applied downstream of the adversary: the strategy is
        # interrogated for every channel regardless of the round's masks (its
        # RNG draws stay mask-independent), then down channels are
        # overwritten with the receiver's own value like any other edge.
        activity = self._round_activity(round_index)

        context = None
        channel_values = np.empty((batch, 0), dtype=float)
        if self._faulty_cols.size:
            context = self._context(
                state, round_index, active_edge_mask=self._channel_mask(activity)
            )
            channel_values = np.asarray(
                self._adversary.edge_values(context), dtype=float
            )
            expected = (batch, len(self._edge_nodes))
            if channel_values.shape != expected:
                raise SimulationError(
                    f"batch adversary {self._adversary.name!r} returned edge "
                    f"values of shape {channel_values.shape}; expected {expected}"
                )

        new_state = np.array(state)
        for position, group in enumerate(self._groups):
            received = state[:, group.in_idx]
            if group.edge_index.size:
                received[:, group.edge_rows, group.edge_slots] = channel_values[
                    :, group.edge_index
                ]
            if activity is not None:
                up = np.ones(group.in_idx.shape, dtype=bool)
                if activity.edge_up is not None:
                    up &= activity.edge_up[self._group_edge_pos[position]]
                if activity.awake is not None:
                    up &= activity.awake[group.in_idx]
                if not up.all():
                    # Self-substitution: a dead slot carries the receiver's
                    # own previous value, keeping the trim window width d.
                    rows_i, slots_i = np.nonzero(~up)
                    received[:, rows_i, slots_i] = state[
                        :, group.columns[rows_i]
                    ]
            received.sort(axis=-1)
            survivors = received[:, :, f : group.degree - f]
            own = state[:, group.columns]
            if self._mode == "mean":
                full = np.concatenate([own[:, :, None], survivors], axis=2)
                totals = np.cumsum(full, axis=2)[:, :, -1]
                new_state[:, group.columns] = totals / float(full.shape[2])
            else:  # midpoint
                mins = np.minimum(own, survivors.min(axis=2, initial=np.inf))
                maxs = np.maximum(own, survivors.max(axis=2, initial=-np.inf))
                new_state[:, group.columns] = (mins + maxs) / 2.0

        if activity is not None and activity.awake is not None:
            # Asleep receivers skip their update (state frozen); their state
            # stays visible on out-edges next round.
            ff = self._ff_cols
            new_state[:, ff] = np.where(
                activity.awake[ff][None, :], new_state[:, ff], state[:, ff]
            )

        if self._faulty_cols.size:
            assert context is not None
            nominal = np.asarray(
                self._adversary.nominal_values(context), dtype=float
            )
            expected = (batch, self._faulty_cols.shape[0])
            if nominal.shape != expected:
                raise SimulationError(
                    f"batch adversary {self._adversary.name!r} returned nominal "
                    f"values of shape {nominal.shape}; expected {expected}"
                )
            new_state[:, self._faulty_cols] = nominal
        return new_state

    def run(self, inputs: ValueMap) -> ConsensusOutcome:
        """Run one execution, mirroring the scalar engine's :meth:`run`.

        Produces a :class:`~repro.types.ConsensusOutcome` whose every field —
        including the per-round history — is identical to what
        :class:`~repro.simulation.engine.SynchronousEngine` computes for the
        same configuration (the adversary permitting; see
        :func:`cross_check_engines`).
        """
        config = self._config
        state = self.pack_inputs(inputs)
        if state.shape[0] != 1:
            raise InvalidParameterError(
                f"run() executes a single run but received {state.shape[0]} "
                "input rows; use run_batch() for batched execution"
            )

        trace = ExecutionTrace(faulty=self._faulty)
        validity = ValidityTracker()
        low, high = self._extremes(state)
        validity.observe(low, high)
        initial_spread = high - low
        if config.record_history:
            trace.record_round(0, self._values_dict(state))

        rounds_executed = 0
        converged = initial_spread <= config.tolerance and config.stop_on_convergence
        current_spread = initial_spread
        for round_index in range(1, config.max_rounds + 1):
            if converged:
                break
            state = self.step_matrix(state, round_index)
            rounds_executed = round_index
            low, high = self._extremes(state)
            validity.observe(low, high)
            if config.strict_validity and not validity.ok:
                raise ValidityViolationError(
                    f"validity violated at round {round_index}: the fault-free "
                    f"interval expanded to [{low}, {high}]"
                )
            if config.record_history:
                trace.record_round(round_index, self._values_dict(state))
            current_spread = high - low
            if config.stop_on_convergence and current_spread <= config.tolerance:
                converged = True

        if not config.stop_on_convergence:
            converged = current_spread <= config.tolerance
        final_values = {
            node: float(state[0, self._column[node]])
            for node in self._nodes
            if node not in self._faulty
        }
        return ConsensusOutcome(
            converged=converged,
            rounds_executed=rounds_executed,
            final_spread=current_spread,
            initial_spread=initial_spread,
            validity_ok=validity.ok,
            final_values=final_values,
            history=trace.as_records() if config.record_history else tuple(),
        )

    def run_batch(
        self, inputs: np.ndarray | Sequence[ValueMap]
    ) -> BatchOutcome:
        """Run ``B`` independent executions as one batched pass.

        Rows that reach the tolerance are frozen (their state stops
        updating), so each row's final state and round count match what an
        independent run of that row would produce — provided the adversary's
        per-row behaviour does not depend on the other rows.  That holds for
        every native :class:`~repro.adversary.vectorized.BatchStrategy`
        shipped here and for :class:`ScalarStrategyAdapter` in ``factory``
        mode; shared-instance adapters over strategies with mutable state
        (``batch_safe = False``) are rejected at ``B > 1``.
        """
        config = self._config
        state = self.pack_inputs(inputs)
        batch = state.shape[0]

        ff = self._ff_cols
        mins = state[:, ff].min(axis=1)
        maxs = state[:, ff].max(axis=1)
        initial_spread = maxs - mins
        spread = initial_spread.copy()
        # Running tightest interval per row, mirroring ValidityTracker: a
        # per-round comparison would grant fresh slack every round and let
        # the hull drift by rounds x slack undetected.
        tight_min, tight_max = mins.copy(), maxs.copy()
        validity_ok = np.ones(batch, dtype=bool)
        rounds_executed = np.zeros(batch, dtype=int)
        converged = (
            initial_spread <= config.tolerance
            if config.stop_on_convergence
            else np.zeros(batch, dtype=bool)
        )
        active = ~converged
        history: list[np.ndarray] | None = (
            [spread.copy()] if config.record_history else None
        )

        for round_index in range(1, config.max_rounds + 1):
            if config.stop_on_convergence and not active.any():
                break
            new_state = self.step_matrix(state, round_index)
            state = np.where(active[:, None], new_state, state)
            rounds_executed = np.where(active, round_index, rounds_executed)
            mins = state[:, ff].min(axis=1)
            maxs = state[:, ff].max(axis=1)
            expanded = active & (
                (maxs > tight_max + VALIDITY_TOLERANCE)
                | (mins < tight_min - VALIDITY_TOLERANCE)
            )
            if config.strict_validity and expanded.any():
                row = int(np.flatnonzero(expanded)[0])
                raise ValidityViolationError(
                    f"validity violated at round {round_index} in batch row "
                    f"{row}: the fault-free interval expanded to "
                    f"[{mins[row]}, {maxs[row]}]"
                )
            validity_ok &= ~expanded
            tight_min = np.maximum(tight_min, mins)
            tight_max = np.minimum(tight_max, maxs)
            spread = maxs - mins
            if history is not None:
                history.append(spread.copy())
            if config.stop_on_convergence:
                newly = active & (spread <= config.tolerance)
                converged = converged | newly
                active = active & ~newly

        if not config.stop_on_convergence:
            converged = spread <= config.tolerance
        return BatchOutcome(
            nodes=self._nodes,
            faulty=self._faulty,
            converged=converged,
            rounds_executed=rounds_executed,
            initial_spread=initial_spread,
            final_spread=spread,
            validity_ok=validity_ok,
            final_states=state,
            spread_history=np.stack(history) if history is not None else None,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _extremes(self, state: np.ndarray) -> tuple[float, float]:
        ff = state[0, self._ff_cols]
        return float(ff.min()), float(ff.max())

    def _values_dict(self, state: np.ndarray) -> dict[NodeId, float]:
        return {
            node: float(state[0, column])
            for column, node in enumerate(self._nodes)
        }


class BatchRunner:
    """Monte-Carlo front end: run many executions of one configuration.

    Thin convenience wrapper over :meth:`VectorizedEngine.run_batch` that
    owns the engine and adds input-matrix generation, so experiment drivers
    can say "run B random executions of this scenario" in one call.
    """

    def __init__(
        self,
        graph: Digraph,
        rule: UpdateRule,
        faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
        adversary: BatchStrategy | ByzantineStrategy | None = None,
        config: SimulationConfig | None = None,
        schedule: TopologySchedule | None = None,
    ) -> None:
        self._engine = VectorizedEngine(
            graph=graph,
            rule=rule,
            faulty=faulty,
            adversary=adversary,
            config=config,
            schedule=schedule,
        )

    @property
    def engine(self) -> VectorizedEngine:
        """The underlying vectorized engine."""
        return self._engine

    def run(self, inputs: np.ndarray | Sequence[ValueMap]) -> BatchOutcome:
        """Run the batch described by ``inputs`` (see :meth:`VectorizedEngine.pack_inputs`)."""
        return self._engine.run_batch(inputs)

    def run_uniform(
        self,
        batch: int,
        low: float = 0.0,
        high: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> BatchOutcome:
        """Run ``batch`` executions with i.i.d. uniform inputs in ``[low, high]``."""
        matrix = random_input_matrix(
            self._engine.nodes, batch, low=low, high=high, rng=rng
        )
        return self._engine.run_batch(matrix)


def random_input_matrix(
    nodes: Iterable[NodeId],
    batch: int,
    low: float = 0.0,
    high: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Return a ``(batch, n)`` uniform input matrix.

    Columns follow the vectorized engine's convention: nodes sorted by
    ``repr``.  A fixed integer seed makes the matrix (and therefore a whole
    deterministic batch run) reproducible.
    """
    if batch < 1:
        raise InvalidParameterError(f"batch must be >= 1, got {batch}")
    if high < low:
        raise InvalidParameterError(f"high ({high}) must be >= low ({low})")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    ordered = sorted(nodes, key=repr)
    return generator.uniform(low, high, size=(batch, len(ordered)))


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of a round-for-round scalar-vs-vectorized cross-check.

    ``identical`` is ``True`` when every node's state matched exactly
    (``==`` on floats, so ``0.0`` and ``-0.0`` compare equal) at every
    checked round.  On divergence, ``first_divergence_round`` and
    ``max_abs_difference`` locate and size the disagreement.
    """

    rounds_checked: int
    identical: bool
    max_abs_difference: float
    first_divergence_round: int | None = None


def _divergence_report(
    rounds_checked: int,
    value_pairs: Iterable[tuple[int, float, float]],
    length_mismatch: bool = False,
) -> EquivalenceReport:
    """Fold ``(round_index, reference, candidate)`` triples into a report.

    Shared by the synchronous and asynchronous cross-checkers so the exact
    comparison semantics (float ``==``, NaN treated as infinite divergence,
    first-divergence bookkeeping) live in one place.  ``length_mismatch``
    records that one engine produced more rounds than the other; it forces
    ``identical=False`` but never hides an earlier value divergence — the
    earliest diverging round and the real magnitude win when both occur.
    """
    identical = True
    max_diff = 0.0
    first_divergence: int | None = None
    for round_index, reference, candidate in value_pairs:
        if reference == candidate:
            continue
        identical = False
        if first_divergence is None:
            first_divergence = round_index
        difference = abs(reference - candidate)
        if np.isnan(difference):  # pragma: no cover - defensive
            difference = float("inf")
        max_diff = max(max_diff, difference)
    if length_mismatch:
        identical = False
        if first_divergence is None:
            first_divergence = rounds_checked
            max_diff = float("inf")
    return EquivalenceReport(
        rounds_checked=rounds_checked,
        identical=identical,
        max_abs_difference=max_diff,
        first_divergence_round=first_divergence,
    )


def cross_check_engines(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: ByzantineStrategy | None = None,
    config: SimulationConfig | None = None,
    rounds: int | None = None,
    schedule: TopologySchedule | None = None,
) -> EquivalenceReport:
    """Run both engines round-for-round and compare every node's state.

    This is the equivalence mode: each engine gets a deep copy of the scalar
    ``adversary`` (so stateful or RNG-backed strategies start from identical
    state and consume draws independently), then the scalar
    :meth:`~repro.simulation.engine.SynchronousEngine.step` and the
    vectorized :meth:`VectorizedEngine.step_matrix` execute in lockstep from
    the same inputs.  A ``schedule`` is applied to both engines (schedules
    are pure functions of the round, so deep copies see identical masks).
    Intended for small instances — it pays the scalar engine's cost.
    """
    if adversary is not None and not isinstance(adversary, ByzantineStrategy):
        raise InvalidParameterError(
            "cross_check_engines needs a scalar ByzantineStrategy (or None); "
            "a BatchStrategy has no scalar counterpart to compare against"
        )
    chosen_config = config if config is not None else SimulationConfig()
    total_rounds = rounds if rounds is not None else chosen_config.max_rounds

    scalar_engine = SynchronousEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=copy.deepcopy(adversary) if adversary is not None else None,
        config=chosen_config,
        schedule=copy.deepcopy(schedule) if schedule is not None else None,
    )
    vector_engine = VectorizedEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=copy.deepcopy(adversary) if adversary is not None else None,
        config=chosen_config,
        schedule=copy.deepcopy(schedule) if schedule is not None else None,
    )

    missing = graph.nodes - inputs.keys()
    if missing:
        raise InvalidParameterError(
            f"inputs missing for nodes {sorted(missing, key=repr)!r}"
        )
    scalar_state = {node: float(inputs[node]) for node in graph.nodes}
    matrix = vector_engine.pack_inputs(scalar_state)

    def stepped_pairs() -> Iterator[tuple[int, float, float]]:
        nonlocal scalar_state, matrix
        for round_index in range(1, total_rounds + 1):
            scalar_state = scalar_engine.step(scalar_state, round_index)
            matrix = vector_engine.step_matrix(matrix, round_index)
            for column, node in enumerate(vector_engine.nodes):
                yield round_index, scalar_state[node], float(matrix[0, column])

    return _divergence_report(total_rounds, stepped_pairs())


def run_vectorized(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: BatchStrategy | ByzantineStrategy | None = None,
    max_rounds: int = 500,
    tolerance: float = 1e-7,
    record_history: bool = True,
    strict_validity: bool = False,
    stop_on_convergence: bool = True,
    cross_check: bool = False,
    cross_check_rounds: int = 25,
    schedule: TopologySchedule | None = None,
) -> ConsensusOutcome:
    """Functional wrapper around :class:`VectorizedEngine`, mirroring
    :func:`~repro.simulation.engine.run_synchronous`.

    With ``cross_check=True`` (and a scalar or absent adversary) the run is
    preceded by a :func:`cross_check_engines` pass over
    ``cross_check_rounds`` rounds; any divergence raises
    :class:`~repro.exceptions.SimulationError`.
    """
    config = SimulationConfig(
        max_rounds=max_rounds,
        tolerance=tolerance,
        record_history=record_history,
        strict_validity=strict_validity,
        stop_on_convergence=stop_on_convergence,
    )
    if cross_check:
        if adversary is not None and not isinstance(adversary, ByzantineStrategy):
            raise InvalidParameterError(
                "cross_check=True requires a scalar ByzantineStrategy adversary"
            )
        report = cross_check_engines(
            graph=graph,
            rule=rule,
            inputs=inputs,
            faulty=faulty,
            adversary=adversary,
            config=config,
            rounds=min(cross_check_rounds, max_rounds),
            schedule=schedule,
        )
        if not report.identical:
            raise SimulationError(
                "vectorized engine diverged from the scalar engine at round "
                f"{report.first_divergence_round} (max abs difference "
                f"{report.max_abs_difference:.3e})"
            )
        adversary = copy.deepcopy(adversary) if adversary is not None else None
    engine = VectorizedEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=adversary,
        config=config,
        schedule=schedule,
    )
    return engine.run(inputs)
