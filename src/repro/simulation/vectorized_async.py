"""NumPy-vectorized partially asynchronous engine and batched async runner.

:class:`~repro.simulation.async_engine.PartiallyAsynchronousEngine` walks one
delay-bounded execution at a time through per-message Python dicts, which made
every delay/activation Monte-Carlo sweep roughly two orders of magnitude
slower than its synchronous counterpart.  This module closes that gap: the
states of all nodes across ``B`` independent executions live in one ``(B, n)``
float matrix, and the Bertsekas–Tsitsiklis delivery buffers become dense
arrays over the ``E`` directed channels into fault-free receivers:

* ``buffer_values``/``buffer_rounds`` — ``(B, E)``: the freshest delivered
  value per channel and the round it was sent in (send round 0 holds the
  sender's input, mirroring the scalar engine's initialisation);
* a **ring buffer** of the last ``max_delay + 1`` send rounds —
  ``(B, E, max_delay + 1)`` value and delivery-round planes plus one scalar
  send-round tag per slot.  A message sent at round ``t`` can only be
  delivered in ``[t, t + max_delay]``, so by the time slot ``t mod
  (max_delay + 1)`` is overwritten every message it held has already been
  delivered; no per-message bookkeeping survives.

Each round is: adversary-scatter into the sent-value plane → ring write →
masked "freshest send wins" delivery sweep (oldest slot first, exactly the
scalar engine's ``send_round >= stored_round`` rule) → the same per-in-degree
gather → sort → trim → cumsum kernel as
:class:`~repro.simulation.vectorized.VectorizedEngine` → activation mask →
faulty-column overwrite.  Because the delivered floats are bit-identical to
the scalar buffers and the reduction reuses the synchronous kernel, a
vectorized execution is **bit-for-bit identical** to the scalar asynchronous
engine under the shared RNG-stream contract — enforced by
:func:`async_cross_check_engines` and the cross-engine parity suite.

RNG-stream contract
-------------------
Randomness is consumed exactly as documented in
:mod:`repro.simulation.async_engine`: per executed round, one
``integers(0, max_delay + 1, size=E_all)`` draw over *all* directed edges in
canonical sender-major order (iff ``max_delay > 0``), then one
``random(m)`` draw over the fault-free nodes sorted by ``repr`` (iff
``update_probability < 1``).  A batch gives every row its own generator:
:func:`spawn_row_generators` derives row ``b``'s stream from a root seed via
``np.random.SeedSequence(seed).spawn(B)[b]``, so a scalar engine handed the
same child generator replays that row draw-for-draw.  At ``max_delay=0`` and
``update_probability=1`` no engine-level randomness exists and the round
degenerates to the synchronous kernel, making the engine bit-exact with
:class:`~repro.simulation.vectorized.VectorizedEngine` as well.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adversary.base import ByzantineStrategy
from repro.adversary.vectorized import BatchStrategy
from repro.algorithms.base import UpdateRule
from repro.exceptions import (
    InvalidParameterError,
    SimulationError,
    ValidityViolationError,
)
from repro.graphs.digraph import Digraph
from repro.simulation.async_engine import (
    PartiallyAsynchronousEngine,
    canonical_edge_order,
)
from repro.simulation.dynamic import TopologySchedule
from repro.simulation.engine import SimulationConfig
from repro.simulation.metrics import VALIDITY_TOLERANCE, within_hull
from repro.simulation.trace import ExecutionTrace
from repro.simulation.vectorized import (
    BatchOutcome,
    EquivalenceReport,
    VectorizedEngine,
    _divergence_report,
)
from repro.types import ConsensusOutcome, NodeId, ValueMap

#: Delivery-round sentinel for messages on channels masked down by a
#: topology schedule: the message is written into the ring (keeping slot
#: bookkeeping uniform) but can never come due.  The slot is wholly
#: overwritten after ``max_delay + 1`` rounds, so the sentinel never leaks.
_NEVER = np.iinfo(np.int64).max


def spawn_row_generators(
    rng: object, batch: int
) -> list[np.random.Generator]:
    """Return ``batch`` independent generators, one per batch row.

    Accepts a root seed (``int``, :class:`numpy.random.SeedSequence` or
    ``None``), an already-constructed :class:`numpy.random.Generator` (its
    ``spawn`` method supplies the children), or an explicit sequence of
    ``batch`` generators (passed through, for callers that need full control
    — e.g. the parity tests replaying one row on the scalar engine).

    With an integer root seed the mapping is the documented contract: row
    ``b`` draws from ``default_rng(SeedSequence(seed).spawn(batch)[b])``.
    """
    if batch < 1:
        raise InvalidParameterError(f"batch must be >= 1, got {batch}")
    if isinstance(rng, (list, tuple)):
        generators = list(rng)
        if len(generators) != batch or not all(
            isinstance(g, np.random.Generator) for g in generators
        ):
            raise InvalidParameterError(
                f"an explicit generator sequence must contain exactly "
                f"{batch} numpy Generators, got {len(generators)} items"
            )
        return generators
    if isinstance(rng, np.random.Generator):
        return list(rng.spawn(batch))
    if rng is None or isinstance(rng, (int, np.integer)):
        root = np.random.SeedSequence(None if rng is None else int(rng))
    elif isinstance(rng, np.random.SeedSequence):
        root = rng
    else:
        raise InvalidParameterError(
            "rng must be an int seed, SeedSequence, Generator, a sequence of "
            f"Generators, or None; got {type(rng).__name__}"
        )
    return [np.random.default_rng(child) for child in root.spawn(batch)]


@dataclass
class _DeliveryBuffers:
    """Ring-buffered in-flight messages plus the freshest-delivery state.

    ``ring_send[j]`` tags slot ``j`` with the round its messages were sent in
    (``-1`` while the slot has never been written); all ``(B, E)`` planes of
    slot ``j`` refer to that one send round, which is what lets the delivery
    sweep use a scalar comparison per slot.
    """

    buffer_values: np.ndarray
    buffer_rounds: np.ndarray
    ring_values: np.ndarray
    ring_deliveries: np.ndarray
    ring_send: list[int]


class VectorizedAsyncEngine(VectorizedEngine):
    """Array-based executor of the partially asynchronous model over batches.

    Parameters
    ----------
    graph, rule, faulty, adversary, config:
        As for :class:`~repro.simulation.vectorized.VectorizedEngine` (same
        trimmed-rule kernels, same batched adversary layer).
    max_delay:
        The Bertsekas–Tsitsiklis delay bound ``B``; ``0`` degenerates to the
        synchronous engine.  Negative values raise
        :class:`~repro.exceptions.InvalidParameterError` — the same guard as
        the scalar engine.
    update_probability:
        Per-round activation probability of a fault-free node, in ``(0, 1]``.
    schedule:
        Optional :class:`~repro.simulation.dynamic.TopologySchedule`.  The
        asynchronous tier composes masks with its delivery machinery: a
        masked channel's message for the round is never delivered (the
        receiver keeps its freshest previously delivered value) and receiver
        sleep is ANDed into the activation mask.  Delay and activation draws
        are still consumed for every edge and node, so the random streams
        stay mask-independent and the scalar/vectorized pair bit-identical.
        Note this intentionally differs from the synchronous tiers'
        self-substitution semantics — with masks active, ``max_delay=0``
        no longer degenerates to the synchronous engines.
    """

    def __init__(
        self,
        graph: Digraph,
        rule: UpdateRule,
        faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
        adversary: BatchStrategy | ByzantineStrategy | None = None,
        config: SimulationConfig | None = None,
        max_delay: int = 1,
        update_probability: float = 1.0,
        schedule: TopologySchedule | None = None,
    ) -> None:
        if max_delay < 0:
            raise InvalidParameterError(f"max_delay must be >= 0, got {max_delay}")
        if not 0.0 < update_probability <= 1.0:
            raise InvalidParameterError(
                f"update_probability must be in (0, 1], got {update_probability}"
            )
        super().__init__(
            graph=graph,
            rule=rule,
            faulty=faulty,
            adversary=adversary,
            config=config,
            schedule=schedule,
        )
        self._max_delay = int(max_delay)
        self._update_probability = float(update_probability)
        self._build_async_arrays()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_async_arrays(self) -> None:
        """Precompute the channel-axis index arrays for the delivery buffers.

        The buffer axis enumerates the directed channels into fault-free
        receivers in receiver-major order (receivers by state column, senders
        by ``repr`` within a receiver) so that each in-degree group's gather
        from ``buffer_values`` lands in the same slot order as the
        synchronous kernel's gather from the state matrix.
        """
        graph = self._graph
        rng_edges = canonical_edge_order(graph)
        self._rng_edge_count = len(rng_edges)
        rng_position = {edge: k for k, edge in enumerate(rng_edges)}

        channel_position = {edge: k for k, edge in enumerate(self._edge_nodes)}
        buffer_edges: list[tuple[NodeId, NodeId]] = []
        faulty_positions: list[int] = []
        faulty_channels: list[int] = []
        for column in self._ff_cols:
            receiver = self._nodes[column]
            for sender in sorted(graph.in_neighbors(receiver), key=repr):
                if sender in self._faulty:
                    faulty_positions.append(len(buffer_edges))
                    faulty_channels.append(channel_position[(sender, receiver)])
                buffer_edges.append((sender, receiver))
        self._buffer_edges = tuple(buffer_edges)
        buffer_position = {edge: k for k, edge in enumerate(buffer_edges)}

        self._buffer_src_cols = np.array(
            [self._column[sender] for sender, _target in buffer_edges], dtype=int
        )
        self._buffer_rng_positions = np.array(
            [rng_position[edge] for edge in buffer_edges], dtype=int
        )
        self._buffer_faulty_positions = np.array(faulty_positions, dtype=int)
        self._buffer_faulty_channels = np.array(faulty_channels, dtype=int)

        self._group_buffer_idx: list[np.ndarray] = []
        for group in self._groups:
            rows = [
                [
                    buffer_position[(sender, self._nodes[column])]
                    for sender in sorted(
                        graph.in_neighbors(self._nodes[column]), key=repr
                    )
                ]
                for column in group.columns
            ]
            self._group_buffer_idx.append(
                np.array(rows, dtype=int).reshape(len(group.columns), group.degree)
            )

        # Canonical-edge position of each buffer channel, for translating a
        # schedule's (E,) edge mask onto the buffer axis.  Built here (not in
        # _build_schedule_arrays) because the buffer order above does not
        # exist yet while super().__init__ runs.
        if self._schedule is not None:
            self._buffer_edge_pos = np.array(
                [self._sched_layout.edge_index[edge] for edge in buffer_edges],
                dtype=int,
            )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def max_delay(self) -> int:
        """The delay bound ``B``."""
        return self._max_delay

    @property
    def update_probability(self) -> float:
        """Per-round activation probability of a fault-free node."""
        return self._update_probability

    # ------------------------------------------------------------------
    # Buffer lifecycle and per-round draws
    # ------------------------------------------------------------------
    def _init_buffers(self, state: np.ndarray) -> _DeliveryBuffers:
        """Return fresh buffers for ``state``: every channel holds the
        sender's input tagged with send round 0, the ring entirely empty."""
        batch = state.shape[0]
        depth = self._max_delay + 1
        edges = len(self._buffer_edges)
        return _DeliveryBuffers(
            buffer_values=np.array(state[:, self._buffer_src_cols]),
            buffer_rounds=np.zeros((batch, edges), dtype=np.int64),
            ring_values=np.zeros((batch, edges, depth), dtype=float),
            ring_deliveries=np.zeros((batch, edges, depth), dtype=np.int64),
            ring_send=[-1] * depth,
        )

    def _draw_delays(
        self,
        generators: Sequence[np.random.Generator],
        active_rows: np.ndarray | None,
    ) -> np.ndarray | None:
        """Per-row canonical-order delay draws; ``None`` when ``max_delay=0``.

        Frozen (converged) rows draw nothing — their scalar counterparts
        stopped executing, so their streams must not advance.
        """
        if self._max_delay == 0:
            return None
        delays = np.zeros((len(generators), self._rng_edge_count), dtype=np.int64)
        for row, generator in enumerate(generators):
            if active_rows is None or active_rows[row]:
                delays[row] = generator.integers(
                    0, self._max_delay + 1, size=self._rng_edge_count
                )
        return delays

    def _draw_activation(
        self,
        generators: Sequence[np.random.Generator],
        active_rows: np.ndarray | None,
    ) -> np.ndarray | None:
        """Per-row activation mask; ``None`` when every node always updates."""
        if self._update_probability >= 1.0:
            return None
        count = self._ff_cols.size
        coins = np.ones((len(generators), count), dtype=float)
        for row, generator in enumerate(generators):
            if active_rows is None or active_rows[row]:
                coins[row] = generator.random(count)
        return coins < self._update_probability

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step_matrix(self, state: np.ndarray, round_index: int) -> np.ndarray:
        """Unavailable: an asynchronous round also needs delivery buffers.

        The synchronous signature cannot express the buffer state, so this
        override refuses instead of silently running synchronous semantics;
        use :meth:`run` / :meth:`run_batch`, or :meth:`step_async` to step
        manually.
        """
        raise InvalidParameterError(
            "VectorizedAsyncEngine.step_matrix is not available: asynchronous "
            "rounds carry delivery-buffer state; use run()/run_batch() or "
            "step_async()"
        )

    def step_async(
        self,
        state: np.ndarray,
        buffers: _DeliveryBuffers,
        round_index: int,
        delays: np.ndarray | None,
        active_nodes: np.ndarray | None,
    ) -> np.ndarray:
        """Execute one asynchronous iteration on a ``(B, n)`` state matrix.

        ``buffers`` (from :meth:`_init_buffers`) is updated in place;
        ``delays`` is the round's ``(B, E_all)`` canonical-order draw (or
        ``None`` for ``max_delay=0``) and ``active_nodes`` the ``(B, m)``
        activation mask over fault-free columns (or ``None`` for
        ``update_probability=1``).  Returns the new state matrix; faulty
        columns hold the adversary's nominal values.
        """
        state = np.asarray(state, dtype=float)
        batch = state.shape[0]
        f = self._rule.f

        # Masks compose with the delivery machinery, not the reduce kernel:
        # a masked channel's message is written but never comes due, and
        # receiver sleep joins the activation mask below.  Draws (delays,
        # activation coins) were made before any mask is consulted, so the
        # random streams are mask-independent.
        activity = self._round_activity(round_index)

        # 1. The values every channel carries this round: senders' states,
        #    with the adversary's channel values scattered over faulty edges.
        sent = np.array(state[:, self._buffer_src_cols])
        context = None
        if self._faulty_cols.size:
            context = self._context(
                state, round_index, active_edge_mask=self._channel_mask(activity)
            )
            channel_values = np.asarray(
                self._adversary.edge_values(context), dtype=float
            )
            expected = (batch, len(self._edge_nodes))
            if channel_values.shape != expected:
                raise SimulationError(
                    f"batch adversary {self._adversary.name!r} returned edge "
                    f"values of shape {channel_values.shape}; expected {expected}"
                )
            if self._buffer_faulty_positions.size:
                sent[:, self._buffer_faulty_positions] = channel_values[
                    :, self._buffer_faulty_channels
                ]

        # 2. Ring write.  The slot being overwritten held send round
        #    round_index − (max_delay + 1), whose last possible delivery was
        #    round_index − 1 — nothing in flight is lost.
        depth = self._max_delay + 1
        slot = round_index % depth
        buffers.ring_send[slot] = round_index
        buffers.ring_values[:, :, slot] = sent
        if delays is None:
            buffers.ring_deliveries[:, :, slot] = round_index
        else:
            buffers.ring_deliveries[:, :, slot] = (
                round_index + delays[:, self._buffer_rng_positions]
            )
        if activity is not None:
            up = np.ones(len(self._buffer_edges), dtype=bool)
            if activity.edge_up is not None:
                up &= activity.edge_up[self._buffer_edge_pos]
            if activity.awake is not None:
                up &= activity.awake[self._buffer_src_cols]
            silent = np.flatnonzero(~up)
            if silent.size:
                buffers.ring_deliveries[:, silent, slot] = _NEVER

        # 3. Delivery sweep, oldest send round first, so the freshest send
        #    wins — the scalar engine's ``send_round >= stored_round`` rule.
        for slot_index in sorted(range(depth), key=lambda j: buffers.ring_send[j]):
            send_round = buffers.ring_send[slot_index]
            if send_round < 1:
                continue
            due = (
                buffers.ring_deliveries[:, :, slot_index] <= round_index
            ) & (send_round >= buffers.buffer_rounds)
            if due.any():
                buffers.buffer_rounds = np.where(
                    due, send_round, buffers.buffer_rounds
                )
                buffers.buffer_values = np.where(
                    due, buffers.ring_values[:, :, slot_index], buffers.buffer_values
                )

        # 4. The synchronous reduction kernel, fed from the delivery buffers
        #    instead of the raw state matrix.
        new_state = np.array(state)
        for group, buffer_idx in zip(self._groups, self._group_buffer_idx):
            received = buffers.buffer_values[:, buffer_idx]
            received.sort(axis=-1)
            survivors = received[:, :, f : group.degree - f]
            own = state[:, group.columns]
            if self._mode == "mean":
                full = np.concatenate([own[:, :, None], survivors], axis=2)
                totals = np.cumsum(full, axis=2)[:, :, -1]
                new_state[:, group.columns] = totals / float(full.shape[2])
            else:  # midpoint
                mins = np.minimum(own, survivors.min(axis=2, initial=np.inf))
                maxs = np.maximum(own, survivors.max(axis=2, initial=-np.inf))
                new_state[:, group.columns] = (mins + maxs) / 2.0

        # 5. Sporadic activation: inactive nodes keep their previous state
        #    (their buffers kept absorbing deliveries above).  Receiver sleep
        #    from the schedule composes by AND — an asleep node skips its
        #    update even if its activation coin came up.
        if activity is not None and activity.awake is not None:
            awake_ff = activity.awake[self._ff_cols]
            if active_nodes is None:
                active_nodes = np.broadcast_to(
                    awake_ff[None, :], (batch, awake_ff.size)
                )
            else:
                active_nodes = active_nodes & awake_ff[None, :]
        if active_nodes is not None:
            columns = self._ff_cols
            new_state[:, columns] = np.where(
                active_nodes, new_state[:, columns], state[:, columns]
            )

        # 6. Faulty columns record the adversary's nominal values.
        if self._faulty_cols.size:
            assert context is not None
            nominal = np.asarray(
                self._adversary.nominal_values(context), dtype=float
            )
            expected = (batch, self._faulty_cols.shape[0])
            if nominal.shape != expected:
                raise SimulationError(
                    f"batch adversary {self._adversary.name!r} returned nominal "
                    f"values of shape {nominal.shape}; expected {expected}"
                )
            new_state[:, self._faulty_cols] = nominal
        return new_state

    def run(
        self,
        inputs: ValueMap,
        rng: np.random.Generator | int | None = None,
    ) -> ConsensusOutcome:
        """Run one execution, mirroring the scalar asynchronous engine.

        With the same ``rng`` seed (or an identically-seeded generator) the
        outcome — every field, including the per-round history — is
        bit-identical to :class:`PartiallyAsynchronousEngine` for the same
        configuration, the adversary permitting (see
        :func:`async_cross_check_engines`).
        """
        config = self._config
        state = self.pack_inputs(inputs)
        if state.shape[0] != 1:
            raise InvalidParameterError(
                f"run() executes a single run but received {state.shape[0]} "
                "input rows; use run_batch() for batched execution"
            )
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        generators = [generator]
        buffers = self._init_buffers(state)

        trace = ExecutionTrace(faulty=self._faulty)
        hull_min, hull_max = self._extremes(state)
        initial_spread = hull_max - hull_min
        hull_ok = True
        if config.record_history:
            trace.record_round(0, self._values_dict(state))

        rounds_executed = 0
        current_spread = initial_spread
        converged = config.stop_on_convergence and initial_spread <= config.tolerance

        for round_index in range(1, config.max_rounds + 1):
            if converged:
                break
            delays = self._draw_delays(generators, None)
            active_nodes = self._draw_activation(generators, None)
            state = self.step_async(state, buffers, round_index, delays, active_nodes)
            rounds_executed = round_index

            low, high = self._extremes(state)
            if not within_hull(state[0, self._ff_cols], hull_min, hull_max):
                hull_ok = False
                if config.strict_validity:
                    raise ValidityViolationError(
                        f"hull validity violated at round {round_index}: a "
                        f"fault-free value left the initial hull "
                        f"[{hull_min}, {hull_max}]"
                    )
            if config.record_history:
                trace.record_round(round_index, self._values_dict(state))
            current_spread = high - low
            if config.stop_on_convergence and current_spread <= config.tolerance:
                converged = True

        if not config.stop_on_convergence:
            converged = current_spread <= config.tolerance
        final_values = {
            node: float(state[0, self._column[node]])
            for node in self._nodes
            if node not in self._faulty
        }
        return ConsensusOutcome(
            converged=converged,
            rounds_executed=rounds_executed,
            final_spread=current_spread,
            initial_spread=initial_spread,
            validity_ok=hull_ok,
            final_values=final_values,
            history=trace.as_records() if config.record_history else tuple(),
        )

    def run_batch(
        self,
        inputs: np.ndarray | Sequence[ValueMap],
        rng: object = None,
    ) -> BatchOutcome:
        """Run ``B`` independent delay-bounded executions as one batched pass.

        ``rng`` seeds the per-row streams via :func:`spawn_row_generators`.
        Rows that reach the tolerance freeze (state, round count and random
        stream all stop advancing), so each row reproduces exactly what an
        independent scalar run seeded with that row's child stream produces.
        ``validity_ok`` reports the *initial-hull* form of validity, the
        correct condition for the partially asynchronous model.
        """
        config = self._config
        state = self.pack_inputs(inputs)
        batch = state.shape[0]
        generators = spawn_row_generators(rng, batch)
        buffers = self._init_buffers(state)

        ff = self._ff_cols
        hull_low = state[:, ff].min(axis=1)
        hull_high = state[:, ff].max(axis=1)
        initial_spread = hull_high - hull_low
        spread = initial_spread.copy()
        validity_ok = np.ones(batch, dtype=bool)
        rounds_executed = np.zeros(batch, dtype=int)
        converged = (
            initial_spread <= config.tolerance
            if config.stop_on_convergence
            else np.zeros(batch, dtype=bool)
        )
        active_rows = ~converged if config.stop_on_convergence else np.ones(batch, dtype=bool)
        history: list[np.ndarray] | None = (
            [spread.copy()] if config.record_history else None
        )

        for round_index in range(1, config.max_rounds + 1):
            if config.stop_on_convergence and not active_rows.any():
                break
            delays = self._draw_delays(generators, active_rows)
            active_nodes = self._draw_activation(generators, active_rows)
            new_state = self.step_async(
                state, buffers, round_index, delays, active_nodes
            )
            state = np.where(active_rows[:, None], new_state, state)
            rounds_executed = np.where(active_rows, round_index, rounds_executed)

            mins = state[:, ff].min(axis=1)
            maxs = state[:, ff].max(axis=1)
            escaped = active_rows & (
                (mins < hull_low - VALIDITY_TOLERANCE)
                | (maxs > hull_high + VALIDITY_TOLERANCE)
            )
            if config.strict_validity and escaped.any():
                row = int(np.flatnonzero(escaped)[0])
                raise ValidityViolationError(
                    f"hull validity violated at round {round_index} in batch "
                    f"row {row}: the fault-free values left the initial hull "
                    f"[{hull_low[row]}, {hull_high[row]}]"
                )
            validity_ok &= ~escaped
            spread = np.where(active_rows, maxs - mins, spread)
            if history is not None:
                history.append(spread.copy())
            if config.stop_on_convergence:
                newly = active_rows & (spread <= config.tolerance)
                converged = converged | newly
                active_rows = active_rows & ~newly

        if not config.stop_on_convergence:
            converged = spread <= config.tolerance
        return BatchOutcome(
            nodes=self._nodes,
            faulty=self._faulty,
            converged=converged,
            rounds_executed=rounds_executed,
            initial_spread=initial_spread,
            final_spread=spread,
            validity_ok=validity_ok,
            final_states=state,
            spread_history=np.stack(history) if history is not None else None,
        )


def async_cross_check_engines(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: ByzantineStrategy | None = None,
    config: SimulationConfig | None = None,
    max_delay: int = 1,
    update_probability: float = 1.0,
    seed: int = 0,
    schedule: TopologySchedule | None = None,
) -> EquivalenceReport:
    """Run both asynchronous engines from one seed and compare every round.

    Each engine gets a deep copy of the scalar ``adversary`` and its own
    ``default_rng(seed)``; under the shared RNG-stream contract the two
    executions must then be bit-identical at every node of every recorded
    round.  Intended for small instances — it pays the scalar engine's cost.
    """
    if adversary is not None and not isinstance(adversary, ByzantineStrategy):
        raise InvalidParameterError(
            "async_cross_check_engines needs a scalar ByzantineStrategy (or "
            "None); a BatchStrategy has no scalar counterpart to compare against"
        )
    chosen_config = config if config is not None else SimulationConfig()
    if not chosen_config.record_history:
        chosen_config = SimulationConfig(
            max_rounds=chosen_config.max_rounds,
            tolerance=chosen_config.tolerance,
            record_history=True,
            strict_validity=chosen_config.strict_validity,
            stop_on_convergence=chosen_config.stop_on_convergence,
        )

    scalar_engine = PartiallyAsynchronousEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=copy.deepcopy(adversary) if adversary is not None else None,
        config=chosen_config,
        max_delay=max_delay,
        update_probability=update_probability,
        rng=np.random.default_rng(seed),
        schedule=copy.deepcopy(schedule) if schedule is not None else None,
    )
    vector_engine = VectorizedAsyncEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=copy.deepcopy(adversary) if adversary is not None else None,
        config=chosen_config,
        max_delay=max_delay,
        update_probability=update_probability,
        schedule=copy.deepcopy(schedule) if schedule is not None else None,
    )
    scalar_outcome = scalar_engine.run(inputs)
    vector_outcome = vector_engine.run(inputs, rng=np.random.default_rng(seed))

    # Histories include the round-0 record; count executed rounds so the
    # report's rounds_checked matches the synchronous cross_check_engines.
    rounds_checked = max(
        0, min(len(scalar_outcome.history), len(vector_outcome.history)) - 1
    )
    return _divergence_report(
        rounds_checked,
        (
            (scalar_record.round_index, scalar_record.values[node], vector_record.values[node])
            for scalar_record, vector_record in zip(
                scalar_outcome.history, vector_outcome.history
            )
            for node in graph.nodes
        ),
        length_mismatch=len(scalar_outcome.history) != len(vector_outcome.history),
    )


def run_vectorized_async(
    graph: Digraph,
    rule: UpdateRule,
    inputs: ValueMap,
    faulty: frozenset[NodeId] | set[NodeId] = frozenset(),
    adversary: BatchStrategy | ByzantineStrategy | None = None,
    max_delay: int = 1,
    update_probability: float = 1.0,
    max_rounds: int = 500,
    tolerance: float = 1e-7,
    record_history: bool = True,
    rng: np.random.Generator | int | None = None,
    schedule: TopologySchedule | None = None,
) -> ConsensusOutcome:
    """Functional wrapper around :class:`VectorizedAsyncEngine`, mirroring
    :func:`~repro.simulation.async_engine.run_partially_asynchronous`."""
    config = SimulationConfig(
        max_rounds=max_rounds,
        tolerance=tolerance,
        record_history=record_history,
    )
    engine = VectorizedAsyncEngine(
        graph=graph,
        rule=rule,
        faulty=faulty,
        adversary=adversary,
        config=config,
        max_delay=max_delay,
        update_probability=update_probability,
        schedule=schedule,
    )
    return engine.run(inputs, rng=rng)
