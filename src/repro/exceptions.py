"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without accidentally swallowing programming errors such as
``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors concerning graph construction or queries."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced in an operation is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced in an operation is not present in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class SelfLoopError(GraphError, ValueError):
    """A self-loop was supplied to a graph that forbids them.

    The paper's network model (Section 2.1) excludes self-loops from the edge
    set ``E`` even though every node may use its own state; the library follows
    the same convention.
    """

    def __init__(self, node: object) -> None:
        super().__init__(
            f"self-loop on node {node!r} is not allowed: the network model "
            "excludes self-loops from E (each node always has access to its "
            "own state implicitly)"
        )
        self.node = node


class DuplicateNodeError(GraphError, ValueError):
    """The same node was added twice with conflicting semantics."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the graph")
        self.node = node


class InvalidParameterError(ReproError, ValueError):
    """A parameter supplied to a generator, checker or engine is invalid."""


class ConditionCheckError(ReproError):
    """Base class for errors raised by feasibility-condition checkers."""


class GraphTooLargeError(ConditionCheckError):
    """The exact (exhaustive) checker was asked to process a graph larger
    than its configured node-count cap.

    The exhaustive Theorem-1 checker enumerates all partitions ``F, L, C, R``
    of the vertex set and is therefore exponential in ``n``.  To avoid
    accidentally launching multi-hour enumerations, it refuses graphs above a
    configurable cap; callers that really want the exact answer on a larger
    graph can raise the cap explicitly.
    """

    def __init__(self, n: int, cap: int, checker: str | None = None) -> None:
        label = checker or "exact condition check"
        super().__init__(
            f"{label} requested on a graph with n = {n} nodes, but the "
            f"configured cap is max_nodes = {cap}; raise max_nodes to force "
            "the exhaustive enumeration or use a heuristic checker"
        )
        self.n = n
        self.cap = cap
        self.checker = checker


class InvalidPartitionError(ConditionCheckError, ValueError):
    """A partition supplied to the condition machinery is malformed
    (overlapping parts, parts not covering the vertex set, or empty parts
    where non-empty parts are required)."""


class SimulationError(ReproError):
    """Base class for errors raised by the simulation engines."""


class FaultBudgetExceededError(SimulationError, ValueError):
    """More faulty nodes were requested than the fault budget ``f`` allows."""

    def __init__(self, requested: int, budget: int) -> None:
        super().__init__(
            f"{requested} faulty nodes requested but the fault budget is "
            f"f = {budget}"
        )
        self.requested = requested
        self.budget = budget


class AlgorithmPreconditionError(SimulationError, ValueError):
    """An update rule's structural precondition does not hold.

    For example, Algorithm 1 requires every fault-free node to have in-degree
    at least ``2f`` so that after trimming the ``f`` lowest and ``f`` highest
    received values at least one received value survives (Corollary 3 shows
    ``2f + 1`` is in fact necessary for correctness).
    """


class ValidityViolationError(SimulationError):
    """Raised by strict-mode simulations when a fault-free node's state leaves
    the convex hull of the fault-free inputs — i.e. the validity condition of
    the paper (eq. 1) was violated.  This should never happen for the
    algorithms implemented here; it exists to catch implementation bugs and to
    support negative tests."""


class ConvergenceError(SimulationError):
    """A simulation that was required to converge failed to do so within the
    allotted number of iterations."""

    def __init__(self, rounds: int, spread: float, tolerance: float) -> None:
        super().__init__(
            f"consensus did not converge within {rounds} iterations: "
            f"remaining spread {spread:.6g} exceeds tolerance {tolerance:.6g}"
        )
        self.rounds = rounds
        self.spread = spread
        self.tolerance = tolerance


class SchemaViolationError(ReproError):
    """A result row (or stored document) does not match its declared schema.

    Raised by the row-schema layer (:mod:`repro.sweeps.schema`) when a
    runner emits an unknown, missing or mistyped column, when a stored
    shard / aggregate fails validation on read, or when a resumed run's
    on-disk schema fingerprint disagrees with the code's — each message
    carries the offending coordinates (experiment, cell, row, column) so
    the corrupted cell is identifiable without a debugger.
    """


class AnalysisError(ReproError):
    """Base class for errors raised by the analysis helpers."""


class NotApplicableError(AnalysisError):
    """An analytical quantity is undefined for the supplied inputs (for
    example, a propagation length between sets for which neither set
    propagates to the other)."""
