"""``repro`` — the one-command reproduction CLI.

Four subcommands over the experiment registry (:mod:`repro.sweeps`) and the
feasibility machinery (:mod:`repro.conditions`):

* ``repro list`` — every registered experiment with its paper section,
  engine, default grid size and one-line description;
* ``repro run <experiment>`` — plan, shard and execute a sweep (optionally
  across ``--workers N`` processes), persisting a resumable run under the
  results store and printing the aggregate table;
* ``repro report <run>`` — re-open a stored run (by run id or path) and
  print its manifest summary and rows;
* ``repro verdict <family>`` — run the layered feasibility verdict stack on
  one generated graph and print the verdict, its certificate and per-layer
  timings.

Invoke as ``python -m repro ...`` from the source tree (with
``PYTHONPATH=src``) or as the ``repro`` console script after ``pip install
-e .``.  Full reference: ``docs/cli.md``; experiment ↔ paper map:
``docs/experiments.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.exceptions import InvalidParameterError, ReproError
from repro.experiments.reporting import format_table
from repro.sweeps.orchestrator import DEFAULT_RESULTS_ROOT, run_sweep
from repro.sweeps.registry import all_experiments
from repro.sweeps.schema import RowSchema
from repro.sweeps.store import Manifest, RunStore

#: Rows printed by ``repro run`` / ``repro report`` before truncation.
DEFAULT_ROW_LIMIT = 40

#: Graph families accepted by ``repro verdict``, mapped to builders taking
#: the parsed CLI namespace.  ``--n`` is the node count except for
#: ``hypercube``, where it is the dimension.
VERDICT_FAMILIES = {
    "complete": lambda args: _graphs().complete_graph(args.n),
    "ring": lambda args: _graphs().undirected_ring(args.n),
    "hypercube": lambda args: _graphs().hypercube(args.n),
    "chord": lambda args: _graphs().chord_network(args.n, args.f),
    "core": lambda args: _graphs().core_network(args.n, args.f),
    "erdos-renyi": lambda args: _graphs().erdos_renyi_digraph(
        args.n, args.p, rng=args.seed
    ),
    "heterogeneous-ring-lattice": lambda args: _graphs().heterogeneous_ring_lattice(
        args.n, args.f, args.extra_mean, rng=args.seed
    ),
    "core-like": lambda args: _graphs().random_core_like_network(
        args.n, args.f, rng=args.seed
    ),
}


def _graphs() -> Any:
    """Import :mod:`repro.graphs` lazily so ``repro list`` stays snappy."""
    import repro.graphs as graphs_module

    return graphs_module


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with its three subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__.splitlines()[0],
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list every registered experiment"
    )
    list_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print each experiment's claim and default grid",
    )

    run_parser = subparsers.add_parser(
        "run", help="execute one experiment's (possibly overridden) grid"
    )
    run_parser.add_argument("experiment", help="registered experiment name")
    run_parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1[,V2...]",
        help="override one grid parameter (repeatable)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1)"
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: one shard per grid cell)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="root seed for SeedSequence.spawn"
    )
    run_parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_ROOT,
        help="results store root (default: results/)",
    )
    run_parser.add_argument(
        "--run-id",
        default=None,
        help="run directory name (default: <experiment>-<fingerprint>)",
    )
    run_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every shard even if its result file exists",
    )
    run_parser.add_argument(
        "--limit",
        type=int,
        default=DEFAULT_ROW_LIMIT,
        help=f"max aggregate rows to print (default {DEFAULT_ROW_LIMIT})",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress progress and row output"
    )

    verdict_parser = subparsers.add_parser(
        "verdict",
        help="run the layered feasibility verdict stack on one graph",
    )
    verdict_parser.add_argument(
        "family",
        choices=sorted(VERDICT_FAMILIES),
        help="graph family to generate",
    )
    verdict_parser.add_argument(
        "--n",
        type=int,
        required=True,
        help="node count (hypercube: the dimension)",
    )
    verdict_parser.add_argument(
        "--f", type=int, required=True, help="fault budget f"
    )
    verdict_parser.add_argument(
        "--p",
        type=float,
        default=0.1,
        help="edge probability for erdos-renyi (default 0.1)",
    )
    verdict_parser.add_argument(
        "--extra-mean",
        type=float,
        default=1.0,
        help="mean extra out-degree for heterogeneous-ring-lattice (default 1.0)",
    )
    verdict_parser.add_argument(
        "--seed", type=int, default=0, help="generator / search seed (default 0)"
    )
    verdict_parser.add_argument(
        "--attempts",
        type=int,
        default=None,
        help="randomized witness-search attempts (default: stack default)",
    )
    verdict_parser.add_argument(
        "--backend",
        default="dpll",
        help="exact backend: auto, dpll, pysat or pulp (default dpll)",
    )
    verdict_parser.add_argument(
        "--no-exact",
        action="store_true",
        help="skip the exact constraint-backend layer",
    )

    report_parser = subparsers.add_parser(
        "report", help="print a stored run's manifest and rows"
    )
    report_parser.add_argument(
        "run", help="run id under the results store, or a run directory path"
    )
    report_parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_ROOT,
        help="results store root used to resolve run ids (default: results/)",
    )
    report_parser.add_argument(
        "--limit",
        type=int,
        default=DEFAULT_ROW_LIMIT,
        help=f"max rows to print (default {DEFAULT_ROW_LIMIT})",
    )
    return parser


def _schema_view(manifest: Manifest) -> tuple[list[str], dict[str, str]]:
    """Derive the report column order and kinds from a run's row schema.

    Columns come out as the swept/injected parameters first (grid
    declaration order), then the schema's columns in their declared order,
    then the ``cell_index`` bookkeeping column — the layout
    :func:`repro.sweeps.orchestrator.aggregate_rows` merges rows in,
    derived from the manifest instead of sniffed off the first row.
    """
    schema = RowSchema.from_json(manifest["row_schema"])
    parameters = [str(column) for column in manifest["parameter_columns"]]
    columns = parameters + [
        name for name in schema.names if name not in parameters
    ]
    columns.append("cell_index")
    kinds = {
        column.name: column.kind
        for column in schema.columns
        if column.name not in parameters
    }
    return columns, kinds


def _print_rows(
    rows: Sequence[Mapping[str, object]],
    limit: int,
    columns: Sequence[str] | None = None,
    kinds: Mapping[str, str] | None = None,
) -> None:
    """Print rows as an aligned table, truncated to ``limit``."""
    if not rows:
        print("(no rows)")
        return
    shown = rows[: max(limit, 0)]
    if shown:
        print(format_table(shown, columns=columns, kinds=kinds))
    hidden = len(rows) - len(shown)
    if hidden > 0:
        print(f"... {hidden} more row(s) not shown (use --limit)")


def cmd_list(args: argparse.Namespace) -> int:
    """Implement ``repro list``."""
    rows = []
    for name, spec in all_experiments().items():
        rows.append(
            {
                "experiment": name,
                "paper_section": spec.paper_section,
                "engine": spec.engine,
                "cells": spec.default_cell_count,
                "description": spec.description,
            }
        )
    print(format_table(rows))
    if args.verbose:
        for name, spec in all_experiments().items():
            print(f"\n{name}: {spec.claim}")
            for key, values in spec.grid.items():
                print(f"  --grid {key}= default {list(values)!r}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Implement ``repro run``."""
    echo = None if args.quiet else print
    result = run_sweep(
        args.experiment,
        grid_overrides=args.grid,
        workers=args.workers,
        shards=args.shards,
        seed=args.seed,
        results_root=args.results_dir,
        run_id=args.run_id,
        resume=not args.no_resume,
        echo=echo,
    )
    if not args.quiet:
        print()
        columns, kinds = _schema_view(result.manifest)
        _print_rows(result.rows, args.limit, columns=columns, kinds=kinds)
        print(
            f"\nrun {result.run_id!r} complete: {len(result.rows)} rows, "
            f"manifest {result.run_dir / 'manifest.json'}"
        )
    return 0


def cmd_verdict(args: argparse.Namespace) -> int:
    """Implement ``repro verdict``."""
    from repro.conditions import (
        DEFAULT_WITNESS_ATTEMPTS,
        InfeasibilityCertificate,
        feasibility_verdict,
        verify_certificate,
    )

    graph = VERDICT_FAMILIES[args.family](args)
    attempts = (
        DEFAULT_WITNESS_ATTEMPTS if args.attempts is None else args.attempts
    )
    verdict = feasibility_verdict(
        graph,
        args.f,
        witness_attempts=attempts,
        rng=args.seed,
        use_exact=not args.no_exact,
        exact_backend=args.backend,
    )
    print(
        f"graph:       {args.family} "
        f"(n = {graph.number_of_nodes}, edges = {graph.number_of_edges})"
    )
    print(f"verdict:     {verdict.describe()}")
    certificate = verdict.certificate
    if certificate is None:
        print("certificate: (none — undecided)")
    else:
        print(f"certificate: {certificate.kind}")
        if isinstance(certificate, InfeasibilityCertificate):
            if certificate.witness is not None:
                print(f"witness:     {certificate.witness.describe()}")
        elif certificate.core is not None:
            print(f"core:        {sorted(certificate.core, key=repr)}")
        verified = verify_certificate(graph, args.f, verdict)
        print(f"re-verified: {'yes' if verified else 'NO — certificate is invalid'}")
    print("layers:")
    for timing in verdict.timings:
        print(
            f"  {timing.layer:<15} {timing.seconds * 1000:9.2f} ms  {timing.outcome}"
        )
    return 0


def _resolve_run_dir(run: str, results_root: Path) -> Path:
    """Resolve a run argument: a directory path, or a run id under the root."""
    as_path = Path(run)
    if as_path.is_dir():
        return as_path
    candidate = results_root / run
    if candidate.is_dir():
        return candidate
    raise InvalidParameterError(
        f"no run directory at {as_path} or {candidate}; "
        "pass a run id from the results store or a path"
    )


def cmd_report(args: argparse.Namespace) -> int:
    """Implement ``repro report``."""
    store = RunStore(_resolve_run_dir(args.run, args.results_dir))
    manifest = store.read_manifest()
    if manifest is None:
        raise InvalidParameterError(f"{store.run_dir} has no manifest.json")
    print(f"run:            {manifest.get('run_id')}")
    print(f"experiment:     {manifest.get('experiment')}")
    print(f"paper section:  {manifest.get('paper_section')}")
    print(f"engine:         {manifest.get('engine')}")
    print(f"status:         {manifest.get('status')}")
    print(
        f"cells/shards:   {manifest.get('num_cells')} cells in "
        f"{manifest.get('num_shards')} shards "
        f"({len(manifest.get('completed_shards', []))} complete)"
    )
    print(f"seed:           {manifest.get('seed')}")
    grid = manifest.get("grid", {})
    for key, values in grid.items():
        print(f"{'grid ' + key + ':':<16}{values}")
    provenance = manifest.get("provenance", {})
    print(
        f"provenance:     python {provenance.get('python')}, "
        f"numpy {provenance.get('numpy')}, git {provenance.get('git_sha')}"
    )
    aggregate = store.read_aggregate()
    print()
    if aggregate is None:
        print("(no aggregate yet — the run is incomplete; rerun `repro run`)")
        return 0
    columns, kinds = _schema_view(manifest)
    _print_rows(aggregate["rows"], args.limit, columns=columns, kinds=kinds)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "report": cmd_report,
        "verdict": cmd_verdict,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
